// Fixture: a compliant shim crate — forbid(unsafe_code) present, and
// shims are exempt from warn(missing_docs). Must produce no violations.
#![forbid(unsafe_code)]
pub fn f() {}
