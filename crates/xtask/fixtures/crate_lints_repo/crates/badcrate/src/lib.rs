// Fixture: a library crate missing both required crate-level lints.
// The crate_lints rule must report two violations for this file.
pub fn f() {}
