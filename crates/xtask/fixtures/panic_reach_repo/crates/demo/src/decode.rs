//! Direct-sink and unresolved-call cases for the `panic_reach`
//! self-test (see lib.rs for the marker contract).

/// Seed: data-derived indexing fires on both sink lines.
pub fn decode_image_header(bytes: &[u8]) -> u8 {
    let at = usize::from(bytes[0]); //~ untrusted index
    bytes[at] //~ untrusted index
}

/// Seed: full-range reslices and `debug_assert!` bodies are exempt.
pub fn decode_image_body(bytes: &[u8]) -> &[u8] {
    debug_assert!(bytes[0] > 0); // compiled out of release builds
    &bytes[..]
}

/// Seed: a call that resolves to no workspace fn and no audited-total
/// builtin is treated as potentially panicking.
pub fn decode_image_footer(bytes: &[u8]) -> usize {
    mystery_widen(bytes.len()) //~ unresolved call
}
