//! Miniature decode surface for the `panic_reach` self-test. Every line
//! carrying a tilde marker must be reported; every other line must not.
//!
//! The pairing demonstrated here is the one the acceptance criteria ask
//! for: `open_mpoint` reaches a panic through a transitive helper and
//! fires, while `open_mpoint_checked` — the same shape with the panic
//! replaced by `?`-propagation — stays silent. Deleting that fix (say,
//! turning `checked_helper`'s `ok_or` back into `unwrap`) makes the
//! pass fire on it again.

mod decode;

/// Decode failure marker for the `?`-propagating twin.
pub struct DecodeError;

/// Seed: reaches a panic transitively (seed -> helper -> unwrap).
pub fn open_mpoint(bytes: &[u8]) -> usize {
    helper(bytes)
}

/// Seed twin: identical shape, `?`-propagated — must NOT fire.
pub fn open_mpoint_checked(bytes: &[u8]) -> Result<usize, DecodeError> {
    checked_helper(bytes)
}

fn helper(bytes: &[u8]) -> usize {
    let first = bytes.first().unwrap(); //~ transitive unwrap
    usize::from(*first)
}

fn checked_helper(bytes: &[u8]) -> Result<usize, DecodeError> {
    let first = bytes.first().ok_or(DecodeError)?;
    Ok(usize::from(*first))
}

/// Seed gated `#[cfg(not(test))]`: still production code, still audited.
#[cfg(not(test))]
pub fn open_mpoint_raw(bytes: &[u8]) -> u8 {
    bytes[0] //~ cfg(not(test)) is not a test gate
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_invisible_to_the_pass() {
        assert_eq!(super::open_mpoint(&[3]), 3);
        let v = vec![1, 2];
        let _ = v[0]; // test-gated indexing: never reported
    }
}
