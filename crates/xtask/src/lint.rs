//! The repo-specific lint rules, token-based since mob-audit v3.
//!
//! Ten rules, each with an allowlist file under `crates/xtask/allow/`
//! and a fixture under `crates/xtask/fixtures/` proving it fires:
//!
//! | rule             | scope                              | forbids |
//! |------------------|------------------------------------|---------|
//! | `no_panic`       | mob-storage, mob-core (non-test)   | `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `narrowing_cast` | mob-storage, mob-core (non-test)   | `as u8/u16/u32/i8/i16/i32` (use `checked::count_u32` / `try_from`) |
//! | `float_eq`       | base, spatial, core, storage (non-test, minus `real.rs`) | `==`/`!=` against raw `f64` (`.get()` or float literals) |
//! | `crate_lints`    | every `crates/*/src/lib.rs`        | missing `#![forbid(unsafe_code)]` (+ `#![warn(missing_docs)]` outside shims) |
//! | `no_raw_counter` | every `crates/*/src` except `obs` and shims (non-test) | bare `AtomicU64` / `Cell<u64>` counters (count through `mob-obs` instead) |
//! | `no_unchecked_io` | every `crates/*/src` except `storage/src/io.rs` (non-test) | bare `fs::write(` / `File::create(` (go through `StoreIo`) |
//! | `panic_reach`    | whole workspace call graph         | any path from an untrusted decode entry point to a panic sink ([`crate::passes`]) |
//! | `atomics_order`  | every crate except `obs` and shims | `Ordering::Relaxed` (counters live in mob-obs; hand-off uses Acquire/Release) |
//! | `determinism`    | mob-core, mob-rel, mob-storage     | `HashMap`/`HashSet` (iteration order is randomized; results are contractually byte-identical) |
//! | `no_raw_sleep`   | every `crates/*/src` except shims and `storage/src/clock.rs` (non-test) | `thread::sleep(` / `Instant::now(` (tell time through the `Clock` trait) |
//!
//! All rules operate on the real token stream from [`crate::lex`]:
//! comments and string interiors simply do not produce tokens, multiline
//! constructs (`.unwrap\n()`) cannot hide from line matching, and
//! `#[cfg(test)]` regions are identified structurally — so
//! `#[cfg(not(test))]` code is correctly *linted*, where the old
//! masked-line scanner wrongly exempted it.

use crate::callgraph::{scan_body, SinkKind, SourceFile};
use crate::lex::Tok;
use crate::passes;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// A single lint hit.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule identifier (`no_panic`, …).
    pub rule: &'static str,
    /// File, repo-relative with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line (also the allowlist key).
    pub content: String,
    /// What to do instead.
    pub help: String,
    /// For `panic_reach`: the call chain from the seed entry point.
    pub chain: Vec<String>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.content, self.help
        )?;
        if !self.chain.is_empty() {
            write!(f, "\n    chain from decode entry point:")?;
            for (i, hop) in self.chain.iter().enumerate() {
                let arrow = if i == 0 { "  " } else { "-> " };
                write!(f, "\n      {arrow}{hop}")?;
            }
        }
        Ok(())
    }
}

/// Names of all rules (used by the self-test driver and `run_all`).
pub const RULES: [&str; 10] = [
    "no_panic",
    "narrowing_cast",
    "float_eq",
    "crate_lints",
    "no_raw_counter",
    "no_unchecked_io",
    "panic_reach",
    "atomics_order",
    "determinism",
    "no_raw_sleep",
];

const NARROWING_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Run every rule over the repo rooted at `root`. Returns the surviving
/// violations and any allowlist errors (unused entries, unreadable
/// files).
pub fn run_all(root: &Path) -> (Vec<Violation>, Vec<String>) {
    let mut violations = Vec::new();
    let mut errors = Vec::new();

    for rule in RULES {
        let raw = run_rule(root, rule, &mut errors);
        let (kept, allow_errors) = apply_allowlist(root, rule, raw);
        violations.extend(kept);
        errors.extend(allow_errors);
    }
    (violations, errors)
}

/// Run one rule (no allowlist filtering) over the repo.
pub fn run_rule(root: &Path, rule: &'static str, errors: &mut Vec<String>) -> Vec<Violation> {
    match rule {
        "no_panic" | "narrowing_cast" => {
            let scope = ["crates/storage/src", "crates/core/src"];
            scan_scope(root, rule, &scope, errors, |sf| match rule {
                "no_panic" => scan_no_panic(sf),
                _ => scan_narrowing_cast(sf),
            })
        }
        "float_eq" => {
            let scope = [
                "crates/base/src",
                "crates/spatial/src",
                "crates/core/src",
                "crates/storage/src",
            ];
            let mut v = scan_scope(root, rule, &scope, errors, scan_float_eq);
            // `Real` (base/src/real.rs) is the designated epsilon module:
            // the one place raw float comparison is the point.
            v.retain(|x| x.path != "crates/base/src/real.rs");
            v
        }
        "crate_lints" => scan_crate_lints(root, errors),
        "no_raw_counter" => {
            let owned = counter_scope(root, errors);
            let scope: Vec<&str> = owned.iter().map(String::as_str).collect();
            scan_scope(root, rule, &scope, errors, scan_no_raw_counter)
        }
        "no_unchecked_io" => {
            let owned = all_crate_src_dirs(root, errors);
            let scope: Vec<&str> = owned.iter().map(String::as_str).collect();
            let mut v = scan_scope(root, rule, &scope, errors, scan_no_unchecked_io);
            // `storage::io` is the one sanctioned raw-filesystem site: it
            // *implements* the checked I/O everything else must use.
            v.retain(|x| x.path != "crates/storage/src/io.rs");
            v
        }
        "no_raw_sleep" => {
            let owned = sleep_scope(root, errors);
            let scope: Vec<&str> = owned.iter().map(String::as_str).collect();
            let mut v = scan_scope(root, rule, &scope, errors, scan_no_raw_sleep);
            // `storage::clock` is the one sanctioned raw-time site: it
            // *implements* the Clock everything else must tell time by.
            v.retain(|x| x.path != "crates/storage/src/clock.rs");
            v
        }
        "panic_reach" => passes::panic_reach(root, errors),
        "atomics_order" => passes::atomics_order(root, errors),
        "determinism" => passes::determinism(root, errors),
        _ => {
            errors.push(format!("unknown rule `{rule}`"));
            Vec::new()
        }
    }
}

// ---- file walking ----------------------------------------------------

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>, errors: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", dir.display()));
            return;
        }
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            rust_files(&p, out, errors);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    out.sort();
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scan all `.rs` files under the scope dirs with a per-file matcher
/// that returns `(line_no, help)` pairs over the lexed file.
fn scan_scope(
    root: &Path,
    rule: &'static str,
    scope: &[&str],
    errors: &mut Vec<String>,
    matcher: impl Fn(&SourceFile) -> Vec<(usize, String)>,
) -> Vec<Violation> {
    let mut files = Vec::new();
    for dir in scope {
        rust_files(&root.join(dir), &mut files, errors);
    }
    let mut out = Vec::new();
    for file in files {
        let src = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                errors.push(format!("read {}: {e}", file.display()));
                continue;
            }
        };
        let (sf, _) = SourceFile::new(rel_path(root, &file), String::new(), &src);
        for (line, help) in matcher(&sf) {
            out.push(Violation {
                rule,
                path: sf.path.clone(),
                line,
                content: sf.line_content(line),
                help,
                chain: Vec::new(),
            });
        }
    }
    out
}

/// 1-based lines that contain at least one test-gated token.
fn test_lines(sf: &SourceFile) -> BTreeSet<usize> {
    sf.toks
        .iter()
        .zip(sf.in_test.iter())
        .filter(|(_, t)| **t)
        .map(|(tok, _)| tok.line)
        .collect()
}

/// Iterate `(index, token)` over non-test tokens.
fn code_tokens(sf: &SourceFile) -> impl Iterator<Item = (usize, &Tok)> {
    sf.toks.iter().enumerate().filter(|(i, _)| !sf.in_test[*i])
}

// ---- rule: no_panic --------------------------------------------------

/// Match panic sinks (macro family, `.unwrap()`, `.expect(`) on non-test
/// tokens. Reuses the call-graph body scanner, so split-across-lines
/// spellings and `debug_assert!` exemption behave identically to the
/// `panic_reach` pass.
pub fn scan_no_panic(sf: &SourceFile) -> Vec<(usize, String)> {
    let in_test = test_lines(sf);
    let facts = scan_body(&sf.toks, (0, sf.toks.len()), None, &[]);
    let mut lines = BTreeSet::new();
    for (kind, line) in facts.sinks {
        if kind != SinkKind::Index && !in_test.contains(&line) {
            lines.insert(line);
        }
    }
    lines
        .into_iter()
        .map(|n| {
            (
                n,
                "return a DecodeError/InvariantViolation instead of panicking \
                 (see crates/xtask/allow/no_panic.allow for the sanctioned exceptions)"
                    .to_string(),
            )
        })
        .collect()
}

// ---- rule: narrowing_cast --------------------------------------------

/// Match narrowing `as` casts (`as u32` etc.) on non-test tokens.
pub fn scan_narrowing_cast(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut lines = BTreeSet::new();
    for (i, t) in code_tokens(sf) {
        if t.is_ident("as")
            && sf
                .toks
                .get(i + 1)
                .is_some_and(|n| NARROWING_TARGETS.contains(&n.text.as_str()))
        {
            lines.insert(t.line);
        }
    }
    lines
        .into_iter()
        .map(|n| {
            (
                n,
                "use checked::count_u32 / u32::try_from — a silently truncated \
                 count corrupts the record layout"
                    .to_string(),
            )
        })
        .collect()
}

// ---- rule: no_raw_counter --------------------------------------------

/// `crates/*/src` for every crate except `obs` (where raw atomics *are*
/// the registry) and the `shim-*` crates (vendored API stand-ins).
fn counter_scope(root: &Path, errors: &mut Vec<String>) -> Vec<String> {
    let crates_dir = root.join("crates");
    let entries = match std::fs::read_dir(&crates_dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", crates_dir.display()));
            return Vec::new();
        }
    };
    let mut dirs: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().to_string();
            if name == "obs" || name.starts_with("shim-") || !e.path().join("src").is_dir() {
                None
            } else {
                Some(format!("crates/{name}/src"))
            }
        })
        .collect();
    dirs.sort();
    dirs
}

/// Match bare counter primitives (`AtomicU64`, `Cell<u64>`) on non-test
/// tokens. Idents are exact tokens, so `RefCell<u64>` (interior
/// mutability, not a counter) cannot fire.
pub fn scan_no_raw_counter(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut lines = BTreeSet::new();
    for (i, t) in code_tokens(sf) {
        let hit = t.is_ident("AtomicU64")
            || (t.is_ident("Cell")
                && sf.toks.get(i + 1).is_some_and(|n| n.is_punct("<"))
                && sf.toks.get(i + 2).is_some_and(|n| n.is_ident("u64")));
        if hit {
            lines.insert(t.line);
        }
    }
    lines
        .into_iter()
        .map(|n| {
            (
                n,
                "count through mob-obs (metric!/Counter/LocalCounter/SharedCounter) \
                 so the total lands in the registry and shows up in EXPLAIN"
                    .to_string(),
            )
        })
        .collect()
}

// ---- rule: no_unchecked_io -------------------------------------------

/// `crates/*/src` for every crate — including shims and `obs`; nothing
/// but `storage::io` (filtered by the caller) may write files raw.
fn all_crate_src_dirs(root: &Path, errors: &mut Vec<String>) -> Vec<String> {
    let crates_dir = root.join("crates");
    let entries = match std::fs::read_dir(&crates_dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", crates_dir.display()));
            return Vec::new();
        }
    };
    let mut dirs: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().to_string();
            e.path()
                .join("src")
                .is_dir()
                .then(|| format!("crates/{name}/src"))
        })
        .collect();
    dirs.sort();
    dirs
}

/// Match bare filesystem writes (`fs::write(`, `File::create(`) on
/// non-test tokens. Path-segment matching catches `std::fs::write(` and
/// `std::fs::File::create(` too.
pub fn scan_no_unchecked_io(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut lines = BTreeSet::new();
    for (i, t) in code_tokens(sf) {
        let path_call = |head: &str, leaf: &str| {
            t.is_ident(head)
                && sf.toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && sf.toks.get(i + 2).is_some_and(|n| n.is_ident(leaf))
                && sf.toks.get(i + 3).is_some_and(|n| n.is_open('('))
        };
        if path_call("fs", "write") || path_call("File", "create") {
            lines.insert(t.line);
        }
    }
    lines
        .into_iter()
        .map(|n| {
            (
                n,
                "write through StoreIo (FsIo for real disks) — bare fs writes \
                 skip fsync, atomic rename and fault injection; \
                 storage/src/io.rs is the only sanctioned raw site"
                    .to_string(),
            )
        })
        .collect()
}

// ---- rule: no_raw_sleep ----------------------------------------------

/// `crates/*/src` for every crate except the `shim-*` stand-ins (whose
/// vendored APIs time things however their real counterparts do). The
/// sanctioned `storage/src/clock.rs` is filtered by the caller.
fn sleep_scope(root: &Path, errors: &mut Vec<String>) -> Vec<String> {
    let mut dirs = all_crate_src_dirs(root, errors);
    dirs.retain(|d| !d.starts_with("crates/shim-"));
    dirs
}

/// Match raw time sources (`thread::sleep(`, `Instant::now(`) on
/// non-test tokens. Path-segment matching catches the `std::`-qualified
/// spellings too; a backoff or deadline that tells time this way cannot
/// be driven by a `VirtualClock` and turns every test into a real wait.
pub fn scan_no_raw_sleep(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut lines = BTreeSet::new();
    for (i, t) in code_tokens(sf) {
        let path_call = |head: &str, leaf: &str| {
            t.is_ident(head)
                && sf.toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && sf.toks.get(i + 2).is_some_and(|n| n.is_ident(leaf))
                && sf.toks.get(i + 3).is_some_and(|n| n.is_open('('))
        };
        if path_call("thread", "sleep") || path_call("Instant", "now") {
            lines.insert(t.line);
        }
    }
    lines
        .into_iter()
        .map(|n| {
            (
                n,
                "tell time through the Clock trait (mob_storage::clock) so \
                 virtual clocks can drive backoff and deadlines in tests; \
                 storage/src/clock.rs is the only sanctioned raw site"
                    .to_string(),
            )
        })
        .collect()
}

// ---- rule: float_eq --------------------------------------------------

/// Match `==`/`!=` where one side is a raw float (`.get()` call or a
/// float literal) on non-test tokens.
pub fn scan_float_eq(sf: &SourceFile) -> Vec<(usize, String)> {
    let mut lines = BTreeSet::new();
    for (i, t) in code_tokens(sf) {
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        if floatish_before(&sf.toks, i) || floatish_after(&sf.toks, i) {
            lines.insert(t.line);
        }
    }
    lines
        .into_iter()
        .map(|n| {
            (
                n,
                "compare through Real (eq/eps helpers in base/src/real.rs) — \
                 raw f64 == is exact-representation equality"
                    .to_string(),
            )
        })
        .collect()
}

fn is_float_num(t: &Tok) -> bool {
    t.kind == crate::lex::Kind::Num
        && (t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32"))
}

/// `… x.get() ==` / `… 1.5 ==`: look at the tokens just before the op.
fn floatish_before(toks: &[Tok], op: usize) -> bool {
    if op >= 1 && is_float_num(&toks[op - 1]) {
        return true;
    }
    op >= 4
        && toks[op - 1].is_close(')')
        && toks[op - 2].is_open('(')
        && toks[op - 3].is_ident("get")
        && toks[op - 4].is_punct(".")
}

/// `== 0.25` / `== y.get()`: scan forward (bounded, stopping at
/// expression terminators) for a float literal or a `.get()` call.
fn floatish_after(toks: &[Tok], op: usize) -> bool {
    let mut k = op + 1;
    let stop = (op + 12).min(toks.len());
    while k < stop {
        let t = &toks[k];
        if is_float_num(t) {
            return true;
        }
        if t.is_punct(".")
            && toks.get(k + 1).is_some_and(|n| n.is_ident("get"))
            && toks.get(k + 2).is_some_and(|n| n.is_open('('))
            && toks.get(k + 3).is_some_and(|n| n.is_close(')'))
        {
            return true;
        }
        if t.is_punct(",")
            || t.is_punct(";")
            || t.is_punct("&&")
            || t.is_punct("||")
            || t.is_open('{')
            || t.is_close('}')
        {
            return false;
        }
        k += 1;
    }
    false
}

// ---- rule: crate_lints -----------------------------------------------

/// Every `crates/*/src/lib.rs` must carry `#![forbid(unsafe_code)]`;
/// non-shim libraries must also carry `#![warn(missing_docs)]`. The
/// check is token-based: an attribute spelled out inside a comment or
/// string can no longer satisfy it.
fn scan_crate_lints(root: &Path, errors: &mut Vec<String>) -> Vec<Violation> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let entries = match std::fs::read_dir(&crates_dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", crates_dir.display()));
            return out;
        }
    };
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs {
        let lib = dir.join("src").join("lib.rs");
        if !lib.is_file() {
            continue; // bin-only crate (e.g. xtask itself)
        }
        let name = dir.file_name().map(|s| s.to_string_lossy().to_string());
        let is_shim = name.as_deref().is_some_and(|n| n.starts_with("shim-"));
        let src = match std::fs::read_to_string(&lib) {
            Ok(s) => s,
            Err(e) => {
                errors.push(format!("read {}: {e}", lib.display()));
                continue;
            }
        };
        let toks = crate::lex::lex(&src);
        let rel = rel_path(root, &lib);
        if !has_inner_lint_attr(&toks, "forbid", "unsafe_code") {
            out.push(Violation {
                rule: "crate_lints",
                path: rel.clone(),
                line: 1,
                content: "missing #![forbid(unsafe_code)]".to_string(),
                help: "add `#![forbid(unsafe_code)]` at the top of the crate".to_string(),
                chain: Vec::new(),
            });
        }
        if !is_shim && !has_inner_lint_attr(&toks, "warn", "missing_docs") {
            out.push(Violation {
                rule: "crate_lints",
                path: rel,
                line: 1,
                content: "missing #![warn(missing_docs)]".to_string(),
                help: "add `#![warn(missing_docs)]` at the top of the crate".to_string(),
                chain: Vec::new(),
            });
        }
    }
    out
}

/// `#![level(lint)]` as real tokens: `#` `!` `[` level `(` lint `)` `]`.
fn has_inner_lint_attr(toks: &[Tok], level: &str, lint: &str) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_open('[')
            && w[3].is_ident(level)
            && w[4].is_open('(')
            && w[5].is_ident(lint)
            && w[6].is_close(')')
            && w[7].is_close(']')
    })
}

// ---- allowlists ------------------------------------------------------

/// Filter violations through `crates/xtask/allow/<rule>.allow`.
///
/// Entry format: `path: trimmed-line-content` (content matching survives
/// line renumbering). `#` comments and blank lines are skipped. Every
/// entry must match at least one raw violation, otherwise it is reported
/// as stale.
fn apply_allowlist(root: &Path, rule: &str, raw: Vec<Violation>) -> (Vec<Violation>, Vec<String>) {
    let allow_path = root
        .join("crates/xtask/allow")
        .join(format!("{rule}.allow"));
    let text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let mut errors = Vec::new();
    let mut entries: Vec<(String, String)> = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once(": ") {
            Some((p, c)) => entries.push((p.trim().to_string(), c.trim().to_string())),
            None => errors.push(format!(
                "{}:{}: malformed allowlist entry (want `path: content`)",
                rel_path(root, &allow_path),
                n + 1
            )),
        }
    }
    let mut used: BTreeSet<usize> = BTreeSet::new();
    let kept: Vec<Violation> = raw
        .into_iter()
        .filter(|v| {
            for (k, (p, c)) in entries.iter().enumerate() {
                if *p == v.path && *c == v.content {
                    used.insert(k);
                    return false;
                }
            }
            true
        })
        .collect();
    for (k, (p, c)) in entries.iter().enumerate() {
        if !used.contains(&k) {
            errors.push(format!(
                "{}: stale allowlist entry `{p}: {c}` (no matching violation — remove it)",
                rel_path(root, &allow_path),
            ));
        }
    }
    (kept, errors)
}

// ---- self-test -------------------------------------------------------

fn fixture_source(root: &Path, name: &str, errors: &mut Vec<String>) -> Option<String> {
    let fixture = root.join("crates/xtask/fixtures").join(name);
    match std::fs::read_to_string(&fixture) {
        Ok(s) => Some(s),
        Err(e) => {
            errors.push(format!("fixture {}: {e}", fixture.display()));
            None
        }
    }
}

fn marker_lines(src: &str) -> BTreeSet<usize> {
    src.lines()
        .enumerate()
        .filter(|(_, l)| l.contains("//~"))
        .map(|(i, _)| i + 1)
        .collect()
}

fn diff_lines(
    rule: &str,
    expect: &BTreeSet<usize>,
    hits: &BTreeSet<usize>,
    errors: &mut Vec<String>,
) {
    for n in expect.difference(hits) {
        errors.push(format!(
            "self-test {rule}: fixture line {n} should fire but did not"
        ));
    }
    for n in hits.difference(expect) {
        errors.push(format!(
            "self-test {rule}: fixture line {n} fired unexpectedly"
        ));
    }
}

/// Run each rule against its fixture, where every line carrying a `//~`
/// marker must be flagged and every line without one must not. Proves
/// the rules fire (and that the lexer suppresses lookalikes inside
/// strings and comments). The `panic_reach` fixture is a miniature
/// workspace under `fixtures/panic_reach_repo/` whose markers prove
/// chains fire through transitive calls — and that the `?`-propagating
/// twins of each seeded bug do *not* fire.
pub fn self_test(root: &Path) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    for rule in [
        "no_panic",
        "narrowing_cast",
        "float_eq",
        "no_raw_counter",
        "no_unchecked_io",
        "atomics_order",
        "determinism",
        "no_raw_sleep",
    ] {
        let Some(src) = fixture_source(root, &format!("{rule}.rs.fixture"), &mut errors) else {
            continue;
        };
        let expect = marker_lines(&src);
        if expect.is_empty() {
            errors.push(format!("fixture for `{rule}` has no //~ markers"));
        }
        let (sf, _) = SourceFile::new(format!("{rule}.rs.fixture"), String::new(), &src);
        let hits: BTreeSet<usize> = match rule {
            "no_panic" => to_lines(scan_no_panic(&sf)),
            "narrowing_cast" => to_lines(scan_narrowing_cast(&sf)),
            "no_raw_counter" => to_lines(scan_no_raw_counter(&sf)),
            "no_unchecked_io" => to_lines(scan_no_unchecked_io(&sf)),
            "no_raw_sleep" => to_lines(scan_no_raw_sleep(&sf)),
            "float_eq" => to_lines(scan_float_eq(&sf)),
            "atomics_order" => passes::scan_atomics(&sf).into_iter().collect(),
            _ => passes::scan_determinism(&sf).into_iter().collect(),
        };
        diff_lines(rule, &expect, &hits, &mut errors);
    }
    self_test_crate_lints(root, &mut errors);
    self_test_panic_reach(root, &mut errors);
    self_test_json(&mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn to_lines(hits: Vec<(usize, String)>) -> BTreeSet<usize> {
    hits.into_iter().map(|(n, _)| n).collect()
}

/// crate_lints self-test: scan a fixture "repo" containing one crate
/// missing both attributes (with comment/string lookalikes that must
/// not satisfy the check) and one compliant shim crate.
fn self_test_crate_lints(root: &Path, errors: &mut Vec<String>) {
    let fixture_root = root.join("crates/xtask/fixtures/crate_lints_repo");
    let mut fixture_errors = Vec::new();
    let hits = scan_crate_lints(&fixture_root, &mut fixture_errors);
    errors.extend(
        fixture_errors
            .into_iter()
            .map(|e| format!("self-test crate_lints: {e}")),
    );
    let bad: Vec<&Violation> = hits
        .iter()
        .filter(|v| v.path == "crates/badcrate/src/lib.rs")
        .collect();
    if bad.len() != 2 {
        errors.push(format!(
            "self-test crate_lints: expected 2 violations for badcrate, got {}",
            bad.len()
        ));
    }
    if hits.len() != bad.len() {
        errors.push(format!(
            "self-test crate_lints: compliant shim crate fired: {:?}",
            hits.iter()
                .filter(|v| v.path != "crates/badcrate/src/lib.rs")
                .map(|v| &v.path)
                .collect::<Vec<_>>()
        ));
    }
}

/// panic_reach self-test: build the call graph over the miniature
/// workspace in `fixtures/panic_reach_repo/` and compare (path, line)
/// hits against the `//~` markers across all of its files. Also asserts
/// that at least one violation carries a transitive chain (seed →
/// helper → sink) naming the seed entry point.
fn self_test_panic_reach(root: &Path, errors: &mut Vec<String>) {
    let fixture_root = root.join("crates/xtask/fixtures/panic_reach_repo");
    let mut build_errors = Vec::new();
    let dirs = passes::graph_crate_dirs(&fixture_root, &mut build_errors);
    let (g, graph_errors) = crate::callgraph::Graph::build(&fixture_root, &dirs);
    build_errors.extend(graph_errors);
    errors.extend(
        build_errors
            .into_iter()
            .map(|e| format!("self-test panic_reach: {e}")),
    );
    let hits: BTreeSet<(String, usize)> = passes::reach_violations(&g)
        .iter()
        .map(|v| (v.path.clone(), v.line))
        .collect();
    // expected = all //~ markers across the fixture workspace
    let mut expect: BTreeSet<(String, usize)> = BTreeSet::new();
    for sf in &g.files {
        for (i, l) in sf.raw_lines.iter().enumerate() {
            if l.contains("//~") {
                expect.insert((sf.path.clone(), i + 1));
            }
        }
    }
    if expect.is_empty() {
        errors.push("self-test panic_reach: fixture repo has no //~ markers".to_string());
    }
    for (p, n) in expect.difference(&hits) {
        errors.push(format!(
            "self-test panic_reach: {p}:{n} should fire but did not"
        ));
    }
    for (p, n) in hits.difference(&expect) {
        errors.push(format!("self-test panic_reach: {p}:{n} fired unexpectedly"));
    }
    // chains must actually walk the graph: some violation is transitive
    // (chain length >= 2) and roots at the seeded entry point.
    let chains: Vec<Vec<String>> = passes::reach_violations(&g)
        .into_iter()
        .map(|v| v.chain)
        .collect();
    if !chains
        .iter()
        .any(|c| c.len() >= 2 && c[0].contains("open_mpoint"))
    {
        errors.push(
            "self-test panic_reach: no transitive chain rooted at open_mpoint was reported"
                .to_string(),
        );
    }
}

/// JSON self-test: render a non-trivial report, parse it back with the
/// in-crate parser, and require field-level agreement with the text
/// mode's inputs.
fn self_test_json(errors: &mut Vec<String>) {
    let violations = vec![Violation {
        rule: "panic_reach",
        path: "crates/demo/src/lib.rs".to_string(),
        line: 3,
        content: "let x = v[i];".to_string(),
        help: "indexing \"reachable\"\nfrom decode".to_string(),
        chain: vec!["open_mpoint (crates/demo/src/lib.rs:1)".to_string()],
    }];
    let errs = vec!["stale entry".to_string()];
    let rendered = crate::json::render(&violations, &errs);
    match crate::json::parse(&rendered) {
        Err(e) => errors.push(format!("self-test json: emitted JSON failed to parse: {e}")),
        Ok(doc) => {
            let v0 = doc
                .get("violations")
                .and_then(|v| v.items())
                .and_then(<[crate::json::Value]>::first);
            let ok = v0.is_some_and(|v| {
                v.get("rule").and_then(crate::json::Value::as_str) == Some("panic_reach")
                    && v.get("line").and_then(crate::json::Value::as_num) == Some(3.0)
                    && v.get("help").and_then(crate::json::Value::as_str)
                        == Some("indexing \"reachable\"\nfrom decode")
                    && v.get("chain")
                        .and_then(|c| c.items())
                        .is_some_and(|c| c.len() == 1)
            }) && doc
                .get("errors")
                .and_then(|e| e.items())
                .is_some_and(|e| e.len() == 1);
            if !ok {
                errors.push(
                    "self-test json: parsed JSON disagrees with the rendered report".to_string(),
                );
            }
        }
    }
}
