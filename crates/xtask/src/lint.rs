//! The repo-specific lint rules.
//!
//! Six rules, each with an allowlist file under `crates/xtask/allow/`
//! and a fixture under `crates/xtask/fixtures/` proving it fires:
//!
//! | rule             | scope                              | forbids |
//! |------------------|------------------------------------|---------|
//! | `no_panic`       | mob-storage, mob-core (non-test)   | `unwrap()`, `expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `narrowing_cast` | mob-storage, mob-core (non-test)   | `as u8/u16/u32/i8/i16/i32` (use `checked::count_u32` / `try_from`) |
//! | `float_eq`       | base, spatial, core, storage (non-test, minus `real.rs`) | `==`/`!=` against raw `f64` (`.get()` or float literals) |
//! | `crate_lints`    | every `crates/*/src/lib.rs`        | missing `#![forbid(unsafe_code)]` (+ `#![warn(missing_docs)]` outside shims) |
//! | `no_raw_counter` | every `crates/*/src` except `obs` and shims (non-test) | bare `AtomicU64` / `Cell<u64>` counters (count through `mob-obs` instead) |
//! | `no_unchecked_io` | every `crates/*/src` except `storage/src/io.rs` (non-test) | bare `fs::write(` / `File::create(` (go through `StoreIo` so writes are synced, atomic and fault-injectable) |
//!
//! All rules operate on *masked* source (comments/strings blanked, see
//! [`crate::mask`]) and skip `#[cfg(test)]` regions, so doc examples and
//! test code stay idiomatic.

use crate::mask::mask_source;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// A single lint hit.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule identifier (`no_panic`, …).
    pub rule: &'static str,
    /// File, repo-relative with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Trimmed source line (also the allowlist key).
    pub content: String,
    /// What to do instead.
    pub help: &'static str,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.content, self.help
        )
    }
}

/// Names of all rules (used by the self-test driver).
pub const RULES: [&str; 6] = [
    "no_panic",
    "narrowing_cast",
    "float_eq",
    "crate_lints",
    "no_raw_counter",
    "no_unchecked_io",
];

const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const NARROWING_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

const COUNTER_TOKENS: [&str; 2] = ["AtomicU64", "Cell<u64>"];

const UNCHECKED_IO_TOKENS: [&str; 2] = ["fs::write(", "File::create("];

/// Run every rule over the repo rooted at `root`. Returns the surviving
/// violations and any allowlist errors (unused entries, unreadable
/// files).
pub fn run_all(root: &Path) -> (Vec<Violation>, Vec<String>) {
    let mut violations = Vec::new();
    let mut errors = Vec::new();

    for rule in RULES {
        let raw = run_rule(root, rule, &mut errors);
        let (kept, allow_errors) = apply_allowlist(root, rule, raw);
        violations.extend(kept);
        errors.extend(allow_errors);
    }
    (violations, errors)
}

/// Run one rule (no allowlist filtering) over the repo.
pub fn run_rule(root: &Path, rule: &'static str, errors: &mut Vec<String>) -> Vec<Violation> {
    match rule {
        "no_panic" | "narrowing_cast" => {
            let scope = ["crates/storage/src", "crates/core/src"];
            scan_scope(root, rule, &scope, errors, |src| match rule {
                "no_panic" => scan_no_panic(src),
                _ => scan_narrowing_cast(src),
            })
        }
        "float_eq" => {
            let scope = [
                "crates/base/src",
                "crates/spatial/src",
                "crates/core/src",
                "crates/storage/src",
            ];
            let mut v = scan_scope(root, rule, &scope, errors, scan_float_eq);
            // `Real` (base/src/real.rs) is the designated epsilon module:
            // the one place raw float comparison is the point.
            v.retain(|x| x.path != "crates/base/src/real.rs");
            v
        }
        "crate_lints" => scan_crate_lints(root, errors),
        "no_raw_counter" => {
            let owned = counter_scope(root, errors);
            let scope: Vec<&str> = owned.iter().map(String::as_str).collect();
            scan_scope(root, rule, &scope, errors, scan_no_raw_counter)
        }
        "no_unchecked_io" => {
            let owned = all_crate_src_dirs(root, errors);
            let scope: Vec<&str> = owned.iter().map(String::as_str).collect();
            let mut v = scan_scope(root, rule, &scope, errors, scan_no_unchecked_io);
            // `storage::io` is the one sanctioned raw-filesystem site: it
            // *implements* the checked I/O everything else must use.
            v.retain(|x| x.path != "crates/storage/src/io.rs");
            v
        }
        _ => {
            errors.push(format!("unknown rule `{rule}`"));
            Vec::new()
        }
    }
}

// ---- file walking ----------------------------------------------------

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>, errors: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", dir.display()));
            return;
        }
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            rust_files(&p, out, errors);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
    out.sort();
}

fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scan all `.rs` files under the scope dirs with a per-file matcher
/// that returns `(line_no, content, help)` triples against masked,
/// test-stripped source.
fn scan_scope(
    root: &Path,
    rule: &'static str,
    scope: &[&str],
    errors: &mut Vec<String>,
    matcher: impl Fn(&MaskedFile) -> Vec<(usize, String, &'static str)>,
) -> Vec<Violation> {
    let mut files = Vec::new();
    for dir in scope {
        rust_files(&root.join(dir), &mut files, errors);
    }
    let mut out = Vec::new();
    for file in files {
        let src = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(e) => {
                errors.push(format!("read {}: {e}", file.display()));
                continue;
            }
        };
        let masked = MaskedFile::new(&src);
        for (line, content, help) in matcher(&masked) {
            out.push(Violation {
                rule,
                path: rel_path(root, &file),
                line,
                content,
                help,
            });
        }
    }
    out
}

/// A masked source file with `#[cfg(test)]` regions identified.
pub struct MaskedFile {
    /// Masked lines (same count/length as the original).
    pub lines: Vec<String>,
    /// Original (unmasked) lines, for reporting content.
    pub raw_lines: Vec<String>,
    /// `in_test[i]` is true if line `i` (0-based) is inside a
    /// `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl MaskedFile {
    /// Mask `src` and mark its test regions.
    pub fn new(src: &str) -> MaskedFile {
        let masked = mask_source(src);
        let lines: Vec<String> = masked.lines().map(str::to_string).collect();
        let raw_lines: Vec<String> = src.lines().map(str::to_string).collect();
        let mut in_test = vec![false; lines.len()];
        let mut depth = 0usize; // brace depth inside a test region
        let mut pending = false; // saw #[cfg(test)], waiting for the `{`
        for (i, line) in lines.iter().enumerate() {
            let trimmed = line.trim();
            if depth == 0 && !pending && is_test_attr(trimmed) {
                pending = true;
            }
            if pending || depth > 0 {
                in_test[i] = true;
            }
            if pending || depth > 0 {
                for b in line.bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            pending = false;
                        }
                        b'}' => {
                            depth = depth.saturating_sub(1);
                        }
                        _ => {}
                    }
                }
                if depth == 0 && !pending {
                    // Region closed on this line.
                }
            }
        }
        MaskedFile {
            lines,
            raw_lines,
            in_test,
        }
    }

    /// Iterate `(1-based line, masked line, raw line)` over non-test lines.
    fn code_lines(&self) -> impl Iterator<Item = (usize, &str, &str)> {
        self.lines
            .iter()
            .zip(self.raw_lines.iter())
            .enumerate()
            .filter(move |(i, _)| !self.in_test[*i])
            .map(|(i, (m, r))| (i + 1, m.as_str(), r.as_str()))
    }
}

fn is_test_attr(trimmed: &str) -> bool {
    (trimmed.starts_with("#[cfg(") && trimmed.contains("test")) || trimmed.starts_with("#[test]")
}

// ---- rule: no_panic --------------------------------------------------

/// Match the panic tokens on masked non-test lines.
pub fn scan_no_panic(file: &MaskedFile) -> Vec<(usize, String, &'static str)> {
    let mut out = Vec::new();
    for (n, masked, raw) in file.code_lines() {
        if PANIC_TOKENS.iter().any(|t| masked.contains(t)) {
            out.push((
                n,
                raw.trim().to_string(),
                "return a DecodeError/InvariantViolation instead of panicking \
                 (see crates/xtask/allow/no_panic.allow for the sanctioned exceptions)",
            ));
        }
    }
    out
}

// ---- rule: narrowing_cast --------------------------------------------

/// Match narrowing `as` casts (` as u32` etc.) on masked non-test lines.
pub fn scan_narrowing_cast(file: &MaskedFile) -> Vec<(usize, String, &'static str)> {
    let mut out = Vec::new();
    for (n, masked, raw) in file.code_lines() {
        if has_narrowing_cast(masked) {
            out.push((
                n,
                raw.trim().to_string(),
                "use checked::count_u32 / u32::try_from — a silently truncated \
                 count corrupts the record layout",
            ));
        }
    }
    out
}

fn has_narrowing_cast(line: &str) -> bool {
    let mut rest = line;
    while let Some(k) = rest.find(" as ") {
        let after = &rest[k + 4..];
        let target: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        if NARROWING_TARGETS.contains(&target.as_str()) {
            // `as` must follow an expression, not an identifier fragment.
            return true;
        }
        rest = after;
    }
    false
}

// ---- rule: no_raw_counter --------------------------------------------

/// `crates/*/src` for every crate except `obs` (where raw atomics *are*
/// the registry) and the `shim-*` crates (vendored API stand-ins).
fn counter_scope(root: &Path, errors: &mut Vec<String>) -> Vec<String> {
    let crates_dir = root.join("crates");
    let entries = match std::fs::read_dir(&crates_dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", crates_dir.display()));
            return Vec::new();
        }
    };
    let mut dirs: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().to_string();
            if name == "obs" || name.starts_with("shim-") || !e.path().join("src").is_dir() {
                None
            } else {
                Some(format!("crates/{name}/src"))
            }
        })
        .collect();
    dirs.sort();
    dirs
}

/// Match bare counter primitives (`AtomicU64`, `Cell<u64>`) on masked
/// non-test lines. The preceding character must not be part of an
/// identifier, so `RefCell<u64>` (interior mutability, not a counter)
/// and names merely containing the token do not fire.
pub fn scan_no_raw_counter(file: &MaskedFile) -> Vec<(usize, String, &'static str)> {
    let mut out = Vec::new();
    for (n, masked, raw) in file.code_lines() {
        if COUNTER_TOKENS.iter().any(|t| has_bare_token(masked, t)) {
            out.push((
                n,
                raw.trim().to_string(),
                "count through mob-obs (metric!/Counter/LocalCounter/SharedCounter) \
                 so the total lands in the registry and shows up in EXPLAIN",
            ));
        }
    }
    out
}

/// `token` occurs in `line` not immediately preceded by an identifier
/// character.
fn has_bare_token(line: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(k) = line[start..].find(token) {
        let at = start + k;
        let prev = line[..at].chars().next_back();
        if !prev.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            return true;
        }
        start = at + token.len();
    }
    false
}

// ---- rule: no_unchecked_io -------------------------------------------

/// `crates/*/src` for every crate — including shims and `obs`; nothing
/// but `storage::io` (filtered by the caller) may write files raw.
fn all_crate_src_dirs(root: &Path, errors: &mut Vec<String>) -> Vec<String> {
    let crates_dir = root.join("crates");
    let entries = match std::fs::read_dir(&crates_dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", crates_dir.display()));
            return Vec::new();
        }
    };
    let mut dirs: Vec<String> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().to_string();
            e.path()
                .join("src")
                .is_dir()
                .then(|| format!("crates/{name}/src"))
        })
        .collect();
    dirs.sort();
    dirs
}

/// Match bare filesystem writes (`fs::write(`, `File::create(`) on
/// masked non-test lines. Both tokens are suffix-matched, so
/// `std::fs::write(` and `std::fs::File::create(` fire too.
pub fn scan_no_unchecked_io(file: &MaskedFile) -> Vec<(usize, String, &'static str)> {
    let mut out = Vec::new();
    for (n, masked, raw) in file.code_lines() {
        if UNCHECKED_IO_TOKENS.iter().any(|t| masked.contains(t)) {
            out.push((
                n,
                raw.trim().to_string(),
                "write through StoreIo (FsIo for real disks) — bare fs writes \
                 skip fsync, atomic rename and fault injection; \
                 storage/src/io.rs is the only sanctioned raw site",
            ));
        }
    }
    out
}

// ---- rule: float_eq --------------------------------------------------

/// Match `==`/`!=` where one side is a raw float (`.get()` call or a
/// float literal) on masked non-test lines.
pub fn scan_float_eq(file: &MaskedFile) -> Vec<(usize, String, &'static str)> {
    let mut out = Vec::new();
    for (n, masked, raw) in file.code_lines() {
        if has_float_eq(masked) {
            out.push((
                n,
                raw.trim().to_string(),
                "compare through Real (eq/eps helpers in base/src/real.rs) — \
                 raw f64 == is exact-representation equality",
            ));
        }
    }
    out
}

fn has_float_eq(line: &str) -> bool {
    let b = line.as_bytes();
    let mut i = 0;
    while i + 1 < b.len() {
        let op = &b[i..i + 2];
        let is_eq = op == b"==";
        let is_ne = op == b"!=" && (i + 2 >= b.len() || b[i + 2] != b'=');
        if (is_eq
            && (i == 0
                || b[i - 1] != b'!'
                    && b[i - 1] != b'<'
                    && b[i - 1] != b'>'
                    && b[i - 1] != b'='
                    && b[i - 1] != b'+'))
            || is_ne
        {
            let lhs = line[..i].trim_end();
            let rhs = line[i + 2..].trim_start();
            if is_floatish_suffix(lhs) || is_floatish_prefix(rhs) {
                return true;
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    false
}

/// `… x.get()` or `… 0.5` immediately before the operator.
fn is_floatish_suffix(lhs: &str) -> bool {
    if lhs.ends_with(".get()") {
        return true;
    }
    // Trailing float literal: digits '.' digits (possibly with _).
    let tail: String = lhs
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    is_float_literal(&tail)
}

/// `x.get() …` or `0.5 …` immediately after the operator.
fn is_floatish_prefix(rhs: &str) -> bool {
    let head: String = rhs
        .chars()
        .take_while(|c| {
            c.is_ascii_alphanumeric() || *c == '.' || *c == '_' || *c == '(' || *c == ')'
        })
        .collect();
    if head.contains(".get()") {
        return true;
    }
    let lit: String = rhs
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
        .collect();
    is_float_literal(&lit)
}

fn is_float_literal(s: &str) -> bool {
    let s = s.trim_matches('_');
    let Some(dot) = s.find('.') else {
        return false;
    };
    let (a, b) = (&s[..dot], &s[dot + 1..]);
    !a.is_empty()
        && !b.is_empty()
        && a.chars().all(|c| c.is_ascii_digit() || c == '_')
        && b.chars().all(|c| c.is_ascii_digit() || c == '_')
}

// ---- rule: crate_lints -----------------------------------------------

/// Every `crates/*/src/lib.rs` must carry `#![forbid(unsafe_code)]`;
/// non-shim libraries must also carry `#![warn(missing_docs)]`.
fn scan_crate_lints(root: &Path, errors: &mut Vec<String>) -> Vec<Violation> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    let entries = match std::fs::read_dir(&crates_dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", crates_dir.display()));
            return out;
        }
    };
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs {
        let lib = dir.join("src").join("lib.rs");
        if !lib.is_file() {
            continue; // bin-only crate (e.g. xtask itself)
        }
        let name = dir.file_name().map(|s| s.to_string_lossy().to_string());
        let is_shim = name.as_deref().is_some_and(|n| n.starts_with("shim-"));
        let src = match std::fs::read_to_string(&lib) {
            Ok(s) => s,
            Err(e) => {
                errors.push(format!("read {}: {e}", lib.display()));
                continue;
            }
        };
        let rel = rel_path(root, &lib);
        if !src.contains("#![forbid(unsafe_code)]") {
            out.push(Violation {
                rule: "crate_lints",
                path: rel.clone(),
                line: 1,
                content: "missing #![forbid(unsafe_code)]".to_string(),
                help: "add `#![forbid(unsafe_code)]` at the top of the crate",
            });
        }
        if !is_shim && !src.contains("#![warn(missing_docs)]") {
            out.push(Violation {
                rule: "crate_lints",
                path: rel,
                line: 1,
                content: "missing #![warn(missing_docs)]".to_string(),
                help: "add `#![warn(missing_docs)]` at the top of the crate",
            });
        }
    }
    out
}

// ---- allowlists ------------------------------------------------------

/// Filter violations through `crates/xtask/allow/<rule>.allow`.
///
/// Entry format: `path: trimmed-line-content` (content matching survives
/// line renumbering). `#` comments and blank lines are skipped. Every
/// entry must match at least one raw violation, otherwise it is reported
/// as stale.
fn apply_allowlist(root: &Path, rule: &str, raw: Vec<Violation>) -> (Vec<Violation>, Vec<String>) {
    let allow_path = root
        .join("crates/xtask/allow")
        .join(format!("{rule}.allow"));
    let text = std::fs::read_to_string(&allow_path).unwrap_or_default();
    let mut errors = Vec::new();
    let mut entries: Vec<(String, String)> = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line.split_once(": ") {
            Some((p, c)) => entries.push((p.trim().to_string(), c.trim().to_string())),
            None => errors.push(format!(
                "{}:{}: malformed allowlist entry (want `path: content`)",
                rel_path(root, &allow_path),
                n + 1
            )),
        }
    }
    let mut used: BTreeSet<usize> = BTreeSet::new();
    let kept: Vec<Violation> = raw
        .into_iter()
        .filter(|v| {
            for (k, (p, c)) in entries.iter().enumerate() {
                if *p == v.path && *c == v.content {
                    used.insert(k);
                    return false;
                }
            }
            true
        })
        .collect();
    for (k, (p, c)) in entries.iter().enumerate() {
        if !used.contains(&k) {
            errors.push(format!(
                "{}: stale allowlist entry `{p}: {c}` (no matching violation — remove it)",
                rel_path(root, &allow_path),
            ));
        }
    }
    (kept, errors)
}

// ---- self-test -------------------------------------------------------

/// Run each line-based rule against its fixture file, where every line
/// carrying a `//~` marker must be flagged and every line without one
/// must not. Proves the rules fire (and that masking suppresses
/// lookalikes inside strings and comments).
pub fn self_test(root: &Path) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    for rule in [
        "no_panic",
        "narrowing_cast",
        "float_eq",
        "no_raw_counter",
        "no_unchecked_io",
    ] {
        let fixture = root
            .join("crates/xtask/fixtures")
            .join(format!("{rule}.rs.fixture"));
        let src = match std::fs::read_to_string(&fixture) {
            Ok(s) => s,
            Err(e) => {
                errors.push(format!("fixture {}: {e}", fixture.display()));
                continue;
            }
        };
        let expect: BTreeSet<usize> = src
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains("//~"))
            .map(|(i, _)| i + 1)
            .collect();
        if expect.is_empty() {
            errors.push(format!("fixture for `{rule}` has no //~ markers"));
        }
        let file = MaskedFile::new(&src);
        let hits: BTreeSet<usize> = match rule {
            "no_panic" => scan_no_panic(&file),
            "narrowing_cast" => scan_narrowing_cast(&file),
            "no_raw_counter" => scan_no_raw_counter(&file),
            "no_unchecked_io" => scan_no_unchecked_io(&file),
            _ => scan_float_eq(&file),
        }
        .into_iter()
        .map(|(n, _, _)| n)
        .collect();
        for n in expect.difference(&hits) {
            errors.push(format!(
                "self-test {rule}: fixture line {n} should fire but did not"
            ));
        }
        for n in hits.difference(&expect) {
            errors.push(format!(
                "self-test {rule}: fixture line {n} fired unexpectedly"
            ));
        }
    }
    // crate_lints self-test: scan a fixture "repo" containing one crate
    // missing both attributes and one compliant shim crate. Exactly the
    // two `badcrate` violations must fire.
    let fixture_root = root.join("crates/xtask/fixtures/crate_lints_repo");
    let mut fixture_errors = Vec::new();
    let hits = scan_crate_lints(&fixture_root, &mut fixture_errors);
    errors.extend(
        fixture_errors
            .into_iter()
            .map(|e| format!("self-test crate_lints: {e}")),
    );
    let bad: Vec<&Violation> = hits
        .iter()
        .filter(|v| v.path == "crates/badcrate/src/lib.rs")
        .collect();
    if bad.len() != 2 {
        errors.push(format!(
            "self-test crate_lints: expected 2 violations for badcrate, got {}",
            bad.len()
        ));
    }
    if hits.len() != bad.len() {
        errors.push(format!(
            "self-test crate_lints: compliant shim crate fired: {:?}",
            hits.iter()
                .filter(|v| v.path != "crates/badcrate/src/lib.rs")
                .map(|v| &v.path)
                .collect::<Vec<_>>()
        ));
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}
