//! A dependency-free Rust lexer for the lint engine.
//!
//! Produces a flat token stream with 1-based line numbers. Comments and
//! whitespace are dropped (they can never be code), but every token that
//! *can* participate in a lint match survives with its exact text:
//! identifiers (including keywords), lifetimes, numeric/string/char
//! literals, multi-character operators, and the six delimiters.
//!
//! The tricky corners the old masked-line scanner approximated are
//! handled exactly here:
//!
//! * **raw strings** `r"…"` / `r#"…"#` / `br##"…"##` / `c"…"` — hash
//!   depth respected, interior never tokenized;
//! * **nested block comments** `/* /* */ */` — depth counted;
//! * **lifetime vs char literal** — `'a` is a lifetime, `'a'` is a
//!   char, `'\u{1F600}'` is a char, `b'x'` is a byte char;
//! * **multi-char operators** — `==`, `!=`, `::`, `->`, `..=` etc. are
//!   single tokens, so `a == b` can never be confused with `a = = b`.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `unwrap`, `u32`, …).
    Ident,
    /// Lifetime (`'a`, `'static`) — quote included in the text.
    Lifetime,
    /// Numeric literal (`0x1F`, `1_000`, `2.5e-3f64`).
    Num,
    /// Any string-ish literal (plain, raw, byte, C) — text is the
    /// opener only (`"`, `r#"`, `b"`, …); the interior is discarded.
    Str,
    /// Char or byte-char literal — text is `'…'` verbatim.
    Char,
    /// Operator / punctuation (possibly multi-char: `==`, `::`, `->`).
    Punct,
    /// Opening delimiter: `(`, `[` or `{`.
    Open,
    /// Closing delimiter: `)`, `]` or `}`.
    Close,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: Kind,
    /// Exact source text (see [`Kind`] for the literal conventions).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Is this a punct with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == Kind::Punct && self.text == s
    }

    /// Is this the opening delimiter `c`?
    pub fn is_open(&self, c: char) -> bool {
        self.kind == Kind::Open && self.text.starts_with(c)
    }

    /// Is this the closing delimiter `c`?
    pub fn is_close(&self, c: char) -> bool {
        self.kind == Kind::Close && self.text.starts_with(c)
    }
}

/// Multi-char operators, longest first so the match is greedy.
const OPERATORS: [&str; 25] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..", "'",
];

/// Rust keywords that can never be a call/index receiver. Used by the
/// call-graph scanner to keep `let [a, b] = …` patterns from looking
/// like index expressions and `if (…)` from looking like a call.
pub const KEYWORDS: [&str; 34] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
];

/// Is `s` a Rust keyword (per [`KEYWORDS`])?
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Lex `src` into a token stream. Never fails: unknown bytes become
/// single-char puncts, unterminated literals run to end of input.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        b: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    b: &'s [u8],
    src: &'s str,
    i: usize,
    line: usize,
    out: Vec<Tok>,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.i),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                b'(' | b'[' | b'{' => self.delim(Kind::Open),
                b')' | b']' | b'}' => self.delim(Kind::Close),
                c if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => self.ident_or_prefixed(),
                _ => self.punct(),
            }
        }
        self.out
    }

    fn peek(&self, k: usize) -> Option<u8> {
        self.b.get(self.i + k).copied()
    }

    fn push(&mut self, kind: Kind, text: String, line: usize) {
        self.out.push(Tok { kind, text, line });
    }

    fn bump_lines(&mut self, from: usize, to: usize) {
        self.line += self.b[from..to].iter().filter(|&&b| b == b'\n').count();
    }

    fn line_comment(&mut self) {
        let end = self.src[self.i..]
            .find('\n')
            .map_or(self.b.len(), |k| self.i + k);
        self.i = end; // the '\n' itself is handled by the main loop
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let mut depth = 1usize;
        let mut j = self.i + 2;
        while j < self.b.len() && depth > 0 {
            if self.b[j] == b'/' && self.b.get(j + 1) == Some(&b'*') {
                depth += 1;
                j += 2;
            } else if self.b[j] == b'*' && self.b.get(j + 1) == Some(&b'/') {
                depth -= 1;
                j += 2;
            } else {
                j += 1;
            }
        }
        self.bump_lines(start, j);
        self.i = j;
    }

    /// A plain/byte/C string starting with optional hashes already
    /// consumed by the caller logic: `opener_start` points at the first
    /// byte of the whole literal (the prefix if any). `self.i` must be
    /// at the `"`.
    fn string(&mut self, opener_start: usize) {
        let line = self.line;
        let opener = self.src[opener_start..=self.i].to_string();
        let mut j = self.i + 1;
        while j < self.b.len() {
            match self.b[j] {
                b'\\' => j += 2,
                b'"' => break,
                _ => j += 1,
            }
        }
        let end = j.min(self.b.len());
        self.bump_lines(self.i, end);
        self.push(Kind::Str, opener, line);
        self.i = if end < self.b.len() { end + 1 } else { end };
    }

    /// Raw string: `self.i` at the `r` (prefix byte(s) before it are
    /// part of `opener_start`). Consumes hashes, quote, interior,
    /// closing quote + hashes.
    fn raw_string(&mut self, opener_start: usize) {
        let line = self.line;
        // skip to the first '#' or '"' after the r
        let mut j = self.i + 1;
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        debug_assert_eq!(self.b.get(j), Some(&b'"'));
        let opener = self.src[opener_start..=j.min(self.b.len() - 1)].to_string();
        j += 1;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        let end = find_subslice(self.b, j, &closer).map_or(self.b.len(), |k| k + closer.len());
        self.bump_lines(opener_start, end);
        self.push(Kind::Str, opener, line);
        self.i = end;
    }

    /// `'` — lifetime or char literal.
    fn quote(&mut self) {
        let line = self.line;
        let i = self.i;
        // Escaped char: '\n', '\'', '\u{…}' — scan to the closing quote.
        if self.peek(1) == Some(b'\\') {
            let mut j = i + 2;
            // skip the escaped char itself so '\'' works
            j += 1;
            while j < self.b.len() && self.b[j] != b'\'' && self.b[j] != b'\n' && j - i < 16 {
                j += 1;
            }
            if self.b.get(j) == Some(&b'\'') {
                self.push(Kind::Char, self.src[i..=j].to_string(), line);
                self.i = j + 1;
                return;
            }
            // malformed; emit the quote as punct and move on
            self.push(Kind::Punct, "'".to_string(), line);
            self.i = i + 1;
            return;
        }
        // Identifier-ish after the quote: lifetime unless closed by '.
        let after = self.peek(1);
        if after.is_some_and(|c| c == b'_' || c.is_ascii_alphabetic()) {
            let mut j = i + 1;
            while j < self.b.len()
                && (self.b[j] == b'_' || self.b[j].is_ascii_alphanumeric() || self.b[j] >= 0x80)
            {
                j += 1;
            }
            if self.b.get(j) == Some(&b'\'') {
                // 'a' — a char literal (only if exactly one char long,
                // but for lint purposes the distinction is moot).
                self.push(Kind::Char, self.src[i..=j].to_string(), line);
                self.i = j + 1;
            } else {
                self.push(Kind::Lifetime, self.src[i..j].to_string(), line);
                self.i = j;
            }
            return;
        }
        // Single non-alphanumeric char: '(' , '√', ' ' …
        let mut j = i + 1;
        if j < self.b.len() {
            j += 1;
            while j < self.b.len() && (self.b[j] & 0xC0) == 0x80 {
                j += 1; // UTF-8 continuation bytes
            }
        }
        if self.b.get(j) == Some(&b'\'') {
            self.push(Kind::Char, self.src[i..=j].to_string(), line);
            self.i = j + 1;
        } else {
            self.push(Kind::Punct, "'".to_string(), line);
            self.i = i + 1;
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let i = self.i;
        let mut j = i;
        if self.b[i] == b'0' && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            j = i + 2;
            while j < self.b.len() && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
                j += 1;
            }
        } else {
            while j < self.b.len() && (self.b[j].is_ascii_digit() || self.b[j] == b'_') {
                j += 1;
            }
            // fraction: '.' followed by a digit (so `1..n` stays a range)
            if self.b.get(j) == Some(&b'.') && self.b.get(j + 1).is_some_and(u8::is_ascii_digit) {
                j += 1;
                while j < self.b.len() && (self.b[j].is_ascii_digit() || self.b[j] == b'_') {
                    j += 1;
                }
            }
            // exponent
            if matches!(self.b.get(j), Some(b'e' | b'E'))
                && (self.b.get(j + 1).is_some_and(u8::is_ascii_digit)
                    || (matches!(self.b.get(j + 1), Some(b'+' | b'-'))
                        && self.b.get(j + 2).is_some_and(u8::is_ascii_digit)))
            {
                j += 2;
                while j < self.b.len() && (self.b[j].is_ascii_digit() || self.b[j] == b'_') {
                    j += 1;
                }
            }
            // type suffix (f64, u32, usize…)
            while j < self.b.len() && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
                j += 1;
            }
        }
        self.push(Kind::Num, self.src[i..j].to_string(), line);
        self.i = j;
    }

    fn delim(&mut self, kind: Kind) {
        let line = self.line;
        let text = self.src[self.i..=self.i].to_string();
        self.push(kind, text, line);
        self.i += 1;
    }

    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        let i = self.i;
        let mut j = i;
        while j < self.b.len()
            && (self.b[j] == b'_' || self.b[j].is_ascii_alphanumeric() || self.b[j] >= 0x80)
        {
            j += 1;
        }
        let word = &self.src[i..j];
        // String prefixes: r"…", r#"…"#, b"…", br#"…"#, c"…", cr#"…"#.
        let is_str_prefix = matches!(word, "r" | "b" | "br" | "c" | "cr" | "rb");
        if is_str_prefix {
            let next = self.b.get(j).copied();
            let has_raw = word.contains('r');
            if next == Some(b'"') && !has_raw {
                // b"…" / c"…": plain-string escaping rules
                self.i = j;
                self.string(i);
                return;
            }
            if has_raw && (next == Some(b'"') || next == Some(b'#')) {
                // check hashes end in a quote before committing
                let mut k = j;
                while self.b.get(k) == Some(&b'#') {
                    k += 1;
                }
                if self.b.get(k) == Some(&b'"') {
                    self.i = j - 1; // position at the final 'r'
                    self.raw_string(i);
                    return;
                }
            }
            if word == "b" && next == Some(b'\'') {
                // byte char b'x'
                self.i = j;
                self.quote();
                // rewrite the pushed token to include the prefix
                if let Some(t) = self.out.last_mut() {
                    if t.kind == Kind::Char {
                        t.text.insert(0, 'b');
                    }
                }
                return;
            }
        }
        // raw identifier r#ident
        if word == "r" && self.b.get(j) == Some(&b'#') {
            let mut k = j + 1;
            while k < self.b.len()
                && (self.b[k] == b'_' || self.b[k].is_ascii_alphanumeric() || self.b[k] >= 0x80)
            {
                k += 1;
            }
            if k > j + 1 {
                self.push(Kind::Ident, self.src[j + 1..k].to_string(), line);
                self.i = k;
                return;
            }
        }
        self.push(Kind::Ident, word.to_string(), line);
        self.i = j;
    }

    fn punct(&mut self) {
        let line = self.line;
        for op in OPERATORS {
            if op != "'" && self.src[self.i..].starts_with(op) {
                self.push(Kind::Punct, op.to_string(), line);
                self.i += op.len();
                return;
            }
        }
        // single byte (or a single multi-byte char)
        let mut j = self.i + 1;
        while j < self.b.len() && (self.b[j] & 0xC0) == 0x80 {
            j += 1;
        }
        self.push(Kind::Punct, self.src[self.i..j].to_string(), line);
        self.i = j;
    }
}

fn find_subslice(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || from >= hay.len() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|k| from + k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_puncts() {
        let t = texts("fn f(x: u32) -> bool { x == 3 }");
        assert!(t.contains(&(Kind::Ident, "fn".into())));
        assert!(t.contains(&(Kind::Punct, "->".into())));
        assert!(t.contains(&(Kind::Punct, "==".into())));
        assert!(t.contains(&(Kind::Num, "3".into())));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn comments_are_dropped() {
        let t = texts("a // unwrap() panic!\nb /* .expect( */ c");
        let idents: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == Kind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "b", "c"]);
    }

    #[test]
    fn nested_block_comments() {
        let t = texts("a /* outer /* inner */ still comment */ b");
        let idents: Vec<&str> = t.iter().map(|(_, s)| s.as_str()).collect();
        assert_eq!(idents, vec!["a", "b"]);
    }

    #[test]
    fn block_comment_line_tracking() {
        let toks = lex("/* one\ntwo\nthree */ x");
        assert_eq!(toks[0].line, 3);
        assert_eq!(toks[0].text, "x");
    }

    #[test]
    fn plain_strings_mask_interiors() {
        let t = texts(r#"let s = "x.unwrap() \" as u32"; done"#);
        assert!(t.iter().all(|(_, s)| !s.contains("unwrap")));
        assert!(t.contains(&(Kind::Str, "\"".into())));
        assert!(t.contains(&(Kind::Ident, "done".into())));
    }

    #[test]
    fn raw_strings_all_hash_depths() {
        for src in [
            "let s = r\"panic!(1)\"; end",
            "let s = r#\"panic!(\"x\")\"#; end",
            "let s = r##\"q #\"# q\"##; end",
            "let s = br#\"panic!\"#; end",
            "let s = cr#\"panic!\"#; end",
        ] {
            let t = texts(src);
            assert!(
                t.iter().all(|(_, s)| !s.contains("panic")),
                "interior leaked in {src:?}"
            );
            assert!(
                t.contains(&(Kind::Ident, "end".into())),
                "lost the tail in {src:?}"
            );
        }
    }

    #[test]
    fn raw_string_multiline_lines() {
        let toks = lex("r#\"a\nb\nc\"# x");
        let x = toks.iter().find(|t| t.text == "x").unwrap();
        assert_eq!(x.line, 3);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let t = texts("fn f<'a>(x: &'a str, c: char) { let y = 'z'; let s = '\\''; }");
        assert!(t.contains(&(Kind::Lifetime, "'a".into())));
        assert!(t.contains(&(Kind::Char, "'z'".into())));
        assert!(t.contains(&(Kind::Char, "'\\''".into())));
        // 'a appears twice as a lifetime, never as a char
        assert!(!t.iter().any(|(k, s)| *k == Kind::Char && s == "'a'"));
    }

    #[test]
    fn static_lifetime_and_unicode_char() {
        let t = texts("let s: &'static str = x; let c = '√';");
        assert!(t.contains(&(Kind::Lifetime, "'static".into())));
        assert!(t.contains(&(Kind::Char, "'√'".into())));
    }

    #[test]
    fn byte_char_and_escapes() {
        let t = texts(r"let a = b'x'; let b = '\u{1F600}'; let c = '\n';");
        assert!(t.contains(&(Kind::Char, "b'x'".into())));
        assert!(t.contains(&(Kind::Char, r"'\u{1F600}'".into())));
        assert!(t.contains(&(Kind::Char, r"'\n'".into())));
    }

    #[test]
    fn char_literal_containing_quote_then_code() {
        // '"' must not open a string: the following unwrap is real code.
        let t = texts("let c = '\"'; x.unwrap()");
        assert!(t.contains(&(Kind::Ident, "unwrap".into())));
        assert!(t.contains(&(Kind::Char, "'\"'".into())));
    }

    #[test]
    fn numbers() {
        let t = texts("1_000 0xFF_u8 2.5e-3f64 1..n 7.");
        assert!(t.contains(&(Kind::Num, "1_000".into())));
        assert!(t.contains(&(Kind::Num, "0xFF_u8".into())));
        assert!(t.contains(&(Kind::Num, "2.5e-3f64".into())));
        // `1..n` is Num(1) Punct(..) Ident(n)
        assert!(t.contains(&(Kind::Punct, "..".into())));
        assert!(t.contains(&(Kind::Ident, "n".into())));
    }

    #[test]
    fn raw_identifier() {
        let t = texts("let r#type = 1;");
        assert!(t.contains(&(Kind::Ident, "type".into())));
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let t = texts("a::b c..=d e != f g == h i -> j");
        for op in ["::", "..=", "!=", "==", "->"] {
            assert!(t.contains(&(Kind::Punct, op.into())), "missing {op}");
        }
    }
}
