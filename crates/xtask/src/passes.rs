//! The three graph/token analysis passes introduced by mob-audit v3:
//!
//! * **`panic_reach`** — builds the workspace call graph
//!   ([`crate::callgraph`]), seeds it at every untrusted decode entry
//!   point, and reports every path to a panic sink (`panic!`-family
//!   macro, `.unwrap()`, `.expect(…)`, `[…]` indexing) plus every call
//!   that resolves to nothing known-total. The full call chain from the
//!   seed is printed with each violation.
//! * **`atomics_order`** — `Ordering::Relaxed` is permitted only inside
//!   `crates/obs/src` (monotone counters merged under a lock; see
//!   DESIGN.md §9). Everywhere else cross-thread hand-off must use the
//!   documented Acquire/Release pairs, so any `Relaxed` token outside
//!   mob-obs is a violation.
//! * **`determinism`** — `HashMap`/`HashSet` are banned in mob-rel,
//!   mob-storage and mob-core: their iteration order is randomized per
//!   process, and those crates feed query results and serialized bytes
//!   that are contractually byte-identical across runs and backends
//!   (DESIGN.md §8). `BTreeMap`/`BTreeSet` are the sanctioned
//!   replacements.

use crate::callgraph::{Call, FnItem, Graph, SourceFile};
use crate::lint::Violation;
use std::collections::{BTreeSet, VecDeque};
use std::path::{Path, PathBuf};

// ---- audited-total builtins ------------------------------------------
//
// A call that resolves to no workspace `fn` is treated as potentially
// panicking UNLESS its name appears below. Every entry is audited to be
// total — it cannot panic for any input (allocation aborts and
// compile-time-constant misuse like `chunks(0)` aside). Names that CAN
// panic on data (`split_at`, `clamp`, `drain`, `remove`, slice `swap`,
// `rotate_left`, `rem_euclid`, `pow`, …) are deliberately absent.

/// Bare method / function names audited as total (sorted, deduped).
pub const TOTAL_BUILTINS: &[&str] = &[
    "Err",
    "Ok",
    "Some",
    "abs",
    "abs_diff",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_deref",
    "as_deref_mut",
    "as_mut",
    "as_mut_slice",
    "as_os_str",
    "as_path",
    "as_ref",
    "as_slice",
    "as_str",
    "atan2",
    "binary_search",
    "binary_search_by",
    "binary_search_by_key",
    "borrow",
    "borrow_mut",
    "by_ref",
    "bytes",
    "ceil",
    "chain",
    "char_indices",
    "chars",
    "checked_add",
    "checked_div",
    "checked_mul",
    "checked_neg",
    "checked_pow",
    "checked_rem",
    "checked_shl",
    "checked_shr",
    "checked_sub",
    "chunks",
    "chunks_exact",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "compare_exchange",
    "compare_exchange_weak",
    "concat",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice_checked",
    "cos",
    "count",
    "count_ones",
    "count_zeros",
    "create_dir_all",
    "cycle",
    "dedup",
    "dedup_by",
    "dedup_by_key",
    "default",
    "deref",
    "display",
    "drop",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "eq_ignore_ascii_case",
    "err",
    "escape_debug",
    "exists",
    "exp",
    "extend",
    "extend_from_slice",
    "extension",
    "fetch_add",
    "fetch_and",
    "fetch_or",
    "fetch_sub",
    "field",
    "file_name",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "finish",
    "finish_non_exhaustive",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "flush",
    "fmt",
    "fold",
    "for_each",
    "fract",
    "from",
    "from_be_bytes",
    "from_bits",
    "from_le_bytes",
    "from_ne_bytes",
    "from_str",
    "from_str_radix",
    "fuse",
    "ge",
    "get",
    "get_mut",
    "get_or_init",
    "get_or_insert_with",
    "gt",
    "hash",
    "hypot",
    "insert",
    "inspect",
    "inspect_err",
    "into",
    "into_inner",
    "into_iter",
    "is_ascii",
    "is_ascii_hexdigit",
    "is_char_boundary",
    "is_dir",
    "is_empty",
    "is_err",
    "is_file",
    "is_finite",
    "is_infinite",
    "is_multiple_of",
    "is_nan",
    "is_none",
    "is_none_or",
    "is_ok",
    "is_sign_negative",
    "is_sign_positive",
    "is_some",
    "is_some_and",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "last_mut",
    "le",
    "leading_zeros",
    "len",
    "lines",
    "ln",
    "load",
    "lock",
    "log10",
    "log2",
    "lt",
    "make_ascii_lowercase",
    "map",
    "map_err",
    "map_or",
    "map_or_else",
    "map_while",
    "max",
    "max_by",
    "max_by_key",
    "metadata",
    "min",
    "min_by",
    "min_by_key",
    "mul_add",
    "ne",
    "next",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or",
    "or_else",
    "or_insert",
    "pad",
    "parent",
    "parse",
    "partial_cmp",
    "partition",
    "partition_point",
    "path",
    "peek",
    "peekable",
    "pop",
    "position",
    "powf",
    "powi",
    "product",
    "push",
    "push_str",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "recip",
    "remove_file",
    "rename",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "reverse",
    "rfind",
    "round",
    "rposition",
    "rsplit",
    "rsplit_once",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "scan",
    "seek",
    "set",
    "set_len",
    "signum",
    "sin",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "source",
    "split",
    "split_first",
    "split_last",
    "split_once",
    "split_terminator",
    "split_whitespace",
    "splitn",
    "sqrt",
    "starts_with",
    "step_by",
    "store",
    "strip_prefix",
    "strip_suffix",
    "sum",
    "swap_bytes",
    "sync_all",
    "sync_data",
    "take",
    "take_while",
    "tan",
    "then",
    "then_some",
    "then_with",
    "to_ascii_lowercase",
    "to_ascii_uppercase",
    "to_be",
    "to_be_bytes",
    "to_bits",
    "to_degrees",
    "to_le",
    "to_le_bytes",
    "to_lowercase",
    "to_ne_bytes",
    "to_owned",
    "to_path_buf",
    "to_radians",
    "to_string",
    "to_string_lossy",
    "to_uppercase",
    "to_vec",
    "total_cmp",
    "trailing_zeros",
    "transpose",
    "trim",
    "trim_end",
    "trim_end_matches",
    "trim_start",
    "trim_start_matches",
    "trunc",
    "truncate",
    "try_fold",
    "try_for_each",
    "try_from",
    "try_into",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "unzip",
    "values",
    "values_mut",
    "windows",
    "with_capacity",
    "with_extension",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_neg",
    "wrapping_sub",
    "write_all",
    "write_char",
    "write_fmt",
    "write_str",
    "zip",
];

/// `Type::name` / `module::name` paths audited as total, for names too
/// ambiguous (or too panic-prone under other receivers) to admit bare.
pub const TOTAL_QUALIFIED: &[&str] = &[
    "Arc::clone",
    "Arc::new",
    "AtomicBool::new",
    "AtomicU32::new",
    "AtomicU64::new",
    "AtomicUsize::new",
    "BTreeMap::new",
    "BTreeSet::new",
    "Box::new",
    "Cell::new",
    "Cow::Borrowed",
    "Cow::Owned",
    "Duration::from_micros",
    "Duration::from_millis",
    "Duration::from_nanos",
    "Duration::from_secs",
    "Instant::now",
    "Mutex::new",
    "OnceLock::new",
    "Path::new",
    "PathBuf::from",
    "PathBuf::new",
    "Rc::new",
    "RefCell::new",
    "RwLock::new",
    "String::from",
    "String::from_utf8",
    "String::from_utf8_lossy",
    "String::new",
    "String::with_capacity",
    "Vec::new",
    "Vec::with_capacity",
    "VecDeque::new",
    "array::from_fn",
    "char::from",
    "char::from_u32",
    "cmp::Reverse",
    "cmp::max",
    "cmp::min",
    "env::var",
    "fs::read_dir",
    "iter::empty",
    "iter::from_fn",
    "iter::once",
    "iter::repeat_n",
    "iter::successors",
    "mem::replace",
    "mem::size_of",
    "mem::swap",
    "mem::take",
    "str::from_utf8",
    "thread::available_parallelism",
];

// ---- scopes ----------------------------------------------------------

/// `(crate_name, src_dir)` for every workspace crate except the vendored
/// `shim-*` stand-ins and `xtask` itself.
pub fn graph_crate_dirs(root: &Path, errors: &mut Vec<String>) -> Vec<(String, PathBuf)> {
    let crates_dir = root.join("crates");
    let entries = match std::fs::read_dir(&crates_dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", crates_dir.display()));
            return Vec::new();
        }
    };
    let mut dirs: Vec<(String, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().to_string();
            let src = e.path().join("src");
            if name.starts_with("shim-") || name == "xtask" || !src.is_dir() {
                None
            } else {
                Some((name, src))
            }
        })
        .collect();
    dirs.sort();
    dirs
}

// ---- pass: panic_reach -----------------------------------------------

/// Is this fn an untrusted decode entry point (a reachability seed)?
///
/// The seed set is the full untrusted-bytes surface from DESIGN.md
/// §10–11: mapped-view openers, store-file decoders, index loading and
/// reassembly, durable-store recovery.
pub fn is_seed(f: &FnItem) -> bool {
    if f.is_test {
        return false;
    }
    let q = f.qual.as_deref();
    f.name.starts_with("open_m")
        || (q == Some("StoreFile") && f.name.starts_with("from_bytes"))
        || f.name == "load_index"
        || (q == Some("Index") && f.name == "from_parts")
        || (q == Some("DurableStore") && f.name.starts_with("open"))
        || (q == Some("StoreOptions") && f.name.starts_with("open"))
        || f.name.starts_with("decode_image")
        || f.name.starts_with("decode_delta")
        || f.name.starts_with("decode_and_apply_delta")
        || f.name.starts_with("replay_")
}

/// How a call site resolved.
enum Res {
    /// Edges into workspace fns.
    Edges(Vec<usize>),
    /// Known-total (constructor or audited builtin) — no edge, no risk.
    Total,
    /// Nothing matched — treated as potentially panicking.
    Unknown,
}

/// Import roots that make a name definitively foreign: a file that
/// wrote `use std::io::Cursor` must not have its `Cursor::new` edge
/// into a workspace type of the same name.
const FOREIGN_ROOTS: [&str; 3] = ["alloc", "core", "std"];

fn is_foreign(file: &SourceFile, name: &str) -> bool {
    file.imports
        .get(name)
        .is_some_and(|root| FOREIGN_ROOTS.contains(&root.as_str()))
}

fn resolve(g: &Graph, file: &SourceFile, call: &Call) -> Res {
    if let Some(q) = &call.qual {
        let key = format!("{q}::{}", call.name);
        if !is_foreign(file, q) {
            if let Some(v) = g.by_qual.get(&key) {
                return Res::Edges(v.clone());
            }
            if g.constructors.contains(&key) {
                return Res::Total;
            }
        }
        if TOTAL_QUALIFIED.binary_search(&key.as_str()).is_ok() {
            return Res::Total;
        }
        // A lowercase qualifier is a module path (`checked::idx_usize`),
        // where the written qualifier need not be the defining module:
        // fall back to the bare name across the workspace.
        let module_like = q.chars().next().is_some_and(char::is_lowercase);
        // A qualifier naming a workspace type alias (`TimeInterval::point`
        // where the fn is keyed under the aliased type) or a generic
        // parameter (`S::is_discrete`) never matches `by_qual`: fall back
        // to the bare name too.
        let generic_like = q.len() <= 2 && q.chars().all(|c| c.is_ascii_uppercase());
        let alias_like = g.types.contains(q.as_str()) || generic_like;
        if (module_like || alias_like) && !is_foreign(file, q) {
            if let Some(v) = g.by_name.get(&call.name) {
                return Res::Edges(v.clone());
            }
        }
        if TOTAL_BUILTINS.binary_search(&call.name.as_str()).is_ok() {
            return Res::Total;
        }
        return Res::Unknown;
    }
    if call.method {
        if let Some(v) = g.by_name.get(&call.name) {
            return Res::Edges(v.clone());
        }
        if TOTAL_BUILTINS.binary_search(&call.name.as_str()).is_ok() {
            return Res::Total;
        }
        return Res::Unknown;
    }
    if !is_foreign(file, &call.name) {
        if let Some(v) = g.by_name.get(&call.name) {
            return Res::Edges(v.clone());
        }
        if g.constructors.contains(&call.name) {
            return Res::Total;
        }
    }
    if TOTAL_BUILTINS.binary_search(&call.name.as_str()).is_ok() {
        return Res::Total;
    }
    Res::Unknown
}

/// Run panic-reachability over the real workspace.
pub fn panic_reach(root: &Path, errors: &mut Vec<String>) -> Vec<Violation> {
    let dirs = graph_crate_dirs(root, errors);
    let (g, build_errors) = Graph::build(root, &dirs);
    errors.extend(build_errors);
    reach_violations(&g)
}

/// BFS the graph from the seed set; report sinks and unresolved calls in
/// every reachable non-test fn, each with its call chain from a seed.
pub fn reach_violations(g: &Graph) -> Vec<Violation> {
    let mut parent: Vec<Option<usize>> = vec![None; g.fns.len()];
    let mut seen = vec![false; g.fns.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (i, f) in g.fns.iter().enumerate() {
        if is_seed(f) {
            seen[i] = true;
            queue.push_back(i);
        }
    }
    let mut out = Vec::new();
    let mut reported: BTreeSet<(String, usize, String)> = BTreeSet::new();
    while let Some(u) = queue.pop_front() {
        let fun = &g.fns[u];
        let file = &g.files[fun.file];
        let chain = chain_of(g, &parent, u);
        for (kind, line) in &fun.facts.sinks {
            push_violation(
                &mut out,
                &mut reported,
                file,
                *line,
                format!(
                    "{} is reachable from untrusted decode input — return a \
                     DecodeError instead (chain below; sanctioned exceptions go in \
                     crates/xtask/allow/panic_reach.allow)",
                    kind.label()
                ),
                &chain,
            );
        }
        for call in &fun.facts.calls {
            match resolve(g, file, call) {
                Res::Edges(targets) => {
                    for t in targets {
                        if !seen[t] && !g.fns[t].is_test {
                            seen[t] = true;
                            parent[t] = Some(u);
                            queue.push_back(t);
                        }
                    }
                }
                Res::Total => {}
                Res::Unknown => {
                    let shown = match &call.qual {
                        Some(q) => format!("{q}::{}", call.name),
                        None => call.name.clone(),
                    };
                    push_violation(
                        &mut out,
                        &mut reported,
                        file,
                        call.line,
                        format!(
                            "call to `{shown}` resolves to no workspace fn and is not \
                             in the audited-total builtin table — treated as \
                             potentially panicking on untrusted input"
                        ),
                        &chain,
                    );
                }
            }
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

fn chain_of(g: &Graph, parent: &[Option<usize>], mut u: usize) -> Vec<String> {
    let mut hops = vec![u];
    while let Some(p) = parent[u] {
        hops.push(p);
        u = p;
    }
    hops.reverse();
    hops.iter()
        .map(|&i| {
            let f = &g.fns[i];
            format!("{} ({}:{})", f.qualified(), g.files[f.file].path, f.line)
        })
        .collect()
}

fn push_violation(
    out: &mut Vec<Violation>,
    reported: &mut BTreeSet<(String, usize, String)>,
    file: &SourceFile,
    line: usize,
    help: String,
    chain: &[String],
) {
    if !reported.insert((file.path.clone(), line, help.clone())) {
        return;
    }
    out.push(Violation {
        rule: "panic_reach",
        path: file.path.clone(),
        line,
        content: file.line_content(line),
        help,
        chain: chain.to_vec(),
    });
}

// ---- pass: atomics_order ---------------------------------------------

/// Token lines (1-based, non-test) carrying a `Relaxed` memory-ordering
/// ident. The lexer has already dropped comments and string interiors.
pub fn scan_atomics(sf: &SourceFile) -> Vec<usize> {
    let mut lines = BTreeSet::new();
    for (i, t) in sf.toks.iter().enumerate() {
        if sf.in_test[i] || !t.is_ident("Relaxed") {
            continue;
        }
        lines.insert(t.line);
    }
    lines.into_iter().collect()
}

/// Run the atomics-ordering audit: `Ordering::Relaxed` outside
/// `crates/obs/src` (where the counters are sanctioned) is a violation.
pub fn atomics_order(root: &Path, errors: &mut Vec<String>) -> Vec<Violation> {
    let mut out = Vec::new();
    for (name, dir) in graph_crate_dirs(root, errors) {
        for sf in load_dir(root, &name, &dir, errors) {
            if sf.crate_name == "obs" {
                continue;
            }
            for line in scan_atomics(&sf) {
                out.push(Violation {
                    rule: "atomics_order",
                    path: sf.path.clone(),
                    line,
                    content: sf.line_content(line),
                    help: "Relaxed ordering is sanctioned only for mob-obs counters — \
                           cross-thread hand-off must use the documented \
                           Acquire/Release pair (see DESIGN.md §8/§9)"
                        .to_string(),
                    chain: Vec::new(),
                });
            }
        }
    }
    out
}

// ---- pass: determinism -----------------------------------------------

/// Token lines (1-based, non-test) referencing `HashMap`/`HashSet`.
pub fn scan_determinism(sf: &SourceFile) -> Vec<usize> {
    let mut lines = BTreeSet::new();
    for (i, t) in sf.toks.iter().enumerate() {
        if sf.in_test[i] {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            lines.insert(t.line);
        }
    }
    lines.into_iter().collect()
}

/// Run the determinism audit over the crates whose output is
/// contractually byte-identical across runs: rel, storage, core.
pub fn determinism(root: &Path, errors: &mut Vec<String>) -> Vec<Violation> {
    let mut out = Vec::new();
    for name in ["core", "rel", "storage"] {
        let dir = root.join("crates").join(name).join("src");
        for sf in load_dir(root, name, &dir, errors) {
            for line in scan_determinism(&sf) {
                out.push(Violation {
                    rule: "determinism",
                    path: sf.path.clone(),
                    line,
                    content: sf.line_content(line),
                    help: "HashMap/HashSet iteration order is randomized per process; \
                           this crate feeds query results / serialized bytes that must \
                           be byte-identical across runs — use BTreeMap/BTreeSet"
                        .to_string(),
                    chain: Vec::new(),
                });
            }
        }
    }
    out
}

// ---- shared file loading ---------------------------------------------

/// Lex every `.rs` file under `dir` into [`SourceFile`]s (items are
/// discarded — the token-level passes only need tokens + test regions).
pub fn load_dir(
    root: &Path,
    crate_name: &str,
    dir: &Path,
    errors: &mut Vec<String>,
) -> Vec<SourceFile> {
    let mut paths = Vec::new();
    walk_rs(dir, &mut paths, errors);
    let mut out = Vec::new();
    for p in paths {
        let src = match std::fs::read_to_string(&p) {
            Ok(s) => s,
            Err(e) => {
                errors.push(format!("read {}: {e}", p.display()));
                continue;
            }
        };
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        let (sf, _) = SourceFile::new(rel, crate_name.to_string(), &src);
        out.push(sf);
    }
    out
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>, errors: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", dir.display()));
            return;
        }
    };
    let mut local: Vec<PathBuf> = Vec::new();
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            walk_rs(&p, out, errors);
        } else if p.extension().is_some_and(|x| x == "rs") {
            local.push(p);
        }
    }
    local.sort();
    out.extend(local);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_tables_are_sorted_for_binary_search() {
        let mut names = TOTAL_BUILTINS.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names, TOTAL_BUILTINS,
            "TOTAL_BUILTINS must be sorted+deduped"
        );
        let mut quals = TOTAL_QUALIFIED.to_vec();
        quals.sort_unstable();
        quals.dedup();
        assert_eq!(
            quals, TOTAL_QUALIFIED,
            "TOTAL_QUALIFIED must be sorted+deduped"
        );
    }

    #[test]
    fn panic_capable_names_are_not_in_the_table() {
        for bad in [
            "unwrap",
            "expect",
            "split_at",
            "clamp",
            "drain",
            "remove",
            "swap",
            "swap_remove",
            "rotate_left",
            "rem_euclid",
            "div_euclid",
            "pow",
            "repeat",
        ] {
            assert!(
                TOTAL_BUILTINS.binary_search(&bad).is_err(),
                "`{bad}` can panic and must not be audited total"
            );
        }
    }

    #[test]
    fn relaxed_in_strings_and_comments_does_not_fire() {
        let (sf, _) = SourceFile::new(
            "t.rs".into(),
            "t".into(),
            "// Ordering::Relaxed in a comment\nfn f() { let _ = \"Ordering::Relaxed\"; }\n\
             fn g() -> u64 { C.load(Ordering::Relaxed) }",
        );
        assert_eq!(scan_atomics(&sf), vec![3]);
    }

    #[test]
    fn hash_collections_fire_outside_tests_only() {
        let (sf, _) = SourceFile::new(
            "t.rs".into(),
            "t".into(),
            "use std::collections::HashMap;\nfn f(m: &HashMap<u8, u8>) {}\n\
             #[cfg(test)]\nmod tests { use std::collections::HashSet; }",
        );
        assert_eq!(scan_determinism(&sf), vec![1, 2]);
    }
}
