//! `cargo run -p xtask -- lint [--self-test]`
//!
//! Dependency-free, repo-specific source lints for the moving-objects
//! workspace. `lint` scans the library sources and exits non-zero on any
//! violation not covered by `crates/xtask/allow/*.allow`; `--self-test`
//! instead runs every rule against its fixture under
//! `crates/xtask/fixtures/` and verifies the expected lines (marked
//! `//~`) fire — and only those.

mod lint;
mod mask;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    match args.as_slice() {
        ["lint"] => run_lint(&repo_root()),
        ["lint", "--self-test"] => run_self_test(&repo_root()),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--self-test]");
            ExitCode::from(2)
        }
    }
}

fn run_lint(root: &Path) -> ExitCode {
    let (violations, errors) = lint::run_all(root);
    for v in &violations {
        println!("{v}");
    }
    for e in &errors {
        eprintln!("error: {e}");
    }
    if violations.is_empty() && errors.is_empty() {
        println!("xtask lint: {} rules, no violations", lint::RULES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint: {} violation(s), {} error(s)",
            violations.len(),
            errors.len()
        );
        ExitCode::FAILURE
    }
}

fn run_self_test(root: &Path) -> ExitCode {
    match lint::self_test(root) {
        Ok(()) => {
            println!("xtask lint --self-test: all rules fire on their fixtures");
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("error: {e}");
            }
            eprintln!("xtask lint --self-test: {} failure(s)", errors.len());
            ExitCode::FAILURE
        }
    }
}
