//! `cargo run -p xtask -- lint [--self-test] [--json]`
//!
//! Dependency-free, repo-specific static analysis for the
//! moving-objects workspace: six token-level source lints plus three
//! analysis passes (panic-reachability over the untrusted decode
//! surface, atomics-ordering audit, determinism audit). `lint` scans
//! the workspace and exits non-zero on any violation not covered by
//! `crates/xtask/allow/*.allow`; `--json` emits the same report as one
//! machine-readable JSON object on stdout; `--self-test` instead runs
//! every rule against its fixture under `crates/xtask/fixtures/` and
//! verifies the expected lines (marked `//~`) fire — and only those.

mod callgraph;
mod json;
mod lex;
mod lint;
mod passes;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The workspace root, derived from this crate's manifest directory.
/// A miscomputed root would make every scope empty and let `lint`
/// "pass" over nothing, so failure to resolve it is a hard error.
fn repo_root() -> Result<PathBuf, String> {
    // crates/xtask -> crates -> repo root
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .ancestors()
        .nth(2)
        .ok_or_else(|| format!("cannot derive repo root from {}", manifest.display()))?;
    if !root.join("crates").is_dir() {
        return Err(format!(
            "derived repo root {} has no crates/ directory — refusing to lint the wrong tree",
            root.display()
        ));
    }
    Ok(root.to_path_buf())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args: Vec<&str> = args.iter().map(String::as_str).collect();
    let root = match repo_root() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    match args.as_slice() {
        ["lint"] => run_lint(&root, false),
        ["lint", "--json"] => run_lint(&root, true),
        ["lint", "--self-test"] => run_self_test(&root),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--self-test] [--json]");
            ExitCode::from(2)
        }
    }
}

fn run_lint(root: &Path, as_json: bool) -> ExitCode {
    let (violations, errors) = lint::run_all(root);
    if as_json {
        println!("{}", json::render(&violations, &errors));
    } else {
        for v in &violations {
            println!("{v}");
        }
        for e in &errors {
            eprintln!("error: {e}");
        }
    }
    if violations.is_empty() && errors.is_empty() {
        if !as_json {
            println!("xtask lint: {} rules, no violations", lint::RULES.len());
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint: {} violation(s), {} error(s)",
            violations.len(),
            errors.len()
        );
        ExitCode::FAILURE
    }
}

fn run_self_test(root: &Path) -> ExitCode {
    match lint::self_test(root) {
        Ok(()) => {
            println!("xtask lint --self-test: all rules fire on their fixtures");
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("error: {e}");
            }
            eprintln!("xtask lint --self-test: {} failure(s)", errors.len());
            ExitCode::FAILURE
        }
    }
}
