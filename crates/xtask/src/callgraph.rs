//! Item extraction and an over-approximate intra-workspace call graph
//! over the token stream from [`crate::lex`].
//!
//! The extractor walks each file's tokens structurally: it records every
//! `fn` item (with its enclosing `impl`/`trait` type so methods get a
//! `Type::name` qualified identity), tuple-struct and enum-variant
//! constructors, `use` imports, and which token ranges are gated behind
//! `#[cfg(test)]` / `#[test]` — at token level, so `#[cfg(not(test))]`
//! is correctly *not* a test region (the old masked-line scanner got
//! that wrong) and braces inside literals can never desynchronize the
//! region tracking.
//!
//! Function bodies are then scanned for **call sites** (plain calls,
//! `Type::method` calls, `.method()` calls — turbofish handled) and
//! **panic sinks**: `panic!`/`unreachable!`/`todo!`/`unimplemented!`,
//! `.unwrap()`, `.expect(…)`, and postfix `[…]` index/slice expressions.
//! Anything inside a `debug_assert!`/`debug_assert_eq!`/
//! `debug_assert_ne!` argument list is exempt (those bodies compile out
//! of release builds and assert programmer invariants, not data).
//!
//! Call resolution is deliberately **over-approximate**: a call edge is
//! drawn to *every* workspace `fn` with a matching name (narrowed by
//! the `Type::` qualifier when one is written). A call that resolves to
//! no workspace `fn`, no recorded constructor, and no entry of the
//! audited [`TOTAL_BUILTINS`] table is treated as **potentially
//! panicking** — the analysis refuses to assume an unknown callee is
//! total.

use crate::lex::{is_keyword, lex, Kind, Tok};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of the file (into [`Graph::files`]) this fn lives in.
    pub file: usize,
    /// Bare name (`open_mpoint`).
    pub name: String,
    /// Enclosing `impl`/`trait` type (`StoreFile`), if any.
    pub qual: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Facts gathered from the body.
    pub facts: BodyFacts,
    /// Inside `#[cfg(test)]` / `#[test]` gated code.
    pub is_test: bool,
}

impl FnItem {
    /// `Type::name` when qualified, else the bare name.
    pub fn qualified(&self) -> String {
        match &self.qual {
            Some(q) => format!("{q}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A call site inside a fn body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// Written qualifier (`checked` in `checked::idx_usize(…)`,
    /// `Vec` in `Vec::new()`), with `Self` already substituted.
    pub qual: Option<String>,
    /// True for `.method()` receiver calls.
    pub method: bool,
    /// 1-based line of the call.
    pub line: usize,
}

/// A direct panic-capable site inside a fn body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(…)`.
    Expect,
    /// Postfix `[…]` index or sub-range slice expression.
    Index,
}

impl SinkKind {
    /// Human label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SinkKind::PanicMacro => "panic-family macro",
            SinkKind::Unwrap => ".unwrap()",
            SinkKind::Expect => ".expect(…)",
            SinkKind::Index => "[…] index/slice",
        }
    }
}

/// Calls and sinks of one fn body.
#[derive(Debug, Clone, Default)]
pub struct BodyFacts {
    /// Every call site found.
    pub calls: Vec<Call>,
    /// Every direct panic sink found.
    pub sinks: Vec<(SinkKind, usize)>,
}

/// One lexed + extracted source file.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Crate directory name (`storage`, `core`, …).
    pub crate_name: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Raw source lines (for violation content).
    pub raw_lines: Vec<String>,
    /// Per-token: inside a test-gated region.
    pub in_test: Vec<bool>,
    /// `use` imports: leaf/alias name → first path segment.
    pub imports: BTreeMap<String, String>,
}

/// Extraction results for one file that live outside [`SourceFile`].
pub struct FileItems {
    /// The fn items found.
    pub fns: Vec<RawFn>,
    /// Tuple-struct / tuple-variant constructor names (bare and
    /// `Enum::Variant`).
    pub constructors: BTreeSet<String>,
    /// Type names defined or implemented in this file.
    pub types: BTreeSet<String>,
}

impl SourceFile {
    /// Lex and extract `src`. `path` is stored verbatim; `crate_name`
    /// tags which crate the file belongs to.
    pub fn new(path: String, crate_name: String, src: &str) -> (SourceFile, FileItems) {
        let toks = lex(src);
        let raw_lines: Vec<String> = src.lines().map(str::to_string).collect();
        let mut p = Parser {
            toks: &toks,
            out: Extract::default(),
        };
        p.items(0, toks.len(), None, false);
        let Extract {
            fns,
            constructors,
            types,
            imports,
            test_ranges,
        } = p.out;
        let mut in_test = vec![false; toks.len()];
        for (s, e) in test_ranges {
            for flag in in_test.iter_mut().take(e.min(toks.len())).skip(s) {
                *flag = true;
            }
        }
        let sf = SourceFile {
            path,
            crate_name,
            toks,
            raw_lines,
            in_test,
            imports,
        };
        (
            sf,
            FileItems {
                fns,
                constructors,
                types,
            },
        )
    }

    /// Trimmed raw source of 1-based `line` (empty if out of range).
    pub fn line_content(&self, line: usize) -> String {
        self.raw_lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// A fn as the parser sees it, before graph assembly.
#[derive(Debug, Clone)]
pub struct RawFn {
    /// Bare name.
    pub name: String,
    /// Enclosing impl/trait type.
    pub qual: Option<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Token range of the body (`{`..=`}`), empty for bodyless decls.
    pub body: (usize, usize),
    /// Parameter names: a call to one of these is a higher-order
    /// invocation of a value, not of a free fn.
    pub params: Vec<String>,
    /// Test-gated.
    pub is_test: bool,
}

#[derive(Default)]
struct Extract {
    fns: Vec<RawFn>,
    constructors: BTreeSet<String>,
    types: BTreeSet<String>,
    imports: BTreeMap<String, String>,
    test_ranges: Vec<(usize, usize)>,
}

// ---- item parser -----------------------------------------------------

struct Parser<'t> {
    toks: &'t [Tok],
    out: Extract,
}

impl<'t> Parser<'t> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    /// Index just past the delimiter group opening at `i` (which must
    /// be an `Open` token); tolerant of unbalanced input.
    fn skip_group(&self, i: usize) -> usize {
        let Some(open) = self.tok(i) else {
            return i + 1;
        };
        if open.kind != Kind::Open {
            return i + 1;
        }
        let mut depth = 0usize;
        let mut j = i;
        while let Some(t) = self.tok(j) {
            match t.kind {
                Kind::Open => depth += 1,
                Kind::Close => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skip a generics group `<…>` starting at `i` (a `<` punct).
    /// Counts `<`/`<<` against `>`/`>>`/`>=`-style tokens.
    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while let Some(t) = self.tok(j) {
            match t.kind {
                Kind::Punct => {
                    depth += match t.text.as_str() {
                        "<" => 1,
                        "<<" => 2,
                        ">" => -1,
                        ">>" => -2,
                        _ => 0,
                    };
                    if depth <= 0 && j > i {
                        return j + 1;
                    }
                }
                // groups inside generics (const generics, fn types)
                Kind::Open => {
                    j = self.skip_group(j);
                    continue;
                }
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// Skip to just past the next `;` at group depth 0.
    fn skip_to_semi(&self, mut i: usize) -> usize {
        while let Some(t) = self.tok(i) {
            if t.kind == Kind::Open {
                i = self.skip_group(i);
                continue;
            }
            if t.is_punct(";") {
                return i + 1;
            }
            i += 1;
        }
        i
    }

    /// Parse items in `[i, end)`; `qual` is the enclosing impl/trait
    /// type, `in_test` whether the region is already test-gated.
    fn items(&mut self, mut i: usize, end: usize, qual: Option<&str>, in_test: bool) {
        let mut pending_test = false;
        let mut attr_start: Option<usize> = None;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            // attribute: #[…] or #![…]
            if t.is_punct("#") {
                let mut j = i + 1;
                if self.tok(j).is_some_and(|t| t.is_punct("!")) {
                    j += 1;
                }
                if self.tok(j).is_some_and(|t| t.is_open('[')) {
                    let close = self.skip_group(j);
                    if attr_is_test(&self.toks[j..close]) {
                        pending_test = true;
                    }
                    attr_start.get_or_insert(i);
                    i = close;
                    continue;
                }
                i += 1;
                continue;
            }
            if t.kind != Kind::Ident {
                i += 1;
                continue;
            }
            match t.text.as_str() {
                // modifiers — keep pending attrs
                "pub" => {
                    i += 1;
                    if self.tok(i).is_some_and(|t| t.is_open('(')) {
                        i = self.skip_group(i);
                    }
                }
                "unsafe" | "async" | "default" => i += 1,
                "extern" => {
                    i += 1;
                    if self.tok(i).is_some_and(|t| t.kind == Kind::Str) {
                        i += 1;
                    }
                    if self.tok(i).is_some_and(|t| t.is_ident("crate")) {
                        i = self.skip_to_semi(i);
                        (pending_test, attr_start) = (false, None);
                    }
                }
                "const" => {
                    if self.tok(i + 1).is_some_and(|t| t.is_ident("fn")) {
                        i += 1; // fall through to fn on next loop turn
                    } else {
                        let start = attr_start.unwrap_or(i);
                        i = self.skip_to_semi(i);
                        if pending_test {
                            self.out.test_ranges.push((start, i));
                        }
                        (pending_test, attr_start) = (false, None);
                    }
                }
                "fn" => {
                    let start = attr_start.unwrap_or(i);
                    i = self.parse_fn(i, qual, in_test || pending_test);
                    if pending_test && !in_test {
                        self.out.test_ranges.push((start, i));
                    }
                    (pending_test, attr_start) = (false, None);
                }
                "mod" => {
                    let start = attr_start.unwrap_or(i);
                    let mut j = i + 2; // mod name
                    if self.tok(j).is_some_and(|t| t.is_open('{')) {
                        let close = self.skip_group(j);
                        self.items(j + 1, close - 1, None, in_test || pending_test);
                        if pending_test && !in_test {
                            self.out.test_ranges.push((start, close));
                        }
                        j = close;
                    } else {
                        j = self.skip_to_semi(j);
                    }
                    i = j;
                    (pending_test, attr_start) = (false, None);
                }
                "impl" => {
                    let start = attr_start.unwrap_or(i);
                    i = self.parse_impl(i, in_test || pending_test);
                    if pending_test && !in_test {
                        self.out.test_ranges.push((start, i));
                    }
                    (pending_test, attr_start) = (false, None);
                }
                "trait" => {
                    let start = attr_start.unwrap_or(i);
                    let name = self
                        .tok(i + 1)
                        .filter(|t| t.kind == Kind::Ident)
                        .map(|t| t.text.clone());
                    if let Some(n) = &name {
                        self.out.types.insert(n.clone());
                    }
                    let mut j = i + 2;
                    while let Some(t) = self.tok(j) {
                        if t.is_open('{') {
                            break;
                        }
                        if t.is_punct(";") {
                            break;
                        }
                        j += 1;
                    }
                    if self.tok(j).is_some_and(|t| t.is_open('{')) {
                        let close = self.skip_group(j);
                        self.items(j + 1, close - 1, name.as_deref(), in_test || pending_test);
                        if pending_test && !in_test {
                            self.out.test_ranges.push((start, close));
                        }
                        i = close;
                    } else {
                        i = j + 1;
                    }
                    (pending_test, attr_start) = (false, None);
                }
                "struct" | "enum" | "union" => {
                    let is_enum = t.text == "enum";
                    let start = attr_start.unwrap_or(i);
                    i = self.parse_type_def(i, is_enum);
                    if pending_test {
                        self.out.test_ranges.push((start, i));
                    }
                    (pending_test, attr_start) = (false, None);
                }
                "static" | "type" => {
                    let start = attr_start.unwrap_or(i);
                    // a type alias name is callable like the aliased type
                    if t.text == "type" {
                        if let Some(n) = self.tok(i + 1).filter(|t| t.kind == Kind::Ident) {
                            self.out.types.insert(n.text.clone());
                        }
                    }
                    i = self.skip_to_semi(i);
                    if pending_test {
                        self.out.test_ranges.push((start, i));
                    }
                    (pending_test, attr_start) = (false, None);
                }
                "use" => {
                    let semi = self.skip_to_semi(i);
                    let start = attr_start.unwrap_or(i);
                    self.parse_use(i + 1, semi - 1);
                    if pending_test {
                        self.out.test_ranges.push((start, semi));
                    }
                    i = semi;
                    (pending_test, attr_start) = (false, None);
                }
                "macro_rules" => {
                    // macro_rules! name { … }
                    let mut j = i + 1;
                    while let Some(t) = self.tok(j) {
                        if t.kind == Kind::Open {
                            j = self.skip_group(j);
                            break;
                        }
                        j += 1;
                    }
                    i = j;
                    (pending_test, attr_start) = (false, None);
                }
                _ => {
                    i += 1;
                    (pending_test, attr_start) = (false, None);
                }
            }
        }
    }

    /// Parse `fn name …` at `i` (the `fn` token). Returns the index
    /// just past the item.
    fn parse_fn(&mut self, i: usize, qual: Option<&str>, is_test: bool) -> usize {
        let line = self.toks[i].line;
        let Some(name_tok) = self.tok(i + 1).filter(|t| t.kind == Kind::Ident) else {
            return i + 1;
        };
        let name = name_tok.text.clone();
        let mut j = i + 2;
        if self.tok(j).is_some_and(|t| t.is_punct("<")) {
            j = self.skip_angles(j);
        }
        let mut params = Vec::new();
        if self.tok(j).is_some_and(|t| t.is_open('(')) {
            let close = self.skip_group(j);
            // `name:` pairs inside the argument list are binding names
            for k in j + 1..close.saturating_sub(1) {
                if self.toks[k].kind == Kind::Ident
                    && !is_keyword(&self.toks[k].text)
                    && self.tok(k + 1).is_some_and(|t| t.is_punct(":"))
                {
                    params.push(self.toks[k].text.clone());
                }
            }
            j = close;
        }
        // return type / where clause: scan to the body `{` or a `;`
        let mut body = (0usize, 0usize);
        while let Some(t) = self.tok(j) {
            if t.is_punct("<") {
                j = self.skip_angles(j);
                continue;
            }
            if t.is_open('(') || t.is_open('[') {
                j = self.skip_group(j);
                continue;
            }
            if t.is_open('{') {
                let close = self.skip_group(j);
                body = (j, close);
                j = close;
                break;
            }
            if t.is_punct(";") {
                j += 1;
                break;
            }
            j += 1;
        }
        self.out.fns.push(RawFn {
            name,
            qual: qual.map(str::to_string),
            line,
            body,
            params,
            is_test,
        });
        j
    }

    /// Parse `impl …` at `i`. Returns index past the block.
    fn parse_impl(&mut self, i: usize, in_test: bool) -> usize {
        let mut j = i + 1;
        if self.tok(j).is_some_and(|t| t.is_punct("<")) {
            j = self.skip_angles(j);
        }
        let mut last_ident: Option<String> = None;
        while let Some(t) = self.tok(j) {
            match t.kind {
                Kind::Open if t.is_open('{') => break,
                Kind::Open => {
                    j = self.skip_group(j);
                    continue;
                }
                Kind::Punct if t.text == "<" => {
                    j = self.skip_angles(j);
                    continue;
                }
                Kind::Punct if t.text == ";" => return j + 1,
                Kind::Ident if t.text == "for" => last_ident = None,
                Kind::Ident if t.text != "where" && t.text != "dyn" && t.text != "mut" => {
                    last_ident = Some(t.text.clone());
                }
                _ => {}
            }
            j += 1;
        }
        let ty = last_ident;
        if let Some(ty) = &ty {
            self.out.types.insert(ty.clone());
        }
        if self.tok(j).is_some_and(|t| t.is_open('{')) {
            let close = self.skip_group(j);
            self.items(j + 1, close - 1, ty.as_deref(), in_test);
            return close;
        }
        j + 1
    }

    /// Parse `struct`/`enum`/`union` definitions, recording tuple-struct
    /// and tuple-variant constructors.
    fn parse_type_def(&mut self, i: usize, is_enum: bool) -> usize {
        let Some(name_tok) = self.tok(i + 1).filter(|t| t.kind == Kind::Ident) else {
            return i + 1;
        };
        let name = name_tok.text.clone();
        self.out.types.insert(name.clone());
        let mut j = i + 2;
        if self.tok(j).is_some_and(|t| t.is_punct("<")) {
            j = self.skip_angles(j);
        }
        // where clause, then `(…);` | `{…}` | `;`
        while let Some(t) = self.tok(j) {
            if t.is_punct("<") {
                j = self.skip_angles(j);
                continue;
            }
            if t.is_open('(') {
                // tuple struct: the name is callable
                self.out.constructors.insert(name.clone());
                return self.skip_to_semi(self.skip_group(j));
            }
            if t.is_open('{') {
                let close = self.skip_group(j);
                if is_enum {
                    self.enum_variants(&name, j + 1, close - 1);
                }
                return close;
            }
            if t.is_punct(";") {
                // unit struct — `Name` alone is a value, not a call
                return j + 1;
            }
            j += 1;
        }
        j
    }

    /// Record tuple variants of `enum name { … }` as constructors, both
    /// bare (`Variant`) and qualified (`Enum::Variant`).
    fn enum_variants(&mut self, enum_name: &str, mut i: usize, end: usize) {
        let mut expect_variant = true;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            if t.is_punct("#") {
                let mut j = i + 1;
                if self.tok(j).is_some_and(|t| t.is_open('[')) {
                    j = self.skip_group(j);
                }
                i = j;
                continue;
            }
            if expect_variant && t.kind == Kind::Ident {
                let variant = t.text.clone();
                if self.tok(i + 1).is_some_and(|t| t.is_open('(')) {
                    self.out.constructors.insert(variant.clone());
                    self.out
                        .constructors
                        .insert(format!("{enum_name}::{variant}"));
                    i = self.skip_group(i + 1);
                } else if self.tok(i + 1).is_some_and(|t| t.is_open('{')) {
                    i = self.skip_group(i + 1);
                } else {
                    i += 1;
                }
                // optional discriminant `= expr`
                while i < end && !self.tok(i).is_some_and(|t| t.is_punct(",")) {
                    if self.tok(i).is_some_and(|t| t.kind == Kind::Open) {
                        i = self.skip_group(i);
                    } else {
                        i += 1;
                    }
                }
                expect_variant = false;
                continue;
            }
            if t.is_punct(",") {
                expect_variant = true;
            }
            i += 1;
        }
    }

    /// Parse the tree of a `use` statement (tokens `[i, end)`, the part
    /// between `use` and `;`), recording leaf → root-segment imports.
    fn parse_use(&mut self, i: usize, end: usize) {
        let toks = &self.toks[i..end.min(self.toks.len())];
        let root = toks
            .iter()
            .find(|t| t.kind == Kind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        // Walk leaves: an ident is a leaf if the next non-ident token is
        // not `::` (i.e. it ends a path), unless followed by `as` (then
        // the alias is the leaf).
        let mut k = 0;
        while k < toks.len() {
            let t = &toks[k];
            if t.kind == Kind::Ident && t.text != "as" {
                let next = toks.get(k + 1);
                let is_path_sep = next.is_some_and(|n| n.is_punct("::"));
                if !is_path_sep {
                    if next.is_some_and(|n| n.is_ident("as")) {
                        if let Some(alias) = toks.get(k + 2) {
                            self.out.imports.insert(alias.text.clone(), root.clone());
                        }
                        k += 3;
                        continue;
                    }
                    self.out.imports.insert(t.text.clone(), root.clone());
                }
            }
            k += 1;
        }
    }
}

/// Does an attribute token group (starting at its `[`) gate test code?
/// True for `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]`; false
/// for `#[cfg(not(test))]` (and `not(any(test, …))`): the ident `test`
/// must appear *outside* any `not(…)`.
fn attr_is_test(toks: &[Tok]) -> bool {
    let mut depth = 0usize;
    let mut not_depth: Option<usize> = None;
    let mut k = 0;
    while k < toks.len() {
        let t = &toks[k];
        match t.kind {
            Kind::Open => depth += 1,
            Kind::Close => {
                depth = depth.saturating_sub(1);
                if not_depth.is_some_and(|d| depth < d) {
                    not_depth = None;
                }
            }
            Kind::Ident
                if t.text == "not"
                    && toks.get(k + 1).is_some_and(|n| n.is_open('('))
                    && not_depth.is_none() =>
            {
                not_depth = Some(depth + 1);
            }
            Kind::Ident if t.text == "test" && not_depth.is_none() => return true,
            _ => {}
        }
        k += 1;
    }
    false
}

// ---- body scanning ---------------------------------------------------

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Scan a fn body (`toks[range]`) for calls and sinks. `self_ty` is the
/// enclosing impl type, substituted for `Self::` qualifiers. `params`
/// are the fn's parameter names: a plain call to a parameter or to a
/// `let`-bound local invokes a *value* (usually a closure), not a free
/// fn — no call edge is recorded, because a closure's body is scanned
/// inline wherever it is defined.
pub fn scan_body(
    toks: &[Tok],
    range: (usize, usize),
    self_ty: Option<&str>,
    params: &[String],
) -> BodyFacts {
    let mut facts = BodyFacts::default();
    let (start, end) = range;
    let end = end.min(toks.len());
    let mut locals: BTreeSet<&str> = params.iter().map(String::as_str).collect();
    let mut j = start;
    // pre-pass: `let [mut] name` bindings
    while j < end {
        if toks[j].is_ident("let") {
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if let Some(n) = toks.get(k).filter(|t| t.kind == Kind::Ident) {
                if !is_keyword(&n.text) {
                    locals.insert(n.text.as_str());
                }
            }
        }
        j += 1;
    }
    let mut j = start;
    // significant previous token index (for index-expression detection)
    let mut prev: Option<usize> = None;
    while j < end {
        let t = &toks[j];
        // statement attribute — skip entirely
        if t.is_punct("#") {
            let mut k = j + 1;
            if toks.get(k).is_some_and(|t| t.is_punct("!")) {
                k += 1;
            }
            if toks.get(k).is_some_and(|t| t.is_open('[')) {
                j = skip_group_at(toks, k);
                continue;
            }
            j += 1;
            continue;
        }
        // debug_assert bodies are exempt
        if t.kind == Kind::Ident
            && t.text.starts_with("debug_assert")
            && toks.get(j + 1).is_some_and(|t| t.is_punct("!"))
            && toks.get(j + 2).is_some_and(|t| t.kind == Kind::Open)
        {
            j = skip_group_at(toks, j + 2);
            prev = None;
            continue;
        }
        // method call / field access
        if t.is_punct(".") {
            if let Some(m) = toks.get(j + 1).filter(|t| t.kind == Kind::Ident) {
                let mut k = j + 2;
                // turbofish: .collect::<Vec<_>>()
                if toks.get(k).is_some_and(|t| t.is_punct("::"))
                    && toks.get(k + 1).is_some_and(|t| t.is_punct("<"))
                {
                    k = skip_angles_at(toks, k + 1);
                }
                if toks.get(k).is_some_and(|t| t.is_open('(')) {
                    let name = m.text.clone();
                    if name == "unwrap" && toks.get(k + 1).is_some_and(|t| t.is_close(')')) {
                        facts.sinks.push((SinkKind::Unwrap, m.line));
                    } else if name == "expect" {
                        facts.sinks.push((SinkKind::Expect, m.line));
                    } else {
                        facts.calls.push(Call {
                            name,
                            qual: None,
                            method: true,
                            line: m.line,
                        });
                    }
                    // consume `.name` and leave `(` to be walked (its
                    // argument tokens still get scanned)
                    prev = Some(j + 1);
                    j = k;
                    continue;
                }
                prev = Some(j + 1);
                j += 2;
                continue;
            }
            // tuple index `.0`
            prev = Some(j);
            j += 1;
            continue;
        }
        // path / plain call / macro
        if t.kind == Kind::Ident && !is_keyword(&t.text) {
            // walk the path: ident (:: <…>? ident)*
            let mut segs: Vec<String> = vec![t.text.clone()];
            let mut k = j + 1;
            loop {
                if toks.get(k).is_some_and(|t| t.is_punct("::")) {
                    if toks.get(k + 1).is_some_and(|t| t.is_punct("<")) {
                        // path generics: `Foo::<T>::new` — skip them
                        let after = skip_angles_at(toks, k + 1);
                        if toks.get(after).is_some_and(|t| t.is_punct("::")) {
                            k = after;
                            continue;
                        }
                        // turbofish right before the call parens
                        k = after;
                        break;
                    }
                    if let Some(n) = toks.get(k + 1).filter(|t| t.kind == Kind::Ident) {
                        segs.push(n.text.clone());
                        k += 2;
                        continue;
                    }
                }
                break;
            }
            let last = segs.last().cloned().unwrap_or_default();
            // macro invocation?
            if toks.get(k).is_some_and(|t| t.is_punct("!"))
                && toks.get(k + 1).is_some_and(|t| t.kind == Kind::Open)
            {
                if PANIC_MACROS.contains(&last.as_str()) {
                    facts.sinks.push((SinkKind::PanicMacro, t.line));
                }
                // walk into the macro args (they are expressions)
                prev = None;
                j = k + 1;
                continue;
            }
            // call?
            if toks.get(k).is_some_and(|t| t.is_open('(')) {
                let qual = if segs.len() >= 2 {
                    let q = segs[segs.len() - 2].clone();
                    Some(if q == "Self" {
                        self_ty.unwrap_or("Self").to_string()
                    } else {
                        q
                    })
                } else {
                    None
                };
                // a bare call to a param/local invokes a value, not a fn
                let is_local_value = qual.is_none() && locals.contains(last.as_str());
                if !is_local_value {
                    facts.calls.push(Call {
                        name: last,
                        qual,
                        method: false,
                        line: t.line,
                    });
                }
            }
            prev = Some(k - 1);
            j = k;
            continue;
        }
        // index / slice expression: postfix `[` after a value producer
        if t.is_open('[') {
            let is_postfix = prev.and_then(|p| toks.get(p)).is_some_and(|p| {
                (p.kind == Kind::Ident && !is_keyword(&p.text))
                    || p.is_close(')')
                    || p.is_close(']')
            });
            if is_postfix && !is_total_range(toks, j, end) {
                facts.sinks.push((SinkKind::Index, t.line));
            }
            prev = Some(j);
            j += 1;
            continue;
        }
        match t.kind {
            Kind::Ident | Kind::Num | Kind::Str | Kind::Char => prev = Some(j),
            Kind::Close => prev = Some(j),
            Kind::Open => prev = None,
            _ => prev = None,
        }
        j += 1;
    }
    facts
}

/// `[..]` — a full-range slice — can never panic; every other index or
/// sub-range can.
fn is_total_range(toks: &[Tok], open: usize, end: usize) -> bool {
    toks.get(open + 1)
        .is_some_and(|t| t.is_punct("..") && open + 2 < end)
        && toks.get(open + 2).is_some_and(|t| t.is_close(']'))
}

fn skip_group_at(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while let Some(t) = toks.get(j) {
        match t.kind {
            Kind::Open => depth += 1,
            Kind::Close => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

fn skip_angles_at(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while let Some(t) = toks.get(j) {
        match t.kind {
            Kind::Punct => {
                depth += match t.text.as_str() {
                    "<" => 1,
                    "<<" => 2,
                    ">" => -1,
                    ">>" => -2,
                    _ => 0,
                };
                if depth <= 0 && j > i {
                    return j + 1;
                }
            }
            Kind::Open => {
                j = skip_group_at(toks, j);
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

// ---- the graph -------------------------------------------------------

/// The workspace call graph.
pub struct Graph {
    /// Every scanned file.
    pub files: Vec<SourceFile>,
    /// Every fn item (facts included).
    pub fns: Vec<FnItem>,
    /// Bare name → fn indices.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// `Type::name` → fn indices.
    pub by_qual: BTreeMap<String, Vec<usize>>,
    /// Tuple-struct / enum-variant constructor names (bare and
    /// `Enum::Variant` qualified).
    pub constructors: BTreeSet<String>,
    /// All struct/enum/trait/impl type names in the workspace.
    pub types: BTreeSet<String>,
}

impl Graph {
    /// Build the graph over every `.rs` file under the given
    /// `(crate_name, src_dir)` roots. I/O problems are reported in the
    /// error vector (the graph still covers what was readable).
    pub fn build(root: &Path, crate_dirs: &[(String, std::path::PathBuf)]) -> (Graph, Vec<String>) {
        let mut errors = Vec::new();
        let mut g = Graph {
            files: Vec::new(),
            fns: Vec::new(),
            by_name: BTreeMap::new(),
            by_qual: BTreeMap::new(),
            constructors: BTreeSet::new(),
            types: BTreeSet::new(),
        };
        for (crate_name, dir) in crate_dirs {
            let mut paths = Vec::new();
            rust_files(dir, &mut paths, &mut errors);
            for p in paths {
                let src = match std::fs::read_to_string(&p) {
                    Ok(s) => s,
                    Err(e) => {
                        errors.push(format!("read {}: {e}", p.display()));
                        continue;
                    }
                };
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                let (sf, items) = SourceFile::new(rel, crate_name.clone(), &src);
                let file_idx = g.files.len();
                g.constructors.extend(items.constructors);
                g.types.extend(items.types);
                for rf in items.fns {
                    let is_test = rf.is_test || sf.in_test.get(rf.body.0).copied().unwrap_or(false);
                    let facts = scan_body(&sf.toks, rf.body, rf.qual.as_deref(), &rf.params);
                    let idx = g.fns.len();
                    let item = FnItem {
                        file: file_idx,
                        name: rf.name,
                        qual: rf.qual,
                        line: rf.line,
                        facts,
                        is_test,
                    };
                    g.by_name.entry(item.name.clone()).or_default().push(idx);
                    g.by_qual.entry(item.qualified()).or_default().push(idx);
                    g.fns.push(item);
                }
                g.files.push(sf);
            }
        }
        (g, errors)
    }
}

fn rust_files(dir: &Path, out: &mut Vec<std::path::PathBuf>, errors: &mut Vec<String>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            errors.push(format!("read_dir {}: {e}", dir.display()));
            return;
        }
    };
    let mut local: Vec<std::path::PathBuf> = Vec::new();
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            rust_files(&p, out, errors);
        } else if p.extension().is_some_and(|x| x == "rs") {
            local.push(p);
        }
    }
    local.sort();
    out.extend(local);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(src: &str) -> (SourceFile, Vec<RawFn>) {
        let (sf, items) = SourceFile::new("test.rs".into(), "test".into(), src);
        (sf, items.fns)
    }

    #[test]
    fn finds_fns_and_impl_methods() {
        let (_, fns) = graph_of(
            "fn free() {}\nimpl Foo { fn method(&self) {} }\nimpl Bar for Foo { fn t(&self) {} }",
        );
        let names: Vec<String> = fns
            .iter()
            .map(|f| match &f.qual {
                Some(q) => format!("{q}::{}", f.name),
                None => f.name.clone(),
            })
            .collect();
        assert_eq!(names, vec!["free", "Foo::method", "Foo::t"]);
    }

    #[test]
    fn cfg_test_gates_items_but_not_cfg_not_test() {
        let (sf, fns) = graph_of(
            "#[cfg(test)]\nmod tests { fn helper() {} }\n\
             #[cfg(not(test))]\nfn prod() { x.unwrap(); }",
        );
        let prod = fns.iter().position(|f| f.name == "prod").unwrap();
        // helper is inside the test mod; prod is NOT test-gated
        assert!(fns.iter().any(|f| f.name == "helper" && f.is_test));
        assert!(!fns[prod].is_test);
        // prod's unwrap is visible to the body scanner
        let facts = scan_body(&sf.toks, fns[prod].body, None, &[]);
        assert_eq!(facts.sinks.len(), 1);
        assert_eq!(facts.sinks[0].0, SinkKind::Unwrap);
    }

    #[test]
    fn sinks_unwrap_expect_macros_index() {
        let (sf, fns) = graph_of(
            "fn f(v: &[u8], i: usize) {\n\
             v.first().unwrap();\n\
             v.iter().next().expect(\"x\");\n\
             panic!(\"boom\");\n\
             let _ = v[i];\n\
             let _ = &v[..];\n\
             let _ = &v[1..];\n\
             unreachable!();\n\
             }",
        );
        let facts = scan_body(&sf.toks, fns[0].body, None, &[]);
        let kinds: Vec<SinkKind> = facts.sinks.iter().map(|s| s.0).collect();
        assert_eq!(
            kinds,
            vec![
                SinkKind::Unwrap,
                SinkKind::Expect,
                SinkKind::PanicMacro,
                SinkKind::Index, // v[i]
                SinkKind::Index, // v[1..] — sub-range CAN panic; v[..] cannot
                SinkKind::PanicMacro,
            ]
        );
    }

    #[test]
    fn debug_assert_bodies_are_exempt() {
        let (sf, fns) = graph_of(
            "fn f(v: &[u8]) {\n\
             debug_assert!(v[0] == 1 && v.iter().next().unwrap() > 0);\n\
             debug_assert_eq!(v[1], 2);\n\
             let x = v[2];\n\
             }",
        );
        let facts = scan_body(&sf.toks, fns[0].body, None, &[]);
        let kinds: Vec<SinkKind> = facts.sinks.iter().map(|s| s.0).collect();
        assert_eq!(kinds, vec![SinkKind::Index]); // only v[2]
    }

    #[test]
    fn unwrap_split_across_lines_is_caught() {
        // the masked-line scanner missed `.unwrap\n()`
        let (sf, fns) = graph_of("fn f(x: Option<u8>) {\n    x.unwrap\n        ();\n}");
        let facts = scan_body(&sf.toks, fns[0].body, None, &[]);
        assert_eq!(facts.sinks.len(), 1);
        assert_eq!(facts.sinks[0].0, SinkKind::Unwrap);
    }

    #[test]
    fn unwrap_or_is_not_a_sink() {
        let (sf, fns) = graph_of("fn f(x: Option<u8>) { x.unwrap_or(0); x.unwrap_or_else(|| 1); }");
        let facts = scan_body(&sf.toks, fns[0].body, None, &[]);
        assert!(facts.sinks.is_empty());
        assert!(facts.calls.iter().any(|c| c.name == "unwrap_or"));
    }

    #[test]
    fn calls_plain_qualified_method_turbofish() {
        let (sf, fns) = graph_of(
            "fn f() {\n\
             helper(1);\n\
             checked::idx_usize(2);\n\
             Self::assoc(3);\n\
             x.method(4);\n\
             y.collect::<Vec<_>>();\n\
             }",
        );
        let facts = scan_body(&sf.toks, fns[0].body, Some("Me"), &[]);
        let calls: Vec<(Option<String>, String, bool)> = facts
            .calls
            .iter()
            .map(|c| (c.qual.clone(), c.name.clone(), c.method))
            .collect();
        assert!(calls.contains(&(None, "helper".into(), false)));
        assert!(calls.contains(&(Some("checked".into()), "idx_usize".into(), false)));
        assert!(calls.contains(&(Some("Me".into()), "assoc".into(), false)));
        assert!(calls.contains(&(None, "method".into(), true)));
        assert!(calls.contains(&(None, "collect".into(), true)));
    }

    #[test]
    fn slice_patterns_and_attrs_do_not_index() {
        let (sf, fns) = graph_of(
            "fn f(v: &[u8]) {\n\
             let [a, b] = [1u8, 2];\n\
             #[allow(unused)]\n\
             let w: [u8; 2] = [a, b];\n\
             let _ = (a, w, v);\n\
             }",
        );
        let facts = scan_body(&sf.toks, fns[0].body, None, &[]);
        assert!(facts.sinks.is_empty(), "spurious sinks: {:?}", facts.sinks);
    }

    #[test]
    fn tuple_structs_and_enum_variants_are_constructors() {
        let (_, items) = SourceFile::new(
            "t.rs".into(),
            "t".into(),
            "struct P(u8); enum E { A(u8), B { x: u8 }, C }",
        );
        assert!(items.constructors.contains("P"));
        assert!(items.constructors.contains("A"));
        assert!(items.constructors.contains("E::A"));
        assert!(!items.constructors.contains("B"));
        assert!(!items.constructors.contains("C"));
        assert!(items.types.contains("P"));
        assert!(items.types.contains("E"));
    }

    #[test]
    fn use_imports_record_roots() {
        let (sf, _) = graph_of(
            "use std::collections::{BTreeMap, HashMap as Map};\nuse crate::checked::idx_usize;",
        );
        assert_eq!(sf.imports.get("BTreeMap").map(String::as_str), Some("std"));
        assert_eq!(sf.imports.get("Map").map(String::as_str), Some("std"));
        assert_eq!(
            sf.imports.get("idx_usize").map(String::as_str),
            Some("crate")
        );
    }
}
