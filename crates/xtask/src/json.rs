//! Hand-rolled JSON output for `lint --json` plus a minimal parser used
//! by the self-test to prove the emitted bytes round-trip (no
//! dependencies allowed in this workspace, so both directions live
//! here).

use crate::lint::Violation;
use std::collections::BTreeMap;

// ---- rendering -------------------------------------------------------

/// Render the lint outcome as a single JSON object:
/// `{"violations": […], "errors": […]}`.
pub fn render(violations: &[Violation], errors: &[String]) -> String {
    let mut s = String::from("{\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"rule\":");
        escape_into(&mut s, v.rule);
        s.push_str(",\"path\":");
        escape_into(&mut s, &v.path);
        s.push_str(",\"line\":");
        s.push_str(&v.line.to_string());
        s.push_str(",\"content\":");
        escape_into(&mut s, &v.content);
        s.push_str(",\"help\":");
        escape_into(&mut s, &v.help);
        s.push_str(",\"chain\":[");
        for (j, c) in v.chain.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            escape_into(&mut s, c);
        }
        s.push_str("]}");
    }
    s.push_str("],\"errors\":[");
    for (i, e) in errors.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        escape_into(&mut s, e);
    }
    s.push_str("]}");
    s
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ---------------------------------------------------------

/// A parsed JSON value (just enough for round-trip validation).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Numbers (parsed as f64; lint only emits line numbers).
    Num(f64),
    /// Strings, unescaped.
    Str(String),
    /// Arrays.
    Arr(Vec<Value>),
    /// Objects (order-insensitive).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, when an array.
    pub fn items(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The unescaped text, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Errors carry a byte offset.
pub fn parse(src: &str) -> Result<Value, String> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let v = parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing bytes at offset {i}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<Value, String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => parse_obj(b, i),
        Some(b'[') => parse_arr(b, i),
        Some(b'"') => parse_str(b, i).map(Value::Str),
        Some(b't') => parse_lit(b, i, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, i, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, i, "null", Value::Null),
        Some(_) => parse_num(b, i),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {}", *i))
    }
}

fn parse_num(b: &[u8], i: &mut usize) -> Result<Value, String> {
    let start = *i;
    while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *i += 1;
    }
    std::str::from_utf8(&b[start..*i])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_str(b: &[u8], i: &mut usize) -> Result<String, String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at offset {}", *i));
    }
    *i += 1;
    let mut out = String::new();
    loop {
        match b.get(*i) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *i += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*i + 1..*i + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at offset {}", *i))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    _ => return Err(format!("bad escape at offset {}", *i)),
                }
                *i += 1;
            }
            Some(_) => {
                // multi-byte UTF-8 sequences pass through unchanged
                let s = std::str::from_utf8(&b[*i..])
                    .map_err(|_| format!("invalid utf-8 at offset {}", *i))?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *i += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], i: &mut usize) -> Result<Value, String> {
    *i += 1; // [
    let mut out = Vec::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected , or ] at offset {}", *i)),
        }
    }
}

fn parse_obj(b: &[u8], i: &mut usize) -> Result<Value, String> {
    *i += 1; // {
    let mut out = BTreeMap::new();
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, i);
        let key = parse_str(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected : at offset {}", *i));
        }
        *i += 1;
        out.insert(key, parse_value(b, i)?);
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected , or }} at offset {}", *i)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Violation> {
        vec![
            Violation {
                rule: "panic_reach",
                path: "crates/x/src/a.rs".to_string(),
                line: 7,
                content: "v[i] // \"quoted\" \\ backslash".to_string(),
                help: "indexed\nhelp".to_string(),
                chain: vec![
                    "open_mpoint (a.rs:1)".to_string(),
                    "helper (a.rs:5)".to_string(),
                ],
            },
            Violation {
                rule: "determinism",
                path: "crates/y/src/b.rs".to_string(),
                line: 2,
                content: "HashMap<u8, u8>".to_string(),
                help: "use BTreeMap".to_string(),
                chain: Vec::new(),
            },
        ]
    }

    #[test]
    fn round_trips_violations_and_errors() {
        let errs = vec!["stale entry `x`\twith tab".to_string()];
        let rendered = render(&sample(), &errs);
        let doc = parse(&rendered).expect("parse back");
        let vs = doc.get("violations").and_then(Value::items).unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(
            vs[0].get("rule").and_then(Value::as_str),
            Some("panic_reach")
        );
        assert_eq!(vs[0].get("line").and_then(Value::as_num), Some(7.0));
        assert_eq!(
            vs[0].get("content").and_then(Value::as_str),
            Some("v[i] // \"quoted\" \\ backslash")
        );
        assert_eq!(
            vs[0]
                .get("chain")
                .and_then(Value::items)
                .map(<[Value]>::len),
            Some(2)
        );
        assert_eq!(
            vs[1]
                .get("chain")
                .and_then(Value::items)
                .map(<[Value]>::len),
            Some(0)
        );
        let es = doc.get("errors").and_then(Value::items).unwrap();
        assert_eq!(es[0].as_str(), Some("stale entry `x`\twith tab"));
    }

    #[test]
    fn empty_report_is_valid() {
        let rendered = render(&[], &[]);
        assert_eq!(rendered, "{\"violations\":[],\"errors\":[]}");
        assert!(parse(&rendered).is_ok());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn control_chars_are_escaped() {
        let rendered = render(&[], &["bell \u{7} end".to_string()]);
        assert!(rendered.contains("\\u0007"));
        let doc = parse(&rendered).unwrap();
        assert_eq!(
            doc.get("errors").and_then(Value::items).unwrap()[0].as_str(),
            Some("bell \u{7} end")
        );
    }
}
