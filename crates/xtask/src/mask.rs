//! Source masking: blank out comments, strings and char literals so the
//! textual lint rules only ever match *code*.
//!
//! The masked output has exactly the same length and line structure as
//! the input — every masked byte becomes a space (newlines are kept) —
//! so line numbers and column positions survive.

/// Replace the contents of comments, string literals, raw strings and
/// char literals with spaces.
///
/// Handles `//` line comments (including doc comments), nested `/* */`
/// block comments, `"…"` strings with escapes, `r"…"`/`r#"…"#` raw
/// strings, byte strings, and char literals (including lifetimes, which
/// are left untouched).
pub fn mask_source(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Push `n` bytes of `src` masked (newlines kept, the rest spaced).
    let mask_into = |out: &mut Vec<u8>, from: usize, to: usize| {
        for &b in &bytes[from..to] {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment (also covers /// and //! doc comments).
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            let end = src[i..].find('\n').map_or(bytes.len(), |k| i + k);
            mask_into(&mut out, i, end);
            i = end;
            continue;
        }
        // Block comment, nesting like Rust.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && j + 1 < bytes.len() && bytes[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && j + 1 < bytes.len() && bytes[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            mask_into(&mut out, i, j);
            i = j;
            continue;
        }
        // Raw string r"…" / r#"…"# / br#"…"# etc.
        if (b == b'r' || b == b'b') && is_raw_string_start(bytes, i) {
            let start = if b == b'b' { i + 1 } else { i };
            let mut hashes = 0usize;
            let mut j = start + 1;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            // bytes[j] == b'"' guaranteed by is_raw_string_start.
            j += 1;
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            let end = find_subslice(bytes, j, &closer).map_or(bytes.len(), |k| k + closer.len());
            out.extend_from_slice(&bytes[i..j]); // keep the opener visible
            mask_into(&mut out, j, end);
            i = end;
            continue;
        }
        // Plain or byte string literal.
        if b == b'"' || (b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"') {
            let open = if b == b'b' { i + 1 } else { i };
            out.extend_from_slice(&bytes[i..=open]);
            let mut j = open + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => break,
                    _ => j += 1,
                }
            }
            let end = j.min(bytes.len());
            mask_into(&mut out, open + 1, end);
            if end < bytes.len() {
                out.push(b'"');
                i = end + 1;
            } else {
                i = end;
            }
            continue;
        }
        // Char literal vs lifetime: 'a' is a literal, 'a (no close) is a
        // lifetime. A literal closes within a few bytes ('x', '\n', '\u{…}').
        if b == b'\'' {
            if let Some(close) = char_literal_close(bytes, i) {
                out.push(b'\'');
                mask_into(&mut out, i + 1, close);
                out.push(b'\'');
                i = close + 1;
                continue;
            }
        }
        out.push(b);
        i += 1;
    }
    // Masking only substitutes ASCII bytes for ASCII bytes, so the
    // output is valid UTF-8 whenever the input was.
    String::from_utf8_lossy(&out).into_owned()
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = if bytes[i] == b'b' { i + 1 } else { i };
    if j >= bytes.len() || bytes[j] != b'r' {
        return bytes.get(i) == Some(&b'r') && {
            j = i + 1;
            while j < bytes.len() && bytes[j] == b'#' {
                j += 1;
            }
            bytes.get(j) == Some(&b'"')
        };
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

fn find_subslice(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || from >= hay.len() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|k| from + k)
}

/// If `bytes[i] == '\''` starts a char literal, return the index of the
/// closing quote; `None` for lifetimes.
fn char_literal_close(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if j >= bytes.len() {
        return None;
    }
    if bytes[j] == b'\\' {
        // Escape: \n, \t, \\, \', \u{..}, \x7f — scan to the quote.
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' && j - i < 12 {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j);
    }
    // Unescaped char: exactly one (possibly multi-byte) char then '\''.
    let mut k = j + 1;
    while k < bytes.len() && (bytes[k] & 0xC0) == 0x80 {
        k += 1; // skip UTF-8 continuation bytes
    }
    (bytes.get(k) == Some(&b'\'')).then_some(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = 1; // panic!(\"no\")\nlet s = \"unwrap()\";\n/* .expect( */ let y = 2;";
        let m = mask_source(src);
        assert!(!m.contains("panic!"));
        assert!(!m.contains("unwrap"));
        assert!(!m.contains(".expect("));
        assert!(m.contains("let x = 1;"));
        assert!(m.contains("let y = 2;"));
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn masks_raw_strings_and_chars() {
        let src = "let r = r#\"as u32\"#; let c = '\"'; let l: &'static str = \"x\";";
        let m = mask_source(src);
        assert!(!m.contains("as u32"));
        assert!(m.contains("&'static str"));
    }

    #[test]
    fn preserves_length_per_line() {
        let src = "abc \"def\" ghi\n'x' // tail";
        let m = mask_source(src);
        for (a, b) in src.lines().zip(m.lines()) {
            assert_eq!(a.len(), b.len());
        }
    }
}
