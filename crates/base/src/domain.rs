//! Ordered domains over which intervals and range sets are formed.
//!
//! The `range` constructor applies to every type in `BASE ∪ TIME`
//! (Sec 3.2.3). The adjacency predicate `r-adjacent` has an extra clause
//! for *discrete* domains such as `int`: intervals `[a,b]` and `[b+2,c]`
//! are *not* adjacent, but `[a,b]` and `[b+1,c]` are, because no domain
//! element lies strictly between `b` and `b+1`. [`Domain::successor`]
//! captures exactly that.

use crate::instant::Instant;
use crate::real::Real;
use crate::text::Text;

/// A totally ordered domain usable as the point type of intervals.
pub trait Domain: Ord + Clone {
    /// For discrete domains: the smallest element strictly greater than
    /// `self`, or `None` at the top of the domain. Continuous (dense)
    /// domains return `None` always — then no gap `e_u < s_v` can ever be
    /// empty, and the discrete adjacency clause never fires.
    fn successor(&self) -> Option<Self> {
        None
    }

    /// `true` iff the domain is discrete (has meaningful successors).
    fn is_discrete() -> bool {
        false
    }
}

impl Domain for Real {}

impl Domain for Instant {}

impl Domain for Text {}

impl Domain for i64 {
    fn successor(&self) -> Option<i64> {
        self.checked_add(1)
    }
    fn is_discrete() -> bool {
        true
    }
}

impl Domain for bool {
    fn successor(&self) -> Option<bool> {
        if *self {
            None
        } else {
            Some(true)
        }
    }
    fn is_discrete() -> bool {
        true
    }
}

/// `true` iff some domain element lies strictly between `a` and `b`
/// (assuming `a < b`). This decides the last clause of `r-adjacent`.
pub fn has_element_between<S: Domain>(a: &S, b: &S) -> bool {
    if !S::is_discrete() {
        // Dense domain: any non-empty open interval contains elements.
        return a < b;
    }
    match a.successor() {
        Some(succ) => succ < *b,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::r;

    #[test]
    fn int_successors() {
        assert_eq!(3i64.successor(), Some(4));
        assert_eq!(i64::MAX.successor(), None);
        assert!(i64::is_discrete());
    }

    #[test]
    fn real_is_dense() {
        assert_eq!(r(1.0).successor(), None);
        assert!(!Real::is_discrete());
        assert!(has_element_between(&r(1.0), &r(1.0000001)));
        assert!(!has_element_between(&r(1.0), &r(1.0)));
    }

    #[test]
    fn int_between() {
        assert!(!has_element_between(&1i64, &2i64)); // nothing between 1 and 2
        assert!(has_element_between(&1i64, &3i64)); // 2 is between
    }

    #[test]
    fn bool_domain() {
        assert_eq!(false.successor(), Some(true));
        assert_eq!(true.successor(), None);
        assert!(!has_element_between(&false, &true));
    }
}
