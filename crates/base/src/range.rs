//! Finite sets of pairwise disjoint, non-adjacent intervals (Sec 3.2.3).
//!
//! `IntervalSet(S)` requires all member intervals to be mutually
//! `disjoint` and not `adjacent`, which makes the representation of a
//! point set as a set of intervals **unique and minimal**. The discrete
//! `range(α)` types are `IntervalSet(D'_α)` for every `α ∈ BASE ∪ TIME`;
//! the most important instance is `range(instant)` — *periods* — the
//! result type of `deftime` and the argument of `atperiods`.

use crate::domain::Domain;
use crate::error::{InvariantViolation, Result};
use crate::instant::Instant;
use crate::interval::Interval;
use crate::real::Real;
use crate::validate::Validate;
use crate::value::Val;
use std::fmt;

/// An ordered set of pairwise disjoint, non-adjacent intervals.
///
/// ```
/// use mob_base::{t, Interval, Periods};
///
/// let p = Periods::from_unmerged(vec![
///     Interval::closed(t(0.0), t(2.0)),
///     Interval::closed(t(1.0), t(3.0)), // overlaps: merged
///     Interval::closed(t(5.0), t(6.0)),
/// ]);
/// assert_eq!(p.num_intervals(), 2);
/// assert!(p.contains(&t(2.5)));
/// assert!(!p.contains(&t(4.0)));
/// assert_eq!(p.total_duration().get(), 4.0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RangeSet<S> {
    /// Sorted by `cmp_start`; invariants enforced at construction.
    intervals: Vec<Interval<S>>,
}

/// Sets of time intervals — `range(instant)`.
pub type Periods = RangeSet<Instant>;

impl<S: Domain> RangeSet<S> {
    /// The empty range set.
    pub fn empty() -> RangeSet<S> {
        RangeSet {
            intervals: Vec::new(),
        }
    }

    /// A range set holding a single interval.
    pub fn single(iv: Interval<S>) -> RangeSet<S> {
        RangeSet {
            intervals: vec![iv],
        }
    }

    /// Validating constructor: intervals must already be sorted, disjoint
    /// and non-adjacent (the carrier-set conditions).
    pub fn try_new(intervals: Vec<Interval<S>>) -> Result<RangeSet<S>> {
        for w in intervals.windows(2) {
            if w[0].cmp_start(&w[1]) != std::cmp::Ordering::Less {
                return Err(InvariantViolation::new("range: intervals must be sorted"));
            }
            if !w[0].disjoint(&w[1]) {
                return Err(InvariantViolation::new("range: intervals must be disjoint"));
            }
            if w[0].adjacent(&w[1]) {
                return Err(InvariantViolation::new(
                    "range: intervals must not be adjacent",
                ));
            }
        }
        Ok(RangeSet { intervals })
    }

    /// Normalizing constructor: accepts arbitrary (possibly overlapping,
    /// adjacent, unsorted) intervals and produces the unique minimal
    /// representation of their union.
    pub fn from_unmerged(mut intervals: Vec<Interval<S>>) -> RangeSet<S> {
        intervals.sort_by(|a, b| a.cmp_start(b));
        let mut merged: Vec<Interval<S>> = Vec::with_capacity(intervals.len());
        for iv in intervals {
            match merged.last_mut() {
                Some(last) => match last.union_merged(&iv) {
                    Some(u) => *last = u,
                    None => merged.push(iv),
                },
                None => merged.push(iv),
            }
        }
        RangeSet { intervals: merged }
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of component intervals (the `no_components` operation).
    pub fn num_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Iterate over the component intervals in order.
    pub fn iter(&self) -> impl Iterator<Item = &Interval<S>> {
        self.intervals.iter()
    }

    /// The component intervals as a slice.
    pub fn as_slice(&self) -> &[Interval<S>] {
        &self.intervals
    }

    /// Membership test (`inside` for a single value).
    pub fn contains(&self, v: &S) -> bool {
        // Binary search on start points, then check the candidate.
        let idx = self
            .intervals
            .partition_point(|iv| iv.start() < v || (iv.start() == v && iv.left_closed()));
        idx > 0 && self.intervals[idx - 1].contains(v)
    }

    /// `true` if every point of `iv` is in the set.
    pub fn contains_interval(&self, iv: &Interval<S>) -> bool {
        self.intervals.iter().any(|own| own.contains_interval(iv))
    }

    /// `true` if the two sets share at least one point.
    pub fn intersects(&self, other: &RangeSet<S>) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let a = &self.intervals[i];
            let b = &other.intervals[j];
            if a.intersects(b) {
                return true;
            }
            if a.end() < b.end() || (a.end() == b.end() && !a.right_closed()) {
                i += 1;
            } else {
                j += 1;
            }
        }
        false
    }

    /// Set union (minimal representation).
    pub fn union(&self, other: &RangeSet<S>) -> RangeSet<S> {
        let mut all = Vec::with_capacity(self.intervals.len() + other.intervals.len());
        all.extend(self.intervals.iter().cloned());
        all.extend(other.intervals.iter().cloned());
        RangeSet::from_unmerged(all)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &RangeSet<S>) -> RangeSet<S> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let a = &self.intervals[i];
            let b = &other.intervals[j];
            if let Some(x) = a.intersection(b) {
                out.push(x);
            }
            // Advance whichever interval ends first.
            if a.end() < b.end() || (a.end() == b.end() && !a.right_closed() && b.right_closed()) {
                i += 1;
            } else if b.end() < a.end()
                || (a.end() == b.end() && a.right_closed() && !b.right_closed())
            {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        // Pieces of the intersection can be adjacent (e.g. [0,1] ∩ and
        // (1,2] pieces from different pairs), so normalize.
        RangeSet::from_unmerged(out)
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &RangeSet<S>) -> RangeSet<S> {
        let mut out: Vec<Interval<S>> = Vec::new();
        for a in &self.intervals {
            let mut pieces = vec![a.clone()];
            for b in &other.intervals {
                if b.start() > a.end() {
                    break;
                }
                let mut next = Vec::with_capacity(pieces.len() + 1);
                for p in pieces {
                    next.extend(p.difference(b));
                }
                pieces = next;
                if pieces.is_empty() {
                    break;
                }
            }
            out.extend(pieces);
        }
        RangeSet::from_unmerged(out)
    }

    /// Smallest value in the set (⊥ when empty or the infimum is excluded
    /// — for a left-open first interval we still return its start, as the
    /// abstract `min` is then not attained; callers that need attained
    /// minima should inspect the interval).
    pub fn minimum(&self) -> Val<S> {
        match self.intervals.first() {
            Some(iv) => Val::Def(iv.start().clone()),
            None => Val::Undef,
        }
    }

    /// Largest value in the set (supremum; see [`RangeSet::minimum`]).
    pub fn maximum(&self) -> Val<S> {
        match self.intervals.last() {
            Some(iv) => Val::Def(iv.end().clone()),
            None => Val::Undef,
        }
    }

    /// Restrict to a single interval (`self ∩ {iv}`).
    pub fn restrict(&self, iv: &Interval<S>) -> RangeSet<S> {
        self.intersection(&RangeSet::single(iv.clone()))
    }
}

impl Periods {
    /// The gaps between the component intervals, within the set's own
    /// span (the bounded complement; empty for 0 or 1 components).
    pub fn gaps(&self) -> Periods {
        if self.intervals.len() < 2 {
            return Periods::empty();
        }
        let span = Interval::new(
            self.intervals.first().expect("len >= 2").start().to_owned(),
            self.intervals.last().expect("len >= 2").end().to_owned(),
            true,
            true,
        );
        Periods::single(span).difference(self)
    }

    /// Total duration of all component time intervals.
    pub fn total_duration(&self) -> Real {
        self.intervals
            .iter()
            .fold(Real::ZERO, |acc, iv| acc + iv.duration())
    }
}

impl<S: Domain> Validate for RangeSet<S> {
    /// Re-check the `IntervalSet` side conditions: every member interval
    /// is valid, and members are sorted, pairwise disjoint and
    /// non-adjacent (unique minimal representation).
    fn validate(&self) -> Result<()> {
        for iv in &self.intervals {
            iv.validate()?;
        }
        for w in self.intervals.windows(2) {
            if w[0].cmp_start(&w[1]) != std::cmp::Ordering::Less {
                return Err(InvariantViolation::new("range: intervals must be sorted"));
            }
            if !w[0].disjoint(&w[1]) {
                return Err(InvariantViolation::new("range: intervals must be disjoint"));
            }
            if w[0].adjacent(&w[1]) {
                return Err(InvariantViolation::new(
                    "range: intervals must not be adjacent",
                ));
            }
        }
        Ok(())
    }
}

impl<S: Domain> Default for RangeSet<S> {
    fn default() -> Self {
        RangeSet::empty()
    }
}

impl<S: Domain> FromIterator<Interval<S>> for RangeSet<S> {
    fn from_iter<I: IntoIterator<Item = Interval<S>>>(iter: I) -> Self {
        RangeSet::from_unmerged(iter.into_iter().collect())
    }
}

impl<S: Domain + fmt::Debug> fmt::Debug for RangeSet<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.intervals.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instant::t;
    use crate::real::r;

    fn iv(s: f64, e: f64) -> Interval<Instant> {
        Interval::closed(t(s), t(e))
    }

    fn ivf(s: f64, e: f64, lc: bool, rc: bool) -> Interval<Instant> {
        Interval::new(t(s), t(e), lc, rc)
    }

    #[test]
    fn try_new_enforces_invariants() {
        assert!(RangeSet::try_new(vec![iv(0.0, 1.0), iv(2.0, 3.0)]).is_ok());
        // Unsorted.
        assert!(RangeSet::try_new(vec![iv(2.0, 3.0), iv(0.0, 1.0)]).is_err());
        // Overlapping.
        assert!(RangeSet::try_new(vec![iv(0.0, 2.0), iv(1.0, 3.0)]).is_err());
        // Adjacent ([0,1] and (1,2]).
        assert!(RangeSet::try_new(vec![iv(0.0, 1.0), ivf(1.0, 2.0, false, true)]).is_err());
    }

    #[test]
    fn from_unmerged_normalizes() {
        let rs =
            RangeSet::from_unmerged(vec![ivf(1.0, 2.0, false, true), iv(0.0, 1.0), iv(5.0, 6.0)]);
        assert_eq!(rs.num_intervals(), 2);
        assert_eq!(rs.as_slice()[0], iv(0.0, 2.0));
        assert_eq!(rs.as_slice()[1], iv(5.0, 6.0));
    }

    #[test]
    fn membership() {
        let rs = RangeSet::from_unmerged(vec![iv(0.0, 1.0), ivf(2.0, 3.0, false, false)]);
        assert!(rs.contains(&t(0.0)));
        assert!(rs.contains(&t(0.5)));
        assert!(rs.contains(&t(1.0)));
        assert!(!rs.contains(&t(1.5)));
        assert!(!rs.contains(&t(2.0)));
        assert!(rs.contains(&t(2.5)));
        assert!(!rs.contains(&t(3.0)));
        assert!(!rs.contains(&t(-1.0)));
        assert!(!rs.contains(&t(9.0)));
    }

    #[test]
    fn union_merges_across_sets() {
        let a = RangeSet::from_unmerged(vec![iv(0.0, 1.0), iv(4.0, 5.0)]);
        let b = RangeSet::from_unmerged(vec![ivf(1.0, 2.0, false, true)]);
        let u = a.union(&b);
        assert_eq!(u.num_intervals(), 2);
        assert_eq!(u.as_slice()[0], iv(0.0, 2.0));
    }

    #[test]
    fn intersection_two_pointer() {
        let a = RangeSet::from_unmerged(vec![iv(0.0, 2.0), iv(3.0, 5.0), iv(7.0, 8.0)]);
        let b = RangeSet::from_unmerged(vec![iv(1.0, 4.0), ivf(4.5, 7.5, false, false)]);
        let x = a.intersection(&b);
        assert_eq!(
            x.as_slice(),
            &[
                iv(1.0, 2.0),
                iv(3.0, 4.0),
                ivf(4.5, 5.0, false, true),
                ivf(7.0, 7.5, true, false),
            ]
        );
    }

    #[test]
    fn difference_carves_holes() {
        let a = RangeSet::single(iv(0.0, 10.0));
        let b = RangeSet::from_unmerged(vec![ivf(2.0, 3.0, false, false), iv(5.0, 6.0)]);
        let d = a.difference(&b);
        assert_eq!(
            d.as_slice(),
            &[
                iv(0.0, 2.0),
                ivf(3.0, 5.0, true, false),
                ivf(6.0, 10.0, false, true),
            ]
        );
        // a \ a = empty
        assert!(a.difference(&a).is_empty());
    }

    #[test]
    fn intersects_and_extremes() {
        let a = RangeSet::from_unmerged(vec![iv(0.0, 1.0), iv(5.0, 6.0)]);
        let b = RangeSet::single(iv(0.5, 0.7));
        let c = RangeSet::single(iv(2.0, 3.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.minimum(), Val::Def(t(0.0)));
        assert_eq!(a.maximum(), Val::Def(t(6.0)));
        assert_eq!(RangeSet::<Instant>::empty().minimum(), Val::Undef);
    }

    #[test]
    fn gaps_are_the_bounded_complement() {
        let a = Periods::from_unmerged(vec![iv(0.0, 1.0), iv(3.0, 4.0), iv(6.0, 7.0)]);
        let g = a.gaps();
        assert_eq!(
            g.as_slice(),
            &[ivf(1.0, 3.0, false, false), ivf(4.0, 6.0, false, false)]
        );
        assert!(Periods::single(iv(0.0, 5.0)).gaps().is_empty());
        assert!(Periods::empty().gaps().is_empty());
        // Union of set and gaps is one solid interval.
        assert_eq!(a.union(&g).num_intervals(), 1);
    }

    #[test]
    fn total_duration() {
        let a = Periods::from_unmerged(vec![iv(0.0, 1.0), iv(5.0, 6.5)]);
        assert_eq!(a.total_duration(), r(2.5));
    }

    #[test]
    fn int_range_normalization_is_continuous_merge_only() {
        // Over int, [0,2] and [3,5] are adjacent (no element between), so
        // from_unmerged merges them.
        let rs =
            RangeSet::from_unmerged(vec![Interval::closed(0i64, 2), Interval::closed(3i64, 5)]);
        assert_eq!(rs.num_intervals(), 1);
        assert_eq!(rs.as_slice()[0], Interval::closed(0i64, 5));
        // But [0,2] and [4,5] stay separate.
        let rs =
            RangeSet::from_unmerged(vec![Interval::closed(0i64, 2), Interval::closed(4i64, 5)]);
        assert_eq!(rs.num_intervals(), 2);
    }

    #[test]
    fn restrict() {
        let a = RangeSet::from_unmerged(vec![iv(0.0, 2.0), iv(3.0, 5.0)]);
        let x = a.restrict(&iv(1.0, 4.0));
        assert_eq!(x.as_slice(), &[iv(1.0, 2.0), iv(3.0, 4.0)]);
    }
}
