//! The discrete time type `instant` (Sec 3.2.1): `Instant = real`.
//!
//! Time is isomorphic to the real numbers; [`Instant`] is a newtype over
//! [`Real`] so that time values cannot be accidentally mixed with plain
//! reals in operation signatures, while still supporting the arithmetic
//! needed by unit evaluation (`ι((x0,x1,y0,y1), t) = (x0 + x1·t, …)`).

use crate::real::Real;
use std::fmt;
use std::ops::{Add, Sub};

/// A point on the (continuous) time axis.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Instant(Real);

impl Instant {
    /// Time zero — a convenient origin for examples and generators.
    pub const ZERO: Instant = Instant(Real::ZERO);

    /// Construct from a `Real`.
    #[inline]
    pub fn new(v: Real) -> Instant {
        Instant(v)
    }

    /// Construct from a raw `f64` (panics on NaN).
    #[inline]
    pub fn from_f64(v: f64) -> Instant {
        Instant(Real::new(v))
    }

    /// Fallible construction from a raw `f64`.
    ///
    /// Returns an error on NaN instead of panicking — the entry point for
    /// decode paths reading untrusted bytes.
    #[inline]
    pub fn try_from_f64(v: f64) -> crate::error::Result<Instant> {
        Real::try_new(v).map(Instant)
    }

    /// The underlying real value.
    #[inline]
    pub fn value(self) -> Real {
        self.0
    }

    /// The underlying `f64`.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0.get()
    }

    /// Midpoint between two instants.
    #[inline]
    pub fn midpoint(self, other: Instant) -> Instant {
        Instant(Real::new((self.as_f64() + other.as_f64()) / 2.0))
    }

    /// Smaller of two instants.
    #[inline]
    pub fn min(self, other: Instant) -> Instant {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Larger of two instants.
    #[inline]
    pub fn max(self, other: Instant) -> Instant {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for Instant {
    #[inline]
    fn from(v: f64) -> Instant {
        Instant::from_f64(v)
    }
}

impl From<Real> for Instant {
    #[inline]
    fn from(v: Real) -> Instant {
        Instant(v)
    }
}

/// Duration between instants is a plain `Real` (the model has no separate
/// duration type).
impl Sub for Instant {
    type Output = Real;
    #[inline]
    fn sub(self, rhs: Instant) -> Real {
        self.0 - rhs.0
    }
}

impl Add<Real> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, rhs: Real) -> Instant {
        Instant(self.0 + rhs)
    }
}

impl Sub<Real> for Instant {
    type Output = Instant;
    #[inline]
    fn sub(self, rhs: Real) -> Instant {
        Instant(self.0 - rhs)
    }
}

/// Shorthand constructor used pervasively in tests and examples.
#[inline]
pub fn t(v: f64) -> Instant {
    Instant::from_f64(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::real::r;

    #[test]
    fn ordering_and_arithmetic() {
        assert!(t(1.0) < t(2.0));
        assert_eq!(t(2.0) - t(0.5), r(1.5));
        assert_eq!(t(2.0) + r(1.0), t(3.0));
        assert_eq!(t(2.0) - r(1.0), t(1.0));
    }

    #[test]
    fn midpoint_min_max() {
        assert_eq!(t(1.0).midpoint(t(3.0)), t(2.0));
        assert_eq!(t(1.0).min(t(3.0)), t(1.0));
        assert_eq!(t(1.0).max(t(3.0)), t(3.0));
    }

    #[test]
    fn conversions() {
        let i: Instant = 4.5.into();
        assert_eq!(i.as_f64(), 4.5);
        assert_eq!(i.value(), r(4.5));
    }
}
