//! The discrete `real` type: a totally ordered wrapper over `f64`.
//!
//! The paper defines `D_real = real ∪ {⊥}` in terms of the programming
//! language `real` type (Sec 3.2.1). Rust's `f64` is not totally ordered
//! because of NaN, but the model requires a total order (intervals, range
//! sets and lexicographic point order all depend on it). [`Real`] therefore
//! rejects NaN at construction time and implements `Ord`/`Eq`.
//!
//! Undefinedness (⊥) is *not* folded into [`Real`]; it is modelled
//! explicitly by [`crate::Val`] so that defined values stay a total order.

use crate::error::{InvariantViolation, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A finite-or-infinite, never-NaN `f64` with a total order.
///
/// `Real` is `Copy` and 8 bytes, so it can be freely embedded in the
/// fixed-size records of `mob-storage`.
#[derive(Clone, Copy, Default, PartialEq, PartialOrd)]
pub struct Real(f64);

impl Real {
    /// Zero.
    pub const ZERO: Real = Real(0.0);
    /// One.
    pub const ONE: Real = Real(1.0);

    /// Wrap an `f64`. Panics on NaN; use [`Real::try_new`] to handle
    /// untrusted input.
    #[inline]
    pub fn new(v: f64) -> Real {
        assert!(!v.is_nan(), "Real cannot hold NaN");
        Real(v)
    }

    /// Wrap an `f64`, returning an error on NaN.
    #[inline]
    pub fn try_new(v: f64) -> Result<Real> {
        if v.is_nan() {
            Err(InvariantViolation::new("real: value must not be NaN"))
        } else {
            Ok(Real(v))
        }
    }

    /// The raw `f64`.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Real {
        Real(self.0.abs())
    }

    /// Square root. Returns an error for negative input (which would
    /// produce NaN).
    #[inline]
    pub fn sqrt(self) -> Result<Real> {
        if self.0 < 0.0 {
            Err(InvariantViolation::with_detail(
                "real: sqrt of negative value",
                format!("{}", self.0),
            ))
        } else {
            Ok(Real(self.0.sqrt()))
        }
    }

    /// Square root clamped at zero: treats small negative values (rounding
    /// residue of quadratic evaluation) as zero.
    #[inline]
    pub fn sqrt_clamped(self) -> Real {
        if self.0 <= 0.0 {
            Real::ZERO
        } else {
            Real(self.0.sqrt())
        }
    }

    /// Smaller of two values.
    #[inline]
    pub fn min(self, other: Real) -> Real {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Larger of two values.
    #[inline]
    pub fn max(self, other: Real) -> Real {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `true` if the two values differ by at most `eps`.
    ///
    /// Geometric predicates on well-conditioned data use exact comparison;
    /// this helper exists for tests and for intersection post-conditions.
    #[inline]
    pub fn approx_eq(self, other: Real, eps: f64) -> bool {
        (self.0 - other.0).abs() <= eps
    }

    /// `true` for +/- infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0.is_infinite()
    }

    /// `true` for a finite value.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Linear interpolation `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Real, t: Real) -> Real {
        Real(self.0 + t.0 * (other.0 - self.0))
    }
}

impl Eq for Real {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Real {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: NaN is excluded by construction.
        self.0.partial_cmp(&other.0).expect("Real is never NaN")
    }
}

impl std::hash::Hash for Real {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Normalize -0.0 to +0.0 so Hash agrees with Eq.
        let v = if self.0 == 0.0 { 0.0f64 } else { self.0 };
        v.to_bits().hash(state);
    }
}

impl fmt::Debug for Real {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Real {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for Real {
    #[inline]
    fn from(v: f64) -> Real {
        Real::new(v)
    }
}

impl From<i32> for Real {
    #[inline]
    fn from(v: i32) -> Real {
        Real(v as f64)
    }
}

impl From<Real> for f64 {
    #[inline]
    fn from(r: Real) -> f64 {
        r.0
    }
}

impl Add for Real {
    type Output = Real;
    #[inline]
    fn add(self, rhs: Real) -> Real {
        Real::new(self.0 + rhs.0)
    }
}

impl Sub for Real {
    type Output = Real;
    #[inline]
    fn sub(self, rhs: Real) -> Real {
        Real::new(self.0 - rhs.0)
    }
}

impl Mul for Real {
    type Output = Real;
    #[inline]
    fn mul(self, rhs: Real) -> Real {
        Real::new(self.0 * rhs.0)
    }
}

impl Div for Real {
    type Output = Real;
    #[inline]
    fn div(self, rhs: Real) -> Real {
        Real::new(self.0 / rhs.0)
    }
}

impl Neg for Real {
    type Output = Real;
    #[inline]
    fn neg(self) -> Real {
        Real(-self.0)
    }
}

impl AddAssign for Real {
    #[inline]
    fn add_assign(&mut self, rhs: Real) {
        *self = *self + rhs;
    }
}

impl SubAssign for Real {
    #[inline]
    fn sub_assign(&mut self, rhs: Real) {
        *self = *self - rhs;
    }
}

/// Shorthand constructor used pervasively in tests and examples.
#[inline]
pub fn r(v: f64) -> Real {
    Real::new(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rejects_nan() {
        assert!(Real::try_new(f64::NAN).is_err());
        assert!(Real::try_new(1.5).is_ok());
        assert!(Real::try_new(f64::INFINITY).is_ok());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn new_panics_on_nan() {
        let _ = Real::new(f64::NAN);
    }

    #[test]
    fn total_order() {
        let mut v = vec![r(3.0), r(-1.0), r(2.5), r(0.0)];
        v.sort();
        assert_eq!(v, vec![r(-1.0), r(0.0), r(2.5), r(3.0)]);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(2.0) + r(3.0), r(5.0));
        assert_eq!(r(2.0) - r(3.0), r(-1.0));
        assert_eq!(r(2.0) * r(3.0), r(6.0));
        assert_eq!(r(6.0) / r(3.0), r(2.0));
        assert_eq!(-r(2.0), r(-2.0));
    }

    #[test]
    fn sqrt_behaviour() {
        assert_eq!(r(9.0).sqrt().unwrap(), r(3.0));
        assert!(r(-1.0).sqrt().is_err());
        assert_eq!(r(-1e-12).sqrt_clamped(), Real::ZERO);
        assert_eq!(r(4.0).sqrt_clamped(), r(2.0));
    }

    #[test]
    fn min_max_lerp() {
        assert_eq!(r(1.0).min(r(2.0)), r(1.0));
        assert_eq!(r(1.0).max(r(2.0)), r(2.0));
        assert_eq!(r(0.0).lerp(r(10.0), r(0.25)), r(2.5));
    }

    #[test]
    fn hash_consistent_with_eq_for_zero() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |x: Real| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(r(0.0), r(-0.0));
        assert_eq!(h(r(0.0)), h(r(-0.0)));
    }

    #[test]
    fn approx_eq() {
        assert!(r(1.0).approx_eq(r(1.0 + 1e-12), 1e-9));
        assert!(!r(1.0).approx_eq(r(1.1), 1e-9));
    }
}
