//! Intervals over an ordered domain (Sec 3.2.3).
//!
//! `Interval(S) = {(s, e, lc, rc) | s,e ∈ S, lc,rc ∈ bool, s ≤ e,
//! (s = e) ⇒ (lc = rc = true)}` — an interval is its end points plus two
//! closedness flags. This module also implements the paper's
//! `r-disjoint` / `disjoint` / `r-adjacent` / `adjacent` predicates
//! verbatim, including the discrete-domain clause of `r-adjacent`.

use crate::domain::{has_element_between, Domain};
use crate::error::{InvariantViolation, Result};
use crate::instant::Instant;
use crate::real::Real;
use crate::validate::Validate;
use std::cmp::Ordering;
use std::fmt;

/// An interval `(s, e, lc, rc)` over domain `S`.
///
/// ```
/// use mob_base::{t, Interval};
///
/// let a = Interval::closed(t(0.0), t(1.0));      // [0, 1]
/// let b = Interval::open_closed(t(1.0), t(2.0)); // (1, 2]
/// assert!(a.disjoint(&b));
/// assert!(a.adjacent(&b)); // they fit together exactly
/// assert_eq!(a.union_merged(&b).unwrap(), Interval::closed(t(0.0), t(2.0)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval<S> {
    s: S,
    e: S,
    lc: bool,
    rc: bool,
}

/// Time intervals — the unit-interval type of the sliced representation.
pub type TimeInterval = Interval<Instant>;

impl<S: Domain> Interval<S> {
    /// Construct with full control over the flags.
    ///
    /// Enforces `s ≤ e` and `(s = e) ⇒ lc ∧ rc`.
    pub fn try_new(s: S, e: S, lc: bool, rc: bool) -> Result<Interval<S>> {
        match s.cmp(&e) {
            Ordering::Greater => Err(InvariantViolation::new("interval: s <= e")),
            Ordering::Equal if !(lc && rc) => Err(InvariantViolation::new(
                "interval: (s = e) => (lc = rc = true)",
            )),
            _ => Ok(Interval { s, e, lc, rc }),
        }
    }

    /// Construct, panicking on invalid bounds. For trusted call sites.
    #[track_caller]
    pub fn new(s: S, e: S, lc: bool, rc: bool) -> Interval<S> {
        Interval::try_new(s, e, lc, rc).expect("invalid interval")
    }

    /// The closed interval `[s, e]`.
    #[track_caller]
    pub fn closed(s: S, e: S) -> Interval<S> {
        Interval::new(s, e, true, true)
    }

    /// The open interval `(s, e)`. Requires `s < e`.
    #[track_caller]
    pub fn open(s: S, e: S) -> Interval<S> {
        Interval::new(s, e, false, false)
    }

    /// The half-open interval `[s, e)`. Requires `s < e`.
    #[track_caller]
    pub fn closed_open(s: S, e: S) -> Interval<S> {
        Interval::new(s, e, true, false)
    }

    /// The half-open interval `(s, e]`. Requires `s < e`.
    #[track_caller]
    pub fn open_closed(s: S, e: S) -> Interval<S> {
        Interval::new(s, e, false, true)
    }

    /// The degenerate point interval `[v, v]`.
    pub fn point(v: S) -> Interval<S> {
        Interval {
            s: v.clone(),
            e: v,
            lc: true,
            rc: true,
        }
    }

    /// Left end point.
    #[inline]
    pub fn start(&self) -> &S {
        &self.s
    }

    /// Right end point.
    #[inline]
    pub fn end(&self) -> &S {
        &self.e
    }

    /// `lc`: whether the left end point belongs to the interval.
    #[inline]
    pub fn left_closed(&self) -> bool {
        self.lc
    }

    /// `rc`: whether the right end point belongs to the interval.
    #[inline]
    pub fn right_closed(&self) -> bool {
        self.rc
    }

    /// `true` for the degenerate `[v, v]` interval.
    #[inline]
    pub fn is_point(&self) -> bool {
        self.s == self.e
    }

    /// Membership in `σ(i)` — the full semantics of the interval.
    pub fn contains(&self, v: &S) -> bool {
        let after_start = match v.cmp(&self.s) {
            Ordering::Greater => true,
            Ordering::Equal => self.lc,
            Ordering::Less => false,
        };
        let before_end = match v.cmp(&self.e) {
            Ordering::Less => true,
            Ordering::Equal => self.rc,
            Ordering::Greater => false,
        };
        after_start && before_end
    }

    /// Membership in `σ'(i)` — the open part `{u | s < u < e}` only.
    pub fn contains_open(&self, v: &S) -> bool {
        *v > self.s && *v < self.e
    }

    /// `true` if every point of `other` lies in `self`.
    pub fn contains_interval(&self, other: &Interval<S>) -> bool {
        let left_ok = match other.s.cmp(&self.s) {
            Ordering::Greater => true,
            Ordering::Equal => self.lc || !other.lc,
            Ordering::Less => false,
        };
        let right_ok = match other.e.cmp(&self.e) {
            Ordering::Less => true,
            Ordering::Equal => self.rc || !other.rc,
            Ordering::Greater => false,
        };
        left_ok && right_ok
    }

    /// The paper's `r-disjoint(u, v)`:
    /// `e_u < s_v ∨ (e_u = s_v ∧ ¬(rc_u ∧ lc_v))`.
    pub fn r_disjoint(&self, v: &Interval<S>) -> bool {
        self.e < v.s || (self.e == v.s && !(self.rc && v.lc))
    }

    /// The paper's `disjoint(u, v)`.
    pub fn disjoint(&self, v: &Interval<S>) -> bool {
        self.r_disjoint(v) || v.r_disjoint(self)
    }

    /// `true` iff the intervals share at least one point.
    pub fn intersects(&self, v: &Interval<S>) -> bool {
        !self.disjoint(v)
    }

    /// The paper's `r-adjacent(u, v)`: disjoint and meeting either exactly
    /// at a shared end point (with exactly one side closed) or across an
    /// empty gap of the discrete domain.
    pub fn r_adjacent(&self, v: &Interval<S>) -> bool {
        self.disjoint(v)
            && ((self.e == v.s && (self.rc || v.lc))
                || (self.e < v.s && self.rc && v.lc && !has_element_between(&self.e, &v.s)))
    }

    /// The paper's `adjacent(u, v)`.
    pub fn adjacent(&self, v: &Interval<S>) -> bool {
        self.r_adjacent(v) || v.r_adjacent(self)
    }

    /// Intersection of two intervals, or `None` if disjoint.
    pub fn intersection(&self, v: &Interval<S>) -> Option<Interval<S>> {
        if self.disjoint(v) {
            return None;
        }
        let (s, lc) = match self.s.cmp(&v.s) {
            Ordering::Greater => (self.s.clone(), self.lc),
            Ordering::Less => (v.s.clone(), v.lc),
            Ordering::Equal => (self.s.clone(), self.lc && v.lc),
        };
        let (e, rc) = match self.e.cmp(&v.e) {
            Ordering::Less => (self.e.clone(), self.rc),
            Ordering::Greater => (v.e.clone(), v.rc),
            Ordering::Equal => (self.e.clone(), self.rc && v.rc),
        };
        // Intersection of non-disjoint intervals is always a valid interval.
        Some(Interval::new(s, e, lc, rc))
    }

    /// Union of two intervals that overlap or are adjacent (so the result
    /// is a single interval); `None` if they are separated.
    pub fn union_merged(&self, v: &Interval<S>) -> Option<Interval<S>> {
        if self.disjoint(v) && !self.adjacent(v) {
            return None;
        }
        let (s, lc) = match self.s.cmp(&v.s) {
            Ordering::Less => (self.s.clone(), self.lc),
            Ordering::Greater => (v.s.clone(), v.lc),
            Ordering::Equal => (self.s.clone(), self.lc || v.lc),
        };
        let (e, rc) = match self.e.cmp(&v.e) {
            Ordering::Greater => (self.e.clone(), self.rc),
            Ordering::Less => (v.e.clone(), v.rc),
            Ordering::Equal => (self.e.clone(), self.rc || v.rc),
        };
        Some(Interval::new(s, e, lc, rc))
    }

    /// Set difference `self \ v` as zero, one or two intervals.
    pub fn difference(&self, v: &Interval<S>) -> Vec<Interval<S>> {
        if self.disjoint(v) {
            return vec![self.clone()];
        }
        let mut out = Vec::with_capacity(2);
        // Left remainder: points of self strictly before v's start (plus
        // v.s itself when v is left-open).
        let left_end_closed = !v.lc;
        let keep_left = match self.s.cmp(&v.s) {
            Ordering::Less => true,
            Ordering::Equal => self.lc && left_end_closed,
            Ordering::Greater => false,
        };
        if keep_left {
            if self.s == v.s {
                out.push(Interval::point(self.s.clone()));
            } else if let Ok(iv) =
                Interval::try_new(self.s.clone(), v.s.clone(), self.lc, left_end_closed)
            {
                if !iv.is_point() || (iv.lc && iv.rc) {
                    out.push(iv);
                }
            }
        }
        // Right remainder symmetric.
        let right_start_closed = !v.rc;
        let keep_right = match self.e.cmp(&v.e) {
            Ordering::Greater => true,
            Ordering::Equal => self.rc && right_start_closed,
            Ordering::Less => false,
        };
        if keep_right {
            if self.e == v.e {
                out.push(Interval::point(self.e.clone()));
            } else if let Ok(iv) =
                Interval::try_new(v.e.clone(), self.e.clone(), right_start_closed, self.rc)
            {
                out.push(iv);
            }
        }
        out
    }

    /// Total order used to sort interval collections: by start point,
    /// closed starts first, then by end.
    pub fn cmp_start(&self, other: &Interval<S>) -> Ordering {
        self.s
            .cmp(&other.s)
            .then_with(|| other.lc.cmp(&self.lc))
            .then_with(|| self.e.cmp(&other.e))
            .then_with(|| self.rc.cmp(&other.rc))
    }
}

impl TimeInterval {
    /// Duration `e - s` of a time interval.
    pub fn duration(&self) -> Real {
        *self.end() - *self.start()
    }

    /// An instant guaranteed to lie in `σ'(i)` for non-degenerate
    /// intervals (the midpoint); for point intervals, the point itself.
    /// Used by validity checks that must sample the open interior.
    pub fn interior_instant(&self) -> Instant {
        if self.is_point() {
            *self.start()
        } else {
            self.start().midpoint(*self.end())
        }
    }

    /// Evenly spaced sample instants inside the open interval (plus the
    /// end points when closed). For semantic cross-checking in tests.
    pub fn sample_instants(&self, n_interior: usize) -> Vec<Instant> {
        let mut out = Vec::with_capacity(n_interior + 2);
        if self.left_closed() {
            out.push(*self.start());
        }
        if !self.is_point() {
            let s = self.start().as_f64();
            let e = self.end().as_f64();
            for k in 1..=n_interior {
                let f = k as f64 / (n_interior as f64 + 1.0);
                out.push(Instant::from_f64(s + f * (e - s)));
            }
            if self.right_closed() {
                out.push(*self.end());
            }
        }
        out
    }
}

impl<S: Domain> Validate for Interval<S> {
    /// Re-check the Section 3.2.3 side conditions:
    /// `s ≤ e` and `(s = e) ⇒ (lc = rc = true)`.
    fn validate(&self) -> Result<()> {
        match self.s.cmp(&self.e) {
            Ordering::Greater => Err(InvariantViolation::new("interval: s <= e")),
            Ordering::Equal if !(self.lc && self.rc) => Err(InvariantViolation::new(
                "interval: (s = e) => (lc = rc = true)",
            )),
            _ => Ok(()),
        }
    }
}

impl<S: Domain + fmt::Debug> fmt::Debug for Interval<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{:?}, {:?}{}",
            if self.lc { '[' } else { '(' },
            self.s,
            self.e,
            if self.rc { ']' } else { ')' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instant::t;

    fn iv(s: f64, e: f64, lc: bool, rc: bool) -> TimeInterval {
        Interval::new(t(s), t(e), lc, rc)
    }

    #[test]
    fn construction_invariants() {
        assert!(Interval::try_new(t(2.0), t(1.0), true, true).is_err());
        assert!(Interval::try_new(t(1.0), t(1.0), true, false).is_err());
        assert!(Interval::try_new(t(1.0), t(1.0), true, true).is_ok());
        assert!(Interval::try_new(t(1.0), t(2.0), false, false).is_ok());
    }

    #[test]
    fn membership_semantics() {
        let i = iv(1.0, 3.0, true, false); // [1, 3)
        assert!(i.contains(&t(1.0)));
        assert!(i.contains(&t(2.0)));
        assert!(!i.contains(&t(3.0)));
        assert!(!i.contains(&t(0.9)));
        // σ' (open part) excludes both end points regardless of flags.
        assert!(!i.contains_open(&t(1.0)));
        assert!(i.contains_open(&t(2.0)));
        assert!(!i.contains_open(&t(3.0)));
    }

    #[test]
    fn disjointness_at_shared_endpoint() {
        let a = iv(0.0, 1.0, true, true); // [0,1]
        let b = iv(1.0, 2.0, true, true); // [1,2]
        assert!(!a.disjoint(&b)); // share point 1
        let c = iv(1.0, 2.0, false, true); // (1,2]
        assert!(a.disjoint(&c));
        assert!(a.r_disjoint(&c));
        assert!(!c.r_disjoint(&a));
    }

    #[test]
    fn adjacency_continuous() {
        let a = iv(0.0, 1.0, true, true); // [0,1]
        let c = iv(1.0, 2.0, false, true); // (1,2]
        assert!(a.adjacent(&c));
        assert!(a.r_adjacent(&c));
        assert!(!c.r_adjacent(&a));
        // [0,1) and (1,2] leave out the point 1: not adjacent.
        let half = iv(0.0, 1.0, true, false);
        assert!(!half.adjacent(&c));
        // Separated intervals in a dense domain are never adjacent.
        let far = iv(1.5, 2.0, true, true);
        assert!(!half.adjacent(&far));
    }

    #[test]
    fn adjacency_discrete() {
        // [0,2] and [3,5] over int: no element between 2 and 3 => adjacent.
        let a = Interval::closed(0i64, 2);
        let b = Interval::closed(3i64, 5);
        assert!(a.r_adjacent(&b));
        assert!(a.adjacent(&b));
        // [0,2] and [4,5]: 3 lies between => not adjacent.
        let c = Interval::closed(4i64, 5);
        assert!(!a.adjacent(&c));
    }

    #[test]
    fn intersection_cases() {
        let a = iv(0.0, 2.0, true, true);
        let b = iv(1.0, 3.0, false, true);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, iv(1.0, 2.0, false, true));
        // Touching at a single shared closed point.
        let c = iv(2.0, 4.0, true, false);
        assert_eq!(a.intersection(&c).unwrap(), Interval::point(t(2.0)));
        // Disjoint.
        let d = iv(5.0, 6.0, true, true);
        assert!(a.intersection(&d).is_none());
    }

    #[test]
    fn union_merged_cases() {
        let a = iv(0.0, 1.0, true, true);
        let b = iv(1.0, 2.0, false, true);
        assert_eq!(a.union_merged(&b).unwrap(), iv(0.0, 2.0, true, true));
        let gap = iv(3.0, 4.0, true, true);
        assert!(a.union_merged(&gap).is_none());
        // Overlapping.
        let c = iv(0.5, 3.0, true, false);
        assert_eq!(a.union_merged(&c).unwrap(), iv(0.0, 3.0, true, false));
    }

    #[test]
    fn difference_cases() {
        let a = iv(0.0, 4.0, true, true);
        // Remove the middle (1,3): leaves [0,1] and [3,4].
        let mid = iv(1.0, 3.0, false, false);
        let d = a.difference(&mid);
        assert_eq!(d, vec![iv(0.0, 1.0, true, true), iv(3.0, 4.0, true, true)]);
        // Remove closed middle [1,3]: leaves [0,1) and (3,4].
        let midc = iv(1.0, 3.0, true, true);
        let d = a.difference(&midc);
        assert_eq!(
            d,
            vec![iv(0.0, 1.0, true, false), iv(3.0, 4.0, false, true)]
        );
        // Remove everything.
        assert!(a.difference(&iv(0.0, 4.0, true, true)).is_empty());
        // Remove the open version: leaves the two end points.
        let d = a.difference(&iv(0.0, 4.0, false, false));
        assert_eq!(d, vec![Interval::point(t(0.0)), Interval::point(t(4.0))]);
        // Disjoint subtrahend leaves self.
        assert_eq!(a.difference(&iv(9.0, 10.0, true, true)), vec![a]);
    }

    #[test]
    fn contains_interval_flag_logic() {
        let a = iv(0.0, 2.0, false, true); // (0,2]
        assert!(a.contains_interval(&iv(0.0, 1.0, false, true)));
        assert!(!a.contains_interval(&iv(0.0, 1.0, true, true))); // needs 0
        assert!(a.contains_interval(&iv(1.0, 2.0, true, true)));
        assert!(!a.contains_interval(&iv(1.0, 3.0, true, false)));
    }

    #[test]
    fn time_helpers() {
        let i = iv(1.0, 3.0, true, false);
        assert_eq!(i.duration(), crate::real::r(2.0));
        assert_eq!(i.interior_instant(), t(2.0));
        let p = TimeInterval::point(t(5.0));
        assert_eq!(p.interior_instant(), t(5.0));
        let samples = i.sample_instants(3);
        assert_eq!(samples, vec![t(1.0), t(1.5), t(2.0), t(2.5)]);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", iv(1.0, 2.0, true, false)), "[t1, t2)");
    }
}
