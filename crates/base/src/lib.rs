//! # `mob-base` — base, time, interval and range types
//!
//! This crate implements the non-spatial foundations of the discrete
//! moving-objects data model of Forlizzi, Güting, Nardelli & Schneider
//! (SIGMOD 2000), Sections 3.2.1 and 3.2.3:
//!
//! * base types `int`, `real`, `string`, `bool`, each extended with the
//!   undefined value ⊥ ([`Val`]);
//! * the time type `instant` (isomorphic to the reals, [`Instant`]);
//! * intervals `(s, e, lc, rc)` over any ordered domain with the paper's
//!   `disjoint`/`adjacent` predicates ([`Interval`]);
//! * finite sets of disjoint, non-adjacent intervals — the `range(α)`
//!   types ([`RangeSet`], with [`Periods`] = `range(instant)`);
//! * `intime(α)` pairs ([`Intime`]).
//!
//! Everything downstream (spatial algebra, unit types, sliced
//! representation) builds on these carrier sets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod error;
pub mod instant;
pub mod interval;
pub mod intime;
pub mod range;
pub mod real;
pub mod text;
pub mod validate;
pub mod value;

pub use domain::Domain;
pub use error::{DecodeError, DecodeResult, InvariantViolation, Result};
pub use instant::{t, Instant};
pub use interval::{Interval, TimeInterval};
pub use intime::Intime;
pub use range::{Periods, RangeSet};
pub use real::{r, Real};
pub use text::Text;
pub use validate::{debug_validate, Validate};
pub use value::Val;

/// The discrete `int` carrier (paper: programming-language `int` ∪ {⊥}).
pub type IntVal = Val<i64>;
/// The discrete `real` carrier.
pub type RealVal = Val<Real>;
/// The discrete `bool` carrier.
pub type BoolVal = Val<bool>;
/// The discrete `string` carrier.
pub type TextVal = Val<Text>;
/// The discrete `instant` carrier.
pub type InstantVal = Val<Instant>;
