//! Error types shared by all carrier-set constructors.
//!
//! Every domain definition in Section 3 of the paper is a set comprehension
//! with side conditions. Constructors in this workspace return
//! [`InvariantViolation`] when a side condition fails, carrying the clause
//! that was violated so tests can assert on the precise reason.

use std::fmt;

/// A representation invariant of a discrete carrier set was violated.
///
/// The `clause` string names the paper-level condition, e.g.
/// `"interval: s <= e"` or `"region: faces must be edge-disjoint"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    clause: &'static str,
    detail: String,
}

impl InvariantViolation {
    /// Create a violation for a named clause with no extra detail.
    pub fn new(clause: &'static str) -> Self {
        InvariantViolation {
            clause,
            detail: String::new(),
        }
    }

    /// Create a violation for a named clause with human-readable detail.
    pub fn with_detail(clause: &'static str, detail: impl Into<String>) -> Self {
        InvariantViolation {
            clause,
            detail: detail.into(),
        }
    }

    /// The paper-level condition that failed.
    pub fn clause(&self) -> &'static str {
        self.clause
    }

    /// Extra context for the failure (may be empty).
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.detail.is_empty() {
            write!(f, "invariant violated: {}", self.clause)
        } else {
            write!(f, "invariant violated: {} ({})", self.clause, self.detail)
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Convenience result alias used by all `try_new` constructors.
pub type Result<T> = std::result::Result<T, InvariantViolation>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_without_detail() {
        let e = InvariantViolation::new("interval: s <= e");
        assert_eq!(e.to_string(), "invariant violated: interval: s <= e");
        assert_eq!(e.clause(), "interval: s <= e");
        assert_eq!(e.detail(), "");
    }

    #[test]
    fn display_with_detail() {
        let e = InvariantViolation::with_detail("real: NaN", "got NaN from 0.0/0.0");
        assert!(e.to_string().contains("real: NaN"));
        assert!(e.to_string().contains("0.0/0.0"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&InvariantViolation::new("x"));
    }
}
