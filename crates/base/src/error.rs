//! Error types shared by all carrier-set constructors.
//!
//! Every domain definition in Section 3 of the paper is a set comprehension
//! with side conditions. Constructors in this workspace return
//! [`InvariantViolation`] when a side condition fails, carrying the clause
//! that was violated so tests can assert on the precise reason.

use std::fmt;

/// A representation invariant of a discrete carrier set was violated.
///
/// The `clause` string names the paper-level condition, e.g.
/// `"interval: s <= e"` or `"region: faces must be edge-disjoint"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    clause: &'static str,
    detail: String,
}

impl InvariantViolation {
    /// Create a violation for a named clause with no extra detail.
    pub fn new(clause: &'static str) -> Self {
        InvariantViolation {
            clause,
            detail: String::new(),
        }
    }

    /// Create a violation for a named clause with human-readable detail.
    pub fn with_detail(clause: &'static str, detail: impl Into<String>) -> Self {
        InvariantViolation {
            clause,
            detail: detail.into(),
        }
    }

    /// The paper-level condition that failed.
    pub fn clause(&self) -> &'static str {
        self.clause
    }

    /// Extra context for the failure (may be empty).
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.detail.is_empty() {
            write!(f, "invariant violated: {}", self.clause)
        } else {
            write!(f, "invariant violated: {} ({})", self.clause, self.detail)
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Convenience result alias used by all `try_new` constructors.
pub type Result<T> = std::result::Result<T, InvariantViolation>;

/// An error decoding a serialized representation back into a value.
///
/// Decode paths treat their input as *untrusted*: every length, index
/// and invariant is checked, and corruption surfaces as a `DecodeError`
/// instead of a panic. The variants distinguish layout-level damage
/// (truncation, ragged buffers, out-of-range indices) from value-level
/// damage (a Section-3 carrier-set invariant no longer holds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than the record(s) it is supposed to hold.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A buffer length is not a multiple of the fixed record size.
    Ragged {
        /// What was being decoded.
        what: &'static str,
        /// Buffer length in bytes.
        len: usize,
        /// The fixed record size.
        record_size: usize,
    },
    /// A stored element count disagrees with the data that is present.
    CountMismatch {
        /// What was being decoded.
        what: &'static str,
        /// Count claimed by the root record.
        expected: usize,
        /// Count implied by the stored bytes.
        found: usize,
    },
    /// An array index or subarray reference points outside its array.
    OutOfBounds {
        /// What was being decoded.
        what: &'static str,
        /// The offending index (or one-past-end offset).
        index: usize,
        /// The exclusive bound it had to stay under (or equal to).
        bound: usize,
    },
    /// An unknown tag byte in a serialized enum position.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The tag value found.
        tag: u32,
    },
    /// A link structure (e.g. cycle chains) does not terminate or does
    /// not partition its array.
    BadStructure {
        /// What was being decoded.
        what: &'static str,
        /// Human-readable description of the structural damage.
        detail: String,
    },
    /// The bytes decoded, but the resulting value violates a Section-3
    /// carrier-set invariant.
    Invariant(InvariantViolation),
    /// An I/O error while reading a store file (message only, so the
    /// error stays `Clone`/`PartialEq`).
    Io(String),
    /// A stored checksum does not match the bytes it covers: the data
    /// was damaged at rest (bit rot, torn write) and must not reach the
    /// structural decoder.
    ChecksumMismatch {
        /// What was being verified (superblock, page frame, …).
        what: &'static str,
        /// Checksum recorded on disk.
        expected: u64,
        /// Checksum recomputed over the bytes found.
        found: u64,
    },
    /// The value lives in a region of storage that failed its integrity
    /// checks and has been quarantined: readers that can degrade
    /// gracefully skip it, everything else refuses to decode it.
    Quarantined {
        /// What kind of stored object is quarantined.
        what: &'static str,
        /// Why it was quarantined (the first detected damage).
        detail: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { what, need, have } => {
                write!(
                    f,
                    "decode {what}: truncated (need {need} bytes, have {have})"
                )
            }
            DecodeError::Ragged {
                what,
                len,
                record_size,
            } => write!(
                f,
                "decode {what}: buffer length {len} is not a multiple of record size {record_size}"
            ),
            DecodeError::CountMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "decode {what}: stored count {expected} but found {found} records"
            ),
            DecodeError::OutOfBounds { what, index, bound } => {
                write!(
                    f,
                    "decode {what}: index {index} out of bounds (limit {bound})"
                )
            }
            DecodeError::BadTag { what, tag } => {
                write!(f, "decode {what}: unknown tag {tag}")
            }
            DecodeError::BadStructure { what, detail } => {
                write!(f, "decode {what}: bad structure: {detail}")
            }
            DecodeError::Invariant(iv) => write!(f, "decode: {iv}"),
            DecodeError::Io(msg) => write!(f, "decode: i/o error: {msg}"),
            DecodeError::ChecksumMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "verify {what}: checksum mismatch (stored {expected:#018x}, computed {found:#018x})"
            ),
            DecodeError::Quarantined { what, detail } => {
                write!(f, "quarantined {what}: {detail}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<InvariantViolation> for DecodeError {
    fn from(iv: InvariantViolation) -> DecodeError {
        DecodeError::Invariant(iv)
    }
}

impl From<std::io::Error> for DecodeError {
    fn from(e: std::io::Error) -> DecodeError {
        DecodeError::Io(e.to_string())
    }
}

/// Result alias for decode paths.
pub type DecodeResult<T> = std::result::Result<T, DecodeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_without_detail() {
        let e = InvariantViolation::new("interval: s <= e");
        assert_eq!(e.to_string(), "invariant violated: interval: s <= e");
        assert_eq!(e.clause(), "interval: s <= e");
        assert_eq!(e.detail(), "");
    }

    #[test]
    fn display_with_detail() {
        let e = InvariantViolation::with_detail("real: NaN", "got NaN from 0.0/0.0");
        assert!(e.to_string().contains("real: NaN"));
        assert!(e.to_string().contains("0.0/0.0"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&InvariantViolation::new("x"));
    }
}
