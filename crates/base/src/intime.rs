//! The `intime(α)` constructor (Sec 3.2.3): a time instant paired with a
//! value, `D_intime(α) = D_instant × D_α`.
//!
//! `intime` values are produced by projections of moving values such as
//! `initial` and `final`, and consumed by `inst`/`val` (the paper's
//! example query uses `val(initial(...))`).

use crate::instant::Instant;
use std::fmt;

/// A `(instant, value)` pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Intime<V> {
    /// The time instant.
    pub instant: Instant,
    /// The value at that instant.
    pub value: V,
}

impl<V> Intime<V> {
    /// Construct an `intime` pair.
    pub fn new(instant: Instant, value: V) -> Intime<V> {
        Intime { instant, value }
    }

    /// The paper's `inst` operation: project onto the instant.
    pub fn inst(&self) -> Instant {
        self.instant
    }

    /// The paper's `val` operation: project onto the value.
    pub fn val(self) -> V {
        self.value
    }

    /// Borrowing version of [`Intime::val`].
    pub fn val_ref(&self) -> &V {
        &self.value
    }

    /// Map the value component.
    pub fn map<U>(self, f: impl FnOnce(V) -> U) -> Intime<U> {
        Intime {
            instant: self.instant,
            value: f(self.value),
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for Intime<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}, {:?})", self.instant, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instant::t;

    #[test]
    fn projections() {
        let it = Intime::new(t(3.0), 42i64);
        assert_eq!(it.inst(), t(3.0));
        assert_eq!(it.val(), 42);
    }

    #[test]
    fn map_preserves_instant() {
        let it = Intime::new(t(1.0), 2i64).map(|v| v * 10);
        assert_eq!(it.instant, t(1.0));
        assert_eq!(it.value, 20);
    }
}
