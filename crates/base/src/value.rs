//! Undefinedness: the `⊥` element of every base carrier set.
//!
//! Section 3.2.1 extends every base domain with an undefined value:
//! `D_int = int ∪ {⊥}` and so on. [`Val`] makes ⊥ explicit rather than
//! reusing `Option`, so the ⊥-propagation rules of the abstract model
//! ("strict" operations map ⊥ to ⊥) are implemented in one place and the
//! intent is visible in signatures.

use std::fmt;

/// A value of a base domain extended with the undefined element ⊥.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Val<T> {
    /// A defined value of the underlying domain.
    Def(T),
    /// The undefined value ⊥.
    Undef,
}

impl<T> Val<T> {
    /// `true` if this is a defined value.
    #[inline]
    pub fn is_def(&self) -> bool {
        matches!(self, Val::Def(_))
    }

    /// `true` if this is ⊥.
    #[inline]
    pub fn is_undef(&self) -> bool {
        matches!(self, Val::Undef)
    }

    /// Strict application: ⊥ propagates.
    #[inline]
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Val<U> {
        match self {
            Val::Def(v) => Val::Def(f(v)),
            Val::Undef => Val::Undef,
        }
    }

    /// Strict binary application: the result is ⊥ if either operand is.
    #[inline]
    pub fn zip_with<U, R>(self, other: Val<U>, f: impl FnOnce(T, U) -> R) -> Val<R> {
        match (self, other) {
            (Val::Def(a), Val::Def(b)) => Val::Def(f(a, b)),
            _ => Val::Undef,
        }
    }

    /// Strict monadic bind.
    #[inline]
    pub fn and_then<U>(self, f: impl FnOnce(T) -> Val<U>) -> Val<U> {
        match self {
            Val::Def(v) => f(v),
            Val::Undef => Val::Undef,
        }
    }

    /// Borrowing view.
    #[inline]
    pub fn as_ref(&self) -> Val<&T> {
        match self {
            Val::Def(v) => Val::Def(v),
            Val::Undef => Val::Undef,
        }
    }

    /// Convert to `Option` (for interop with std combinators).
    #[inline]
    pub fn into_option(self) -> Option<T> {
        match self {
            Val::Def(v) => Some(v),
            Val::Undef => None,
        }
    }

    /// Extract the defined value, panicking on ⊥.
    #[inline]
    #[track_caller]
    pub fn unwrap(self) -> T {
        match self {
            Val::Def(v) => v,
            Val::Undef => panic!("called unwrap on undefined (⊥) value"),
        }
    }

    /// Extract the defined value or a fallback.
    #[inline]
    pub fn unwrap_or(self, default: T) -> T {
        match self {
            Val::Def(v) => v,
            Val::Undef => default,
        }
    }
}

impl<T> From<Option<T>> for Val<T> {
    #[inline]
    fn from(o: Option<T>) -> Val<T> {
        match o {
            Some(v) => Val::Def(v),
            None => Val::Undef,
        }
    }
}

impl<T> From<T> for Val<T> {
    #[inline]
    fn from(v: T) -> Val<T> {
        Val::Def(v)
    }
}

impl<T: fmt::Debug> fmt::Debug for Val<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Def(v) => write!(f, "{v:?}"),
            Val::Undef => write!(f, "⊥"),
        }
    }
}

impl<T: fmt::Display> fmt::Display for Val<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Def(v) => write!(f, "{v}"),
            Val::Undef => write!(f, "undefined"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_propagation() {
        let a: Val<i64> = Val::Def(2);
        let b: Val<i64> = Val::Undef;
        assert_eq!(a.map(|x| x + 1), Val::Def(3));
        assert_eq!(b.map(|x| x + 1), Val::Undef);
        assert_eq!(a.zip_with(Val::Def(3), |x, y| x * y), Val::Def(6));
        assert_eq!(a.zip_with(b, |x, y| x * y), Val::Undef);
        assert_eq!(b.zip_with(a, |x, y| x * y), Val::Undef);
    }

    #[test]
    fn conversions() {
        assert_eq!(Val::from(Some(1)), Val::Def(1));
        assert_eq!(Val::<i64>::from(None), Val::Undef);
        assert_eq!(Val::Def(1).into_option(), Some(1));
        assert_eq!(Val::<i64>::Undef.into_option(), None);
    }

    #[test]
    #[should_panic(expected = "⊥")]
    fn unwrap_undef_panics() {
        Val::<i64>::Undef.unwrap();
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{:?}", Val::Def(7)), "7");
        assert_eq!(format!("{:?}", Val::<i64>::Undef), "⊥");
        assert_eq!(Val::<i64>::Undef.to_string(), "undefined");
    }

    #[test]
    fn undef_sorts_after_defined() {
        // Ord is derived: Def < Undef by variant order. Documented behaviour.
        assert!(Val::Def(i64::MAX) < Val::Undef);
    }
}
