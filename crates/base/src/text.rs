//! The discrete `string` type.
//!
//! Section 4.1 (footnote 3) assumes strings are implemented as a fixed
//! length array of characters, so that every base value is a fixed-size
//! record suitable for a DBMS root record. [`Text`] stores up to
//! [`Text::CAPACITY`] bytes inline, with no heap allocation, and has a
//! total (byte-lexicographic) order.

use crate::error::{InvariantViolation, Result};
use std::fmt;

/// A fixed-capacity inline string (DBMS attribute style).
#[derive(Clone, Copy)]
pub struct Text {
    len: u8,
    bytes: [u8; Text::CAPACITY],
}

impl Text {
    /// Maximum length in bytes (mirrors SECONDO's 48-byte string attributes).
    pub const CAPACITY: usize = 48;

    /// Construct from a `&str`, rejecting strings longer than the capacity.
    pub fn try_new(s: &str) -> Result<Text> {
        if s.len() > Text::CAPACITY {
            return Err(InvariantViolation::with_detail(
                "string: length exceeds fixed capacity",
                format!("{} > {}", s.len(), Text::CAPACITY),
            ));
        }
        let mut bytes = [0u8; Text::CAPACITY];
        for (d, b) in bytes.iter_mut().zip(s.as_bytes()) {
            *d = *b;
        }
        let len = u8::try_from(s.len()).map_err(|_| {
            InvariantViolation::with_detail(
                "string: length exceeds u8 range",
                format!("{} > {}", s.len(), u8::MAX),
            )
        })?;
        Ok(Text { len, bytes })
    }

    /// Construct from a `&str`, panicking if too long. For literals.
    pub fn new(s: &str) -> Text {
        Text::try_new(s).expect("string literal exceeds Text::CAPACITY")
    }

    /// View as `&str`.
    pub fn as_str(&self) -> &str {
        // Invariant: constructed from valid UTF-8 prefixes only.
        std::str::from_utf8(&self.bytes[..self.len as usize]).expect("Text holds valid UTF-8")
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw fixed-size byte array (for `mob-storage` records).
    pub fn raw_bytes(&self) -> &[u8; Text::CAPACITY] {
        &self.bytes
    }

    /// Rebuild from raw storage bytes plus length.
    pub fn from_raw(bytes: [u8; Text::CAPACITY], len: u8) -> Result<Text> {
        if len as usize > Text::CAPACITY {
            return Err(InvariantViolation::new(
                "string: stored length out of range",
            ));
        }
        std::str::from_utf8(&bytes[..len as usize])
            .map_err(|_| InvariantViolation::new("string: stored bytes are not UTF-8"))?;
        Ok(Text { len, bytes })
    }
}

impl PartialEq for Text {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}

impl Eq for Text {}

impl PartialOrd for Text {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Text {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl std::hash::Hash for Text {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_str().hash(state);
    }
}

impl fmt::Debug for Text {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl fmt::Display for Text {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl std::str::FromStr for Text {
    type Err = InvariantViolation;
    fn from_str(s: &str) -> Result<Text> {
        Text::try_new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = Text::new("Lufthansa");
        assert_eq!(t.as_str(), "Lufthansa");
        assert_eq!(t.len(), 9);
        assert!(!t.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let long = "x".repeat(Text::CAPACITY + 1);
        assert!(Text::try_new(&long).is_err());
        let max = "y".repeat(Text::CAPACITY);
        assert_eq!(Text::try_new(&max).unwrap().len(), Text::CAPACITY);
    }

    #[test]
    fn ordering_ignores_padding() {
        // Two values built differently must compare by content only.
        let a = Text::new("abc");
        let mut raw = *a.raw_bytes();
        raw[10] = 0xFF; // garbage beyond len must not affect Eq/Ord
        let b = Text::from_raw(raw, 3).unwrap();
        assert_eq!(a, b);
        assert!(Text::new("abc") < Text::new("abd"));
        assert!(Text::new("ab") < Text::new("abc"));
    }

    #[test]
    fn from_raw_validates() {
        assert!(Text::from_raw([0; Text::CAPACITY], (Text::CAPACITY + 1) as u8).is_err());
        let mut bad = [0u8; Text::CAPACITY];
        bad[0] = 0xFF; // invalid UTF-8 lead byte
        assert!(Text::from_raw(bad, 1).is_err());
    }

    #[test]
    fn empty() {
        let e = Text::new("");
        assert!(e.is_empty());
        assert_eq!(e.to_string(), "");
    }
}
