//! Deep validation of representation invariants.
//!
//! Section 3.2 of the paper defines every carrier set as a set
//! comprehension with side conditions; Section 4 adds layout-level
//! conditions on the array representations. Constructors (`try_new`)
//! check those conditions on the way *in*, but long-lived values can
//! still go stale — bugs, serialization round-trips, or hand-built
//! fixtures can violate invariants after construction. The [`Validate`]
//! trait re-checks the full invariant set on demand.
//!
//! Conventions:
//!
//! * `validate()` is **deep**: a mapping validates its units, a unit
//!   validates its interval and value, a region validates its cycles.
//! * `validate()` never panics on any input; every failure is reported
//!   as an [`InvariantViolation`] naming the paper clause.
//! * Construction boundaries call `debug_validate` so debug builds
//!   catch drift at the point of damage, while release builds stay on
//!   the trusted fast path.

use crate::error::Result;

/// Re-check every representation invariant of a value.
///
/// Implementations mirror the side conditions of the paper's carrier-set
/// definitions (Sections 3.2.1–3.2.4) plus the layout conditions of the
/// array representations (Section 4). A value produced by a `try_new`
/// constructor must always validate; `validate` exists to audit values
/// after the fact (e.g. decoded from untrusted bytes, or emitted by a
/// generator).
pub trait Validate {
    /// Return `Ok(())` if every invariant holds, otherwise the first
    /// [`crate::error::InvariantViolation`] found.
    fn validate(&self) -> Result<()>;
}

/// Run [`Validate::validate`] as a debug assertion.
///
/// In debug builds this panics with the violation message if `value`
/// is invalid; in release builds it compiles to nothing. Call it at
/// construction boundaries (builders, decoders, generators).
#[inline]
pub fn debug_validate<T: Validate + ?Sized>(value: &T) {
    #[cfg(debug_assertions)]
    {
        if let Err(e) = value.validate() {
            panic!("debug_validate: {e}");
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = value;
    }
}

impl<T: Validate> Validate for [T] {
    fn validate(&self) -> Result<()> {
        for v in self {
            v.validate()?;
        }
        Ok(())
    }
}

impl<T: Validate> Validate for Vec<T> {
    fn validate(&self) -> Result<()> {
        self.as_slice().validate()
    }
}

impl<T: Validate> Validate for Option<T> {
    fn validate(&self) -> Result<()> {
        match self {
            Some(v) => v.validate(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::InvariantViolation;

    struct AlwaysOk;
    impl Validate for AlwaysOk {
        fn validate(&self) -> Result<()> {
            Ok(())
        }
    }

    struct AlwaysBad;
    impl Validate for AlwaysBad {
        fn validate(&self) -> Result<()> {
            Err(InvariantViolation::new("test: always bad"))
        }
    }

    #[test]
    fn slice_and_vec_validate_elementwise() {
        let ok: Vec<AlwaysOk> = vec![AlwaysOk, AlwaysOk];
        assert!(ok.validate().is_ok());
        let bad: Vec<AlwaysBad> = vec![AlwaysBad];
        assert!(bad.validate().is_err());
        let empty: Vec<AlwaysBad> = vec![];
        assert!(empty.validate().is_ok());
    }

    #[test]
    fn option_validates_inner() {
        assert!(Some(AlwaysOk).validate().is_ok());
        assert!(Some(AlwaysBad).validate().is_err());
        assert!(None::<AlwaysBad>.validate().is_ok());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "debug_validate")]
    fn debug_validate_panics_in_debug() {
        debug_validate(&AlwaysBad);
    }
}
