//! RAII span timing with thread-local shards.
//!
//! A [`Span`] measures wall time between construction and drop and folds it
//! into this thread's **shard** — a small per-thread table aggregating
//! `(name, count, total ns)`. Worker threads (e.g. inside the `mob-par`
//! pool) drain their shard with [`take_thread_shard`] when their slice of
//! work ends; the coordinator merges the drained shards **in worker-index
//! order** with [`merge_shards`] and replays the merged totals on its own
//! thread with [`record_stats`]. Because shards are aggregated per name,
//! merged counts are independent of scheduling — only wall times vary.
//!
//! When observability is disabled ([`crate::enabled`] is false) `span()`
//! returns an inert value: no clock read, no thread-local touch, no
//! allocation.

use crate::registry::Registry;
use crate::report;
use std::cell::RefCell;
use std::time::Instant;

/// Aggregated timing for one span name on one thread (or merged across
/// threads by [`merge_shards`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// The span name, as passed to [`span`].
    pub name: &'static str,
    /// How many times the span was entered.
    pub count: u64,
    /// Total wall time across all entries, in nanoseconds.
    pub total_ns: u64,
}

thread_local! {
    static SHARD: RefCell<Vec<SpanStat>> = const { RefCell::new(Vec::new()) };
}

fn record_local(name: &'static str, count: u64, total_ns: u64) {
    SHARD.with(|shard| {
        let mut shard = shard.borrow_mut();
        if let Some(stat) = shard.iter_mut().find(|s| s.name == name) {
            stat.count += count;
            stat.total_ns += total_ns;
        } else {
            shard.push(SpanStat {
                name,
                count,
                total_ns,
            });
        }
    });
}

/// An RAII wall-time measurement; see [`span`].
#[must_use = "a span measures the time until it is dropped"]
#[derive(Debug)]
pub struct Span(Option<SpanInner>);

#[derive(Debug)]
struct SpanInner {
    name: &'static str,
    start: Instant,
    captured: bool,
}

/// Start timing `name`. The measurement ends when the returned [`Span`] is
/// dropped; the elapsed time is folded into this thread's shard and, when an
/// EXPLAIN capture is active on this thread (see [`crate::explain`]), into
/// the capture tree as an operator node.
pub fn span(name: &'static str) -> Span {
    if !Registry::global().enabled() {
        return Span(None);
    }
    let captured = report::try_open_node(name);
    Span(Some(SpanInner {
        name,
        start: Instant::now(),
        captured,
    }))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.0.take() else { return };
        let total_ns = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        record_local(inner.name, 1, total_ns);
        if inner.captured {
            report::close_node(total_ns);
        }
    }
}

/// Drain and return this thread's shard. Worker threads call this after
/// finishing their slice of work so the coordinator can merge.
#[must_use]
pub fn take_thread_shard() -> Vec<SpanStat> {
    SHARD.with(|shard| std::mem::take(&mut *shard.borrow_mut()))
}

/// A copy of this thread's shard, without draining it.
#[must_use]
pub fn thread_span_stats() -> Vec<SpanStat> {
    SHARD.with(|shard| shard.borrow().clone())
}

/// Merge per-worker shards into one aggregated table.
///
/// Pass shards **in worker-index order**: the merged table lists names in
/// first-seen order across that sequence, making the merge deterministic
/// for a deterministic workload partition.
#[must_use]
pub fn merge_shards<I>(shards: I) -> Vec<SpanStat>
where
    I: IntoIterator<Item = Vec<SpanStat>>,
{
    let mut merged: Vec<SpanStat> = Vec::new();
    for shard in shards {
        for stat in shard {
            if let Some(existing) = merged.iter_mut().find(|s| s.name == stat.name) {
                existing.count += stat.count;
                existing.total_ns += stat.total_ns;
            } else {
                merged.push(stat);
            }
        }
    }
    merged
}

/// Replay merged worker stats on the calling thread: fold them into this
/// thread's shard and, when an EXPLAIN capture is active, attach them as
/// children of the current operator node.
pub fn record_stats(stats: &[SpanStat]) {
    if !Registry::global().enabled() {
        return;
    }
    for stat in stats {
        record_local(stat.name, stat.count, stat.total_ns);
    }
    report::absorb_stats(stats);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_preserves_first_seen_order_and_sums() {
        let a = vec![
            SpanStat {
                name: "x",
                count: 2,
                total_ns: 10,
            },
            SpanStat {
                name: "y",
                count: 1,
                total_ns: 5,
            },
        ];
        let b = vec![
            SpanStat {
                name: "y",
                count: 3,
                total_ns: 7,
            },
            SpanStat {
                name: "z",
                count: 1,
                total_ns: 1,
            },
        ];
        let m = merge_shards([a, b]);
        assert_eq!(m.len(), 3);
        assert_eq!(
            m[0],
            SpanStat {
                name: "x",
                count: 2,
                total_ns: 10
            }
        );
        assert_eq!(
            m[1],
            SpanStat {
                name: "y",
                count: 4,
                total_ns: 12
            }
        );
        assert_eq!(
            m[2],
            SpanStat {
                name: "z",
                count: 1,
                total_ns: 1
            }
        );
    }

    #[test]
    fn spans_aggregate_into_the_thread_shard() {
        if !crate::enabled() {
            return; // MOB_OBS=0: spans are inert by contract.
        }
        // Run on a fresh thread so this test owns its shard exclusively.
        std::thread::spawn(|| {
            {
                let _a = span("t.span_a");
                let _b = span("t.span_b");
            }
            {
                let _a = span("t.span_a");
            }
            let stats = take_thread_shard();
            let a = stats
                .iter()
                .find(|s| s.name == "t.span_a")
                .expect("a recorded");
            let b = stats
                .iter()
                .find(|s| s.name == "t.span_b")
                .expect("b recorded");
            assert_eq!(a.count, 2);
            assert_eq!(b.count, 1);
            // Shard drained.
            assert!(take_thread_shard().is_empty());
        })
        .join()
        .expect("thread ok");
    }

    #[test]
    fn record_stats_replays_into_shard() {
        if !crate::enabled() {
            return;
        }
        std::thread::spawn(|| {
            record_stats(&[SpanStat {
                name: "t.replayed",
                count: 4,
                total_ns: 44,
            }]);
            let stats = thread_span_stats();
            let r = stats
                .iter()
                .find(|s| s.name == "t.replayed")
                .expect("replayed");
            assert_eq!(r.count, 4);
            assert_eq!(r.total_ns, 44);
            let _ = take_thread_shard();
        })
        .join()
        .expect("thread ok");
    }
}
