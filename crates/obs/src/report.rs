//! EXPLAIN capture: per-query operator trees with metric deltas.
//!
//! [`explain`] runs a closure with a thread-local **capture** active. Every
//! [`span`](crate::span) entered on this thread while the capture is live
//! becomes an operator [`Node`]; nesting of spans becomes nesting of nodes,
//! and same-name siblings are coalesced (their counts, times and metrics
//! summed). Each node is annotated with the **registry delta** observed
//! between its entry and exit — units decoded, header probes, cache
//! hits/misses, pool chunks — attributed *inclusively* (a parent's delta
//! contains its children's).
//!
//! Worker-thread spans do not capture directly (the capture is
//! thread-local); the `mob-par` pool replays merged worker shards through
//! [`crate::record_stats`], which attaches them as children of the
//! currently open node — so a parallel scan still renders as one tree.

use crate::registry::{Registry, Snapshot};
use crate::span::SpanStat;
use std::cell::RefCell;
use std::fmt;
use std::time::Instant;

/// One operator in an EXPLAIN tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// Span name (or report label for the root).
    pub name: String,
    /// How many times this operator ran (same-name siblings coalesce).
    pub count: u64,
    /// Total wall time in nanoseconds.
    pub total_ns: u64,
    /// Registry counters moved while this operator ran (inclusive of
    /// children). Empty for nodes replayed from worker shards.
    pub metrics: Snapshot,
    /// Nested operators, in first-entered order.
    pub children: Vec<Node>,
}

impl Node {
    fn empty(name: &str) -> Node {
        Node {
            name: name.to_string(),
            count: 0,
            total_ns: 0,
            metrics: Snapshot::default(),
            children: Vec::new(),
        }
    }

    /// Depth-first search for the first node named `name` (including self).
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Node> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// The result of an [`explain`] capture: a labelled operator tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// The label passed to [`explain`].
    pub label: String,
    /// False when observability was disabled (or a capture was already
    /// active): the tree is empty and renders as a one-line notice.
    pub captured: bool,
    /// The root operator (its `metrics` are the whole query's delta).
    pub root: Node,
}

impl Report {
    /// Depth-first search for the first node named `name`.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&Node> {
        self.root.find(name)
    }

    /// The whole query's registry delta (root metrics).
    #[must_use]
    pub fn metrics(&self) -> &Snapshot {
        &self.root.metrics
    }
}

struct Builder {
    name: &'static str,
    at_entry: Snapshot,
    children: Vec<Node>,
}

struct Capture {
    root_children: Vec<Node>,
    stack: Vec<Builder>,
}

thread_local! {
    static CAPTURE: RefCell<Option<Capture>> = const { RefCell::new(None) };
}

/// True when an EXPLAIN capture is active on this thread.
fn capture_active() -> bool {
    CAPTURE.with(|c| c.borrow().is_some())
}

/// Called by `span()`: open a capture node if a capture is active.
/// Returns whether a node was opened (so the span knows to close it).
pub(crate) fn try_open_node(name: &'static str) -> bool {
    let active = capture_active();
    if active {
        // Snapshot outside the borrow: Registry access is independent of
        // the capture cell, but keep the borrow scopes disjoint anyway.
        let at_entry = Registry::global().snapshot();
        CAPTURE.with(|c| {
            if let Some(cap) = c.borrow_mut().as_mut() {
                cap.stack.push(Builder {
                    name,
                    at_entry,
                    children: Vec::new(),
                });
            }
        });
    }
    active
}

/// Called by `Span::drop` when the span opened a capture node: close it,
/// annotate it with the registry delta, and attach it to its parent
/// (coalescing same-name siblings).
pub(crate) fn close_node(total_ns: u64) {
    let now = Registry::global().snapshot();
    CAPTURE.with(|c| {
        let mut borrow = c.borrow_mut();
        let Some(cap) = borrow.as_mut() else { return };
        let Some(b) = cap.stack.pop() else { return };
        let node = Node {
            name: b.name.to_string(),
            count: 1,
            total_ns,
            metrics: now.delta(&b.at_entry),
            children: b.children,
        };
        let siblings = match cap.stack.last_mut() {
            Some(parent) => &mut parent.children,
            None => &mut cap.root_children,
        };
        merge_child(siblings, node);
    });
}

/// Called by [`crate::record_stats`]: attach replayed worker stats as
/// children of the current node (or of the root when no span is open).
pub(crate) fn absorb_stats(stats: &[SpanStat]) {
    CAPTURE.with(|c| {
        let mut borrow = c.borrow_mut();
        let Some(cap) = borrow.as_mut() else { return };
        let siblings = match cap.stack.last_mut() {
            Some(parent) => &mut parent.children,
            None => &mut cap.root_children,
        };
        for stat in stats {
            merge_child(
                siblings,
                Node {
                    name: stat.name.to_string(),
                    count: stat.count,
                    total_ns: stat.total_ns,
                    metrics: Snapshot::default(),
                    children: Vec::new(),
                },
            );
        }
    });
}

/// Coalesce `node` into `siblings`: same-name siblings merge (counts, times
/// and metrics summed; children merged recursively), otherwise append.
fn merge_child(siblings: &mut Vec<Node>, node: Node) {
    if let Some(existing) = siblings.iter_mut().find(|s| s.name == node.name) {
        existing.count += node.count;
        existing.total_ns += node.total_ns;
        existing.metrics.add(&node.metrics);
        for child in node.children {
            merge_child(&mut existing.children, child);
        }
    } else {
        siblings.push(node);
    }
}

/// Run `f` with an EXPLAIN capture active on this thread and return its
/// result together with the captured [`Report`].
///
/// With observability disabled (`MOB_OBS=0`), or when called while another
/// capture is already active on this thread (captures do not nest), `f`
/// runs untouched and the report comes back with `captured = false`.
pub fn explain<R, F: FnOnce() -> R>(label: &str, f: F) -> (R, Report) {
    let reg = Registry::global();
    if !reg.enabled() || capture_active() {
        let out = f();
        return (
            out,
            Report {
                label: label.to_string(),
                captured: false,
                root: Node::empty(label),
            },
        );
    }
    let at_entry = reg.snapshot();
    let start = Instant::now();
    CAPTURE.with(|c| {
        *c.borrow_mut() = Some(Capture {
            root_children: Vec::new(),
            stack: Vec::new(),
        });
    });
    let out = f();
    let total_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let cap = CAPTURE.with(|c| c.borrow_mut().take());
    let mut root_children = Vec::new();
    if let Some(mut cap) = cap {
        // Fold any still-open builders (leaked spans) down into the tree.
        while let Some(b) = cap.stack.pop() {
            let node = Node {
                name: b.name.to_string(),
                count: 1,
                total_ns: 0,
                metrics: Snapshot::default(),
                children: b.children,
            };
            let siblings = match cap.stack.last_mut() {
                Some(parent) => &mut parent.children,
                None => &mut cap.root_children,
            };
            merge_child(siblings, node);
        }
        root_children = cap.root_children;
    }
    let root = Node {
        name: label.to_string(),
        count: 1,
        total_ns,
        metrics: reg.snapshot().delta(&at_entry),
        children: root_children,
    };
    (
        out,
        Report {
            label: label.to_string(),
            captured: true,
            root,
        },
    )
}

/// Render nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.captured {
            return writeln!(
                f,
                "EXPLAIN {}: no capture (observability disabled via {}=0?)",
                self.label,
                crate::OBS_ENV
            );
        }
        writeln!(
            f,
            "EXPLAIN {}  wall={}",
            self.label,
            fmt_ns(self.root.total_ns)
        )?;
        for (name, v) in self.root.metrics.iter() {
            writeln!(f, "  {name} = {v}")?;
        }
        render_children(&self.root.children, "  ", f)
    }
}

fn render_children(children: &[Node], prefix: &str, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let (branch, cont) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        write!(
            f,
            "{prefix}{branch}{} ×{}  {}",
            child.name,
            child.count,
            fmt_ns(child.total_ns)
        )?;
        if !child.metrics.is_empty() {
            write!(f, "  [{}]", child.metrics)?;
        }
        writeln!(f)?;
        let deeper = format!("{prefix}{cont}");
        render_children(&child.children, &deeper, f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::span;

    #[test]
    fn fmt_ns_picks_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.5 µs");
        assert_eq!(fmt_ns(2_000_000), "2.00 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }

    #[test]
    fn merge_child_coalesces_same_name_siblings() {
        let mut siblings = Vec::new();
        let mk = |n: u64| Node {
            name: "op".to_string(),
            count: 1,
            total_ns: n,
            metrics: Snapshot::default(),
            children: Vec::new(),
        };
        merge_child(&mut siblings, mk(5));
        merge_child(&mut siblings, mk(7));
        assert_eq!(siblings.len(), 1);
        assert_eq!(siblings[0].count, 2);
        assert_eq!(siblings[0].total_ns, 12);
    }

    #[test]
    fn explain_captures_nested_spans() {
        if !crate::enabled() {
            return; // MOB_OBS=0: explain degrades to a pass-through.
        }
        // Fresh thread: captures are thread-local, keep this test isolated.
        std::thread::spawn(|| {
            let (value, report) = explain("test.query", || {
                let _outer = span("test.outer");
                {
                    let _inner = span("test.inner");
                }
                {
                    let _inner = span("test.inner");
                }
                42
            });
            assert_eq!(value, 42);
            assert!(report.captured);
            assert_eq!(report.root.name, "test.query");
            let outer = report.find("test.outer").expect("outer captured");
            assert_eq!(outer.count, 1);
            let inner = report.find("test.inner").expect("inner captured");
            assert_eq!(inner.count, 2);
            // inner is nested under outer, not a sibling of it.
            assert!(outer.find("test.inner").is_some());
            assert_eq!(report.root.children.len(), 1);
            // The renderer produces the header plus one line per node.
            let text = format!("{report}");
            assert!(text.starts_with("EXPLAIN test.query"));
            assert!(text.contains("test.outer ×1"));
            assert!(text.contains("test.inner ×2"));
        })
        .join()
        .expect("thread ok");
    }

    #[test]
    fn explain_attributes_registry_deltas_per_node() {
        if !crate::enabled() {
            return;
        }
        std::thread::spawn(|| {
            let c = crate::counter("test.report_metric");
            let (_, report) = explain("test.metrics", || {
                let _op = span("test.op");
                c.add(3);
            });
            assert_eq!(report.metrics().get("test.report_metric"), 3);
            let op = report.find("test.op").expect("op captured");
            assert_eq!(op.metrics.get("test.report_metric"), 3);
        })
        .join()
        .expect("thread ok");
    }

    #[test]
    fn absorbed_worker_stats_become_children() {
        if !crate::enabled() {
            return;
        }
        std::thread::spawn(|| {
            let (_, report) = explain("test.absorb", || {
                let _scan = span("test.scan");
                crate::record_stats(&[
                    SpanStat {
                        name: "test.kernel",
                        count: 8,
                        total_ns: 80,
                    },
                    SpanStat {
                        name: "test.kernel",
                        count: 2,
                        total_ns: 20,
                    },
                ]);
            });
            let scan = report.find("test.scan").expect("scan captured");
            let kernel = scan.find("test.kernel").expect("kernel absorbed");
            assert_eq!(kernel.count, 10);
            assert_eq!(kernel.total_ns, 100);
        })
        .join()
        .expect("thread ok");
    }

    #[test]
    fn nested_explain_degrades_gracefully() {
        if !crate::enabled() {
            return;
        }
        std::thread::spawn(|| {
            let (_, outer) = explain("test.outer_q", || {
                let (v, inner) = explain("test.inner_q", || 7);
                assert_eq!(v, 7);
                assert!(!inner.captured);
            });
            assert!(outer.captured);
        })
        .join()
        .expect("thread ok");
    }
}
