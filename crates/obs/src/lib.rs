//! # `mob-obs` — query observability for the moving-objects stack
//!
//! The paper's Section-5 complexity claims (`atinstant` = O(log n) header
//! probes, `inside` refinement = O(n+m), batch probing =
//! O(q·log(n/q) + q)) must be *measured*, not asserted. This crate is the
//! single place every layer reports into:
//!
//! * [`Registry`] — a process-wide table of named atomic counters and
//!   power-of-two [`Histogram`]s. The hot path is a relaxed `fetch_add` on
//!   a `Copy` handle; registration (the only locking operation) happens
//!   once per distinct name, cached at the call site by [`metric!`] /
//!   [`histo!`]. With `MOB_OBS=0` every handle is an inert no-op and the
//!   registry registers **nothing** — [`Registry::num_counters`] stays 0.
//! * [`span`] / [`Span`] — RAII wall-time measurement with thread-local
//!   nesting. Worker threads drain their shard ([`take_thread_shard`]);
//!   coordinators merge in worker-index order ([`merge_shards`]) and
//!   replay ([`record_stats`]) so aggregation is deterministic under
//!   `mob-par` scheduling.
//! * [`explain`] / [`Report`] — capture a query as an operator tree: every
//!   span becomes a node annotated with the registry delta it caused
//!   (units decoded, header probes, cache hits, pool chunks) and its wall
//!   time, rendered `EXPLAIN`-style by the [`Report`] `Display` impl.
//! * [`LocalCounter`] / [`SharedCounter`] — per-object counters (storage
//!   views, page stores) that stay exact locally even when the registry is
//!   disabled, and mirror into it when enabled.
//!
//! Determinism contract: for a fixed workload, the
//! [`Snapshot::deterministic`] subset of registry totals is identical for
//! any `MOB_THREADS` value — mirroring the result-determinism contract of
//! `mob-par` — while `par.*` scheduling metrics and `*.ns` wall-clock
//! metrics may vary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod report;
mod span;

pub use registry::{
    Counter, HistoCell, Histogram, LocalCounter, Registry, SharedCounter, Snapshot, OBS_ENV,
};
pub use report::{explain, fmt_ns, Node, Report};
pub use span::{
    merge_shards, record_stats, span, take_thread_shard, thread_span_stats, Span, SpanStat,
};

/// True when the process-wide registry records (i.e. [`OBS_ENV`] is not
/// `0`/`false`/`off`/`no`). Resolved once, on first use.
#[must_use]
pub fn enabled() -> bool {
    Registry::global().enabled()
}

/// Register (or fetch) a counter on the process-wide registry.
///
/// This takes the registry lock — cache the returned handle (it is `Copy`)
/// or use [`metric!`] which does so automatically.
pub fn counter(name: &'static str) -> Counter {
    Registry::global().counter(name)
}

/// Register (or fetch) a histogram on the process-wide registry.
///
/// Like [`counter`], cache the handle or use [`histo!`].
pub fn histogram(name: &'static str) -> Histogram {
    Registry::global().histogram(name)
}

/// A cached counter handle: registers `$name` on the global registry the
/// first time the call site runs, then reuses the `Copy` handle — the hot
/// path never takes the registry lock.
///
/// ```
/// let probes = mob_obs::metric!("core.batch_at_instant.probes");
/// probes.add(3);
/// ```
#[macro_export]
macro_rules! metric {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::Registry::global().counter($name))
    }};
}

/// A cached histogram handle; see [`metric!`].
///
/// ```
/// let q = mob_obs::histo!("core.batch_at_instant.probes_per_call");
/// q.record(128);
/// ```
#[macro_export]
macro_rules! histo {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::Registry::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn metric_macro_caches_one_handle() {
        if !crate::enabled() {
            // Disabled: handles must be inert and register nothing.
            let c = metric!("obs.test.macro_disabled");
            assert!(!c.is_live());
            return;
        }
        let a = metric!("obs.test.macro");
        let b = metric!("obs.test.macro");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn histo_macro_records() {
        if !crate::enabled() {
            return;
        }
        let h = histo!("obs.test.macro_h");
        h.record(7);
        assert!(h.count() >= 1);
    }
}
