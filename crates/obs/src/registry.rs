//! The process-wide metrics registry: named counters and histograms.
//!
//! The hot path is lock-free: a [`Counter`] is a `Copy` handle to a leaked
//! `AtomicU64` cell, so `add` is a single relaxed `fetch_add`. The registry
//! mutex is only taken at registration time (once per distinct name — cache
//! the handle, e.g. via the [`metric!`](crate::metric) macro) and when taking
//! a [`Snapshot`].
//!
//! When observability is disabled (`MOB_OBS=0`) every registration returns a
//! no-op handle **without allocating or registering anything** — the
//! counter-of-counters ([`Registry::num_counters`]) stays at zero, which is
//! what the zero-cost test asserts.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Environment variable that disables observability when set to `0`,
/// `false`, `off` or `no` (any other value — or unset — leaves it enabled).
pub const OBS_ENV: &str = "MOB_OBS";

fn env_enabled() -> bool {
    match std::env::var(OBS_ENV) {
        Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | "no"),
        Err(_) => true,
    }
}

fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A registry of named counters and histograms.
///
/// Queries normally go through the process-wide instance
/// ([`Registry::global`], whose enabled/disabled state is resolved **once**
/// from [`OBS_ENV`]); local instances ([`Registry::new`]) exist so unit tests
/// can exercise both states without touching the environment.
///
/// Counter cells are intentionally leaked (`Box::leak`) so handles are
/// `'static` and `Copy`; the leak is bounded by the number of distinct metric
/// names ever registered.
pub struct Registry {
    enabled: bool,
    counters: Mutex<BTreeMap<&'static str, &'static AtomicU64>>,
    histograms: Mutex<BTreeMap<&'static str, &'static HistoCell>>,
}

impl Registry {
    /// Create a local registry, explicitly enabled or disabled.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        Registry {
            enabled,
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-wide registry. Enabled state is read from [`OBS_ENV`]
    /// exactly once, on first access.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| Registry::new(env_enabled()))
    }

    /// Whether this registry records anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Register (or fetch) the named counter.
    ///
    /// Disabled registries hand back [`Counter::noop`] without allocating.
    pub fn counter(&self, name: &'static str) -> Counter {
        if !self.enabled {
            return Counter::noop();
        }
        let mut map = relock(&self.counters);
        let cell = map
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(AtomicU64::new(0))));
        Counter(Some(cell))
    }

    /// Register (or fetch) the named histogram.
    ///
    /// Disabled registries hand back [`Histogram::noop`] without allocating.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        if !self.enabled {
            return Histogram::noop();
        }
        let mut map = relock(&self.histograms);
        let cell = map
            .entry(name)
            .or_insert_with(|| Box::leak(Box::new(HistoCell::new())));
        Histogram(Some(cell))
    }

    /// Number of registered counters — the "counter of counters". Stays `0`
    /// for a disabled registry no matter how much work runs through it.
    #[must_use]
    pub fn num_counters(&self) -> usize {
        relock(&self.counters).len()
    }

    /// Number of registered histograms (also `0` when disabled).
    #[must_use]
    pub fn num_histograms(&self) -> usize {
        relock(&self.histograms).len()
    }

    /// Current value of every registered counter, by name.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = relock(&self.counters);
        Snapshot {
            values: map
                .iter()
                .map(|(name, cell)| (*name, cell.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .field("num_counters", &self.num_counters())
            .field("num_histograms", &self.num_histograms())
            .finish()
    }
}

/// A `Copy` handle to a named registry counter. `add` is a single relaxed
/// `fetch_add`; the no-op variant is a predictable untaken branch.
#[derive(Clone, Copy, Default)]
pub struct Counter(Option<&'static AtomicU64>);

impl Counter {
    /// A counter that records nothing (what disabled registries hand out).
    #[must_use]
    pub const fn noop() -> Self {
        Counter(None)
    }

    /// Whether this handle is backed by a live registry cell.
    #[must_use]
    pub fn is_live(self) -> bool {
        self.0.is_some()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(self, n: u64) {
        if let Some(cell) = self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    #[must_use]
    pub fn get(self) -> u64 {
        self.0.map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(cell) => write!(f, "Counter({})", cell.load(Ordering::Relaxed)),
            None => write!(f, "Counter(noop)"),
        }
    }
}

/// A per-object counter for single-threaded owners (e.g. a storage view):
/// always counts locally in a cheap `Cell` — so per-object accessors stay
/// exact even with observability disabled — and mirrors every increment into
/// a registry [`Counter`] when one is live.
#[derive(Debug)]
pub struct LocalCounter {
    local: Cell<u64>,
    global: Counter,
}

impl LocalCounter {
    /// A local counter mirroring into `global` (which may be a no-op).
    #[must_use]
    pub fn new(global: Counter) -> Self {
        LocalCounter {
            local: Cell::new(0),
            global,
        }
    }

    /// A local counter with no registry mirror.
    #[must_use]
    pub fn detached() -> Self {
        LocalCounter::new(Counter::noop())
    }

    /// Add `n` locally and to the registry mirror.
    #[inline]
    pub fn add(&self, n: u64) {
        self.local.set(self.local.get() + n);
        self.global.add(n);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The local (per-object) count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.local.get()
    }

    /// Reset the local count. The registry mirror is monotone and is
    /// deliberately left untouched (process totals never go backwards).
    pub fn reset_local(&self) {
        self.local.set(0);
    }
}

/// Like [`LocalCounter`] but `Sync`, for shared owners (e.g. a page store
/// behind an `Arc` touched by many workers).
#[derive(Debug)]
pub struct SharedCounter {
    local: AtomicU64,
    global: Counter,
}

impl SharedCounter {
    /// A shared counter mirroring into `global` (which may be a no-op).
    #[must_use]
    pub fn new(global: Counter) -> Self {
        SharedCounter {
            local: AtomicU64::new(0),
            global,
        }
    }

    /// A shared counter with no registry mirror.
    #[must_use]
    pub fn detached() -> Self {
        SharedCounter::new(Counter::noop())
    }

    /// Add `n` locally and to the registry mirror.
    #[inline]
    pub fn add(&self, n: u64) {
        self.local.fetch_add(n, Ordering::Relaxed);
        self.global.add(n);
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The local (per-object) count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }

    /// Reset the local count (registry mirror stays monotone).
    pub fn reset_local(&self) {
        self.local.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of every counter in a registry.
///
/// `Snapshot` is the unit of account for query attribution: take one before
/// and one after a query, and [`Snapshot::delta`] is what the query did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    values: BTreeMap<&'static str, u64>,
}

impl Snapshot {
    /// Value of `name` at snapshot time (0 if absent).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// `self - earlier`, per counter, dropping zero entries — counters that
    /// did not move between the snapshots simply do not appear.
    #[must_use]
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .filter_map(|(name, v)| {
                    let d = v.saturating_sub(earlier.get(name));
                    (d > 0).then_some((*name, d))
                })
                .collect(),
        }
    }

    /// The deterministic subset: drops scheduling-dependent metrics
    /// (`par.*` — chunk/worker accounting varies with `MOB_THREADS`) and
    /// wall-clock metrics (names ending in `.ns`). Everything that remains
    /// is contractually identical across thread counts for the same
    /// workload, mirroring the result-determinism contract of `mob-par`.
    #[must_use]
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            values: self
                .values
                .iter()
                .filter(|(name, _)| !name.starts_with("par.") && !name.ends_with(".ns"))
                .map(|(name, v)| (*name, *v))
                .collect(),
        }
    }

    /// Merge `other` into `self`, summing per counter.
    pub fn add(&mut self, other: &Snapshot) {
        for (name, v) in &other.values {
            *self.values.entry(name).or_insert(0) += v;
        }
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.values.iter().map(|(name, v)| (*name, *v))
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no counter is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, v) in &self.values {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{name}={v}")?;
        }
        Ok(())
    }
}

const HISTO_BUCKETS: usize = 65;

/// Backing storage for a [`Histogram`]: power-of-two buckets plus exact
/// count and sum. Bucket `i` holds values `v` with `floor(log2 v) = i - 1`
/// (bucket 0 holds zero).
pub struct HistoCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTO_BUCKETS],
}

impl HistoCell {
    fn new() -> Self {
        HistoCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Upper bound of the values that land in `bucket`.
fn bucket_upper(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= HISTO_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// A `Copy` handle to a named registry histogram (power-of-two buckets,
/// lock-free `record`). Like [`Counter`], the disabled variant is a no-op.
#[derive(Clone, Copy, Default)]
pub struct Histogram(Option<&'static HistoCell>);

impl Histogram {
    /// A histogram that records nothing.
    #[must_use]
    pub const fn noop() -> Self {
        Histogram(None)
    }

    /// Whether this handle is backed by a live registry cell.
    #[must_use]
    pub fn is_live(self) -> bool {
        self.0.is_some()
    }

    /// Record one observation.
    #[inline]
    pub fn record(self, v: u64) {
        if let Some(cell) = self.0 {
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.sum.fetch_add(v, Ordering::Relaxed);
            cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of observations.
    #[must_use]
    pub fn count(self) -> u64 {
        self.0.map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(self) -> u64 {
        self.0.map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// Upper bound of the bucket containing quantile `q` (clamped to
    /// `[0, 1]`); 0 when empty. Power-of-two resolution: the answer is at
    /// most 2x the true quantile.
    #[must_use]
    pub fn approx_quantile(self, q: f64) -> u64 {
        let Some(cell) = self.0 else { return 0 };
        let n = cell.count.load(Ordering::Relaxed);
        if n == 0 {
            return 0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in cell.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i);
            }
        }
        u64::MAX
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(_) => write!(f, "Histogram(count={}, sum={})", self.count(), self.sum()),
            None => write!(f, "Histogram(noop)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let reg = Registry::new(true);
        let a = reg.counter("t.a");
        let a2 = reg.counter("t.a");
        a.add(3);
        a2.incr();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.num_counters(), 1);
        assert!(a.is_live());
    }

    #[test]
    fn disabled_registry_registers_nothing() {
        let reg = Registry::new(false);
        let c = reg.counter("t.never");
        let h = reg.histogram("t.never_h");
        c.add(10);
        h.record(10);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(reg.num_counters(), 0);
        assert_eq!(reg.num_histograms(), 0);
        assert!(reg.snapshot().is_empty());
        assert!(!c.is_live());
        assert!(!h.is_live());
    }

    #[test]
    fn local_counter_counts_even_without_mirror() {
        let lc = LocalCounter::detached();
        lc.add(2);
        lc.incr();
        assert_eq!(lc.get(), 3);
        lc.reset_local();
        assert_eq!(lc.get(), 0);
    }

    #[test]
    fn local_counter_mirrors_into_registry() {
        let reg = Registry::new(true);
        let lc = LocalCounter::new(reg.counter("t.local"));
        lc.add(5);
        lc.reset_local();
        lc.add(2);
        assert_eq!(lc.get(), 2);
        // The registry mirror is monotone: reset_local does not rewind it.
        assert_eq!(reg.snapshot().get("t.local"), 7);
    }

    #[test]
    fn shared_counter_mirrors_and_resets_locally() {
        let reg = Registry::new(true);
        let sc = SharedCounter::new(reg.counter("t.shared"));
        sc.add(4);
        sc.reset_local();
        sc.incr();
        assert_eq!(sc.get(), 1);
        assert_eq!(reg.snapshot().get("t.shared"), 5);
    }

    #[test]
    fn snapshot_delta_drops_unmoved_counters() {
        let reg = Registry::new(true);
        let a = reg.counter("t.a");
        let b = reg.counter("t.b");
        a.add(1);
        b.add(1);
        let before = reg.snapshot();
        a.add(9);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.get("t.a"), 9);
        assert_eq!(d.get("t.b"), 0);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn deterministic_filters_par_and_ns() {
        let reg = Registry::new(true);
        reg.counter("par.chunks").add(7);
        reg.counter("rel.snapshot_at.ns").add(123);
        reg.counter("view.units_decoded").add(5);
        let det = reg.snapshot().deterministic();
        assert_eq!(det.len(), 1);
        assert_eq!(det.get("view.units_decoded"), 5);
    }

    #[test]
    fn snapshot_display_and_add() {
        let reg = Registry::new(true);
        reg.counter("t.x").add(1);
        reg.counter("t.y").add(2);
        let mut s = reg.snapshot();
        let s2 = s.clone();
        s.add(&s2);
        assert_eq!(s.get("t.x"), 2);
        assert_eq!(format!("{s}"), "t.x=2 t.y=4");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = Registry::new(true);
        let h = reg.histogram("t.h");
        for v in [0u64, 1, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1110);
        assert_eq!(h.mean(), 158);
        assert_eq!(h.approx_quantile(0.0), 0);
        // Median of 7 values is the 4th (=3), whose bucket upper bound is 3.
        assert_eq!(h.approx_quantile(0.5), 3);
        assert!(h.approx_quantile(1.0) >= 1000);
        assert_eq!(reg.num_histograms(), 1);
    }

    #[test]
    fn bucket_index_is_floor_log2_plus_one() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(2), 3);
    }
}
