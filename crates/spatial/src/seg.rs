//! Line segments (Sec 3.2.2): `Seg = {(u, v) | u, v ∈ Point, u < v}` and
//! the paper's segment predicates `collinear`, `p-intersect`, `touch`,
//! `meet`, plus intersection computation, `merge-segs` (used by `ι_s`/`ι_e`
//! of `uline`) and the even/odd fragment rule (used by `ι_s`/`ι_e` of
//! `uregion`).

use crate::bbox::Rect;
use crate::point::{cross, orientation, Point};
use mob_base::error::{InvariantViolation, Result};
use mob_base::Real;
use std::fmt;

/// A line segment with lexicographically ordered end points (`u < v`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Seg {
    u: Point,
    v: Point,
}

impl Seg {
    /// Construct, enforcing `u < v` (the carrier-set condition).
    pub fn try_new(u: Point, v: Point) -> Result<Seg> {
        if u < v {
            Ok(Seg { u, v })
        } else {
            Err(InvariantViolation::with_detail(
                "seg: u < v (lexicographic)",
                format!("u={u:?} v={v:?}"),
            ))
        }
    }

    /// Construct from two distinct points in either order; panics if equal.
    #[track_caller]
    pub fn new(a: Point, b: Point) -> Seg {
        assert!(a != b, "segment end points must be distinct");
        if a < b {
            Seg { u: a, v: b }
        } else {
            Seg { u: b, v: a }
        }
    }

    /// Construct from two distinct points in either order, or `None` if
    /// they coincide (a "degenerated segment" in the paper's endpoint
    /// cleanup).
    pub fn try_from_unordered(a: Point, b: Point) -> Option<Seg> {
        if a == b {
            None
        } else {
            Some(Seg::new(a, b))
        }
    }

    /// The smaller (left) end point.
    #[inline]
    pub fn u(&self) -> Point {
        self.u
    }

    /// The larger (right) end point.
    #[inline]
    pub fn v(&self) -> Point {
        self.v
    }

    /// Euclidean length.
    #[inline]
    pub fn length(&self) -> Real {
        self.u.distance(self.v)
    }

    /// Midpoint.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.u.midpoint(self.v)
    }

    /// Point at parameter `f ∈ [0,1]` from `u` to `v`.
    #[inline]
    pub fn point_at(&self, f: Real) -> Point {
        self.u.lerp(self.v, f)
    }

    /// Bounding box.
    pub fn bbox(&self) -> Rect {
        Rect::of_points([self.u, self.v])
    }

    /// `true` if `p` is one of the end points.
    #[inline]
    pub fn has_endpoint(&self, p: Point) -> bool {
        self.u == p || self.v == p
    }

    /// `true` if `p` lies on the (closed) segment.
    pub fn contains_point(&self, p: Point) -> bool {
        orientation(self.u, self.v, p) == 0
            && self.u.x.min(self.v.x) <= p.x
            && p.x <= self.u.x.max(self.v.x)
            && self.u.y.min(self.v.y) <= p.y
            && p.y <= self.u.y.max(self.v.y)
    }

    /// `true` if `p` lies in the interior (on the segment, not an end point).
    pub fn interior_contains(&self, p: Point) -> bool {
        self.contains_point(p) && !self.has_endpoint(p)
    }

    /// The paper's `collinear(s, t)`: both segments lie on one infinite line.
    pub fn collinear(&self, other: &Seg) -> bool {
        orientation(self.u, self.v, other.u) == 0 && orientation(self.u, self.v, other.v) == 0
    }

    /// The paper's `meet(s, t)`: the segments share an end point.
    pub fn meet(&self, other: &Seg) -> bool {
        self.has_endpoint(other.u) || self.has_endpoint(other.v)
    }

    /// The paper's `touch(s, t)`: an end point of one segment lies in the
    /// interior of the other.
    pub fn touch(&self, other: &Seg) -> bool {
        self.interior_contains(other.u)
            || self.interior_contains(other.v)
            || other.interior_contains(self.u)
            || other.interior_contains(self.v)
    }

    /// The paper's `p-intersect(s, t)`: the segments cross in a point that
    /// is interior to both.
    pub fn p_intersect(&self, other: &Seg) -> bool {
        matches!(self.intersection(other), SegIntersection::Crossing(p)
            if self.interior_contains(p) && other.interior_contains(p))
    }

    /// `true` if the segments share no point at all.
    pub fn disjoint(&self, other: &Seg) -> bool {
        matches!(self.intersection(other), SegIntersection::Disjoint)
    }

    /// `true` if the segments are collinear and share more than one point.
    pub fn overlaps(&self, other: &Seg) -> bool {
        matches!(self.intersection(other), SegIntersection::Overlap(_))
    }

    /// Full case analysis of the intersection of two segments.
    pub fn intersection(&self, other: &Seg) -> SegIntersection {
        let (a, b) = (self.u, self.v);
        let (c, d) = (other.u, other.v);
        let d1 = orientation(c, d, a);
        let d2 = orientation(c, d, b);
        let d3 = orientation(a, b, c);
        let d4 = orientation(a, b, d);

        if d1 == 0 && d2 == 0 {
            // Collinear: project onto the dominant axis.
            let horizontal_ish = (b.x - a.x).abs() >= (b.y - a.y).abs();
            let key = |p: Point| if horizontal_ish { p.x } else { p.y };
            let (s1, e1) = (key(a), key(b));
            let (lo1, hi1) = (s1.min(e1), s1.max(e1));
            let (s2, e2) = (key(c), key(d));
            let (lo2, hi2) = (s2.min(e2), s2.max(e2));
            let lo = lo1.max(lo2);
            let hi = hi1.min(hi2);
            if lo > hi {
                return SegIntersection::Disjoint;
            }
            // Map the overlap back to points using whichever segment is
            // handy (self).
            let param = |k: Real| {
                let denom = key(b) - key(a);
                (k - key(a)) / denom
            };
            let p_lo = self.point_at(param(lo));
            let p_hi = self.point_at(param(hi));
            if p_lo == p_hi {
                return SegIntersection::Crossing(p_lo);
            }
            return SegIntersection::Overlap(Seg::new(p_lo, p_hi));
        }

        let straddle1 = (d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0) || d1 == 0 || d2 == 0;
        let straddle2 = (d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0) || d3 == 0 || d4 == 0;
        if !(straddle1 && straddle2) {
            return SegIntersection::Disjoint;
        }
        // Shared end points and touches produce exact answers.
        if d1 == 0 && other.contains_point(a) {
            return SegIntersection::Crossing(a);
        }
        if d2 == 0 && other.contains_point(b) {
            return SegIntersection::Crossing(b);
        }
        if d3 == 0 && self.contains_point(c) {
            return SegIntersection::Crossing(c);
        }
        if d4 == 0 && self.contains_point(d) {
            return SegIntersection::Crossing(d);
        }
        if d1 == 0 || d2 == 0 || d3 == 0 || d4 == 0 {
            // An end point was collinear with the other segment's line but
            // outside the segment itself.
            return SegIntersection::Disjoint;
        }
        // Proper crossing: compute the parameter on self.
        let denom = cross(Point::ORIGIN, b - a, d - c);
        debug_assert!(denom.get() != 0.0, "non-collinear straddling segments");
        let s = cross(Point::ORIGIN, c - a, d - c) / denom;
        SegIntersection::Crossing(self.point_at(s))
    }
}

/// Result of intersecting two segments.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SegIntersection {
    /// No common point.
    Disjoint,
    /// Exactly one common point (crossing, touch, or shared end point).
    Crossing(Point),
    /// Collinear segments sharing a sub-segment.
    Overlap(Seg),
}

/// The paper's `merge-segs`: merge collinear segments that overlap or
/// meet end-to-end into maximal segments; remove duplicates.
///
/// Used by the `ι_s`/`ι_e` endpoint-cleanup of `uline` (Sec 3.2.6).
pub fn merge_segs(mut segs: Vec<Seg>) -> Vec<Seg> {
    segs.sort();
    segs.dedup();
    loop {
        let mut merged_any = false;
        'outer: for i in 0..segs.len() {
            for j in (i + 1)..segs.len() {
                let (a, b) = (segs[i], segs[j]);
                if a.collinear(&b) && !a.disjoint(&b) {
                    let pts = [a.u, a.v, b.u, b.v];
                    let lo = *pts.iter().min().expect("non-empty");
                    let hi = *pts.iter().max().expect("non-empty");
                    segs.swap_remove(j);
                    segs[i] = Seg::new(lo, hi);
                    merged_any = true;
                    break 'outer;
                }
            }
        }
        if !merged_any {
            break;
        }
    }
    segs.sort();
    segs
}

/// The even/odd fragment rule of `ι_s`/`ι_e` for `uregion` (Sec 3.2.6):
/// partition each maximal line into fragments, count how many input
/// segments cover each fragment, keep a fragment iff the count is odd,
/// then merge adjacent kept fragments.
pub fn parity_fragments(segs: &[Seg]) -> Vec<Seg> {
    let mut remaining: Vec<Seg> = segs.to_vec();
    let mut out: Vec<Seg> = Vec::new();
    while let Some(first) = remaining.first().copied() {
        // Pull out the cluster of segments collinear with `first`.
        let (cluster, rest): (Vec<Seg>, Vec<Seg>) =
            remaining.iter().partition(|s| first.collinear(s));
        remaining = rest;
        if cluster.len() == 1 {
            out.push(cluster[0]);
            continue;
        }
        // Project the cluster on the dominant axis of `first`'s line.
        let dir = first.v - first.u;
        let horizontal_ish = dir.x.abs() >= dir.y.abs();
        let key = |p: Point| if horizontal_ish { p.x } else { p.y };
        let mut cuts: Vec<Real> = cluster.iter().flat_map(|s| [key(s.u), key(s.v)]).collect();
        cuts.sort();
        cuts.dedup();
        let param = |k: Real| {
            let denom = key(first.v) - key(first.u);
            (k - key(first.u)) / denom
        };
        let mut kept: Vec<Seg> = Vec::new();
        for w in cuts.windows(2) {
            let mid = Real::new((w[0].get() + w[1].get()) / 2.0);
            let count = cluster
                .iter()
                .filter(|s| {
                    let (a, b) = (key(s.u), key(s.v));
                    a.min(b) <= mid && mid <= a.max(b)
                })
                .count();
            if count % 2 == 1 {
                let p = first.point_at(param(w[0]));
                let q = first.point_at(param(w[1]));
                if let Some(s) = Seg::try_from_unordered(p, q) {
                    kept.push(s);
                }
            }
        }
        out.extend(merge_segs(kept));
    }
    out.sort();
    out
}

impl fmt::Debug for Seg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:?}–{:?}]", self.u, self.v)
    }
}

/// Shorthand constructor used pervasively in tests and examples.
#[inline]
pub fn seg(x1: f64, y1: f64, x2: f64, y2: f64) -> Seg {
    Seg::new(Point::from_f64(x1, y1), Point::from_f64(x2, y2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use mob_base::r;

    #[test]
    fn construction_normalizes_order() {
        let s = Seg::new(pt(2.0, 0.0), pt(1.0, 5.0));
        assert_eq!(s.u(), pt(1.0, 5.0));
        assert_eq!(s.v(), pt(2.0, 0.0));
        assert!(Seg::try_new(pt(2.0, 0.0), pt(1.0, 0.0)).is_err());
        assert!(Seg::try_from_unordered(pt(1.0, 1.0), pt(1.0, 1.0)).is_none());
    }

    #[test]
    fn geometry_basics() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), r(5.0));
        assert_eq!(s.midpoint(), pt(1.5, 2.0));
        assert_eq!(s.point_at(r(0.5)), pt(1.5, 2.0));
        assert!(s.contains_point(pt(1.5, 2.0)));
        assert!(!s.contains_point(pt(1.0, 2.0)));
        assert!(s.interior_contains(pt(1.5, 2.0)));
        assert!(!s.interior_contains(pt(0.0, 0.0)));
    }

    #[test]
    fn paper_predicates() {
        let a = seg(0.0, 0.0, 2.0, 0.0);
        let b = seg(1.0, -1.0, 1.0, 1.0); // crosses a at (1,0)
        let c = seg(2.0, 0.0, 3.0, 1.0); // meets a at (2,0)
        let d = seg(1.0, 0.0, 1.0, 2.0); // touches a (its end point interior to a)
        let e = seg(3.0, 0.0, 5.0, 0.0); // collinear with a, disjoint
        let f = seg(1.0, 0.0, 4.0, 0.0); // collinear with a, overlapping

        assert!(a.p_intersect(&b));
        assert!(!a.p_intersect(&c));
        assert!(a.meet(&c));
        assert!(!a.meet(&b));
        assert!(a.touch(&d));
        assert!(!a.touch(&c));
        assert!(a.collinear(&e) && a.disjoint(&e));
        assert!(a.collinear(&f) && a.overlaps(&f));
        assert!(!a.collinear(&b));
    }

    #[test]
    fn intersection_crossing() {
        let a = seg(0.0, 0.0, 2.0, 2.0);
        let b = seg(0.0, 2.0, 2.0, 0.0);
        assert_eq!(a.intersection(&b), SegIntersection::Crossing(pt(1.0, 1.0)));
    }

    #[test]
    fn intersection_touch_and_meet() {
        let a = seg(0.0, 0.0, 2.0, 0.0);
        let touch = seg(1.0, 0.0, 1.0, 2.0);
        assert_eq!(
            a.intersection(&touch),
            SegIntersection::Crossing(pt(1.0, 0.0))
        );
        let meet = seg(2.0, 0.0, 3.0, 3.0);
        assert_eq!(
            a.intersection(&meet),
            SegIntersection::Crossing(pt(2.0, 0.0))
        );
    }

    #[test]
    fn intersection_disjoint_cases() {
        let a = seg(0.0, 0.0, 2.0, 0.0);
        assert_eq!(
            a.intersection(&seg(0.0, 1.0, 2.0, 1.0)),
            SegIntersection::Disjoint
        );
        // Endpoint collinear with a's line but beyond the segment.
        assert_eq!(
            a.intersection(&seg(3.0, 0.0, 4.0, 1.0)),
            SegIntersection::Disjoint
        );
        // Lines cross but outside both segments.
        assert_eq!(
            a.intersection(&seg(5.0, -1.0, 5.0, 1.0)),
            SegIntersection::Disjoint
        );
    }

    #[test]
    fn intersection_overlap() {
        let a = seg(0.0, 0.0, 4.0, 0.0);
        let b = seg(1.0, 0.0, 6.0, 0.0);
        assert_eq!(
            a.intersection(&b),
            SegIntersection::Overlap(seg(1.0, 0.0, 4.0, 0.0))
        );
        // Vertical overlap exercises the non-horizontal projection.
        let v1 = seg(0.0, 0.0, 0.0, 4.0);
        let v2 = seg(0.0, 2.0, 0.0, 6.0);
        assert_eq!(
            v1.intersection(&v2),
            SegIntersection::Overlap(seg(0.0, 2.0, 0.0, 4.0))
        );
        // Collinear meeting in exactly one point.
        let c = seg(4.0, 0.0, 6.0, 0.0);
        assert_eq!(a.intersection(&c), SegIntersection::Crossing(pt(4.0, 0.0)));
    }

    #[test]
    fn merge_segs_maximalizes() {
        let merged = merge_segs(vec![
            seg(0.0, 0.0, 2.0, 0.0),
            seg(1.0, 0.0, 3.0, 0.0),
            seg(3.0, 0.0, 4.0, 0.0), // collinear, meets at (3,0)
            seg(0.0, 1.0, 1.0, 1.0), // separate line
        ]);
        assert_eq!(
            merged,
            vec![seg(0.0, 0.0, 4.0, 0.0), seg(0.0, 1.0, 1.0, 1.0)]
        );
    }

    #[test]
    fn merge_segs_dedups() {
        let merged = merge_segs(vec![seg(0.0, 0.0, 1.0, 1.0), seg(0.0, 0.0, 1.0, 1.0)]);
        assert_eq!(merged, vec![seg(0.0, 0.0, 1.0, 1.0)]);
    }

    #[test]
    fn parity_fragments_even_cancels() {
        // Two identical segments cancel entirely.
        let out = parity_fragments(&[seg(0.0, 0.0, 2.0, 0.0), seg(0.0, 0.0, 2.0, 0.0)]);
        assert!(out.is_empty());
    }

    #[test]
    fn parity_fragments_partial_overlap() {
        // Paper's example: (p,q) overlaps (r,s), order p r q s on the line
        // => fragments (p,r) keep, (r,q) cancel, (q,s) keep.
        let out = parity_fragments(&[seg(0.0, 0.0, 2.0, 0.0), seg(1.0, 0.0, 3.0, 0.0)]);
        assert_eq!(out, vec![seg(0.0, 0.0, 1.0, 0.0), seg(2.0, 0.0, 3.0, 0.0)]);
    }

    #[test]
    fn parity_fragments_passthrough() {
        let out = parity_fragments(&[seg(0.0, 0.0, 1.0, 0.0), seg(0.0, 1.0, 1.0, 2.0)]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn parity_fragments_triple_overlap() {
        // Three segments covering [0,3], [1,2] twice more:
        // coverage: [0,1]=1 keep, [1,2]=3 keep, [2,3]=1 keep -> merged [0,3].
        let out = parity_fragments(&[
            seg(0.0, 0.0, 3.0, 0.0),
            seg(1.0, 0.0, 2.0, 0.0),
            seg(1.0, 0.0, 2.0, 0.0),
        ]);
        assert_eq!(out, vec![seg(0.0, 0.0, 3.0, 0.0)]);
    }
}
