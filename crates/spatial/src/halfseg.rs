//! Halfsegments (Sec 4.1, after \[GdRS95\]).
//!
//! Each segment is stored twice — once for its left (smaller) and once for
//! its right end point; the relevant end point is the *dominating point*.
//! Plane-sweep style algorithms traverse halfsegments in ascending order:
//! at a sweep position, right halfsegments (segments ending here) come
//! before left halfsegments (segments starting here), and halfsegments
//! with equal dominating points are ordered by rotation.

use crate::point::{cross, Point};
use crate::seg::Seg;
use std::cmp::Ordering;
use std::fmt;

/// One half of a segment, tagged with which end point dominates.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HalfSeg {
    seg: Seg,
    /// `true` if the dominating point is the left (smaller) end point.
    left_dom: bool,
}

impl HalfSeg {
    /// The left halfsegment of `seg` (dominating point = `seg.u()`).
    pub fn left(seg: Seg) -> HalfSeg {
        HalfSeg {
            seg,
            left_dom: true,
        }
    }

    /// The right halfsegment of `seg` (dominating point = `seg.v()`).
    pub fn right(seg: Seg) -> HalfSeg {
        HalfSeg {
            seg,
            left_dom: false,
        }
    }

    /// Both halfsegments of a segment.
    pub fn pair(seg: Seg) -> [HalfSeg; 2] {
        [HalfSeg::left(seg), HalfSeg::right(seg)]
    }

    /// The underlying segment.
    pub fn seg(&self) -> Seg {
        self.seg
    }

    /// `true` if this is the left halfsegment.
    pub fn is_left(&self) -> bool {
        self.left_dom
    }

    /// The dominating point.
    pub fn dom(&self) -> Point {
        if self.left_dom {
            self.seg.u()
        } else {
            self.seg.v()
        }
    }

    /// The non-dominating end point.
    pub fn other(&self) -> Point {
        if self.left_dom {
            self.seg.v()
        } else {
            self.seg.u()
        }
    }
}

/// Angular comparison of two direction vectors `a`, `b` (from a common
/// origin), counter-clockwise starting at the positive x axis.
fn cmp_angle(a: Point, b: Point) -> Ordering {
    let half = |d: Point| -> u8 {
        // 0 for angle in [0, π), 1 for [π, 2π).
        if d.y.get() > 0.0 || (d.y.get() == 0.0 && d.x.get() > 0.0) {
            0
        } else {
            1
        }
    };
    half(a).cmp(&half(b)).then_with(|| {
        let c = cross(Point::ORIGIN, a, b).get();
        if c > 0.0 {
            Ordering::Less
        } else if c < 0.0 {
            Ordering::Greater
        } else {
            Ordering::Equal
        }
    })
}

impl PartialOrd for HalfSeg {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HalfSeg {
    /// Halfsegment order: by dominating point (lexicographic); for equal
    /// dominating points right halfsegments precede left ones; for equal
    /// kinds, by rotation of the segment around the dominating point;
    /// final tie-break by the other end point (only reachable for
    /// collinear overlapping segments, which valid values exclude).
    fn cmp(&self, other: &Self) -> Ordering {
        self.dom()
            .cmp(&other.dom())
            .then_with(|| self.left_dom.cmp(&other.left_dom))
            .then_with(|| cmp_angle(self.other() - self.dom(), other.other() - other.dom()))
            .then_with(|| self.other().cmp(&other.other()))
    }
}

impl fmt::Debug for HalfSeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{:?}@{:?}",
            if self.left_dom { 'L' } else { 'R' },
            self.seg,
            self.dom()
        )
    }
}

/// The ordered halfsegment sequence of a set of segments — the storage
/// order of `line` and `region` values (Sec 4.1).
pub fn halfseg_sequence(segs: &[Seg]) -> Vec<HalfSeg> {
    let mut hs: Vec<HalfSeg> = segs.iter().copied().flat_map(HalfSeg::pair).collect();
    hs.sort();
    hs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::seg::seg;

    #[test]
    fn dominating_points() {
        let s = seg(0.0, 0.0, 1.0, 1.0);
        let l = HalfSeg::left(s);
        let r = HalfSeg::right(s);
        assert_eq!(l.dom(), pt(0.0, 0.0));
        assert_eq!(l.other(), pt(1.0, 1.0));
        assert_eq!(r.dom(), pt(1.0, 1.0));
        assert_eq!(r.other(), pt(0.0, 0.0));
        assert!(l.is_left() && !r.is_left());
    }

    #[test]
    fn order_by_dominating_point_first() {
        let a = HalfSeg::left(seg(0.0, 0.0, 5.0, 5.0));
        let b = HalfSeg::left(seg(1.0, 0.0, 2.0, 0.0));
        assert!(a < b);
    }

    #[test]
    fn right_before_left_at_same_point() {
        // At point (1,0): segment A ends here, segment B starts here.
        let ending = HalfSeg::right(seg(0.0, 0.0, 1.0, 0.0));
        let starting = HalfSeg::left(seg(1.0, 0.0, 2.0, 0.0));
        assert_eq!(ending.dom(), starting.dom());
        assert!(ending < starting);
    }

    #[test]
    fn rotation_order_among_left_halfsegments() {
        // Three segments fanning out of the origin; order must be by angle
        // ccw from positive x axis.
        let east = HalfSeg::left(seg(0.0, 0.0, 1.0, 0.0));
        let ne = HalfSeg::left(seg(0.0, 0.0, 1.0, 1.0));
        let north = HalfSeg::left(seg(0.0, 0.0, 0.0, 1.0));
        assert!(east < ne);
        assert!(ne < north);
    }

    #[test]
    fn sequence_is_sorted_and_complete() {
        let segs = vec![seg(0.0, 0.0, 1.0, 0.0), seg(1.0, 0.0, 2.0, 1.0)];
        let hs = halfseg_sequence(&segs);
        assert_eq!(hs.len(), 4);
        for w in hs.windows(2) {
            assert!(w[0] < w[1]);
        }
        // First is the left halfsegment at the smallest dominating point.
        assert_eq!(hs[0].dom(), pt(0.0, 0.0));
        assert!(hs[0].is_left());
    }
}
