//! Cycles (Sec 3.2.2): simple polygons, the building blocks of faces.
//!
//! The paper defines a cycle as a set of segments such that (i) no two
//! segments properly intersect or touch, (ii) every end point occurs in
//! exactly two segments, and (iii) the segments form a *single* cycle.
//! [`Ring`] represents such a cycle as an ordered vertex list (which makes
//! (ii) and (iii) structural) and validates (i).

use crate::bbox::Rect;
use crate::point::{orientation, Point};
use crate::seg::Seg;
use mob_base::error::{InvariantViolation, Result};
use mob_base::Real;
use std::fmt;

/// A simple polygon given by its vertices in order (implicitly closed).
///
/// The vertex list is canonicalized to start at the lexicographically
/// smallest vertex, so equal cycles (same point set, same orientation)
/// have equal representations. Orientation (ccw/cw) is preserved: faces
/// normalize outer cycles to ccw and hole cycles to cw.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ring {
    pts: Vec<Point>,
}

impl Ring {
    /// Validating constructor from a vertex list (an explicitly repeated
    /// closing vertex is tolerated and removed).
    pub fn try_new(mut pts: Vec<Point>) -> Result<Ring> {
        if pts.len() >= 2 && pts.first() == pts.last() {
            pts.pop();
        }
        if pts.len() < 3 {
            return Err(InvariantViolation::new("cycle: at least 3 segments"));
        }
        // (ii) every end point in exactly two segments ⇔ no repeated vertex.
        let mut sorted = pts.clone();
        sorted.sort();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(InvariantViolation::new(
                "cycle: each end point occurs in exactly two segments",
            ));
        }
        // Degenerate zero-length edges are excluded by the above; build
        // edges and check (i): no proper intersections, no touches.
        let ring = Ring::new_canonical(pts);
        let segs = ring.segments();
        for (idx, s) in segs.iter().enumerate() {
            for t in segs.iter().skip(idx + 1) {
                if s.p_intersect(t) {
                    return Err(InvariantViolation::new(
                        "cycle: segments must not properly intersect",
                    ));
                }
                if s.touch(t) {
                    return Err(InvariantViolation::new("cycle: segments must not touch"));
                }
                if s.overlaps(t) {
                    return Err(InvariantViolation::new("cycle: segments must not overlap"));
                }
            }
        }
        if ring.signed_area() == Real::ZERO {
            return Err(InvariantViolation::new("cycle: must enclose area"));
        }
        Ok(ring)
    }

    /// Canonical rotation (no validation) — internal.
    fn new_canonical(pts: Vec<Point>) -> Ring {
        let min_idx = pts
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| **p)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut rotated = Vec::with_capacity(pts.len());
        rotated.extend_from_slice(&pts[min_idx..]);
        rotated.extend_from_slice(&pts[..min_idx]);
        Ring { pts: rotated }
    }

    /// Construct from a closed walk produced by arrangement tracing (no
    /// simplicity validation — the arrangement guarantees it).
    pub(crate) fn from_walk_unchecked(pts: Vec<Point>) -> Ring {
        Ring::new_canonical(pts)
    }

    /// Construct without validating simplicity.
    ///
    /// For evaluation paths where validity is guaranteed by a stronger
    /// invariant — e.g. `uregion` units certify that every interior
    /// instant evaluates to a valid region (Sec 3.2.6), so Algorithm
    /// `atinstant` need not re-check and stays `O(log n + r)` (Sec 5.1).
    /// Callers must uphold the cycle conditions themselves.
    pub fn new_unchecked(pts: Vec<Point>) -> Ring {
        debug_assert!(pts.len() >= 3);
        Ring::new_canonical(pts)
    }

    /// Number of vertices (= number of segments).
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` if the ring has no vertices (never for validated rings).
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// The vertices in order.
    pub fn points(&self) -> &[Point] {
        &self.pts
    }

    /// The edges of the cycle.
    pub fn segments(&self) -> Vec<Seg> {
        (0..self.pts.len())
            .map(|i| Seg::new(self.pts[i], self.pts[(i + 1) % self.pts.len()]))
            .collect()
    }

    /// The directed edges (preserving orientation).
    pub fn directed_edges(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        (0..self.pts.len()).map(move |i| (self.pts[i], self.pts[(i + 1) % self.pts.len()]))
    }

    /// Shoelace signed area: positive for counter-clockwise rings.
    pub fn signed_area(&self) -> Real {
        let mut sum = 0.0;
        for (a, b) in self.directed_edges() {
            sum += a.x.get() * b.y.get() - b.x.get() * a.y.get();
        }
        Real::new(sum / 2.0)
    }

    /// Unsigned enclosed area.
    pub fn area(&self) -> Real {
        self.signed_area().abs()
    }

    /// Total edge length.
    pub fn perimeter(&self) -> Real {
        self.directed_edges()
            .fold(Real::ZERO, |acc, (a, b)| acc + a.distance(b))
    }

    /// `true` if the ring is oriented counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > Real::ZERO
    }

    /// The same cycle with reversed orientation.
    pub fn reversed(&self) -> Ring {
        let mut pts = self.pts.clone();
        pts.reverse();
        Ring::new_canonical(pts)
    }

    /// This cycle oriented counter-clockwise.
    pub fn ccw(&self) -> Ring {
        if self.is_ccw() {
            self.clone()
        } else {
            self.reversed()
        }
    }

    /// This cycle oriented clockwise.
    pub fn cw(&self) -> Ring {
        if self.is_ccw() {
            self.reversed()
        } else {
            self.clone()
        }
    }

    /// Bounding box.
    pub fn bbox(&self) -> Rect {
        Rect::of_points(self.pts.iter().copied())
    }

    /// `true` if `p` lies on one of the edges.
    pub fn on_boundary(&self, p: Point) -> bool {
        self.directed_edges()
            .any(|(a, b)| Seg::new(a, b).contains_point(p))
    }

    /// Even-odd parity test for points *not* on the boundary.
    fn parity_inside(&self, p: Point) -> bool {
        let mut inside = false;
        for (a, b) in self.directed_edges() {
            // Upward ray from p: edge crosses iff its y-span straddles p.y.
            if (a.y > p.y) != (b.y > p.y) {
                let t = (p.y - a.y).get() / (b.y - a.y).get();
                let x = a.x.get() + t * (b.x - a.x).get();
                if x > p.x.get() {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// `σ(c)`: points enclosed by the cycle *or on its boundary*.
    pub fn contains_point(&self, p: Point) -> bool {
        self.on_boundary(p) || self.parity_inside(p)
    }

    /// Strict interior test.
    pub fn contains_point_strict(&self, p: Point) -> bool {
        !self.on_boundary(p) && self.parity_inside(p)
    }

    /// A point guaranteed to lie strictly inside the cycle: an edge
    /// midpoint nudged towards the interior.
    pub fn interior_point(&self) -> Point {
        let diag = {
            let b = self.bbox();
            (b.width() * b.width() + b.height() * b.height())
                .get()
                .sqrt()
        };
        let ccw = self.is_ccw();
        for scale in [1e-6, 1e-9, 1e-3] {
            let eps = diag * scale;
            for (a, b) in self.directed_edges() {
                let m = a.midpoint(b);
                let d = b - a;
                let len = a.distance(b).get();
                if len == 0.0 {
                    continue;
                }
                // Left normal for ccw interiors, right normal for cw.
                let (nx, ny) = if ccw {
                    (-d.y.get() / len, d.x.get() / len)
                } else {
                    (d.y.get() / len, -d.x.get() / len)
                };
                let cand = Point::from_f64(m.x.get() + nx * eps, m.y.get() + ny * eps);
                if self.contains_point_strict(cand) {
                    return cand;
                }
            }
        }
        panic!("no interior point found for ring {self:?}");
    }

    /// The paper's `edge-inside(h, c)`: `h`'s interior is a subset of
    /// `c`'s interior and no edges of `h` and `c` overlap. Touching in
    /// isolated points — including a vertex of one cycle lying in the
    /// interior of the other's segment — is allowed ("it is allowed that
    /// a segment of one cycle *touches* a segment of another cycle").
    pub fn edge_inside(&self, outer: &Ring) -> bool {
        let own = self.segments();
        let theirs = outer.segments();
        for s in &own {
            for t in &theirs {
                if s.p_intersect(t) || s.overlaps(t) {
                    return false;
                }
            }
        }
        if !self.pts.iter().all(|p| outer.contains_point(*p)) {
            return false;
        }
        // Touch configurations keep vertices on the boundary; crossing
        // through would put an edge midpoint outside.
        if !own.iter().all(|s| outer.contains_point(s.midpoint())) {
            return false;
        }
        outer.contains_point_strict(self.interior_point())
    }

    /// The paper's `edge-disjoint(c1, c2)`: disjoint interiors, no
    /// overlapping edges; touching in isolated points (vertex-on-vertex
    /// or vertex-on-edge) allowed.
    pub fn edge_disjoint(&self, other: &Ring) -> bool {
        for s in &self.segments() {
            for t in &other.segments() {
                if s.p_intersect(t) || s.overlaps(t) {
                    return false;
                }
            }
        }
        if self.pts.iter().any(|p| other.contains_point_strict(*p))
            || other.pts.iter().any(|p| self.contains_point_strict(*p))
        {
            return false;
        }
        // A cycle sneaking through a touch point would put some edge
        // midpoint strictly inside the other cycle.
        if self
            .segments()
            .iter()
            .any(|s| other.contains_point_strict(s.midpoint()))
            || other
                .segments()
                .iter()
                .any(|s| self.contains_point_strict(s.midpoint()))
        {
            return false;
        }
        !other.contains_point_strict(self.interior_point())
            && !self.contains_point_strict(other.interior_point())
    }

    /// Convexity test (used by generators).
    pub fn is_convex(&self) -> bool {
        let n = self.pts.len();
        let mut sign = 0i8;
        for i in 0..n {
            let o = orientation(self.pts[i], self.pts[(i + 1) % n], self.pts[(i + 2) % n]);
            if o != 0 {
                if sign == 0 {
                    sign = o;
                } else if sign != o {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Debug for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.pts.iter()).finish()
    }
}

/// Convenience: an axis-aligned rectangle ring (counter-clockwise).
pub fn rect_ring(x0: f64, y0: f64, x1: f64, y1: f64) -> Ring {
    Ring::try_new(vec![
        Point::from_f64(x0, y0),
        Point::from_f64(x1, y0),
        Point::from_f64(x1, y1),
        Point::from_f64(x0, y1),
    ])
    .expect("axis-aligned rectangle is a valid ring")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use mob_base::r;

    #[test]
    fn validation() {
        // Too few vertices.
        assert!(Ring::try_new(vec![pt(0.0, 0.0), pt(1.0, 0.0)]).is_err());
        // Repeated vertex (bow tie sharing a vertex).
        assert!(Ring::try_new(vec![
            pt(0.0, 0.0),
            pt(1.0, 1.0),
            pt(2.0, 0.0),
            pt(1.0, 1.0),
            pt(0.0, 2.0),
        ])
        .is_err());
        // Self-intersecting (bow tie).
        assert!(
            Ring::try_new(vec![pt(0.0, 0.0), pt(2.0, 2.0), pt(2.0, 0.0), pt(0.0, 2.0),]).is_err()
        );
        // Valid triangle, with explicit closing point tolerated.
        let tri = Ring::try_new(vec![pt(0.0, 0.0), pt(2.0, 0.0), pt(1.0, 2.0), pt(0.0, 0.0)]);
        assert!(tri.is_ok());
        assert_eq!(tri.unwrap().len(), 3);
    }

    #[test]
    fn canonical_rotation_makes_equal_rings_equal() {
        let a = Ring::try_new(vec![pt(0.0, 0.0), pt(2.0, 0.0), pt(1.0, 2.0)]).unwrap();
        let b = Ring::try_new(vec![pt(1.0, 2.0), pt(0.0, 0.0), pt(2.0, 0.0)]).unwrap();
        assert_eq!(a, b);
        // Opposite orientation differs.
        assert_ne!(a, a.reversed());
        assert_eq!(a, a.reversed().reversed());
    }

    #[test]
    fn area_perimeter_orientation() {
        let sq = rect_ring(0.0, 0.0, 2.0, 2.0);
        assert_eq!(sq.signed_area(), r(4.0));
        assert!(sq.is_ccw());
        assert_eq!(sq.area(), r(4.0));
        assert_eq!(sq.perimeter(), r(8.0));
        let cw = sq.cw();
        assert_eq!(cw.signed_area(), r(-4.0));
        assert_eq!(cw.area(), r(4.0));
        assert_eq!(sq.ccw(), sq);
    }

    #[test]
    fn point_in_ring() {
        let sq = rect_ring(0.0, 0.0, 2.0, 2.0);
        assert!(sq.contains_point(pt(1.0, 1.0)));
        assert!(sq.contains_point(pt(0.0, 0.0))); // vertex
        assert!(sq.contains_point(pt(1.0, 0.0))); // edge
        assert!(!sq.contains_point(pt(3.0, 1.0)));
        assert!(sq.contains_point_strict(pt(1.0, 1.0)));
        assert!(!sq.contains_point_strict(pt(1.0, 0.0)));
        // Concave ring: L-shape.
        let ell = Ring::try_new(vec![
            pt(0.0, 0.0),
            pt(3.0, 0.0),
            pt(3.0, 1.0),
            pt(1.0, 1.0),
            pt(1.0, 3.0),
            pt(0.0, 3.0),
        ])
        .unwrap();
        assert!(ell.contains_point(pt(0.5, 2.0)));
        assert!(!ell.contains_point(pt(2.0, 2.0)));
    }

    #[test]
    fn interior_point_is_interior() {
        let sq = rect_ring(0.0, 0.0, 2.0, 2.0);
        assert!(sq.contains_point_strict(sq.interior_point()));
        let tri = Ring::try_new(vec![pt(0.0, 0.0), pt(4.0, 0.0), pt(0.0, 4.0)])
            .unwrap()
            .cw();
        assert!(tri.contains_point_strict(tri.interior_point()));
    }

    #[test]
    fn edge_inside_cases() {
        let outer = rect_ring(0.0, 0.0, 10.0, 10.0);
        let inner = rect_ring(2.0, 2.0, 4.0, 4.0);
        assert!(inner.edge_inside(&outer));
        assert!(!outer.edge_inside(&inner));
        // Touching the outer boundary at a vertex is allowed.
        let touching = Ring::try_new(vec![pt(0.0, 0.0), pt(3.0, 1.0), pt(1.0, 3.0)]).unwrap();
        assert!(touching.edge_inside(&outer));
        // Overlapping edge is not.
        let overlapping = rect_ring(0.0, 2.0, 3.0, 4.0);
        assert!(!overlapping.edge_inside(&outer));
        // A hole whose vertex touches the interior of an outer edge is
        // allowed (the paper's touch remark).
        let vertex_touch = Ring::try_new(vec![pt(5.0, 0.0), pt(7.0, 2.0), pt(3.0, 2.0)]).unwrap();
        assert!(vertex_touch.edge_inside(&outer));
        // Crossing is not.
        let crossing = rect_ring(8.0, 8.0, 12.0, 12.0);
        assert!(!crossing.edge_inside(&outer));
    }

    #[test]
    fn edge_disjoint_cases() {
        let a = rect_ring(0.0, 0.0, 2.0, 2.0);
        let b = rect_ring(5.0, 0.0, 7.0, 2.0);
        assert!(a.edge_disjoint(&b));
        // Touching at a single vertex: allowed.
        let c = Ring::try_new(vec![pt(2.0, 2.0), pt(4.0, 2.0), pt(3.0, 4.0)]).unwrap();
        assert!(a.edge_disjoint(&c));
        // A vertex touching the interior of the other's edge: allowed.
        let v = Ring::try_new(vec![pt(1.0, 2.0), pt(3.0, 4.0), pt(-1.0, 4.0)]).unwrap();
        assert!(a.edge_disjoint(&v));
        assert!(v.edge_disjoint(&a));
        // Overlapping boundary segments: not allowed.
        let d = rect_ring(2.0, 0.0, 4.0, 2.0);
        assert!(!a.edge_disjoint(&d));
        // One inside the other: not edge-disjoint.
        let inner = rect_ring(0.5, 0.5, 1.0, 1.0);
        assert!(!a.edge_disjoint(&inner));
        // Crossing: not.
        let x = rect_ring(1.0, 1.0, 3.0, 3.0);
        assert!(!a.edge_disjoint(&x));
    }

    #[test]
    fn convexity() {
        assert!(rect_ring(0.0, 0.0, 1.0, 1.0).is_convex());
        let ell = Ring::try_new(vec![
            pt(0.0, 0.0),
            pt(3.0, 0.0),
            pt(3.0, 1.0),
            pt(1.0, 1.0),
            pt(1.0, 3.0),
            pt(0.0, 3.0),
        ])
        .unwrap();
        assert!(!ell.is_convex());
    }

    #[test]
    fn segments_count() {
        let sq = rect_ring(0.0, 0.0, 1.0, 1.0);
        assert_eq!(sq.segments().len(), 4);
    }
}
