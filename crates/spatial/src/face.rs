//! Faces (Sec 3.2.2): an outer cycle plus a possibly empty set of hole
//! cycles, with the paper's conditions (i) every hole `edge-inside` the
//! outer cycle, (ii) holes pairwise `edge-disjoint`, (iii) unique
//! decomposition.

use crate::bbox::Rect;
use crate::point::Point;
use crate::ring::Ring;
use crate::seg::Seg;
use mob_base::error::{InvariantViolation, Result};
use mob_base::Real;
use std::fmt;

/// A face: one outer cycle and zero or more holes.
///
/// Orientation is normalized: the outer cycle counter-clockwise, hole
/// cycles clockwise (so that the face interior is always to the left of
/// each directed boundary edge).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Face {
    outer: Ring,
    holes: Vec<Ring>,
}

impl Face {
    /// Validating constructor.
    pub fn try_new(outer: Ring, holes: Vec<Ring>) -> Result<Face> {
        let outer = outer.ccw();
        let holes: Vec<Ring> = holes.into_iter().map(|h| h.cw()).collect();
        for h in &holes {
            if !h.edge_inside(&outer) {
                return Err(InvariantViolation::new(
                    "face: every hole must be edge-inside the outer cycle",
                ));
            }
        }
        for (i, h1) in holes.iter().enumerate() {
            for h2 in holes.iter().skip(i + 1) {
                if !h1.edge_disjoint(h2) {
                    return Err(InvariantViolation::new(
                        "face: holes must be pairwise edge-disjoint",
                    ));
                }
            }
        }
        Ok(Face { outer, holes })
    }

    /// Construct without validating the hole conditions (see
    /// [`Ring::new_unchecked`] for when this is sound).
    pub fn new_unchecked(outer: Ring, holes: Vec<Ring>) -> Face {
        Face {
            outer: outer.ccw(),
            holes: holes.into_iter().map(|h| h.cw()).collect(),
        }
    }

    /// A face without holes.
    pub fn simple(outer: Ring) -> Face {
        Face {
            outer: outer.ccw(),
            holes: Vec::new(),
        }
    }

    /// The outer cycle (counter-clockwise).
    pub fn outer(&self) -> &Ring {
        &self.outer
    }

    /// The hole cycles (clockwise).
    pub fn holes(&self) -> &[Ring] {
        &self.holes
    }

    /// Number of cycles (1 + number of holes).
    pub fn num_cycles(&self) -> usize {
        1 + self.holes.len()
    }

    /// All boundary segments of the face.
    pub fn segments(&self) -> Vec<Seg> {
        let mut out = self.outer.segments();
        for h in &self.holes {
            out.extend(h.segments());
        }
        out
    }

    /// `σ((c, H))` membership: inside (or on) the outer cycle, and not in
    /// the open interior of any hole (the closure keeps hole boundaries).
    pub fn contains_point(&self, p: Point) -> bool {
        if !self.outer.contains_point(p) {
            return false;
        }
        !self.holes.iter().any(|h| h.contains_point_strict(p))
    }

    /// Strict interior membership.
    pub fn contains_point_strict(&self, p: Point) -> bool {
        self.outer.contains_point_strict(p) && !self.holes.iter().any(|h| h.contains_point(p))
    }

    /// Area of the face (outer area minus hole areas).
    pub fn area(&self) -> Real {
        self.holes
            .iter()
            .fold(self.outer.area(), |acc, h| acc - h.area())
    }

    /// Total boundary length.
    pub fn perimeter(&self) -> Real {
        self.holes
            .iter()
            .fold(self.outer.perimeter(), |acc, h| acc + h.perimeter())
    }

    /// Bounding box (the outer cycle's box).
    pub fn bbox(&self) -> Rect {
        self.outer.bbox()
    }

    /// A point strictly inside the face.
    pub fn interior_point(&self) -> Point {
        // The outer ring's interior point may fall into a hole; probe all
        // rings' candidate points.
        let cand = self.outer.interior_point();
        if self.contains_point_strict(cand) {
            return cand;
        }
        for h in &self.holes {
            // Just outside a hole is inside the face (unless in another
            // hole); reuse the hole's machinery by flipping orientation.
            let c = h.reversed().interior_point();
            if self.contains_point_strict(c) {
                return c;
            }
        }
        panic!("no interior point found for face {self:?}");
    }

    /// The paper's `edge-disjoint` for faces: outer cycles edge-disjoint,
    /// or one face lies edge-inside a hole of the other.
    pub fn edge_disjoint(&self, other: &Face) -> bool {
        if self.outer.edge_disjoint(&other.outer) {
            return true;
        }
        other.holes.iter().any(|h| self.outer.edge_inside(&h.ccw()))
            || self.holes.iter().any(|h| other.outer.edge_inside(&h.ccw()))
    }
}

impl fmt::Debug for Face {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Face")
            .field("outer", &self.outer)
            .field("holes", &self.holes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::ring::rect_ring;
    use mob_base::r;

    #[test]
    fn orientation_normalized() {
        let f = Face::try_new(
            rect_ring(0.0, 0.0, 4.0, 4.0).cw(),
            vec![
                rect_ring(1.0, 1.0, 2.0, 2.0), // given ccw
            ],
        )
        .unwrap();
        assert!(f.outer().is_ccw());
        assert!(!f.holes()[0].is_ccw());
    }

    #[test]
    fn hole_must_be_inside() {
        let err = Face::try_new(
            rect_ring(0.0, 0.0, 2.0, 2.0),
            vec![rect_ring(5.0, 5.0, 6.0, 6.0)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn holes_must_be_disjoint() {
        let err = Face::try_new(
            rect_ring(0.0, 0.0, 10.0, 10.0),
            vec![rect_ring(1.0, 1.0, 4.0, 4.0), rect_ring(3.0, 3.0, 6.0, 6.0)],
        );
        assert!(err.is_err());
        let ok = Face::try_new(
            rect_ring(0.0, 0.0, 10.0, 10.0),
            vec![rect_ring(1.0, 1.0, 3.0, 3.0), rect_ring(5.0, 5.0, 7.0, 7.0)],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn membership_with_hole() {
        let f = Face::try_new(
            rect_ring(0.0, 0.0, 4.0, 4.0),
            vec![rect_ring(1.0, 1.0, 2.0, 2.0)],
        )
        .unwrap();
        assert!(f.contains_point(pt(3.0, 3.0)));
        assert!(!f.contains_point(pt(1.5, 1.5))); // in the hole
        assert!(f.contains_point(pt(1.0, 1.5))); // hole boundary: closure keeps it
        assert!(!f.contains_point_strict(pt(1.0, 1.5)));
        assert!(!f.contains_point(pt(9.0, 9.0)));
    }

    #[test]
    fn area_perimeter() {
        let f = Face::try_new(
            rect_ring(0.0, 0.0, 4.0, 4.0),
            vec![rect_ring(1.0, 1.0, 2.0, 2.0)],
        )
        .unwrap();
        assert_eq!(f.area(), r(15.0));
        assert_eq!(f.perimeter(), r(20.0));
        assert_eq!(f.num_cycles(), 2);
        assert_eq!(f.segments().len(), 8);
    }

    #[test]
    fn interior_point_avoids_holes() {
        let f = Face::try_new(
            rect_ring(0.0, 0.0, 4.0, 4.0),
            vec![rect_ring(1.0, 1.0, 3.0, 3.0)],
        )
        .unwrap();
        let p = f.interior_point();
        assert!(f.contains_point_strict(p));
    }

    #[test]
    fn face_edge_disjoint() {
        let a = Face::simple(rect_ring(0.0, 0.0, 2.0, 2.0));
        let b = Face::simple(rect_ring(3.0, 0.0, 5.0, 2.0));
        assert!(a.edge_disjoint(&b));
        // Face inside a hole of another face.
        let ring_face = Face::try_new(
            rect_ring(0.0, 0.0, 10.0, 10.0),
            vec![rect_ring(2.0, 2.0, 8.0, 8.0)],
        )
        .unwrap();
        let island = Face::simple(rect_ring(4.0, 4.0, 6.0, 6.0));
        assert!(ring_face.edge_disjoint(&island));
        assert!(island.edge_disjoint(&ring_face));
        // Overlapping faces are not edge-disjoint.
        let c = Face::simple(rect_ring(1.0, 1.0, 4.0, 4.0));
        assert!(!a.edge_disjoint(&c));
    }
}
