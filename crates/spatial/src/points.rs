//! The discrete `points` type (Sec 3.2.2): a finite set of points,
//! `D_points = 2^Point`, stored in lexicographic order so that equal sets
//! have equal representations (Sec 4: "store elements in the array in that
//! order ... two set values are equal iff their array representations are
//! equal").

use crate::bbox::Rect;
use crate::point::Point;
use mob_base::{Real, Val};
use std::fmt;

/// A finite set of points in the plane.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Points {
    /// Sorted, deduplicated.
    pts: Vec<Point>,
}

impl Points {
    /// The empty set.
    pub fn empty() -> Points {
        Points { pts: Vec::new() }
    }

    /// Build from arbitrary points (sorts and deduplicates).
    pub fn from_points(mut pts: Vec<Point>) -> Points {
        pts.sort();
        pts.dedup();
        Points { pts }
    }

    /// A singleton set.
    pub fn single(p: Point) -> Points {
        Points { pts: vec![p] }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Iterate in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.pts.iter().copied()
    }

    /// The ordered points as a slice.
    pub fn as_slice(&self) -> &[Point] {
        &self.pts
    }

    /// Membership test (binary search).
    pub fn contains(&self, p: Point) -> bool {
        self.pts.binary_search(&p).is_ok()
    }

    /// Set union.
    pub fn union(&self, other: &Points) -> Points {
        let mut out = Vec::with_capacity(self.len() + other.len());
        out.extend_from_slice(&self.pts);
        out.extend_from_slice(&other.pts);
        Points::from_points(out)
    }

    /// Set intersection.
    pub fn intersection(&self, other: &Points) -> Points {
        let pts = self
            .pts
            .iter()
            .copied()
            .filter(|p| other.contains(*p))
            .collect();
        Points { pts }
    }

    /// Set difference.
    pub fn difference(&self, other: &Points) -> Points {
        let pts = self
            .pts
            .iter()
            .copied()
            .filter(|p| !other.contains(*p))
            .collect();
        Points { pts }
    }

    /// Bounding box.
    pub fn bbox(&self) -> Rect {
        Rect::of_points(self.iter())
    }

    /// Smallest distance between a point of `self` and one of `other`
    /// (⊥ if either set is empty).
    pub fn distance(&self, other: &Points) -> Val<Real> {
        let mut best: Option<Real> = None;
        for a in &self.pts {
            for b in &other.pts {
                let d = a.distance(*b);
                best = Some(match best {
                    Some(cur) => cur.min(d),
                    None => d,
                });
            }
        }
        best.into()
    }

    /// The single element of a singleton set (⊥ otherwise) — the abstract
    /// model's coercion from `points` to `point`.
    pub fn the_point(&self) -> Val<Point> {
        if self.pts.len() == 1 {
            Val::Def(self.pts[0])
        } else {
            Val::Undef
        }
    }
}

impl FromIterator<Point> for Points {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Points::from_points(iter.into_iter().collect())
    }
}

impl fmt::Debug for Points {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.pts.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use mob_base::r;

    #[test]
    fn unique_ordered_representation() {
        let a = Points::from_points(vec![pt(1.0, 1.0), pt(0.0, 0.0), pt(1.0, 1.0)]);
        let b = Points::from_points(vec![pt(0.0, 0.0), pt(1.0, 1.0)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.as_slice()[0], pt(0.0, 0.0));
    }

    #[test]
    fn set_operations() {
        let a = Points::from_points(vec![pt(0.0, 0.0), pt(1.0, 0.0), pt(2.0, 0.0)]);
        let b = Points::from_points(vec![pt(1.0, 0.0), pt(3.0, 0.0)]);
        assert_eq!(
            a.union(&b).as_slice(),
            &[pt(0.0, 0.0), pt(1.0, 0.0), pt(2.0, 0.0), pt(3.0, 0.0)]
        );
        assert_eq!(a.intersection(&b).as_slice(), &[pt(1.0, 0.0)]);
        assert_eq!(a.difference(&b).as_slice(), &[pt(0.0, 0.0), pt(2.0, 0.0)]);
    }

    #[test]
    fn membership_and_bbox() {
        let a = Points::from_points(vec![pt(0.0, 0.0), pt(2.0, 3.0)]);
        assert!(a.contains(pt(2.0, 3.0)));
        assert!(!a.contains(pt(1.0, 1.0)));
        assert_eq!(a.bbox().max_y(), r(3.0));
    }

    #[test]
    fn distance() {
        let a = Points::single(pt(0.0, 0.0));
        let b = Points::from_points(vec![pt(3.0, 4.0), pt(10.0, 0.0)]);
        assert_eq!(a.distance(&b), Val::Def(r(5.0)));
        assert!(a.distance(&Points::empty()).is_undef());
    }

    #[test]
    fn the_point_coercion() {
        assert_eq!(
            Points::single(pt(1.0, 2.0)).the_point(),
            Val::Def(pt(1.0, 2.0))
        );
        assert!(Points::empty().the_point().is_undef());
        assert!(Points::from_points(vec![pt(0.0, 0.0), pt(1.0, 0.0)])
            .the_point()
            .is_undef());
    }
}
