//! Distance operations between spatial values — the abstract model's
//! `distance` family, instantiated on the discrete representations.

use crate::line::Line;
use crate::point::Point;
use crate::points::Points;
use crate::region::Region;
use crate::seg::Seg;
use mob_base::{Real, Val};

/// Distance from a point to the nearest point of a segment.
pub fn point_seg_distance(p: Point, s: &Seg) -> Real {
    let a = s.u();
    let b = s.v();
    let ab = b - a;
    let len_sq = ab.x * ab.x + ab.y * ab.y;
    if len_sq.get() == 0.0 {
        return p.distance(a);
    }
    let t_raw = ((p - a).x * ab.x + (p - a).y * ab.y) / len_sq;
    let t = t_raw.max(Real::ZERO).min(Real::ONE);
    p.distance(a.lerp(b, t))
}

/// Distance between the nearest points of two segments (0 if they
/// intersect).
pub fn seg_seg_distance(s: &Seg, t: &Seg) -> Real {
    if !s.disjoint(t) {
        return Real::ZERO;
    }
    point_seg_distance(s.u(), t)
        .min(point_seg_distance(s.v(), t))
        .min(point_seg_distance(t.u(), s))
        .min(point_seg_distance(t.v(), s))
}

/// Distance from a point to a line value (⊥ for the empty line).
pub fn point_line_distance(p: Point, l: &Line) -> Val<Real> {
    l.segments()
        .iter()
        .map(|s| point_seg_distance(p, s))
        .min()
        .into()
}

/// Distance between two line values (⊥ if either is empty).
pub fn line_line_distance(a: &Line, b: &Line) -> Val<Real> {
    let mut best: Option<Real> = None;
    for s in a.segments() {
        for t in b.segments() {
            let d = seg_seg_distance(s, t);
            best = Some(best.map_or(d, |c| c.min(d)));
        }
    }
    best.into()
}

/// Distance from a point to a region: 0 if inside or on the boundary,
/// otherwise the distance to the nearest boundary point (⊥ when empty).
pub fn point_region_distance(p: Point, r: &Region) -> Val<Real> {
    if r.is_empty() {
        return Val::Undef;
    }
    if r.contains_point(p) {
        return Val::Def(Real::ZERO);
    }
    r.segments()
        .iter()
        .map(|s| point_seg_distance(p, s))
        .min()
        .into()
}

/// Distance from a point to a points value (⊥ when empty).
pub fn point_points_distance(p: Point, ps: &Points) -> Val<Real> {
    ps.iter().map(|q| p.distance(q)).min().into()
}

/// Distance between two regions: 0 if they intersect, otherwise the
/// smallest boundary-to-boundary distance (⊥ if either is empty).
pub fn region_region_distance(a: &Region, b: &Region) -> Val<Real> {
    if a.is_empty() || b.is_empty() {
        return Val::Undef;
    }
    if a.intersects(b) {
        return Val::Def(Real::ZERO);
    }
    let mut best: Option<Real> = None;
    for s in &a.segments() {
        for t in &b.segments() {
            let d = seg_seg_distance(s, t);
            best = Some(best.map_or(d, |c| c.min(d)));
        }
    }
    best.into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::ring::rect_ring;
    use crate::seg::seg;
    use mob_base::r;

    #[test]
    fn point_to_segment() {
        let s = seg(0.0, 0.0, 4.0, 0.0);
        assert_eq!(point_seg_distance(pt(2.0, 3.0), &s), r(3.0)); // perpendicular
        assert_eq!(point_seg_distance(pt(-3.0, 4.0), &s), r(5.0)); // clamped to u
        assert_eq!(point_seg_distance(pt(7.0, 4.0), &s), r(5.0)); // clamped to v
        assert_eq!(point_seg_distance(pt(2.0, 0.0), &s), r(0.0)); // on segment
    }

    #[test]
    fn seg_to_seg() {
        let a = seg(0.0, 0.0, 2.0, 0.0);
        let b = seg(0.0, 3.0, 2.0, 3.0);
        assert_eq!(seg_seg_distance(&a, &b), r(3.0));
        let crossing = seg(1.0, -1.0, 1.0, 1.0);
        assert_eq!(seg_seg_distance(&a, &crossing), r(0.0));
    }

    #[test]
    fn point_to_line_and_region() {
        let l = Line::single(seg(0.0, 0.0, 4.0, 0.0));
        assert_eq!(point_line_distance(pt(2.0, 2.0), &l), Val::Def(r(2.0)));
        assert!(point_line_distance(pt(0.0, 0.0), &Line::empty()).is_undef());

        let reg = Region::from_ring(rect_ring(0.0, 0.0, 2.0, 2.0));
        assert_eq!(point_region_distance(pt(1.0, 1.0), &reg), Val::Def(r(0.0)));
        assert_eq!(point_region_distance(pt(2.0, 1.0), &reg), Val::Def(r(0.0)));
        assert_eq!(point_region_distance(pt(5.0, 1.0), &reg), Val::Def(r(3.0)));
        assert!(point_region_distance(pt(0.0, 0.0), &Region::empty()).is_undef());
    }

    #[test]
    fn region_to_region() {
        let a = Region::from_ring(rect_ring(0.0, 0.0, 2.0, 2.0));
        let b = Region::from_ring(rect_ring(5.0, 0.0, 7.0, 2.0));
        assert_eq!(region_region_distance(&a, &b), Val::Def(r(3.0)));
        let c = Region::from_ring(rect_ring(1.0, 1.0, 3.0, 3.0));
        assert_eq!(region_region_distance(&a, &c), Val::Def(r(0.0)));
    }

    #[test]
    fn line_to_line_and_points() {
        let a = Line::single(seg(0.0, 0.0, 1.0, 0.0));
        let b = Line::single(seg(0.0, 4.0, 1.0, 4.0));
        assert_eq!(line_line_distance(&a, &b), Val::Def(r(4.0)));
        let ps = Points::from_points(vec![pt(0.0, 3.0), pt(10.0, 10.0)]);
        assert_eq!(point_points_distance(pt(0.0, 0.0), &ps), Val::Def(r(3.0)));
    }
}
