//! The discrete `point` type (Sec 3.2.2): `Point = real × real`, with the
//! paper's lexicographic order `p < q ⇔ p.x < q.x ∨ (p.x = q.x ∧ p.y < q.y)`.

use mob_base::{r, Real};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the Euclidean plane.
///
/// `Ord` is the lexicographic order the paper defines, which underlies
/// segment normalization (`u < v`), halfsegment order and the unique
/// representation of `points` values.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// x coordinate.
    pub x: Real,
    /// y coordinate.
    pub y: Real,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point {
        x: Real::ZERO,
        y: Real::ZERO,
    };

    /// Construct from two reals.
    #[inline]
    pub fn new(x: Real, y: Real) -> Point {
        Point { x, y }
    }

    /// Construct from raw `f64`s (panics on NaN).
    #[inline]
    pub fn from_f64(x: f64, y: f64) -> Point {
        Point {
            x: Real::new(x),
            y: Real::new(y),
        }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Point) -> Real {
        let dx = (self.x - other.x).get();
        let dy = (self.y - other.y).get();
        Real::new((dx * dx + dy * dy).sqrt())
    }

    /// Squared Euclidean distance (avoids the square root).
    #[inline]
    pub fn distance_sq(self, other: Point) -> Real {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint of the segment `self`–`other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point {
            x: Real::new((self.x.get() + other.x.get()) / 2.0),
            y: Real::new((self.y.get() + other.y.get()) / 2.0),
        }
    }

    /// Linear interpolation `self + f · (other − self)`.
    #[inline]
    pub fn lerp(self, other: Point, f: Real) -> Point {
        Point {
            x: self.x.lerp(other.x, f),
            y: self.y.lerp(other.y, f),
        }
    }

    /// Direction (radians in `(-π, π]`) from `self` towards `other` —
    /// the paper's `direction` operation. Returns `None` for equal points.
    pub fn direction(self, other: Point) -> Option<Real> {
        if self == other {
            return None;
        }
        Some(Real::new(
            (other.y - self.y).get().atan2((other.x - self.x).get()),
        ))
    }

    /// `true` if the two points coincide up to `eps` in each coordinate.
    #[inline]
    pub fn approx_eq(self, other: Point, eps: f64) -> bool {
        self.x.approx_eq(other.x, eps) && self.y.approx_eq(other.y, eps)
    }
}

/// Orientation of the ordered triple `(o, a, b)`:
/// `1` = counter-clockwise (left turn), `-1` = clockwise, `0` = collinear.
///
/// This is the fundamental predicate behind `collinear`, `p-intersect`,
/// point-in-polygon and cycle orientation.
#[inline]
pub fn orientation(o: Point, a: Point, b: Point) -> i8 {
    // Computed in raw `f64`: validation runs this predicate on untrusted
    // decoded coordinates, and overflowing intermediates (`inf − inf`,
    // `inf × 0`) must degrade to "no turn" instead of reaching the
    // NaN-rejecting [`Real`] constructor.
    let v = cross_raw(o, a, b);
    if v > 0.0 {
        1
    } else if v < 0.0 {
        -1
    } else {
        0
    }
}

/// The z-component of the cross product `(a − o) × (b − o)`.
#[inline]
pub fn cross(o: Point, a: Point, b: Point) -> Real {
    (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)
}

/// [`cross`] computed entirely in raw `f64`, so extreme (possibly
/// corrupted) coordinates yield `±inf`/NaN rather than a panic.
#[inline]
pub fn cross_raw(o: Point, a: Point, b: Point) -> f64 {
    (a.x.get() - o.x.get()) * (b.y.get() - o.y.get())
        - (a.y.get() - o.y.get()) * (b.x.get() - o.x.get())
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point {
            x: self.x + rhs.x,
            y: self.y + rhs.y,
        }
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point {
            x: self.x - rhs.x,
            y: self.y - rhs.y,
        }
    }
}

impl Mul<Real> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, f: Real) -> Point {
        Point {
            x: self.x * f,
            y: self.y * f,
        }
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Point {
        Point::from_f64(x, y)
    }
}

/// Shorthand constructor used pervasively in tests and examples.
#[inline]
pub fn pt(x: f64, y: f64) -> Point {
    Point::from_f64(x, y)
}

/// Unused-but-documented helper keeping `r` re-exported near geometry code.
#[doc(hidden)]
pub fn _real_shorthand(v: f64) -> Real {
    r(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order_matches_paper() {
        // p < q ⇔ (p.x < q.x) ∨ (p.x = q.x ∧ p.y < q.y)
        assert!(pt(0.0, 9.0) < pt(1.0, 0.0));
        assert!(pt(1.0, 0.0) < pt(1.0, 1.0));
        assert_eq!(pt(2.0, 3.0), pt(2.0, 3.0));
        let mut v = vec![pt(1.0, 1.0), pt(0.0, 5.0), pt(1.0, 0.0)];
        v.sort();
        assert_eq!(v, vec![pt(0.0, 5.0), pt(1.0, 0.0), pt(1.0, 1.0)]);
    }

    #[test]
    fn distance_and_midpoint() {
        assert_eq!(pt(0.0, 0.0).distance(pt(3.0, 4.0)), r(5.0));
        assert_eq!(pt(0.0, 0.0).distance_sq(pt(3.0, 4.0)), r(25.0));
        assert_eq!(pt(0.0, 0.0).midpoint(pt(2.0, 4.0)), pt(1.0, 2.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = pt(1.0, 1.0);
        let b = pt(3.0, 5.0);
        assert_eq!(a.lerp(b, r(0.0)), a);
        assert_eq!(a.lerp(b, r(1.0)), b);
        assert_eq!(a.lerp(b, r(0.5)), pt(2.0, 3.0));
    }

    #[test]
    fn orientation_signs() {
        let o = pt(0.0, 0.0);
        assert_eq!(orientation(o, pt(1.0, 0.0), pt(1.0, 1.0)), 1); // left turn
        assert_eq!(orientation(o, pt(1.0, 0.0), pt(1.0, -1.0)), -1); // right
        assert_eq!(orientation(o, pt(1.0, 1.0), pt(2.0, 2.0)), 0); // collinear
    }

    #[test]
    fn direction_angles() {
        let o = pt(0.0, 0.0);
        assert_eq!(o.direction(pt(1.0, 0.0)).unwrap(), r(0.0));
        assert!(o
            .direction(pt(0.0, 1.0))
            .unwrap()
            .approx_eq(r(std::f64::consts::FRAC_PI_2), 1e-12));
        assert!(o.direction(o).is_none());
    }

    #[test]
    fn vector_ops() {
        assert_eq!(pt(1.0, 2.0) + pt(3.0, 4.0), pt(4.0, 6.0));
        assert_eq!(pt(3.0, 4.0) - pt(1.0, 2.0), pt(2.0, 2.0));
        assert_eq!(pt(1.0, 2.0) * r(3.0), pt(3.0, 6.0));
    }
}
