//! The discrete `region` type (Sec 3.2.2): a set of pairwise edge-disjoint
//! faces, plus the Sec 4.1 `close()` construction that assembles the
//! face/cycle structure from a flat list of boundary segments.

use crate::arrangement::{on_any_segment, parity_inside, trace_walks, Walk};
use crate::bbox::Rect;
use crate::face::Face;
use crate::halfseg::{halfseg_sequence, HalfSeg};
use crate::point::Point;
use crate::ring::Ring;
use crate::seg::Seg;
use mob_base::error::{InvariantViolation, Result};
use mob_base::Real;
use std::fmt;

/// A region: zero or more edge-disjoint faces, possibly with holes,
/// possibly nested (faces inside holes of other faces).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Region {
    faces: Vec<Face>,
}

impl Region {
    /// The empty region.
    pub fn empty() -> Region {
        Region { faces: Vec::new() }
    }

    /// Validating constructor from faces.
    pub fn try_new(faces: Vec<Face>) -> Result<Region> {
        for (i, f1) in faces.iter().enumerate() {
            for f2 in faces.iter().skip(i + 1) {
                if !f1.edge_disjoint(f2) {
                    return Err(InvariantViolation::new(
                        "region: faces must be pairwise edge-disjoint",
                    ));
                }
            }
        }
        Ok(Region { faces })
    }

    /// Construct without validating face disjointness (see
    /// [`Ring::new_unchecked`] for when this is sound).
    pub fn from_faces_unchecked(faces: Vec<Face>) -> Region {
        Region { faces }
    }

    /// A region with a single hole-free face.
    pub fn from_ring(outer: Ring) -> Region {
        Region {
            faces: vec![Face::simple(outer)],
        }
    }

    /// The Sec 4.1 `close()` operation: build the face/cycle structure
    /// from an unstructured list of boundary segments.
    ///
    /// ```
    /// use mob_spatial::{seg, pt, Region};
    ///
    /// let region = Region::close(vec![
    ///     seg(0.0, 0.0, 2.0, 0.0),
    ///     seg(2.0, 0.0, 2.0, 2.0),
    ///     seg(0.0, 2.0, 2.0, 2.0),
    ///     seg(0.0, 0.0, 0.0, 2.0),
    /// ]).unwrap();
    /// assert_eq!(region.num_faces(), 1);
    /// assert_eq!(region.area().get(), 4.0);
    /// assert!(region.contains_point(pt(1.0, 1.0)));
    /// ```
    ///
    /// The input must be a valid region boundary: segments meet only at
    /// end points (no proper intersections, touches or overlaps) and every
    /// vertex has even degree. Use
    /// [`crate::setops`] to produce such soups from overlapping inputs.
    pub fn close(segs: Vec<Seg>) -> Result<Region> {
        if segs.is_empty() {
            return Ok(Region::empty());
        }
        // Validate pairwise relationships. A plane-sweep prefilter on
        // the x-ranges keeps this near-linear for realistic inputs (the
        // predicates only run for pairs with overlapping boxes).
        let mut order: Vec<usize> = (0..segs.len()).collect();
        order.sort_by(|&a, &b| {
            segs[a]
                .u()
                .x
                .cmp(&segs[b].u().x)
                .then(segs[a].cmp(&segs[b]))
        });
        let yr = |s: &Seg| (s.u().y.min(s.v().y), s.u().y.max(s.v().y));
        for (ii, &i) in order.iter().enumerate() {
            let s = &segs[i];
            let (sy0, sy1) = yr(s);
            for &j in order.iter().skip(ii + 1) {
                let t = &segs[j];
                if t.u().x > s.v().x {
                    break; // no further x-overlap in sorted order
                }
                let (ty0, ty1) = yr(t);
                if ty0 > sy1 || sy0 > ty1 {
                    continue;
                }
                if s == t {
                    return Err(InvariantViolation::new("close: duplicate segment"));
                }
                if s.p_intersect(t) {
                    return Err(InvariantViolation::new(
                        "close: segments must not properly intersect",
                    ));
                }
                if s.touch(t) {
                    return Err(InvariantViolation::new("close: segments must not touch"));
                }
                if s.overlaps(t) {
                    return Err(InvariantViolation::new("close: segments must not overlap"));
                }
            }
        }
        // Even vertex degree.
        let mut degree: std::collections::BTreeMap<Point, usize> = Default::default();
        for s in &segs {
            *degree.entry(s.u()).or_insert(0) += 1;
            *degree.entry(s.v()).or_insert(0) += 1;
        }
        if degree.values().any(|d| d % 2 != 0) {
            return Err(InvariantViolation::new(
                "close: every end point must have even degree",
            ));
        }
        // Scale-relative offset for interior sampling.
        let bbox = Rect::of_points(segs.iter().flat_map(|s| [s.u(), s.v()]));
        let diag = (bbox.width() * bbox.width() + bbox.height() * bbox.height())
            .get()
            .sqrt()
            .max(1.0);
        let eps = diag * 1e-9;

        // Trace walks; keep those whose left face is region interior.
        let walks = trace_walks(&segs);
        let mut outers: Vec<(Walk, f64)> = Vec::new();
        let mut holes: Vec<Walk> = Vec::new();
        for w in walks {
            let sample = w.left_sample(eps);
            if !parity_inside(&segs, sample) {
                continue;
            }
            let a = w.signed_area();
            if a > 0.0 {
                outers.push((w, a));
            } else {
                holes.push(w);
            }
        }
        // Assign each hole walk to the smallest containing outer walk.
        let mut face_holes: Vec<Vec<Ring>> = vec![Vec::new(); outers.len()];
        for h in holes {
            let probe = h.left_sample(eps);
            let mut best: Option<(usize, f64)> = None;
            for (idx, (o, area)) in outers.iter().enumerate() {
                let ring_segs: Vec<Seg> = o
                    .points
                    .iter()
                    .zip(o.points.iter().cycle().skip(1))
                    .filter_map(|(a, b)| Seg::try_from_unordered(*a, *b))
                    .collect();
                if parity_inside(&ring_segs, probe) && best.is_none_or(|(_, ba)| *area < ba) {
                    best = Some((idx, *area));
                }
            }
            match best {
                Some((idx, _)) => face_holes[idx].push(Ring::from_walk_unchecked(h.points)),
                None => {
                    return Err(InvariantViolation::new(
                        "close: hole cycle without containing outer cycle",
                    ))
                }
            }
        }
        // The faces come from disjoint interior faces of the validated
        // arrangement, and each hole was assigned by containment —
        // re-validating would add an O(f²·r) pass for nothing.
        let faces: Vec<Face> = outers
            .into_iter()
            .zip(face_holes)
            .map(|((o, _), hs)| Face::new_unchecked(Ring::from_walk_unchecked(o.points), hs))
            .collect();
        Ok(Region::from_faces_unchecked(faces))
    }

    /// The faces of the region.
    pub fn faces(&self) -> &[Face] {
        &self.faces
    }

    /// `true` for the empty region.
    pub fn is_empty(&self) -> bool {
        self.faces.is_empty()
    }

    /// Number of faces.
    pub fn num_faces(&self) -> usize {
        self.faces.len()
    }

    /// Total number of cycles (outer cycles + holes).
    pub fn num_cycles(&self) -> usize {
        self.faces.iter().map(Face::num_cycles).sum()
    }

    /// All boundary segments.
    pub fn segments(&self) -> Vec<Seg> {
        self.faces.iter().flat_map(Face::segments).collect()
    }

    /// Number of boundary segments.
    pub fn num_segments(&self) -> usize {
        self.faces
            .iter()
            .map(|f| f.outer().len() + f.holes().iter().map(Ring::len).sum::<usize>())
            .sum()
    }

    /// The ordered halfsegment sequence (the Sec 4.1 storage order).
    pub fn halfsegments(&self) -> Vec<HalfSeg> {
        halfseg_sequence(&self.segments())
    }

    /// The paper's `inside` for a point: membership in `σ(region)` —
    /// boundary points count as inside (closure semantics). This is the
    /// "plumbline" algorithm of Sec 5.2.
    pub fn contains_point(&self, p: Point) -> bool {
        let segs = self.segments();
        on_any_segment(&segs, p) || parity_inside(&segs, p)
    }

    /// Strict interior membership.
    pub fn contains_point_strict(&self, p: Point) -> bool {
        let segs = self.segments();
        !on_any_segment(&segs, p) && parity_inside(&segs, p)
    }

    /// Total area (the abstract model's `size` operation).
    pub fn area(&self) -> Real {
        self.faces.iter().fold(Real::ZERO, |acc, f| acc + f.area())
    }

    /// Total boundary length (`perimeter`).
    pub fn perimeter(&self) -> Real {
        self.faces
            .iter()
            .fold(Real::ZERO, |acc, f| acc + f.perimeter())
    }

    /// Area centroid (the abstract model's `center` operation); ⊥ (None)
    /// for the empty region. Computed with the standard polygon-centroid
    /// formula, holes subtracting.
    pub fn centroid(&self) -> Option<Point> {
        if self.is_empty() {
            return None;
        }
        let mut a2 = 0.0; // twice the signed area
        let (mut cx, mut cy) = (0.0, 0.0);
        let mut add_ring = |ring: &crate::ring::Ring, sign: f64| {
            for (p, q) in ring.directed_edges() {
                let w = (p.x.get() * q.y.get() - q.x.get() * p.y.get()) * sign;
                a2 += w;
                cx += (p.x.get() + q.x.get()) * w;
                cy += (p.y.get() + q.y.get()) * w;
            }
        };
        for f in &self.faces {
            // Outer rings are ccw (positive), holes cw (negative): the
            // orientation already carries the sign.
            add_ring(f.outer(), 1.0);
            for h in f.holes() {
                add_ring(h, 1.0);
            }
        }
        if a2 == 0.0 {
            return None;
        }
        Some(Point::from_f64(cx / (3.0 * a2), cy / (3.0 * a2)))
    }

    /// Bounding box.
    pub fn bbox(&self) -> Rect {
        self.faces
            .iter()
            .fold(Rect::EMPTY, |acc, f| acc.union(&f.bbox()))
    }

    /// `true` if the two regions share at least one point (boundaries
    /// included).
    pub fn intersects(&self, other: &Region) -> bool {
        if !self.bbox().intersects(&other.bbox()) {
            return false;
        }
        let a = self.segments();
        let b = other.segments();
        // Boundary crossings?
        for s in &a {
            for t in &b {
                if !s.disjoint(t) {
                    return true;
                }
            }
        }
        // One fully inside the other?
        if let Some(f) = self.faces.first() {
            if other.contains_point(f.interior_point()) {
                return true;
            }
        }
        if let Some(f) = other.faces.first() {
            if self.contains_point(f.interior_point()) {
                return true;
            }
        }
        false
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Region")
            .field("faces", &self.faces)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::ring::rect_ring;
    use crate::seg::seg;
    use mob_base::r;

    fn square_soup(x0: f64, y0: f64, x1: f64, y1: f64) -> Vec<Seg> {
        vec![
            seg(x0, y0, x1, y0),
            seg(x1, y0, x1, y1),
            seg(x0, y1, x1, y1),
            seg(x0, y0, x0, y1),
        ]
    }

    #[test]
    fn close_simple_square() {
        let region = Region::close(square_soup(0.0, 0.0, 2.0, 2.0)).unwrap();
        assert_eq!(region.num_faces(), 1);
        assert_eq!(region.num_cycles(), 1);
        assert_eq!(region.area(), r(4.0));
        assert_eq!(region.perimeter(), r(8.0));
        assert!(region.contains_point(pt(1.0, 1.0)));
        assert!(region.contains_point(pt(0.0, 1.0))); // boundary
        assert!(!region.contains_point(pt(3.0, 1.0)));
    }

    #[test]
    fn close_annulus() {
        let mut soup = square_soup(0.0, 0.0, 4.0, 4.0);
        soup.extend(square_soup(1.0, 1.0, 3.0, 3.0));
        let region = Region::close(soup).unwrap();
        assert_eq!(region.num_faces(), 1);
        assert_eq!(region.num_cycles(), 2);
        assert_eq!(region.area(), r(12.0));
        assert!(region.contains_point(pt(0.5, 0.5)));
        assert!(!region.contains_point(pt(2.0, 2.0))); // in hole
        assert!(region.contains_point(pt(1.0, 2.0))); // hole boundary
    }

    #[test]
    fn close_face_within_hole_figure3() {
        // Figure 3 of the paper: a face lying within a hole of another face.
        let mut soup = square_soup(0.0, 0.0, 10.0, 10.0);
        soup.extend(square_soup(2.0, 2.0, 8.0, 8.0)); // hole
        soup.extend(square_soup(4.0, 4.0, 6.0, 6.0)); // island face in hole
        let region = Region::close(soup).unwrap();
        assert_eq!(region.num_faces(), 2);
        assert_eq!(region.num_cycles(), 3);
        assert_eq!(region.area(), r(100.0 - 36.0 + 4.0));
        assert!(region.contains_point(pt(5.0, 5.0))); // on the island
        assert!(!region.contains_point(pt(3.0, 5.0))); // in the hole
        assert!(region.contains_point(pt(1.0, 5.0))); // outer face
    }

    #[test]
    fn close_two_disjoint_faces() {
        let mut soup = square_soup(0.0, 0.0, 1.0, 1.0);
        soup.extend(square_soup(5.0, 0.0, 6.0, 1.0));
        let region = Region::close(soup).unwrap();
        assert_eq!(region.num_faces(), 2);
        assert_eq!(region.area(), r(2.0));
    }

    #[test]
    fn close_rejects_bad_input() {
        // Odd degree (open polyline).
        assert!(Region::close(vec![seg(0.0, 0.0, 1.0, 0.0)]).is_err());
        // Crossing segments.
        let mut soup = square_soup(0.0, 0.0, 2.0, 2.0);
        soup.push(seg(-1.0, 1.0, 3.0, 1.2));
        assert!(Region::close(soup).is_err());
        // Duplicate segment.
        let mut soup = square_soup(0.0, 0.0, 2.0, 2.0);
        soup.push(seg(0.0, 0.0, 2.0, 0.0));
        assert!(Region::close(soup).is_err());
    }

    #[test]
    fn empty_region() {
        let e = Region::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), r(0.0));
        assert!(!e.contains_point(pt(0.0, 0.0)));
        assert_eq!(Region::close(vec![]).unwrap(), e);
    }

    #[test]
    fn try_new_rejects_overlapping_faces() {
        let f1 = Face::simple(rect_ring(0.0, 0.0, 4.0, 4.0));
        let f2 = Face::simple(rect_ring(2.0, 2.0, 6.0, 6.0));
        assert!(Region::try_new(vec![f1, f2]).is_err());
    }

    #[test]
    fn intersects() {
        let a = Region::from_ring(rect_ring(0.0, 0.0, 2.0, 2.0));
        let b = Region::from_ring(rect_ring(1.0, 1.0, 3.0, 3.0));
        let c = Region::from_ring(rect_ring(5.0, 5.0, 6.0, 6.0));
        let inner = Region::from_ring(rect_ring(0.5, 0.5, 1.0, 1.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&inner)); // containment without boundary contact
        assert!(inner.intersects(&a));
    }

    #[test]
    fn halfsegment_sequence_is_sorted() {
        let region = Region::close(square_soup(0.0, 0.0, 2.0, 2.0)).unwrap();
        let hs = region.halfsegments();
        assert_eq!(hs.len(), 8);
        for w in hs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn centroid() {
        let sq = Region::from_ring(rect_ring(0.0, 0.0, 2.0, 2.0));
        assert_eq!(sq.centroid().unwrap(), pt(1.0, 1.0));
        // Symmetric hole keeps the centroid.
        let ann = Region::try_new(vec![Face::try_new(
            rect_ring(0.0, 0.0, 4.0, 4.0),
            vec![rect_ring(1.0, 1.0, 3.0, 3.0)],
        )
        .unwrap()])
        .unwrap();
        assert!(ann.centroid().unwrap().approx_eq(pt(2.0, 2.0), 1e-9));
        // Asymmetric hole pushes it away from the hole.
        let lop = Region::try_new(vec![Face::try_new(
            rect_ring(0.0, 0.0, 4.0, 4.0),
            vec![rect_ring(0.5, 0.5, 1.5, 1.5)],
        )
        .unwrap()])
        .unwrap();
        let c = lop.centroid().unwrap();
        assert!(c.x > r(2.0) && c.y > r(2.0));
        assert!(Region::empty().centroid().is_none());
    }

    #[test]
    fn touching_faces_pinch_vertex() {
        // Two triangles sharing one vertex: valid region with 2 faces.
        let soup = vec![
            seg(0.0, 0.0, 1.0, 0.0),
            seg(0.0, 0.0, 0.5, 1.0),
            seg(0.5, 1.0, 1.0, 0.0),
            seg(1.0, 0.0, 2.0, 0.0),
            seg(1.0, 0.0, 1.5, 1.0),
            seg(1.5, 1.0, 2.0, 0.0),
        ];
        let region = Region::close(soup).unwrap();
        assert_eq!(region.num_faces(), 2);
        assert!(region.contains_point(pt(1.0, 0.0)));
    }
}
