//! Boolean set operations on `line` and `region` values — the generic
//! set operations (`union`, `intersection`, `minus`) of the abstract
//! model (\[GBE+98\]), implemented ROSE-style on the discrete
//! representations: split boundaries at intersections, classify
//! fragments, then reassemble (`Region::close`).

use crate::arrangement::{on_any_segment, parity_inside, split_segments, MaskedSeg};
use crate::line::Line;
use crate::point::Point;
use crate::region::Region;
use crate::seg::Seg;
use mob_base::error::Result;

const MASK_A: u8 = 1;
const MASK_B: u8 = 2;

fn masked(a: &[Seg], b: &[Seg]) -> Vec<MaskedSeg> {
    a.iter()
        .map(|s| (*s, MASK_A))
        .chain(b.iter().map(|s| (*s, MASK_B)))
        .collect()
}

// ---------------------------------------------------------------------
// line ⊕ line
// ---------------------------------------------------------------------

/// Union of two lines: the combined segment set, with collinear overlaps
/// merged into maximal segments.
pub fn line_union(a: &Line, b: &Line) -> Line {
    let mut segs = a.segments().to_vec();
    segs.extend_from_slice(b.segments());
    Line::normalize(segs)
}

/// Intersection of two lines: the one-dimensional common part (shared
/// sub-segments). Isolated crossing points are *not* representable in a
/// `line` value; they are available via [`Line::crossings`].
pub fn line_intersection(a: &Line, b: &Line) -> Line {
    let fragments = split_segments(&masked(a.segments(), b.segments()));
    Line::normalize(
        fragments
            .into_iter()
            .filter(|(_, m)| *m == MASK_A | MASK_B)
            .map(|(s, _)| s)
            .collect(),
    )
}

/// Difference `a \ b` of two lines (one-dimensional part).
pub fn line_difference(a: &Line, b: &Line) -> Line {
    let fragments = split_segments(&masked(a.segments(), b.segments()));
    Line::normalize(
        fragments
            .into_iter()
            .filter(|(_, m)| *m == MASK_A)
            .map(|(s, _)| s)
            .collect(),
    )
}

// ---------------------------------------------------------------------
// region ⊕ region
// ---------------------------------------------------------------------

/// Which boolean combination to evaluate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BoolOp {
    Union,
    Intersection,
    Difference,
}

impl BoolOp {
    fn keep(self, in_a: bool, in_b: bool) -> bool {
        match self {
            BoolOp::Union => in_a || in_b,
            BoolOp::Intersection => in_a && in_b,
            BoolOp::Difference => in_a && !in_b,
        }
    }
}

/// Scale-relative probe offset for classifying boundary fragments.
fn probe_eps(segs: &[Seg]) -> f64 {
    let bbox = crate::bbox::Rect::of_points(segs.iter().flat_map(|s| [s.u(), s.v()]));
    let diag = (bbox.width().get().powi(2) + bbox.height().get().powi(2)).sqrt();
    diag.max(1.0) * 1e-9
}

fn region_boolean(a: &Region, b: &Region, op: BoolOp) -> Result<Region> {
    let a_segs = a.segments();
    let b_segs = b.segments();
    if a_segs.is_empty() && b_segs.is_empty() {
        return Ok(Region::empty());
    }
    let fragments = split_segments(&masked(&a_segs, &b_segs));
    let eps = probe_eps(&fragments.iter().map(|(s, _)| *s).collect::<Vec<_>>());
    // Strict interior membership via parity against each region's own
    // boundary; probe points lie off both boundaries by construction.
    let inside = |segs: &[Seg], p: Point| parity_inside(segs, p);
    let mut kept: Vec<Seg> = Vec::new();
    for (frag, _) in &fragments {
        let m = frag.midpoint();
        let d = frag.v() - frag.u();
        let len = frag.length().get();
        let (nx, ny) = (-d.y.get() / len, d.x.get() / len);
        let p_left = Point::from_f64(m.x.get() + nx * eps, m.y.get() + ny * eps);
        let p_right = Point::from_f64(m.x.get() - nx * eps, m.y.get() - ny * eps);
        let left_in = op.keep(inside(&a_segs, p_left), inside(&b_segs, p_left));
        let right_in = op.keep(inside(&a_segs, p_right), inside(&b_segs, p_right));
        // A fragment belongs to the result boundary iff the result's
        // membership differs across it.
        if left_in != right_in {
            kept.push(*frag);
        }
    }
    Region::close(kept)
}

/// Union of two regions.
pub fn region_union(a: &Region, b: &Region) -> Result<Region> {
    region_boolean(a, b, BoolOp::Union)
}

/// Intersection of two regions (regularized: lower-dimensional contact
/// such as shared boundary points is dropped).
pub fn region_intersection(a: &Region, b: &Region) -> Result<Region> {
    region_boolean(a, b, BoolOp::Intersection)
}

/// Difference `a \ b` of two regions (regularized).
pub fn region_difference(a: &Region, b: &Region) -> Result<Region> {
    region_boolean(a, b, BoolOp::Difference)
}

// ---------------------------------------------------------------------
// line ⊗ region
// ---------------------------------------------------------------------

/// The part of `line` lying inside `region` (boundary included).
pub fn line_region_intersection(line: &Line, region: &Region) -> Line {
    clip_line(line, region, true)
}

/// The part of `line` lying strictly outside `region`.
pub fn line_region_difference(line: &Line, region: &Region) -> Line {
    clip_line(line, region, false)
}

fn clip_line(line: &Line, region: &Region, keep_inside: bool) -> Line {
    let boundary = region.segments();
    let fragments = split_segments(&masked(line.segments(), &boundary));
    let mut kept = Vec::new();
    for (frag, mask) in fragments {
        if mask & MASK_A == 0 {
            continue; // pure region boundary
        }
        let m = frag.midpoint();
        let inside = on_any_segment(&boundary, m) || parity_inside(&boundary, m);
        if inside == keep_inside {
            kept.push(frag);
        }
    }
    Line::normalize(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::ring::rect_ring;
    use crate::seg::seg;
    use mob_base::r;

    fn sq(x0: f64, y0: f64, x1: f64, y1: f64) -> Region {
        Region::from_ring(rect_ring(x0, y0, x1, y1))
    }

    // ----- line ops -----

    #[test]
    fn line_union_merges_overlaps() {
        let a = Line::single(seg(0.0, 0.0, 2.0, 0.0));
        let b = Line::single(seg(1.0, 0.0, 3.0, 0.0));
        let u = line_union(&a, &b);
        assert_eq!(u.num_segments(), 1);
        assert_eq!(u.length(), r(3.0));
    }

    #[test]
    fn line_intersection_shared_parts() {
        let a = Line::single(seg(0.0, 0.0, 2.0, 0.0));
        let b = Line::single(seg(1.0, 0.0, 3.0, 0.0));
        let i = line_intersection(&a, &b);
        assert_eq!(i.segments(), &[seg(1.0, 0.0, 2.0, 0.0)]);
        // Crossing lines share only a point: 1D intersection is empty.
        let c = Line::single(seg(0.0, 2.0, 2.0, 0.0));
        let d = Line::single(seg(0.0, 0.0, 2.0, 2.0));
        assert!(line_intersection(&c, &d).is_empty());
    }

    #[test]
    fn line_difference_cuts() {
        let a = Line::single(seg(0.0, 0.0, 3.0, 0.0));
        let b = Line::single(seg(1.0, 0.0, 2.0, 0.0));
        let d = line_difference(&a, &b);
        assert_eq!(
            d.segments(),
            &[seg(0.0, 0.0, 1.0, 0.0), seg(2.0, 0.0, 3.0, 0.0)]
        );
        assert!(line_difference(&a, &a).is_empty());
    }

    // ----- region ops -----

    #[test]
    fn union_of_overlapping_squares() {
        let u = region_union(&sq(0.0, 0.0, 2.0, 2.0), &sq(1.0, 1.0, 3.0, 3.0)).unwrap();
        assert_eq!(u.num_faces(), 1);
        assert_eq!(u.area(), r(7.0)); // 4 + 4 - 1
        assert!(u.contains_point(pt(0.5, 0.5)));
        assert!(u.contains_point(pt(2.5, 2.5)));
        assert!(!u.contains_point(pt(2.5, 0.5)));
    }

    #[test]
    fn intersection_of_overlapping_squares() {
        let i = region_intersection(&sq(0.0, 0.0, 2.0, 2.0), &sq(1.0, 1.0, 3.0, 3.0)).unwrap();
        assert_eq!(i.num_faces(), 1);
        assert_eq!(i.area(), r(1.0));
        assert!(i.contains_point(pt(1.5, 1.5)));
        assert!(!i.contains_point(pt(0.5, 0.5)));
    }

    #[test]
    fn difference_creates_l_shape() {
        let d = region_difference(&sq(0.0, 0.0, 2.0, 2.0), &sq(1.0, 1.0, 3.0, 3.0)).unwrap();
        assert_eq!(d.area(), r(3.0));
        assert!(d.contains_point(pt(0.5, 0.5)));
        assert!(!d.contains_point(pt(1.5, 1.5)));
    }

    #[test]
    fn difference_punches_hole() {
        let d = region_difference(&sq(0.0, 0.0, 4.0, 4.0), &sq(1.0, 1.0, 3.0, 3.0)).unwrap();
        assert_eq!(d.num_faces(), 1);
        assert_eq!(d.num_cycles(), 2); // outer + hole
        assert_eq!(d.area(), r(12.0));
        assert!(!d.contains_point(pt(2.0, 2.0)));
    }

    #[test]
    fn disjoint_regions() {
        let a = sq(0.0, 0.0, 1.0, 1.0);
        let b = sq(5.0, 5.0, 6.0, 6.0);
        let u = region_union(&a, &b).unwrap();
        assert_eq!(u.num_faces(), 2);
        assert_eq!(u.area(), r(2.0));
        assert!(region_intersection(&a, &b).unwrap().is_empty());
        assert_eq!(region_difference(&a, &b).unwrap(), a);
    }

    #[test]
    fn nested_regions() {
        let outer = sq(0.0, 0.0, 4.0, 4.0);
        let inner = sq(1.0, 1.0, 2.0, 2.0);
        assert_eq!(region_union(&outer, &inner).unwrap().area(), r(16.0));
        assert_eq!(region_intersection(&outer, &inner).unwrap(), inner);
        let d = region_difference(&inner, &outer).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn self_operations() {
        let a = sq(0.0, 0.0, 2.0, 2.0);
        assert_eq!(region_union(&a, &a).unwrap(), a);
        assert_eq!(region_intersection(&a, &a).unwrap(), a);
        assert!(region_difference(&a, &a).unwrap().is_empty());
        let e = Region::empty();
        assert_eq!(region_union(&a, &e).unwrap(), a);
        assert!(region_intersection(&a, &e).unwrap().is_empty());
        assert_eq!(region_difference(&a, &e).unwrap(), a);
    }

    #[test]
    fn union_of_edge_adjacent_squares_removes_shared_edge() {
        // [0,2]×[0,2] and [2,4]×[0,2] share the edge x=2.
        let u = region_union(&sq(0.0, 0.0, 2.0, 2.0), &sq(2.0, 0.0, 4.0, 2.0)).unwrap();
        assert_eq!(u.num_faces(), 1);
        assert_eq!(u.area(), r(8.0));
        assert_eq!(u.num_segments(), 6); // merged rectangle boundary split at old corners
        assert!(u.contains_point(pt(2.0, 1.0)));
    }

    #[test]
    fn intersection_of_edge_adjacent_squares_is_empty() {
        // Regularized semantics: the shared edge has no interior.
        let i = region_intersection(&sq(0.0, 0.0, 2.0, 2.0), &sq(2.0, 0.0, 4.0, 2.0)).unwrap();
        assert!(i.is_empty());
    }

    // ----- line ⊗ region -----

    #[test]
    fn clip_line_against_region() {
        let l = Line::single(seg(-1.0, 1.0, 5.0, 1.0));
        let reg = sq(0.0, 0.0, 2.0, 2.0);
        let inside = line_region_intersection(&l, &reg);
        assert_eq!(inside.segments(), &[seg(0.0, 1.0, 2.0, 1.0)]);
        let outside = line_region_difference(&l, &reg);
        assert_eq!(
            outside.segments(),
            &[seg(-1.0, 1.0, 0.0, 1.0), seg(2.0, 1.0, 5.0, 1.0)]
        );
    }
}
