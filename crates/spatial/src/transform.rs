//! Affine transformations of spatial values: translation, uniform
//! scaling about a center, and rotation. These are the value-level
//! transformations of the abstract model's spatial algebra; they are
//! also what generators use to build families of test shapes.
//!
//! All transforms are similarity transforms, so they map valid carrier
//! values to valid carrier values (no re-validation needed — proper
//! intersections, touches and overlaps are preserved bijectively).

use crate::face::Face;
use crate::line::Line;
use crate::point::Point;
use crate::points::Points;
use crate::region::Region;
use crate::ring::Ring;
use crate::seg::Seg;
use mob_base::Real;

/// A 2D similarity transform `p ↦ R·s·(p − c) + c + t` (rotate by
/// `angle` and scale by `scale` about `center`, then translate by
/// `offset`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Similarity {
    /// Fixed point of the rotation/scaling.
    pub center: Point,
    /// Uniform scale factor (must be non-zero).
    pub scale: Real,
    /// Rotation angle in radians.
    pub angle: Real,
    /// Final translation.
    pub offset: Point,
}

impl Similarity {
    /// Pure translation.
    pub fn translation(dx: f64, dy: f64) -> Similarity {
        Similarity {
            center: Point::ORIGIN,
            scale: Real::ONE,
            angle: Real::ZERO,
            offset: Point::from_f64(dx, dy),
        }
    }

    /// Uniform scaling about a center.
    pub fn scaling(center: Point, factor: f64) -> Similarity {
        assert!(factor != 0.0, "scale factor must be non-zero");
        Similarity {
            center,
            scale: Real::new(factor),
            angle: Real::ZERO,
            offset: Point::ORIGIN,
        }
    }

    /// Rotation about a center.
    pub fn rotation(center: Point, angle: f64) -> Similarity {
        Similarity {
            center,
            scale: Real::ONE,
            angle: Real::new(angle),
            offset: Point::ORIGIN,
        }
    }

    /// Apply to a point.
    pub fn apply(&self, p: Point) -> Point {
        let dx = (p.x - self.center.x).get();
        let dy = (p.y - self.center.y).get();
        let (sin, cos) = self.angle.get().sin_cos();
        let s = self.scale.get();
        Point::from_f64(
            self.center.x.get() + s * (dx * cos - dy * sin) + self.offset.x.get(),
            self.center.y.get() + s * (dx * sin + dy * cos) + self.offset.y.get(),
        )
    }

    /// Apply to a segment.
    pub fn apply_seg(&self, s: &Seg) -> Seg {
        Seg::new(self.apply(s.u()), self.apply(s.v()))
    }

    /// Apply to a point set.
    pub fn apply_points(&self, ps: &Points) -> Points {
        ps.iter().map(|p| self.apply(p)).collect()
    }

    /// Apply to a line value (similarities preserve the
    /// no-collinear-overlap invariant).
    pub fn apply_line(&self, l: &Line) -> Line {
        Line::try_new(l.segments().iter().map(|s| self.apply_seg(s)).collect())
            .expect("similarity preserves line validity")
    }

    /// Apply to a ring. Negative scale factors mirror the plane and flip
    /// orientation; the result is re-normalized by the caller's context
    /// (faces normalize on construction).
    pub fn apply_ring(&self, r: &Ring) -> Ring {
        Ring::try_new(r.points().iter().map(|p| self.apply(*p)).collect())
            .expect("similarity preserves cycle validity")
    }

    /// Apply to a region.
    pub fn apply_region(&self, reg: &Region) -> Region {
        let faces = reg
            .faces()
            .iter()
            .map(|f| {
                Face::new_unchecked(
                    self.apply_ring(f.outer()),
                    f.holes().iter().map(|h| self.apply_ring(h)).collect(),
                )
            })
            .collect();
        Region::from_faces_unchecked(faces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::ring::rect_ring;
    use crate::seg::seg;
    use mob_base::r;

    #[test]
    fn translation() {
        let t = Similarity::translation(2.0, -1.0);
        assert_eq!(t.apply(pt(1.0, 1.0)), pt(3.0, 0.0));
        let l = Line::single(seg(0.0, 0.0, 1.0, 0.0));
        assert_eq!(t.apply_line(&l).segments()[0], seg(2.0, -1.0, 3.0, -1.0));
    }

    #[test]
    fn scaling_about_center() {
        let s = Similarity::scaling(pt(1.0, 1.0), 2.0);
        assert_eq!(s.apply(pt(1.0, 1.0)), pt(1.0, 1.0)); // fixed point
        assert_eq!(s.apply(pt(2.0, 1.0)), pt(3.0, 1.0));
        let region = Region::from_ring(rect_ring(0.0, 0.0, 2.0, 2.0));
        let scaled = s.apply_region(&region);
        assert_eq!(scaled.area(), r(16.0)); // 4 · scale²
        assert!(scaled.contains_point(pt(-1.0, -1.0)));
    }

    #[test]
    fn rotation_quarter_turn() {
        let rot = Similarity::rotation(pt(0.0, 0.0), std::f64::consts::FRAC_PI_2);
        let p = rot.apply(pt(1.0, 0.0));
        assert!(p.approx_eq(pt(0.0, 1.0), 1e-12));
        // Rotation preserves area and perimeter.
        let region = Region::from_ring(rect_ring(1.0, 1.0, 3.0, 2.0));
        let rotated = rot.apply_region(&region);
        assert!(rotated.area().approx_eq(region.area(), 1e-9));
        assert!(rotated.perimeter().approx_eq(region.perimeter(), 1e-9));
    }

    #[test]
    fn region_with_hole_transforms() {
        let region = Region::try_new(vec![Face::try_new(
            rect_ring(0.0, 0.0, 4.0, 4.0),
            vec![rect_ring(1.0, 1.0, 2.0, 2.0)],
        )
        .unwrap()])
        .unwrap();
        let t = Similarity::translation(10.0, 0.0);
        let moved = t.apply_region(&region);
        assert_eq!(moved.area(), region.area());
        assert!(!moved.contains_point(pt(11.5, 1.5))); // hole moved too
        assert!(moved.contains_point(pt(13.0, 3.0)));
    }

    #[test]
    fn points_transform() {
        let s = Similarity::scaling(pt(0.0, 0.0), -1.0); // point reflection
        let ps = Points::from_points(vec![pt(1.0, 2.0), pt(-1.0, 0.0)]);
        let out = s.apply_points(&ps);
        assert!(out.contains(pt(-1.0, -2.0)));
        assert!(out.contains(pt(1.0, 0.0)));
    }
}
