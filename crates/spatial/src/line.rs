//! The discrete `line` type (Sec 3.2.2): an *unstructured* finite set of
//! line segments — the paper's deliberate choice over polylines (Fig 2c):
//! "any collection of line segments in the plane defines a valid
//! collection of curves". The only carrier-set condition is that no two
//! distinct collinear segments overlap (which guarantees a unique,
//! minimal representation).

use crate::bbox::Rect;
use crate::halfseg::{halfseg_sequence, HalfSeg};
use crate::point::Point;
use crate::points::Points;
use crate::seg::{merge_segs, Seg, SegIntersection};
use mob_base::error::{InvariantViolation, Result};
use mob_base::Real;
use std::fmt;

/// A finite set of segments with no collinear overlaps, stored sorted.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Line {
    segs: Vec<Seg>,
}

impl Line {
    /// The empty line.
    pub fn empty() -> Line {
        Line { segs: Vec::new() }
    }

    /// Validating constructor: rejects collinear segments that are not
    /// disjoint (the condition of `D_line`).
    pub fn try_new(mut segs: Vec<Seg>) -> Result<Line> {
        segs.sort();
        for (i, s) in segs.iter().enumerate() {
            for t in segs.iter().skip(i + 1) {
                if s == t {
                    return Err(InvariantViolation::new("line: duplicate segment"));
                }
                if s.collinear(t) && !s.disjoint(t) {
                    return Err(InvariantViolation::new(
                        "line: collinear segments must be disjoint",
                    ));
                }
            }
        }
        Ok(Line { segs })
    }

    /// Normalizing constructor: merges collinear overlapping/meeting
    /// segments into maximal ones (the paper: such segments "could be
    /// merged into a single segment").
    pub fn normalize(segs: Vec<Seg>) -> Line {
        Line {
            segs: merge_segs(segs),
        }
    }

    /// A line holding one segment.
    pub fn single(s: Seg) -> Line {
        Line { segs: vec![s] }
    }

    /// The segments in lexicographic order.
    pub fn segments(&self) -> &[Seg] {
        &self.segs
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segs.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Total length of all segments — the paper's `length` operation
    /// (used by the query `length(trajectory(flight)) > 5000`).
    pub fn length(&self) -> Real {
        self.segs.iter().fold(Real::ZERO, |acc, s| acc + s.length())
    }

    /// Bounding box.
    pub fn bbox(&self) -> Rect {
        self.segs
            .iter()
            .fold(Rect::EMPTY, |acc, s| acc.union(&s.bbox()))
    }

    /// The ordered halfsegment sequence (Sec 4.1 storage order).
    pub fn halfsegments(&self) -> Vec<HalfSeg> {
        halfseg_sequence(&self.segs)
    }

    /// `true` if `p` lies on some segment.
    pub fn contains_point(&self, p: Point) -> bool {
        self.segs.iter().any(|s| s.contains_point(p))
    }

    /// `true` if the two lines share at least one point.
    pub fn intersects(&self, other: &Line) -> bool {
        if !self.bbox().intersects(&other.bbox()) {
            return false;
        }
        self.segs
            .iter()
            .any(|s| other.segs.iter().any(|t| !s.disjoint(t)))
    }

    /// Points where segments of the two lines cross (the `crossings`
    /// operation of the abstract model: isolated intersection points).
    pub fn crossings(&self, other: &Line) -> Points {
        let mut out = Vec::new();
        for s in &self.segs {
            for t in &other.segs {
                if let SegIntersection::Crossing(p) = s.intersection(t) {
                    out.push(p);
                }
            }
        }
        Points::from_points(out)
    }

    /// All segment end points.
    pub fn endpoints(&self) -> Points {
        Points::from_points(self.segs.iter().flat_map(|s| [s.u(), s.v()]).collect())
    }
}

impl FromIterator<Seg> for Line {
    /// Collect with normalization.
    fn from_iter<I: IntoIterator<Item = Seg>>(iter: I) -> Self {
        Line::normalize(iter.into_iter().collect())
    }
}

impl fmt::Debug for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.segs.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::seg::seg;
    use mob_base::r;

    #[test]
    fn try_new_rejects_collinear_overlap() {
        // Overlapping collinear segments violate the carrier condition.
        assert!(Line::try_new(vec![seg(0.0, 0.0, 2.0, 0.0), seg(1.0, 0.0, 3.0, 0.0)]).is_err());
        // Collinear but disjoint is fine.
        assert!(Line::try_new(vec![seg(0.0, 0.0, 1.0, 0.0), seg(2.0, 0.0, 3.0, 0.0)]).is_ok());
        // Collinear meeting at an end point shares a point: must merge.
        assert!(Line::try_new(vec![seg(0.0, 0.0, 1.0, 0.0), seg(1.0, 0.0, 2.0, 0.0)]).is_err());
        // Crossing segments are allowed (Fig 2c: any segment set is a line).
        assert!(Line::try_new(vec![seg(0.0, 0.0, 2.0, 2.0), seg(0.0, 2.0, 2.0, 0.0)]).is_ok());
        // Duplicates rejected.
        assert!(Line::try_new(vec![seg(0.0, 0.0, 1.0, 0.0), seg(0.0, 0.0, 1.0, 0.0)]).is_err());
    }

    #[test]
    fn normalize_merges() {
        let l = Line::normalize(vec![seg(0.0, 0.0, 2.0, 0.0), seg(1.0, 0.0, 3.0, 0.0)]);
        assert_eq!(l.num_segments(), 1);
        assert_eq!(l.segments()[0], seg(0.0, 0.0, 3.0, 0.0));
        assert_eq!(l.length(), r(3.0));
    }

    #[test]
    fn unique_representation() {
        let a = Line::normalize(vec![seg(0.0, 0.0, 1.0, 0.0), seg(0.0, 1.0, 1.0, 1.0)]);
        let b = Line::normalize(vec![seg(0.0, 1.0, 1.0, 1.0), seg(0.0, 0.0, 1.0, 0.0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn length_and_bbox() {
        let l = Line::normalize(vec![seg(0.0, 0.0, 3.0, 4.0), seg(0.0, 0.0, 0.0, 2.0)]);
        assert_eq!(l.length(), r(7.0));
        assert_eq!(l.bbox().max_x(), r(3.0));
        assert_eq!(l.bbox().max_y(), r(4.0));
    }

    #[test]
    fn membership_and_intersection() {
        let a = Line::single(seg(0.0, 0.0, 2.0, 2.0));
        let b = Line::single(seg(0.0, 2.0, 2.0, 0.0));
        let c = Line::single(seg(5.0, 5.0, 6.0, 6.0));
        assert!(a.contains_point(pt(1.0, 1.0)));
        assert!(!a.contains_point(pt(1.0, 0.0)));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.crossings(&b).as_slice(), &[pt(1.0, 1.0)]);
        assert!(a.crossings(&c).is_empty());
    }

    #[test]
    fn halfsegments_and_endpoints() {
        let l = Line::normalize(vec![seg(0.0, 0.0, 1.0, 0.0), seg(2.0, 0.0, 3.0, 1.0)]);
        assert_eq!(l.halfsegments().len(), 4);
        assert_eq!(l.endpoints().len(), 4);
    }

    #[test]
    fn empty_line() {
        let e = Line::empty();
        assert!(e.is_empty());
        assert_eq!(e.length(), r(0.0));
        assert!(e.bbox().is_empty());
    }
}
