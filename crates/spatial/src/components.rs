//! Connected components of a `line` value — the planar-graph view of
//! Fig 2: the abstract model sees a line as a graph whose nodes are
//! curve intersections; `no_components` counts its connected parts.

use crate::line::Line;
use crate::point::Point;
use crate::seg::{Seg, SegIntersection};
use std::collections::BTreeMap;

/// Union-find over segment indices.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// Partition a line's segments into connected components (segments are
/// connected when they share any point: meeting, touching or crossing).
pub fn connected_components(line: &Line) -> Vec<Line> {
    let segs = line.segments();
    let n = segs.len();
    let mut dsu = Dsu::new(n);
    // Endpoint sharing via a point index (fast path for chains).
    let mut by_endpoint: BTreeMap<Point, usize> = BTreeMap::new();
    for (i, s) in segs.iter().enumerate() {
        for p in [s.u(), s.v()] {
            match by_endpoint.get(&p) {
                Some(&j) => dsu.union(i, j),
                None => {
                    by_endpoint.insert(p, i);
                }
            }
        }
    }
    // Crossings and touches (pairwise; components are usually few).
    for i in 0..n {
        for j in (i + 1)..n {
            if dsu.find(i) == dsu.find(j) {
                continue;
            }
            if !matches!(segs[i].intersection(&segs[j]), SegIntersection::Disjoint) {
                dsu.union(i, j);
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<Seg>> = BTreeMap::new();
    for (i, s) in segs.iter().enumerate() {
        groups.entry(dsu.find(i)).or_default().push(*s);
    }
    groups
        .into_values()
        .map(|g| Line::try_new(g).expect("subset of a valid line"))
        .collect()
}

/// The abstract model's `no_components` for a line value.
pub fn num_components(line: &Line) -> usize {
    connected_components(line).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::seg;

    #[test]
    fn chain_is_one_component() {
        let l = Line::normalize(vec![
            seg(0.0, 0.0, 1.0, 0.0),
            seg(1.0, 0.0, 1.0, 1.0),
            seg(1.0, 1.0, 2.0, 2.0),
        ]);
        assert_eq!(num_components(&l), 1);
    }

    #[test]
    fn separate_pieces() {
        let l = Line::normalize(vec![
            seg(0.0, 0.0, 1.0, 0.0),
            seg(5.0, 5.0, 6.0, 5.0),
            seg(6.0, 5.0, 6.0, 6.0),
        ]);
        let comps = connected_components(&l);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps.iter().map(Line::num_segments).sum::<usize>(), 3);
    }

    #[test]
    fn crossing_connects() {
        // Two segments crossing mid-air share a point: one component.
        let l = Line::normalize(vec![seg(0.0, 0.0, 2.0, 2.0), seg(0.0, 2.0, 2.0, 0.0)]);
        assert_eq!(num_components(&l), 1);
        // A touch also connects.
        let t = Line::normalize(vec![seg(0.0, 0.0, 2.0, 0.0), seg(1.0, 0.0, 1.0, 3.0)]);
        assert_eq!(num_components(&t), 1);
    }

    #[test]
    fn empty_line() {
        assert_eq!(num_components(&Line::empty()), 0);
    }
}
