//! Bounding boxes: 2D rectangles (summary information in the root records
//! of `line`/`region`, Sec 4.1) and 3D bounding *cubes* over space × time
//! (summary information of spatio-temporal units, Sec 4.2 — used by the
//! `inside` algorithm's fast path in Sec 5.2).

use crate::point::Point;
use mob_base::{Instant, Interval, Real, TimeInterval};
use std::fmt;

/// An axis-aligned 2D rectangle. Empty rectangles are represented by
/// [`Rect::EMPTY`] (inverted bounds).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    min_x: Real,
    min_y: Real,
    max_x: Real,
    max_y: Real,
}

impl Rect {
    /// The empty rectangle (identity of [`Rect::union`]).
    pub const EMPTY: Rect = Rect {
        min_x: Real::ONE,
        min_y: Real::ONE,
        max_x: Real::ZERO,
        max_y: Real::ZERO,
    };

    /// Construct from bounds; returns the canonical empty rect if inverted.
    pub fn new(min_x: Real, min_y: Real, max_x: Real, max_y: Real) -> Rect {
        if min_x > max_x || min_y > max_y {
            Rect::EMPTY
        } else {
            Rect {
                min_x,
                min_y,
                max_x,
                max_y,
            }
        }
    }

    /// The bounding box of a single point.
    pub fn of_point(p: Point) -> Rect {
        Rect {
            min_x: p.x,
            min_y: p.y,
            max_x: p.x,
            max_y: p.y,
        }
    }

    /// The bounding box of an iterator of points.
    pub fn of_points<I: IntoIterator<Item = Point>>(pts: I) -> Rect {
        pts.into_iter()
            .fold(Rect::EMPTY, |acc, p| acc.union(&Rect::of_point(p)))
    }

    /// `true` for the empty rectangle.
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Minimum x (undefined content for empty rects).
    pub fn min_x(&self) -> Real {
        self.min_x
    }
    /// Minimum y.
    pub fn min_y(&self) -> Real {
        self.min_y
    }
    /// Maximum x.
    pub fn max_x(&self) -> Real {
        self.max_x
    }
    /// Maximum y.
    pub fn max_y(&self) -> Real {
        self.max_y
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// `true` if the rectangles share at least one point.
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// `true` if `other` lies entirely inside the (closed) rectangle.
    /// The empty rectangle is contained in everything and contains only
    /// itself — the usual union/subset semantics.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (!self.is_empty()
                && self.min_x <= other.min_x
                && other.max_x <= self.max_x
                && self.min_y <= other.min_y
                && other.max_y <= self.max_y)
    }

    /// `true` if the point lies in the (closed) rectangle.
    pub fn contains_point(&self, p: Point) -> bool {
        !self.is_empty()
            && self.min_x <= p.x
            && p.x <= self.max_x
            && self.min_y <= p.y
            && p.y <= self.max_y
    }

    /// Width (0 for empty).
    pub fn width(&self) -> Real {
        if self.is_empty() {
            Real::ZERO
        } else {
            self.max_x - self.min_x
        }
    }

    /// Height (0 for empty).
    pub fn height(&self) -> Real {
        if self.is_empty() {
            Real::ZERO
        } else {
            self.max_y - self.min_y
        }
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "Rect(empty)")
        } else {
            write!(
                f,
                "Rect[{}..{} × {}..{}]",
                self.min_x, self.max_x, self.min_y, self.max_y
            )
        }
    }
}

/// A 3D bounding cube over (x, y, t): the spatial [`Rect`] extended by a
/// closed time span. Unit records carry one of these (Sec 4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Cube {
    /// Spatial extent.
    pub rect: Rect,
    /// Start of the time span.
    pub t_min: Instant,
    /// End of the time span.
    pub t_max: Instant,
}

impl Cube {
    /// Construct from a spatial rect and a time interval (the flags of the
    /// interval are irrelevant for bounding purposes).
    pub fn new(rect: Rect, interval: &TimeInterval) -> Cube {
        Cube {
            rect,
            t_min: *interval.start(),
            t_max: *interval.end(),
        }
    }

    /// `true` if the two cubes share a point (closed semantics — the
    /// conservative test used by the `inside` fast path).
    pub fn intersects(&self, other: &Cube) -> bool {
        self.rect.intersects(&other.rect) && self.t_min <= other.t_max && other.t_min <= self.t_max
    }

    /// `true` if `other` lies entirely inside this cube (closed
    /// semantics on both the spatial and the temporal axis) — the
    /// containment invariant an R-tree node must satisfy for each of
    /// its children.
    pub fn contains(&self, other: &Cube) -> bool {
        self.rect.contains_rect(&other.rect)
            && self.t_min <= other.t_min
            && other.t_max <= self.t_max
    }

    /// The time span as a closed interval.
    pub fn time_span(&self) -> TimeInterval {
        Interval::closed(self.t_min, self.t_max)
    }

    /// Union of two cubes.
    pub fn union(&self, other: &Cube) -> Cube {
        Cube {
            rect: self.rect.union(&other.rect),
            t_min: self.t_min.min(other.t_min),
            t_max: self.t_max.max(other.t_max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use mob_base::{r, t};

    #[test]
    fn empty_identity() {
        let a = Rect::of_point(pt(1.0, 2.0));
        assert_eq!(Rect::EMPTY.union(&a), a);
        assert_eq!(a.union(&Rect::EMPTY), a);
        assert!(Rect::EMPTY.is_empty());
        assert!(!Rect::EMPTY.intersects(&a));
        assert!(!Rect::EMPTY.contains_point(pt(0.0, 0.0)));
    }

    #[test]
    fn union_and_contains() {
        let b = Rect::of_points([pt(0.0, 0.0), pt(2.0, 3.0), pt(1.0, -1.0)]);
        assert_eq!(b.min_x(), r(0.0));
        assert_eq!(b.max_x(), r(2.0));
        assert_eq!(b.min_y(), r(-1.0));
        assert_eq!(b.max_y(), r(3.0));
        assert!(b.contains_point(pt(1.0, 1.0)));
        assert!(!b.contains_point(pt(3.0, 0.0)));
        assert_eq!(b.width(), r(2.0));
        assert_eq!(b.height(), r(4.0));
    }

    #[test]
    fn rect_intersection_cases() {
        let a = Rect::new(r(0.0), r(0.0), r(2.0), r(2.0));
        let b = Rect::new(r(1.0), r(1.0), r(3.0), r(3.0));
        let c = Rect::new(r(5.0), r(5.0), r(6.0), r(6.0));
        let edge = Rect::new(r(2.0), r(0.0), r(4.0), r(2.0));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.intersects(&edge)); // closed semantics: shared edge counts
        assert!(Rect::new(r(3.0), r(0.0), r(1.0), r(1.0)).is_empty()); // inverted
    }

    #[test]
    fn cube_intersection() {
        let sq = Rect::new(r(0.0), r(0.0), r(1.0), r(1.0));
        let a = Cube::new(sq, &Interval::closed(t(0.0), t(1.0)));
        let b = Cube::new(sq, &Interval::closed(t(1.0), t(2.0)));
        let c = Cube::new(sq, &Interval::closed(t(3.0), t(4.0)));
        assert!(a.intersects(&b)); // touch in time
        assert!(!a.intersects(&c)); // disjoint in time
        let far = Cube::new(
            Rect::new(r(9.0), r(9.0), r(10.0), r(10.0)),
            &Interval::closed(t(0.0), t(1.0)),
        );
        assert!(!a.intersects(&far)); // disjoint in space
        let u = a.union(&c);
        assert_eq!(u.t_min, t(0.0));
        assert_eq!(u.t_max, t(4.0));
    }
}
