//! Convex hull (Andrew's monotone chain) — the abstract model's
//! `convexhull: points → region` operation, also used by generators.

use crate::point::{orientation, Point};
use crate::points::Points;
use crate::region::Region;
use crate::ring::Ring;

/// The convex hull of a point set as an ordered ring (counter-clockwise),
/// or `None` when the points are fewer than 3 or all collinear.
pub fn convex_hull_ring(points: &Points) -> Option<Ring> {
    let pts: Vec<Point> = points.iter().collect(); // already sorted
    if pts.len() < 3 {
        return None;
    }
    let mut lower: Vec<Point> = Vec::with_capacity(pts.len());
    for &p in &pts {
        while lower.len() >= 2
            && orientation(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0
        {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::with_capacity(pts.len());
    for &p in pts.iter().rev() {
        while upper.len() >= 2
            && orientation(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0
        {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    if lower.len() < 3 {
        return None; // all collinear
    }
    Some(Ring::try_new(lower).expect("hull is a simple ccw polygon"))
}

/// The convex hull as a `region` value (empty for degenerate inputs —
/// the abstract model returns ⊥ there; the empty region is our closest
/// regular value and is documented as such).
pub fn convex_hull(points: &Points) -> Region {
    match convex_hull_ring(points) {
        Some(ring) => Region::from_ring(ring),
        None => Region::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use mob_base::r;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = Points::from_points(vec![
            pt(0.0, 0.0),
            pt(4.0, 0.0),
            pt(4.0, 4.0),
            pt(0.0, 4.0),
            pt(2.0, 2.0), // interior
            pt(1.0, 2.0), // interior
            pt(2.0, 0.0), // on an edge
        ]);
        let hull = convex_hull_ring(&pts).unwrap();
        assert_eq!(hull.len(), 4);
        assert!(hull.is_ccw());
        assert_eq!(hull.area(), r(16.0));
        let region = convex_hull(&pts);
        assert!(region.contains_point(pt(2.0, 2.0)));
        assert!(!region.contains_point(pt(5.0, 2.0)));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull_ring(&Points::empty()).is_none());
        assert!(convex_hull_ring(&Points::single(pt(1.0, 1.0))).is_none());
        // Collinear points have no 2D hull.
        let collinear =
            Points::from_points(vec![pt(0.0, 0.0), pt(1.0, 1.0), pt(2.0, 2.0), pt(3.0, 3.0)]);
        assert!(convex_hull_ring(&collinear).is_none());
        assert!(convex_hull(&collinear).is_empty());
    }

    #[test]
    fn hull_is_convex_and_contains_all_inputs() {
        let pts = Points::from_points(vec![
            pt(0.0, 0.0),
            pt(3.0, 1.0),
            pt(5.0, 4.0),
            pt(2.0, 6.0),
            pt(-1.0, 3.0),
            pt(2.0, 3.0),
            pt(1.0, 1.0),
        ]);
        let hull = convex_hull_ring(&pts).unwrap();
        assert!(hull.is_convex());
        for p in pts.iter() {
            assert!(hull.contains_point(p), "{p:?} outside hull");
        }
    }
}
