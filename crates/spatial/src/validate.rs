//! Deep validation of the discrete spatial types (Sec 3.2.2).
//!
//! The paper defines `points`, `line` and `region` carrier sets as set
//! comprehensions with side conditions (no duplicate points, no
//! collinear overlapping segments, well-formed faces with holes inside
//! their outer cycle). The [`Validate`] impls here re-check those
//! conditions on already constructed values by re-running the
//! validating constructors on the components — the same convention
//! `mob-core` uses for the unit types.

use crate::face::Face;
use crate::line::Line;
use crate::points::Points;
use crate::region::Region;
use crate::ring::Ring;
use mob_base::error::{InvariantViolation, Result};
use mob_base::Validate;

impl Validate for Ring {
    /// Sec 3.2.2 (cycles): at least three vertices, simple (no
    /// self-intersection), no consecutive collinear edges.
    fn validate(&self) -> Result<()> {
        Ring::try_new(self.points().to_vec()).map(|_| ())
    }
}

impl Validate for Face {
    /// Sec 3.2.2 (faces): a valid outer cycle with every hole cycle
    /// valid, edge-disjoint and strictly inside it.
    fn validate(&self) -> Result<()> {
        Face::try_new(self.outer().clone(), self.holes().to_vec()).map(|_| ())
    }
}

impl Validate for Region {
    /// Sec 3.2.2 (`region`): a finite set of faces with disjoint
    /// interiors whose cycles do not cross.
    fn validate(&self) -> Result<()> {
        Region::try_new(self.faces().to_vec()).map(|_| ())
    }
}

impl Validate for Line {
    /// Sec 3.2.2 (`line`): a finite set of non-degenerate segments with
    /// no collinear overlaps.
    fn validate(&self) -> Result<()> {
        Line::try_new(self.segments().to_vec()).map(|_| ())
    }
}

impl Validate for Points {
    /// Sec 3.2.2 (`points`) plus the array layout of Sec 4: points are
    /// stored in strictly increasing lexicographic order, which also
    /// rules out duplicates.
    fn validate(&self) -> Result<()> {
        for (i, w) in self.as_slice().windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(InvariantViolation::with_detail(
                    "points: members must be in strictly increasing lexicographic order",
                    format!("entries {} and {}", i, i + 1),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pt, rect_ring, seg};

    #[test]
    fn valid_spatial_values_validate() {
        let ring = rect_ring(0.0, 0.0, 4.0, 4.0);
        ring.validate().unwrap();
        let face = Face::try_new(ring.clone(), vec![rect_ring(1.0, 1.0, 2.0, 2.0)]).unwrap();
        face.validate().unwrap();
        let region = Region::try_new(vec![face]).unwrap();
        region.validate().unwrap();
        let line = Line::try_new(vec![seg(0.0, 0.0, 1.0, 0.0), seg(2.0, 0.0, 3.0, 1.0)]).unwrap();
        line.validate().unwrap();
        let pts = Points::from_points(vec![pt(1.0, 2.0), pt(0.0, 0.0), pt(1.0, 2.0)]);
        pts.validate().unwrap();
    }

    #[test]
    fn stale_values_fail_validate() {
        // A hand-built degenerate (fully collinear) ring never passes.
        let bad_ring = Ring::new_unchecked(vec![pt(0.0, 0.0), pt(1.0, 0.0), pt(2.0, 0.0)]);
        assert!(bad_ring.validate().is_err());
        // A face whose hole escaped its outer cycle.
        let face = Face::new_unchecked(
            rect_ring(0.0, 0.0, 1.0, 1.0),
            vec![rect_ring(5.0, 5.0, 6.0, 6.0)],
        );
        assert!(face.validate().is_err());
    }
}
