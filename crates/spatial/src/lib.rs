//! # `mob-spatial` — the discrete spatial algebra
//!
//! Implements Section 3.2.2 of Forlizzi, Güting, Nardelli & Schneider
//! (SIGMOD 2000) together with the halfsegment/plane-structure machinery
//! of Section 4.1:
//!
//! * [`Point`] / [`Points`] — single points and lexicographically ordered
//!   point sets;
//! * [`Seg`] with the paper's predicates (`collinear`, `p-intersect`,
//!   `touch`, `meet`), `merge-segs` and the even/odd fragment rule;
//! * [`HalfSeg`] — the dual representation driving storage order and
//!   sweep-style traversal;
//! * [`Line`] — unstructured segment sets (Fig 2);
//! * [`Ring`] (cycles), [`Face`] and [`Region`] (Fig 3) with the full
//!   validity conditions and the Sec 4.1 `close()` construction;
//! * boolean set operations ([`setops`]) built on a planar
//!   [`arrangement`];
//! * distances ([`dist`]) and bounding boxes/cubes ([`bbox`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrangement;
pub mod bbox;
pub mod components;
pub mod dist;
pub mod face;
pub mod halfseg;
pub mod hull;
pub mod line;
pub mod point;
pub mod points;
pub mod region;
pub mod ring;
pub mod seg;
pub mod setops;
pub mod transform;
pub mod validate;

pub use bbox::{Cube, Rect};
pub use components::{connected_components, num_components};
pub use face::Face;
pub use halfseg::HalfSeg;
pub use hull::{convex_hull, convex_hull_ring};
pub use line::Line;
pub use point::{pt, Point};
pub use points::Points;
pub use region::Region;
pub use ring::{rect_ring, Ring};
pub use seg::{seg, Seg, SegIntersection};
pub use transform::Similarity;
