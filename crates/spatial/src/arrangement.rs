//! Planar arrangement utilities: splitting segment sets at intersections,
//! tracing face-boundary walks, and parity (even/odd) point location.
//!
//! These are the computational-geometry substrate behind the `close()`
//! operation of `region` (Sec 4.1: "algorithms constructing region values
//! generally compute the list of halfsegments and then call a *close*
//! operation ... which determines the structure of faces and cycles") and
//! behind the boolean set operations of the ROSE-style algebra.
//!
//! The splitting step uses pairwise intersection tests (O(n²)), which is
//! simple and robust; a Bentley–Ottmann sweep would only change the
//! constant for the workloads exercised here and is deliberately avoided
//! (see DESIGN.md).

use crate::point::{cross, Point};
use crate::seg::{Seg, SegIntersection};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// A segment tagged with a bit mask of the inputs it belongs to
/// (bit 0 = first operand, bit 1 = second operand, ...).
pub type MaskedSeg = (Seg, u8);

/// Split all segments at their mutual intersection points and at points
/// where an end point of one segment lies in the interior of another.
/// Collinear overlaps are fragmented; coincident fragments are merged by
/// OR-ing their masks. The result is *interior-disjoint*: two distinct
/// output segments share at most end points.
pub fn split_segments(inputs: &[MaskedSeg]) -> Vec<MaskedSeg> {
    let n = inputs.len();
    // Cut points per segment, as points on the segment.
    let mut cuts: Vec<Vec<Point>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, ..) = inputs[i];
            let (b, ..) = inputs[j];
            match a.intersection(&b) {
                SegIntersection::Disjoint => {}
                SegIntersection::Crossing(p) => {
                    if !a.has_endpoint(p) {
                        cuts[i].push(p);
                    }
                    if !b.has_endpoint(p) {
                        cuts[j].push(p);
                    }
                }
                SegIntersection::Overlap(o) => {
                    for p in [o.u(), o.v()] {
                        if !a.has_endpoint(p) {
                            cuts[i].push(p);
                        }
                        if !b.has_endpoint(p) {
                            cuts[j].push(p);
                        }
                    }
                }
            }
        }
    }
    // Split each segment at its cut points and merge coincident pieces.
    let mut merged: BTreeMap<Seg, u8> = BTreeMap::new();
    for (idx, (s, mask)) in inputs.iter().enumerate() {
        let mut pts = Vec::with_capacity(cuts[idx].len() + 2);
        pts.push(s.u());
        pts.extend(cuts[idx].iter().copied());
        pts.push(s.v());
        pts.sort();
        pts.dedup();
        for w in pts.windows(2) {
            if let Some(piece) = Seg::try_from_unordered(w[0], w[1]) {
                *merged.entry(piece).or_insert(0) |= mask;
            }
        }
    }
    merged.into_iter().collect()
}

/// A closed face-boundary walk: the vertex sequence of a directed cycle
/// traced so that the bounded face it borders lies on its *left*.
#[derive(Clone, Debug, PartialEq)]
pub struct Walk {
    /// Vertices in order (implicitly closed).
    pub points: Vec<Point>,
}

impl Walk {
    /// Shoelace signed area (positive = counter-clockwise).
    pub fn signed_area(&self) -> f64 {
        let n = self.points.len();
        let mut sum = 0.0;
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            sum += a.x.get() * b.y.get() - b.x.get() * a.y.get();
        }
        sum / 2.0
    }

    /// A representative point in the face to the left of this walk,
    /// `eps` away from the midpoint of its longest edge.
    pub fn left_sample(&self, eps: f64) -> Point {
        let n = self.points.len();
        let mut best = (0usize, -1.0f64);
        for i in 0..n {
            let a = self.points[i];
            let b = self.points[(i + 1) % n];
            let len = a.distance(b).get();
            if len > best.1 {
                best = (i, len);
            }
        }
        let a = self.points[best.0];
        let b = self.points[(best.0 + 1) % n];
        let m = a.midpoint(b);
        let len = a.distance(b).get();
        let d = b - a;
        // Left normal of direction (dx, dy) is (-dy, dx).
        Point::from_f64(
            m.x.get() - d.y.get() / len * eps,
            m.y.get() + d.x.get() / len * eps,
        )
    }
}

/// Angular order of direction vectors, counter-clockwise from +x.
fn cmp_dir(a: Point, b: Point) -> Ordering {
    let half = |d: Point| -> u8 {
        if d.y.get() > 0.0 || (d.y.get() == 0.0 && d.x.get() > 0.0) {
            0
        } else {
            1
        }
    };
    half(a).cmp(&half(b)).then_with(|| {
        let c = cross(Point::ORIGIN, a, b).get();
        if c > 0.0 {
            Ordering::Less
        } else if c < 0.0 {
            Ordering::Greater
        } else {
            Ordering::Equal
        }
    })
}

/// Trace all face-boundary walks of an interior-disjoint segment set.
///
/// Every segment yields two directed edges; each directed edge belongs to
/// exactly one walk. The successor of directed edge `(u → v)` is the edge
/// `(v → w)` that is the clockwise-next direction after the reverse
/// direction `(v → u)` in the rotation at `v` — the classic DCEL rule
/// that traces each face with its interior on the left.
pub fn trace_walks(segs: &[Seg]) -> Vec<Walk> {
    // Integer-id vertex table: ids are assigned in sorted point order.
    let mut id_of: BTreeMap<Point, usize> = BTreeMap::new();
    for s in segs {
        let n = id_of.len();
        id_of.entry(s.u()).or_insert(n);
        let n = id_of.len();
        id_of.entry(s.v()).or_insert(n);
    }
    let mut pts: Vec<Point> = vec![Point::ORIGIN; id_of.len()];
    for (p, &i) in &id_of {
        pts[i] = *p;
    }
    // Adjacency lists, sorted counter-clockwise around each vertex.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); pts.len()];
    for s in segs {
        let (a, b) = (id_of[&s.u()], id_of[&s.v()]);
        adj[a].push(b);
        adj[b].push(a);
    }
    for (v, outs) in adj.iter_mut().enumerate() {
        let origin = pts[v];
        outs.sort_by(|&a, &b| cmp_dir(pts[a] - origin, pts[b] - origin));
    }
    // A directed edge is (vertex, slot): the slot-th outgoing edge.
    let mut used: Vec<Vec<bool>> = adj.iter().map(|o| vec![false; o.len()]).collect();
    let mut walks = Vec::new();
    for v0 in 0..pts.len() {
        for s0 in 0..adj[v0].len() {
            if used[v0][s0] {
                continue;
            }
            let mut walk_pts = Vec::new();
            let (mut v, mut slot) = (v0, s0);
            loop {
                used[v][slot] = true;
                walk_pts.push(pts[v]);
                let w = adj[v][slot];
                // Successor rule (face interior on the left): at w, find
                // the reverse edge back to v and take the previous entry
                // in ccw order (= clockwise-next).
                let j = adj[w]
                    .iter()
                    .position(|&x| x == v)
                    .expect("reverse edge must be registered");
                let next_slot = (j + adj[w].len() - 1) % adj[w].len();
                v = w;
                slot = next_slot;
                if v == v0 && slot == s0 {
                    break;
                }
            }
            walks.push(Walk { points: walk_pts });
        }
    }
    walks
}

/// Even/odd point location against a segment soup: `true` if `p` lies in
/// a region whose boundary is `segs` (strictly — callers must handle
/// on-boundary points themselves). Casts an upward ray and counts
/// crossings with the half-open x-range rule so shared vertices are not
/// double counted.
pub fn parity_inside(segs: &[Seg], p: Point) -> bool {
    let mut crossings = 0usize;
    for s in segs {
        let (a, b) = (s.u(), s.v());
        if a.x == b.x {
            continue; // vertical segments never cross an upward ray properly
        }
        // Half-open rule: count iff a.x <= p.x < b.x (u < v lexicographic
        // guarantees a.x <= b.x).
        if a.x <= p.x && p.x < b.x {
            let t = (p.x - a.x).get() / (b.x - a.x).get();
            let y = a.y.get() + t * (b.y - a.y).get();
            if y > p.y.get() {
                crossings += 1;
            }
        }
    }
    crossings % 2 == 1
}

/// `true` if `p` lies on any segment of the soup.
pub fn on_any_segment(segs: &[Seg], p: Point) -> bool {
    segs.iter().any(|s| s.contains_point(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::pt;
    use crate::seg::seg;

    #[test]
    fn split_crossing_segments() {
        let out = split_segments(&[(seg(0.0, 0.0, 2.0, 2.0), 1), (seg(0.0, 2.0, 2.0, 0.0), 2)]);
        assert_eq!(out.len(), 4);
        for (s, _) in &out {
            assert!(s.has_endpoint(pt(1.0, 1.0)));
        }
    }

    #[test]
    fn split_touch() {
        // Endpoint of one segment interior to another.
        let out = split_segments(&[(seg(0.0, 0.0, 4.0, 0.0), 1), (seg(2.0, 0.0, 2.0, 2.0), 2)]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn split_overlap_merges_masks() {
        let out = split_segments(&[(seg(0.0, 0.0, 3.0, 0.0), 1), (seg(1.0, 0.0, 4.0, 0.0), 2)]);
        // Fragments: [0,1] mask 1, [1,3] mask 3, [3,4] mask 2.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], (seg(0.0, 0.0, 1.0, 0.0), 1));
        assert_eq!(out[1], (seg(1.0, 0.0, 3.0, 0.0), 3));
        assert_eq!(out[2], (seg(3.0, 0.0, 4.0, 0.0), 2));
    }

    #[test]
    fn split_no_intersections_is_identity() {
        let input = vec![(seg(0.0, 0.0, 1.0, 0.0), 1), (seg(0.0, 1.0, 1.0, 1.0), 2)];
        let out = split_segments(&input);
        assert_eq!(out.len(), 2);
    }

    fn square_segs() -> Vec<Seg> {
        vec![
            seg(0.0, 0.0, 2.0, 0.0),
            seg(2.0, 0.0, 2.0, 2.0),
            seg(0.0, 2.0, 2.0, 2.0),
            seg(0.0, 0.0, 0.0, 2.0),
        ]
    }

    #[test]
    fn trace_square_gives_two_walks() {
        let walks = trace_walks(&square_segs());
        assert_eq!(walks.len(), 2);
        let mut areas: Vec<f64> = walks.iter().map(|w| w.signed_area()).collect();
        areas.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(areas, vec![-4.0, 4.0]);
    }

    #[test]
    fn trace_annulus_gives_four_walks() {
        let mut segs = square_segs();
        segs.extend([
            seg(0.5, 0.5, 1.5, 0.5),
            seg(1.5, 0.5, 1.5, 1.5),
            seg(0.5, 1.5, 1.5, 1.5),
            seg(0.5, 0.5, 0.5, 1.5),
        ]);
        let walks = trace_walks(&segs);
        assert_eq!(walks.len(), 4);
        let mut areas: Vec<f64> = walks.iter().map(|w| w.signed_area()).collect();
        areas.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(areas, vec![-4.0, -1.0, 1.0, 4.0]);
    }

    #[test]
    fn left_sample_of_ccw_square_is_inside() {
        let walks = trace_walks(&square_segs());
        let ccw = walks.iter().find(|w| w.signed_area() > 0.0).unwrap();
        let p = ccw.left_sample(1e-6);
        assert!(parity_inside(&square_segs(), p));
        let cw = walks.iter().find(|w| w.signed_area() < 0.0).unwrap();
        let q = cw.left_sample(1e-6);
        assert!(!parity_inside(&square_segs(), q));
    }

    #[test]
    fn parity_point_location() {
        let segs = square_segs();
        assert!(parity_inside(&segs, pt(1.0, 1.0)));
        assert!(!parity_inside(&segs, pt(3.0, 1.0)));
        assert!(!parity_inside(&segs, pt(-1.0, 1.0)));
        assert!(on_any_segment(&segs, pt(1.0, 0.0)));
        assert!(!on_any_segment(&segs, pt(1.0, 1.0)));
    }

    #[test]
    fn parity_with_hole() {
        let mut segs = square_segs();
        segs.extend([
            seg(0.5, 0.5, 1.5, 0.5),
            seg(1.5, 0.5, 1.5, 1.5),
            seg(0.5, 1.5, 1.5, 1.5),
            seg(0.5, 0.5, 0.5, 1.5),
        ]);
        assert!(!parity_inside(&segs, pt(1.0, 1.0))); // inside the hole
        assert!(parity_inside(&segs, pt(0.25, 1.0))); // in the annulus
    }

    #[test]
    fn degree_four_vertex_splits_walks() {
        // Two triangles sharing the vertex (1,0): a pinch point. The walk
        // tracing must produce two separate interior walks.
        let segs = vec![
            seg(0.0, 0.0, 1.0, 0.0),
            seg(0.0, 0.0, 0.5, 1.0),
            seg(0.5, 1.0, 1.0, 0.0),
            seg(1.0, 0.0, 2.0, 0.0),
            seg(1.0, 0.0, 1.5, 1.0),
            seg(1.5, 1.0, 2.0, 0.0),
        ];
        let walks = trace_walks(&segs);
        let pos: Vec<&Walk> = walks.iter().filter(|w| w.signed_area() > 0.0).collect();
        assert_eq!(pos.len(), 2);
        for w in pos {
            assert_eq!(w.points.len(), 3);
        }
    }
}
