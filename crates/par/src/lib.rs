//! # `mob-par` — a scoped worker pool (std + `mob-obs` only)
//!
//! The paper's motivating queries are *set-at-a-time* ("where were all
//! taxis at 8:00?", Sec 2): the natural unit of execution is the
//! relation scan, not the single tuple. This crate supplies the one
//! piece of machinery that makes those scans parallel without adding
//! any external dependency or any `unsafe`:
//!
//! * [`Pool`] — a scoped worker pool over [`std::thread::scope`],
//!   honoring the `MOB_THREADS` environment variable and falling back
//!   to plain sequential execution at one thread;
//! * [`Pool::chunked_map`] / [`Pool::chunked_for_each`] — split a slice
//!   into contiguous chunks, process chunks on the workers (dynamic
//!   chunk stealing over an atomic cursor), and reassemble results **in
//!   input order**;
//! * [`Pool::try_chunked_map_cancel`] + [`CancelToken`] — the same
//!   dispatch with cooperative cancellation at chunk boundaries, for
//!   deadline-bounded scans: once the token fires no new chunk is
//!   claimed and the call reports how many items were actually mapped
//!   ([`Cancellable::Cancelled`]).
//!
//! # Determinism guarantee
//!
//! `chunked_map(items, f)` returns exactly
//! `items.iter().map(f).collect()` — element `i` of the output is
//! `f(&items[i])`, for every thread count. Chunks are contiguous and
//! results are stitched back together by chunk index, so scheduling
//! order never leaks into the output. The parallel relation operators
//! in `mob-rel` (and the determinism proptests behind them) rely on
//! this.
//!
//! # Observability
//!
//! The pool reports into `mob-obs`: `par.items` / `par.chunks` count
//! the work dispatched (and `par.panics` the contained worker panics),
//! each parallel dispatch is timed under a `par.chunked_map` span
//! (`chunked_for_each` delegates to the map path), and every worker
//! drains its thread-local span shard when its slice of work ends. The
//! coordinator merges the shards **in worker-index order**
//! ([`mob_obs::merge_shards`]) and replays them on its own thread
//! ([`mob_obs::record_stats`]), so span *counts* aggregated from the
//! workers are as deterministic as the results — only wall times (and
//! the `par.*` scheduling metrics themselves) vary run to run. At one
//! thread (the inline path) no worker is spawned and nothing is
//! drained: spans stay on the caller's shard, exactly as if the kernel
//! had been called directly.

//! # Panic containment
//!
//! A panicking per-item closure does **not** bring the process (or the
//! sibling workers) down: every chunk runs under
//! [`std::panic::catch_unwind`], the pool drains the remaining chunks,
//! and [`Pool::try_chunked_map`] / [`Pool::try_chunked_for_each`]
//! resurface a single structured [`PoolError`] naming the lowest
//! panicking chunk. The infallible [`Pool::chunked_map`] /
//! [`Pool::chunked_for_each`] re-panic with that message on the
//! *caller's* thread — never a cross-thread join abort.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A worker closure panicked. The pool catches the unwind per chunk,
/// finishes (drains) the remaining chunks, and reports the failure with
/// the **lowest** panicking chunk index — deterministic for every
/// thread count, because every chunk is attempted regardless of where
/// the first panic lands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolError {
    /// Index of the (contiguous, input-ordered) chunk whose closure
    /// panicked. The lowest failing index is reported when several do.
    pub chunk: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker closure panicked in chunk {}: {}",
            self.chunk, self.message
        )
    }
}

impl std::error::Error for PoolError {}

/// A cooperative cancellation signal checked at **chunk boundaries**:
/// workers consult the token before claiming each chunk, never
/// mid-chunk, so a cancelled dispatch still finishes the chunks already
/// in flight and stops claiming new ones. Clones share the underlying
/// predicate.
///
/// The token is just a predicate — the pool has no notion of time.
/// Deadline-bounded scans in `mob-rel` build one over the storage
/// clock (`CancelToken::new(move || clock.now() >= deadline)`), so a
/// virtual clock cancels deterministically in tests.
#[derive(Clone)]
pub struct CancelToken {
    check: std::sync::Arc<dyn Fn() -> bool + Send + Sync>,
}

impl CancelToken {
    /// A token driven by an arbitrary predicate: `check` returns `true`
    /// once the dispatch should stop claiming chunks.
    pub fn new(check: impl Fn() -> bool + Send + Sync + 'static) -> CancelToken {
        CancelToken {
            check: std::sync::Arc::new(check),
        }
    }

    /// A token that never cancels (the infallible fast path).
    #[must_use]
    pub fn never() -> CancelToken {
        CancelToken::new(|| false)
    }

    /// Has the token fired? Workers call this before each chunk claim.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        (self.check)()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

/// The outcome of a cancellable dispatch: either every item was mapped,
/// or the token fired first and the pool stopped at a chunk boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Cancellable<V> {
    /// The token never fired; the full result is here.
    Done(V),
    /// The token fired before every chunk was claimed. Partial results
    /// are discarded; `items_done` reports how many items were actually
    /// mapped before the pool stopped, for honest progress accounting.
    Cancelled {
        /// Number of input items whose chunks completed before the
        /// cancellation took effect.
        items_done: usize,
    },
}

/// Stringify a caught panic payload (`&str` and `String` payloads keep
/// their text; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Fold the per-chunk errors gathered during a dispatch into the single
/// reported [`PoolError`] (lowest chunk index), counting them in
/// `par.panics`.
fn first_error(mut errors: Vec<PoolError>) -> Option<PoolError> {
    if errors.is_empty() {
        return None;
    }
    mob_obs::metric!("par.panics").add(errors.len() as u64);
    errors.sort_by_key(|e| e.chunk);
    errors.into_iter().next()
}

/// Environment variable overriding the worker count (`0` or unset ⇒
/// auto-detect from [`std::thread::available_parallelism`]).
pub const THREADS_ENV: &str = "MOB_THREADS";

/// The worker count [`Pool::new`] uses: `MOB_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism
/// (at least 1).
pub fn default_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => detected_threads(),
        },
        Err(_) => detected_threads(),
    }
}

fn detected_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A scoped worker pool: `threads` workers created per call via
/// [`std::thread::scope`] (no long-lived threads, no channels, no
/// `unsafe`), with dynamic chunk scheduling and deterministic result
/// ordering.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool honoring `MOB_THREADS` (see [`default_threads`]).
    pub fn new() -> Pool {
        Pool::with_threads(default_threads())
    }

    /// A pool with an explicit worker count (clamped to ≥ 1). One
    /// thread means strictly sequential execution on the caller's
    /// thread — no worker is ever spawned.
    pub fn with_threads(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `items` in parallel, preserving input order in the
    /// result (see the crate-level determinism guarantee).
    ///
    /// The slice is split into contiguous chunks (a few per worker for
    /// load balancing); workers claim chunks through an atomic cursor
    /// and the per-chunk results are reassembled by chunk index.
    pub fn chunked_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.try_chunked_map(items, f) {
            Ok(out) => out,
            // Re-panic on the caller's thread with the contained,
            // structured message — never a scoped-join abort.
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Pool::chunked_map`] with **panic containment**: a panicking
    /// closure yields `Err(`[`PoolError`]`)` naming the lowest
    /// panicking chunk instead of unwinding through the pool. All
    /// remaining chunks are still attempted (work is drained, sibling
    /// workers are undisturbed), so the reported chunk is deterministic
    /// for every thread count.
    pub fn try_chunked_map<T, R, F>(&self, items: &[T], f: F) -> Result<Vec<R>, PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.try_chunked_map_cancel(items, &CancelToken::never(), f)? {
            Cancellable::Done(out) => Ok(out),
            // Unreachable: `never()` cannot fire. Return the empty
            // mapping rather than panicking in the containment path.
            Cancellable::Cancelled { .. } => Ok(Vec::new()),
        }
    }

    /// [`Pool::try_chunked_map`] with **cooperative cancellation**: the
    /// `cancel` token is consulted before every chunk claim (in both
    /// the sequential and the scoped-threads path). Once it fires, no
    /// new chunk starts; chunks already in flight finish, their results
    /// are discarded, and the call reports
    /// [`Cancellable::Cancelled`]`{ items_done }` — the number of items
    /// actually mapped — instead of a complete result. Panics still
    /// take precedence and surface as [`PoolError`].
    pub fn try_chunked_map_cancel<T, R, F>(
        &self,
        items: &[T],
        cancel: &CancelToken,
        f: F,
    ) -> Result<Cancellable<Vec<R>>, PoolError>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads.min(items.len()).max(1);
        mob_obs::metric!("par.items").add(items.len() as u64);
        // A few chunks per worker so a slow chunk does not serialize the
        // tail; chunks stay contiguous so output order is trivial to
        // restore.
        let chunk_size = chunk_size_for(items.len(), workers);
        if workers == 1 {
            // Inline path: spans land on the caller's own shard — do
            // not drain it, the caller (or an outer EXPLAIN capture)
            // owns it.
            let mut out = Vec::with_capacity(items.len());
            let mut errors = Vec::new();
            let mut n_chunks = 0u64;
            let mut stopped = false;
            for (k, chunk) in items.chunks(chunk_size).enumerate() {
                if cancel.is_cancelled() {
                    stopped = true;
                    break;
                }
                n_chunks += 1;
                match catch_unwind(AssertUnwindSafe(|| {
                    chunk.iter().map(&f).collect::<Vec<R>>()
                })) {
                    Ok(mut part) => out.append(&mut part),
                    Err(payload) => errors.push(PoolError {
                        chunk: k,
                        message: panic_message(payload.as_ref()),
                    }),
                }
            }
            mob_obs::metric!("par.chunks").add(n_chunks);
            if let Some(e) = first_error(errors) {
                return Err(e);
            }
            if stopped {
                return Ok(Cancellable::Cancelled {
                    items_done: out.len(),
                });
            }
            return Ok(Cancellable::Done(out));
        }
        let _span = mob_obs::span("par.chunked_map");
        let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
        mob_obs::metric!("par.chunks").add(chunks.len() as u64);
        let cursor = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(chunks.len()));
        let errors: Mutex<Vec<PoolError>> = Mutex::new(Vec::new());
        let obs = mob_obs::enabled();
        let shards: Mutex<Vec<(usize, Vec<mob_obs::SpanStat>)>> =
            Mutex::new(Vec::with_capacity(workers));
        std::thread::scope(|scope| {
            let (chunks, cursor, done, errors, shards, f, cancel) =
                (&chunks, &cursor, &done, &errors, &shards, &f, cancel);
            for w in 0..workers {
                scope.spawn(move || {
                    loop {
                        // Cooperative stop: consult the token before
                        // claiming — a chunk already claimed finishes.
                        if cancel.is_cancelled() {
                            break;
                        }
                        // AcqRel: the Release half publishes this worker's
                        // claim before it touches chunk k; the Acquire half
                        // pairs with the other workers' claims so no two
                        // workers ever observe the same k.
                        let k = cursor.fetch_add(1, Ordering::AcqRel);
                        let Some(chunk) = chunks.get(k) else { break };
                        match catch_unwind(AssertUnwindSafe(|| {
                            chunk.iter().map(f).collect::<Vec<R>>()
                        })) {
                            Ok(mapped) => {
                                if let Ok(mut d) = done.lock() {
                                    d.push((k, mapped));
                                }
                            }
                            Err(payload) => {
                                if let Ok(mut e) = errors.lock() {
                                    e.push(PoolError {
                                        chunk: k,
                                        message: panic_message(payload.as_ref()),
                                    });
                                }
                            }
                        }
                    }
                    if obs {
                        if let Ok(mut s) = shards.lock() {
                            s.push((w, mob_obs::take_thread_shard()));
                        }
                    }
                });
            }
        });
        if obs {
            merge_worker_shards(shards);
        }
        let gathered = match errors.into_inner() {
            Ok(e) => e,
            Err(poison) => poison.into_inner(),
        };
        if let Some(e) = first_error(gathered) {
            return Err(e);
        }
        let mut parts = match done.into_inner() {
            Ok(p) => p,
            Err(poison) => poison.into_inner(),
        };
        // No chunk panicked (checked above), so a shortfall in completed
        // chunks can only mean the token stopped the claim loop early.
        if parts.len() < chunks.len() {
            let items_done = parts.iter().map(|(_, part)| part.len()).sum();
            return Ok(Cancellable::Cancelled { items_done });
        }
        parts.sort_by_key(|(k, _)| *k);
        let mut out = Vec::with_capacity(items.len());
        for (_, mut part) in parts.drain(..) {
            out.append(&mut part);
        }
        debug_assert_eq!(out.len(), items.len(), "every chunk must be mapped");
        Ok(Cancellable::Done(out))
    }

    /// Run `f` on every item, in parallel, for its side effects only
    /// (counters, logging). Iteration order *within* a chunk is the
    /// input order; chunk scheduling across workers is unspecified.
    pub fn chunked_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        if let Err(e) = self.try_chunked_for_each(items, f) {
            panic!("{e}");
        }
    }

    /// [`Pool::chunked_for_each`] with panic containment (see
    /// [`Pool::try_chunked_map`]): side effects of chunks scheduled
    /// after a panic still run, the panic surfaces once as a
    /// [`PoolError`].
    pub fn try_chunked_for_each<T, F>(&self, items: &[T], f: F) -> Result<(), PoolError>
    where
        T: Sync,
        F: Fn(&T) + Sync,
    {
        self.try_chunked_map(items, |item| {
            f(item);
        })
        .map(|_| ())
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::new()
    }
}

/// Contiguous chunk size: aim for ~4 chunks per worker, at least 1
/// element each.
fn chunk_size_for(len: usize, workers: usize) -> usize {
    len.div_ceil(workers.saturating_mul(4).max(1)).max(1)
}

/// Merge the drained worker shards **in worker-index order** and replay
/// the merged span totals on the coordinator's thread — the
/// determinism half of the `mob-obs` contract (span counts independent
/// of scheduling; see the crate docs).
fn merge_worker_shards(shards: Mutex<Vec<(usize, Vec<mob_obs::SpanStat>)>>) {
    let mut per_worker = match shards.into_inner() {
        Ok(s) => s,
        Err(poison) => poison.into_inner(),
    };
    per_worker.sort_by_key(|(w, _)| *w);
    let merged = mob_obs::merge_shards(per_worker.into_iter().map(|(_, shard)| shard));
    mob_obs::record_stats(&merged);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1usize, 2, 3, 4, 7, 16, 1000, 2000] {
            let pool = Pool::with_threads(threads);
            assert_eq!(pool.chunked_map(&items, |x| x * 3 + 1), expect, "{threads}");
        }
    }

    #[test]
    fn map_handles_edge_sizes() {
        let pool = Pool::with_threads(4);
        assert!(pool.chunked_map(&[] as &[u32], |x| *x).is_empty());
        assert_eq!(pool.chunked_map(&[7u32], |x| x + 1), vec![8]);
        assert_eq!(pool.chunked_map(&[1u32, 2], |x| x * 10), vec![10, 20]);
    }

    #[test]
    fn for_each_visits_every_item_once() {
        let items: Vec<u64> = (1..=500).collect();
        for threads in [1usize, 3, 8] {
            let sum = AtomicU64::new(0);
            Pool::with_threads(threads).chunked_for_each(&items, |x| {
                sum.fetch_add(*x, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 500 * 501 / 2, "{threads}");
        }
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(Pool::with_threads(0).threads(), 1);
        assert_eq!(Pool::with_threads(5).threads(), 5);
        assert!(Pool::new().threads() >= 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn chunk_sizing_covers_the_slice() {
        for len in [1usize, 2, 7, 64, 1001] {
            for workers in [1usize, 2, 8] {
                let cs = chunk_size_for(len, workers);
                assert!(cs >= 1);
                assert!(cs * len.div_ceil(cs) >= len);
            }
        }
    }

    #[test]
    fn panicking_closure_is_contained_at_one_and_four_threads() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1usize, 4] {
            let pool = Pool::with_threads(threads);
            let err = pool
                .try_chunked_map(&items, |&x| {
                    assert!(x != 37, "boom at {x}");
                    x * 2
                })
                .unwrap_err();
            assert!(err.message.contains("boom at 37"), "{threads}: {err}");
            let cs = chunk_size_for(items.len(), threads.min(items.len()));
            assert_eq!(err.chunk, 37 / cs, "{threads} threads");
            assert!(err.to_string().contains("chunk"), "{err}");
            // The pool survives: the very next dispatch is clean.
            let ok = pool.try_chunked_map(&items, |&x| x + 1).unwrap();
            assert_eq!(ok, (1..=100).collect::<Vec<u64>>(), "{threads} threads");
        }
    }

    #[test]
    fn lowest_panicking_chunk_wins_deterministically() {
        // Many panicking items: every chunk is attempted (remaining
        // work drains), so the reported chunk is the lowest failing one
        // for every thread count — and identical across repeats.
        let items: Vec<u64> = (0..200).collect();
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::with_threads(threads);
            for _ in 0..3 {
                let err = pool
                    .try_chunked_map(&items, |&x| {
                        assert!(x % 10 != 3, "p{x}");
                        x
                    })
                    .unwrap_err();
                let cs = chunk_size_for(items.len(), threads.min(items.len()));
                assert_eq!(err.chunk, 3 / cs, "{threads} threads");
                assert!(err.message.contains("p3"), "{threads}: {err}");
            }
        }
    }

    #[test]
    fn for_each_contains_panics_too() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1usize, 4] {
            let hits = AtomicU64::new(0);
            let err = Pool::with_threads(threads)
                .try_chunked_for_each(&items, |&x| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    assert!(x != 0, "first item explodes");
                })
                .unwrap_err();
            assert_eq!(err.chunk, 0, "{threads} threads");
            // Work drained: everything before the panic in chunk 0 plus
            // all other chunks still ran.
            let cs = chunk_size_for(items.len(), threads.min(items.len())) as u64;
            assert_eq!(
                hits.load(Ordering::Relaxed),
                64 - cs + 1,
                "{threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "worker closure panicked in chunk")]
    fn infallible_map_repanics_on_the_caller_thread() {
        let items: Vec<u64> = (0..32).collect();
        Pool::with_threads(4).chunked_map(&items, |&x| {
            assert!(x != 5, "contained");
            x
        });
    }

    #[test]
    fn never_token_completes_and_matches_plain_map() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1usize, 4] {
            let pool = Pool::with_threads(threads);
            let got = pool
                .try_chunked_map_cancel(&items, &CancelToken::never(), |x| x * 2)
                .unwrap();
            let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
            assert_eq!(got, Cancellable::Done(expect), "{threads} threads");
        }
    }

    #[test]
    fn pre_fired_token_maps_nothing() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1usize, 4] {
            let calls = AtomicU64::new(0);
            let got = Pool::with_threads(threads)
                .try_chunked_map_cancel(&items, &CancelToken::new(|| true), |x| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    *x
                })
                .unwrap();
            assert_eq!(got, Cancellable::Cancelled { items_done: 0 }, "{threads}");
            assert_eq!(calls.load(Ordering::Relaxed), 0, "{threads} threads");
        }
    }

    #[test]
    fn cancellation_stops_at_the_next_chunk_boundary() {
        // The closure trips the flag mid-chunk; the chunk in flight
        // still finishes, the next boundary check stops the dispatch.
        let items: Vec<u64> = (0..100).collect();
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let token = {
            let flag = flag.clone();
            CancelToken::new(move || flag.load(Ordering::Acquire))
        };
        let pool = Pool::with_threads(1);
        let got = pool
            .try_chunked_map_cancel(&items, &token, |&x| {
                if x == 37 {
                    flag.store(true, Ordering::Release);
                }
                x
            })
            .unwrap();
        // One worker over 100 items: chunk size 25. Item 37 sits in
        // chunk 1, which completes; chunk 2 is never claimed.
        assert_eq!(got, Cancellable::Cancelled { items_done: 50 });
        assert!(token.is_cancelled());

        // Multi-threaded: items_done is scheduling-dependent but always
        // honest — a multiple of completed chunks, never more than all.
        flag.store(false, Ordering::Release);
        match Pool::with_threads(4)
            .try_chunked_map_cancel(&items, &token, |&x| {
                if x == 0 {
                    flag.store(true, Ordering::Release);
                }
                x
            })
            .unwrap()
        {
            Cancellable::Done(out) => assert_eq!(out.len(), 100),
            Cancellable::Cancelled { items_done } => assert!(items_done <= 100),
        }
    }

    #[test]
    fn panics_take_precedence_over_cancellation() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1usize, 4] {
            let err = Pool::with_threads(threads)
                .try_chunked_map_cancel(&items, &CancelToken::new(|| false), |&x| {
                    assert!(x != 3, "early boom");
                    x
                })
                .unwrap_err();
            assert!(err.message.contains("early boom"), "{threads}: {err}");
        }
    }

    #[test]
    fn results_are_not_affected_by_uneven_work() {
        // Heavier work at the front must not reorder results.
        let items: Vec<u64> = (0..257).collect();
        let pool = Pool::with_threads(4);
        let got = pool.chunked_map(&items, |&x| {
            let spin = if x < 8 { 20_000 } else { 10 };
            let mut acc = x;
            for k in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            std::hint::black_box(acc);
            x
        });
        assert_eq!(got, items);
    }
}
