//! Offline drop-in shim for the subset of the [`proptest`] crate API used
//! by this workspace's property tests.
//!
//! The build container has no registry access, so the real `proptest`
//! cannot be vendored. This shim keeps the test *source* unchanged:
//! [`Strategy`] with `prop_map`, tuple/range strategies, `any::<bool>()`,
//! [`collection::vec`], the [`proptest!`] macro (including
//! `#![proptest_config(...)]`) and the `prop_assert*` macros.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with the generated inputs still visible in the assertion message), and
//! generation is a fixed deterministic stream per test body — every run
//! explores the same cases, which makes failures reproducible by
//! construction.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The deterministic generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A fresh deterministic stream (same for every run).
    pub fn deterministic() -> TestRng {
        TestRng(StdRng::seed_from_u64(0x5EED_CAFE_F00D_0001))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.gen_range(0.0f64..1.0)
    }
}

/// A value generator (shim of `proptest::strategy::Strategy`).
///
/// No shrinking: `generate` produces one value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (shim of `Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, retrying generation (shim of
    /// `Strategy::prop_filter`; gives up after 1000 rejections).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, pred }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: rejected 1000 consecutive candidates");
    }
}

/// A strategy yielding one fixed value (shim of `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical whole-domain strategy (shim of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for a whole primitive domain.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_any {
    ($ty:ty, $gen:expr) => {
        impl Arbitrary for $ty {
            type Strategy = AnyStrategy<$ty>;
            fn arbitrary() -> AnyStrategy<$ty> {
                AnyStrategy(std::marker::PhantomData)
            }
        }
        impl Strategy for AnyStrategy<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let f: fn(&mut TestRng) -> $ty = $gen;
                f(rng)
            }
        }
    };
}

impl_any!(bool, |rng| rng.next_u64() & 1 == 1);
impl_any!(u8, |rng| rng.next_u64() as u8);
impl_any!(u32, |rng| rng.next_u64() as u32);
impl_any!(u64, |rng| rng.next_u64());
impl_any!(i32, |rng| rng.next_u64() as i32);
impl_any!(i64, |rng| rng.next_u64() as i64);
impl_any!(usize, |rng| rng.next_u64() as usize);

/// The canonical strategy for `T` (shim of `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Per-block configuration (shim of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // The real crate defaults to 256; the shim trades a little
        // coverage for tier-1 wall-clock.
        ProptestConfig { cases: 128 }
    }
}

/// Collection strategies (shim of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(strategy, min..max)` — a vector of `strategy` values (shim of
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec strategy: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import (shim of `proptest::prelude`).
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a property body (shim of `prop_assert!`; panics instead
/// of returning a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when an assumption fails (shim of
/// `prop_assume!`; the shim simply moves on to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// The `proptest! { ... }` block macro: runs each contained `#[test]`
/// function over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must come first so the catch-all below
    // cannot re-capture an `@with_config` invocation (infinite recursion).
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[allow(unused_mut)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                // Build each strategy once; generate per case.
                $(let $arg = $strat;)+
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)+
                    $body
                }
            }
        )*
    };
    // With a leading #![proptest_config(..)] attribute.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    // Without: use the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_domain() {
        let mut rng = TestRng::deterministic();
        let s = (0i32..10, -5i64..5, any::<bool>()).prop_map(|(a, b, c)| (a * 2, b, c));
        for _ in 0..200 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!((0..20).contains(&a) && a % 2 == 0);
            assert!((-5..5).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = TestRng::deterministic();
        let s = crate::collection::vec(0u64..3, 2..8);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies to the body.
        #[test]
        fn macro_runs_cases(a in 0i32..100, b in 0i32..100) {
            prop_assert!(a + b <= 198);
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        #[test]
        fn default_config_used(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
