//! Property: **index pruning never changes answers.**
//!
//! For randomized fleets and randomized probes, `snapshot_at`,
//! `filter_inside` and `passes` must return byte-identical relations
//! with the index off ([`IndexPolicy::Off`], the reference full scan)
//! and forced on ([`IndexPolicy::Force`]) — on the in-memory backend,
//! on the storage backend, with quarantined tuples under
//! [`OnError::SkipAndRecord`], and across worker-pool widths 1 and 4.

use mob_base::{t, Interval};
use mob_core::MovingPoint;
use mob_rel::queries::planes_relation;
use mob_rel::{
    catalog::save_relation, AttrType, AttrValue, IndexPolicy, OnError, Relation, ScanOpts, Tuple,
};
use mob_spatial::{pt, rect_ring, Region};
use mob_storage::PageStore;
use proptest::prelude::*;
use std::sync::Arc;

/// One tuple spec: origin and leg count; trajectory is derived
/// deterministically so the two backends hold identical fleets.
type Spec = (f64, f64, usize);

fn fleet(specs: &[Spec]) -> Relation {
    planes_relation(
        specs
            .iter()
            .enumerate()
            .map(|(k, &(x0, y0, legs))| {
                let dx = (k % 5) as f64 - 2.0;
                let samples: Vec<_> = (0..=legs)
                    .map(|i| {
                        let i = i as f64;
                        (t(i * 2.0), pt(x0 + i * dx, y0 + i * 1.5))
                    })
                    .collect();
                (
                    format!("A{}", k % 3),
                    format!("F{k}"),
                    MovingPoint::from_samples(&samples),
                )
            })
            .collect(),
    )
}

/// Replace tuple `q`'s moving point with a quarantine placeholder (what
/// a degraded open of a damaged store produces).
fn quarantine_tuple(rel: &Relation, q: usize) -> Relation {
    let mut out = Relation::new(rel.schema().clone());
    for (i, tup) in rel.tuples().iter().enumerate() {
        let values = tup
            .values()
            .iter()
            .map(|v| {
                if i == q && v.attr_type() == AttrType::MPoint {
                    AttrValue::Quarantined {
                        ty: AttrType::MPoint,
                        detail: "blob quarantined (test)".into(),
                    }
                } else {
                    v.clone()
                }
            })
            .collect();
        out.insert(Tuple::new(values)).unwrap();
    }
    out
}

/// Assert full-scan ≡ pruned-scan for all three operators over one
/// relation (which must carry an index), at both pool widths.
fn assert_equivalent(
    rel: &Relation,
    probe_t: f64,
    zone: &Region,
    w0: f64,
    w1: f64,
    policy: OnError,
) {
    assert!(rel.has_index(), "test premise: index attached");
    let window = Interval::closed(t(w0), t(w1));
    for threads in [1usize, 4] {
        let full = ScanOpts::new()
            .threads(threads)
            .stats(true)
            .on_error(policy)
            .index(IndexPolicy::Off);
        let pruned = full.clone().index(IndexPolicy::Force);

        let a = rel.snapshot_at(t(probe_t), &full);
        let b = rel.snapshot_at(t(probe_t), &pruned);
        match (a, b) {
            (Ok((ra, sa)), Ok((rb, sb))) => {
                assert_eq!(ra, rb, "snapshot_at, {threads} threads");
                let (sa, sb) = (sa.unwrap(), sb.unwrap());
                assert_eq!(sa.tuples_quarantined, sb.tuples_quarantined);
                assert_eq!(sb.index_fallbacks, 0, "usable index must not fall back");
                assert!(sb.candidates.unwrap() <= rel.len());
            }
            (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
            (a, b) => panic!("snapshot_at diverged: {a:?} vs {b:?}"),
        }

        let a = rel.filter_inside("flight", zone, &full);
        let b = rel.filter_inside("flight", zone, &pruned);
        match (a, b) {
            (Ok((ra, _)), Ok((rb, _))) => assert_eq!(ra, rb, "filter_inside, {threads} threads"),
            (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
            (a, b) => panic!("filter_inside diverged: {a:?} vs {b:?}"),
        }

        let a = rel.passes("flight", zone, &window, &full);
        let b = rel.passes("flight", zone, &window, &pruned);
        match (a, b) {
            (Ok((ra, _)), Ok((rb, _))) => assert_eq!(ra, rb, "passes, {threads} threads"),
            (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
            (a, b) => panic!("passes diverged: {a:?} vs {b:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn pruning_is_invisible(
        specs in proptest::collection::vec((0.0f64..40.0, 0.0f64..40.0, 2usize..8), 2..14),
        probe_t in 0.0f64..20.0,
        zone_x in 0.0f64..35.0,
        zone_y in 0.0f64..35.0,
        zone_w in 1.0f64..12.0,
        w0 in 0.0f64..10.0,
        dw in 0.5f64..8.0,
        qpick in 0usize..64,
    ) {
        let zone = Region::from_ring(rect_ring(zone_x, zone_y, zone_x + zone_w, zone_y + zone_w));

        // In-memory backend, freshly built index.
        let mut mem = fleet(&specs);
        mem.build_index("flight").unwrap();
        assert_equivalent(&mem, probe_t, &zone, w0, w0 + dw, OnError::Fail);

        // Storage backend: same fleet through save/open, index rebuilt
        // over the stored views.
        let mut store = PageStore::new();
        let stored = save_relation(&mem, &mut store).unwrap();
        let mut opened = Relation::from_stored(&stored, Arc::new(store), OnError::Fail).unwrap();
        opened.build_index("flight").unwrap();
        assert_equivalent(&opened, probe_t, &zone, w0, w0 + dw, OnError::Fail);

        // Quarantined tuple: equivalence must hold for both policies —
        // identical errors under Fail, identical survivors + tallies
        // under SkipAndRecord.
        let mut damaged = quarantine_tuple(&mem, qpick % specs.len());
        damaged.build_index("flight").unwrap();
        assert_equivalent(&damaged, probe_t, &zone, w0, w0 + dw, OnError::Fail);
        assert_equivalent(&damaged, probe_t, &zone, w0, w0 + dw, OnError::SkipAndRecord);
    }
}
