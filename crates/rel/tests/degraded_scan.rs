//! End-to-end graceful degradation: **bit rot → quarantine → healthy
//! answers**.
//!
//! A plane fleet is committed durably; reads then go through a
//! [`FaultyIo`] that flips bits deterministically. The acceptance
//! criterion under test: opening degraded and scanning with
//! [`OnError::SkipAndRecord`] returns exactly the healthy tuples —
//! byte-identical to a clean run — with
//! [`QueryStats::tuples_quarantined`](mob_rel::QueryStats) matching the
//! injected damage, while the default [`OnError::Fail`] refuses loudly
//! at both the open and the scan.

use mob_base::t;
use mob_core::MovingPoint;
use mob_rel::{AttrValue, OnError, OpenRelOpts, Relation, ScanOpts, Tuple};
use mob_spatial::pt;
use mob_storage::mapping_store::save_mpoint;
use mob_storage::{
    DurableStore, FaultyIo, Generation, MemIo, PageStore, Placement, RootRecord, StoreFile, StoreIo,
};

/// An independent copy of an in-memory directory. [`MemIo::clone`]
/// shares storage, and recovery *prunes* snapshots it finds damaged —
/// under read-flips a pruning open would eat the (actually healthy)
/// snapshot out from under later seeds.
fn deep_copy(dir: &MemIo) -> MemIo {
    let copy = MemIo::new();
    for (name, bytes) in dir.dump() {
        copy.write_file(&name, &bytes).expect("copy file");
    }
    copy
}

const CHUNK: usize = 128;
const FLIGHTS: usize = 6;
const LEGS: usize = 48;
const FLIPS: u32 = 6;

/// Commit a fleet of `FLIGHTS` moving points into a fresh durable
/// directory. Every unit array must land in an external blob: the
/// degradation contract quarantines *blob* damage and hard-fails
/// structural damage, and the test relies on that split.
fn committed_dir() -> MemIo {
    let mut file = StoreFile::new();
    for k in 0..FLIGHTS {
        let x0 = k as f64;
        // Zigzag so no two legs are colinear: every sample becomes its
        // own unit, keeping the unit array big enough to stay external.
        let samples: Vec<_> = (0..LEGS)
            .map(|i| (t(i as f64), pt(x0 + (i % 2) as f64, i as f64 * 0.5)))
            .collect();
        let stored = save_mpoint(&MovingPoint::from_samples(&samples), file.store_mut());
        assert!(
            !stored.units.is_inline(),
            "test premise: unit arrays live in external blobs"
        );
        file.put(format!("F{k}"), RootRecord::MPoint(stored));
    }
    let dir = MemIo::new();
    let mut store = DurableStore::options()
        .chunk_size(CHUNK)
        .open(dir.clone())
        .expect("fresh dir");
    let mut txn = store.begin();
    txn.put_store_file(&file).expect("stage fleet");
    txn.commit().expect("commit fleet");
    dir
}

/// Open options matching the fleet catalog.
fn rel_opts() -> OpenRelOpts {
    OpenRelOpts::new().name_attr("flight").mpoint_attr("trip")
}

/// The flights whose unit blob was quarantined by the degraded open.
fn damaged_flights(gen: &Generation, store: &PageStore) -> Vec<String> {
    gen.entries()
        .iter()
        .filter_map(|(name, root)| {
            let RootRecord::MPoint(m) = root else {
                panic!("fleet holds only mpoints");
            };
            match &m.units.placement {
                Placement::External(id) if store.is_quarantined(*id) => Some(name.clone()),
                _ => None,
            }
        })
        .collect()
}

#[test]
fn bit_rot_scans_skip_and_record_exactly_the_damage() {
    let dir = committed_dir();
    let probe = t(7.5);

    // Clean baseline: strict open, strict scan.
    let clean = DurableStore::options()
        .chunk_size(CHUNK)
        .open(dir.clone())
        .expect("clean open");
    let baseline = Relation::open(&clean.snapshot().expect("committed"), &rel_opts())
        .expect("clean store opens strictly");
    let (base_snap, _) = baseline
        .snapshot_at(probe, &ScanOpts::default())
        .expect("clean scan");
    assert_eq!(base_snap.len(), FLIGHTS);

    let mut opens_ok = 0u32;
    let mut seeds_with_damage = 0u32;
    for seed in 0..120u64 {
        let faulty = FaultyIo::with_read_flips(deep_copy(&dir), FLIPS, seed);
        let degraded = DurableStore::options()
            .chunk_size(CHUNK)
            .degraded(true)
            .open(faulty);
        let snap = match degraded {
            Ok(s) if s.generation() > 0 => s.snapshot().expect("store-file payload"),
            _ => {
                // The flips hit structural bytes (catalog, blob table):
                // refusing the degraded open is the correct loud outcome.
                // The strict open must not hand out a generation either —
                // it may error, or prune the seemingly-torn snapshot and
                // report an empty directory, but never serve damaged data.
                let strict = FaultyIo::with_read_flips(deep_copy(&dir), FLIPS, seed);
                let served = DurableStore::options()
                    .chunk_size(CHUNK)
                    .open(strict)
                    .is_ok_and(|s| s.generation() > 0);
                assert!(
                    !served,
                    "seed {seed}: degraded open failed but strict served a file"
                );
                continue;
            }
        };
        opens_ok += 1;
        let expected = damaged_flights(&snap, snap.store());

        let strict = Relation::open(&snap, &rel_opts());
        if expected.is_empty() {
            // Flips cancelled out or hit bytes no tuple references.
            assert!(strict.is_ok(), "seed {seed}: no damage, strict must open");
            continue;
        }
        seeds_with_damage += 1;
        assert!(
            strict.is_err(),
            "seed {seed}: quarantined blob must fail the strict open"
        );

        // Degraded open keeps every tuple, damaged values placeholdered.
        let rel = Relation::open(&snap, &rel_opts().on_error(OnError::SkipAndRecord))
            .expect("degraded open tolerates quarantined blobs");
        assert_eq!(rel.len(), FLIGHTS);
        let damaged: Vec<String> = rel
            .tuples()
            .iter()
            .filter(|tup| tup.values().iter().any(AttrValue::is_quarantined))
            .filter_map(|tup| tup.at(0).as_str().map(str::to_owned))
            .collect();
        assert_eq!(damaged, expected, "seed {seed}: quarantine accounting");

        // Fail policy at scan time: loud error naming the damage.
        assert!(
            rel.snapshot_at(probe, &ScanOpts::default()).is_err(),
            "seed {seed}: default policy must refuse a damaged scan"
        );

        // SkipAndRecord: exactly the healthy tuples, exactly counted.
        let opts = ScanOpts::new().stats(true).on_error(OnError::SkipAndRecord);
        let (snap, stats) = rel.snapshot_at(probe, &opts).expect("degraded scan");
        let stats = stats.expect("stats requested");
        assert_eq!(
            stats.tuples_quarantined,
            expected.len() as u64,
            "seed {seed}"
        );
        assert_eq!(snap.len(), FLIGHTS - expected.len(), "seed {seed}");
        let healthy: Vec<&Tuple> = base_snap
            .tuples()
            .iter()
            .filter(|tup| {
                !expected
                    .iter()
                    .any(|n| tup.at(0).as_str() == Some(n.as_str()))
            })
            .collect();
        assert_eq!(
            snap.tuples().iter().collect::<Vec<_>>(),
            healthy,
            "seed {seed}: surviving tuples must match the clean baseline"
        );
    }
    assert!(opens_ok >= 10, "only {opens_ok} degraded opens succeeded");
    assert!(
        seeds_with_damage >= 5,
        "only {seeds_with_damage} seeds quarantined a blob — campaign too weak"
    );
}
