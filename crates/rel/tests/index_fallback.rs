//! End-to-end index lifecycle over the durable store: **build → commit
//! → recover → prune**, and the degradation contract — a damaged index
//! frame costs performance (a recorded planner fallback), never
//! correctness.
//!
//! The campaign commits a fleet plus its R-tree (tag-11 root record),
//! then reopens through a [`FaultyIo`] that flips bits deterministically
//! per seed. Whatever the flips hit, pruned and full scans must return
//! identical relations; when the index blob is the casualty, attaching
//! reports failure and the next scan records `index.fallbacks = 1`.

use mob_base::{t, Interval};
use mob_core::MovingPoint;
use mob_rel::{AttrType, AttrValue, IndexPolicy, OnError, OpenRelOpts, Relation, ScanOpts, Tuple};
use mob_spatial::{pt, rect_ring, Region};
use mob_storage::{DurableStore, FaultyIo, MemIo, RootRecord, StoreFile, StoreIo};

const CHUNK: usize = 128;
const FLIGHTS: usize = 6;
const LEGS: usize = 48;
const FLIPS: u32 = 6;

/// Fresh in-memory copy of a directory (shared-storage [`MemIo::clone`]
/// would let one seed's recovery prune another's snapshot).
fn deep_copy(dir: &MemIo) -> MemIo {
    let copy = MemIo::new();
    for (name, bytes) in dir.dump() {
        copy.write_file(&name, &bytes).expect("copy file");
    }
    copy
}

/// The in-memory fleet: zigzag flights so every sample is its own unit
/// and all arrays stay external.
fn fleet() -> Relation {
    let schema =
        mob_rel::Schema::new(&[("flight", AttrType::Str), ("trip", AttrType::MPoint)]).unwrap();
    let mut rel = Relation::new(schema);
    for k in 0..FLIGHTS {
        let x0 = k as f64;
        let samples: Vec<_> = (0..LEGS)
            .map(|i| (t(i as f64), pt(x0 + (i % 2) as f64, i as f64 * 0.5)))
            .collect();
        rel.insert(Tuple::new(vec![
            AttrValue::str(&format!("F{k}")),
            AttrValue::MPoint(MovingPoint::from_samples(&samples)),
        ]))
        .unwrap();
    }
    rel
}

/// Commit the fleet *and its index* into a fresh durable directory.
fn committed_dir() -> MemIo {
    let mut rel = fleet();
    let mut file = StoreFile::new();
    for tup in rel.tuples() {
        let name = tup.at(0).as_str().unwrap().to_owned();
        let AttrValue::MPoint(m) = tup.at(1) else {
            panic!("fleet holds mpoints");
        };
        let stored = mob_storage::mapping_store::save_mpoint(m, file.store_mut());
        assert!(!stored.units.is_inline(), "unit arrays must be external");
        file.put(name, RootRecord::MPoint(stored));
    }
    rel.build_index("trip").unwrap();
    let tree = rel.index_tree().expect("just built");
    let stored_ix = mob_storage::index_store::save_index(tree, file.store_mut());
    assert!(
        !stored_ix.entries.is_inline(),
        "index entries must be external so frame damage quarantines them"
    );
    file.put("fleet/index", RootRecord::Index(stored_ix));

    let dir = MemIo::new();
    let mut store = DurableStore::options()
        .chunk_size(CHUNK)
        .open(dir.clone())
        .expect("fresh dir");
    let mut txn = store.begin();
    txn.put_store_file(&file).expect("stage fleet + index");
    txn.commit().expect("commit fleet + index");
    dir
}

/// Open options matching the fleet catalog, index attach requested.
fn rel_opts() -> OpenRelOpts {
    OpenRelOpts::new()
        .name_attr("flight")
        .mpoint_attr("trip")
        .index("fleet/index")
}

/// The selective probe: a small window around flight 2's corridor,
/// early in the timeline.
fn probe() -> (Region, Interval<mob_base::Instant>) {
    (
        Region::from_ring(rect_ring(1.6, 0.0, 2.4, 30.0)),
        Interval::closed(t(2.0), t(9.0)),
    )
}

#[test]
fn recovered_index_prunes_the_committed_fleet() {
    let dir = committed_dir();
    let store = DurableStore::options()
        .chunk_size(CHUNK)
        .open(dir)
        .expect("clean open");
    let snap = store.snapshot().expect("committed");
    let rel = Relation::open(&snap, &rel_opts()).expect("clean fleet");
    assert!(rel.has_index(), "clean index must attach");

    let (zone, window) = probe();
    let full = ScanOpts::new().stats(true).index(IndexPolicy::Off);
    let pruned = full.clone().index(IndexPolicy::Force);
    let (a, _) = rel.passes("trip", &zone, &window, &full).unwrap();
    let (b, stats) = rel.passes("trip", &zone, &window, &pruned).unwrap();
    assert_eq!(a, b, "pruning must not change the answer");
    assert_eq!(
        a.len(),
        2,
        "the zigzags of flights 1 and 2 cross the corridor"
    );
    let stats = stats.unwrap();
    assert_eq!(stats.index_fallbacks, 0);
    let cand = stats.candidates.expect("pruned path");
    assert!(cand < FLIGHTS, "candidates {cand} must beat {FLIGHTS}");
    if mob_obs::enabled() {
        let nodes = stats.metrics.get("index.nodes_visited");
        let touched = stats.metrics.get("scan.tuples_probed");
        assert!(touched <= cand as u64);
        assert!(nodes > 0, "the prune stage walked the tree");
    }
}

#[test]
fn flipped_index_frames_degrade_to_recorded_full_scans() {
    let dir = committed_dir();
    let (zone, window) = probe();
    let mut opens_ok = 0u32;
    let mut index_casualties = 0u32;
    for seed in 0..140u64 {
        let faulty = FaultyIo::with_read_flips(deep_copy(&dir), FLIPS, seed);
        let degraded = DurableStore::options()
            .chunk_size(CHUNK)
            .degraded(true)
            .open(faulty);
        let snap = match degraded {
            Ok(s) if s.generation() > 0 => s.snapshot().expect("store-file payload"),
            _ => {
                // Structural damage: refusing the whole file is the
                // correct loud outcome — no index question arises.
                continue;
            }
        };
        opens_ok += 1;
        let rel = Relation::open(&snap, &rel_opts().on_error(OnError::SkipAndRecord))
            .expect("degraded open tolerates quarantined blobs");

        // Reference answer first, on an index-free twin.
        let twin = Relation::open(
            &snap,
            &OpenRelOpts::new()
                .name_attr("flight")
                .mpoint_attr("trip")
                .on_error(OnError::SkipAndRecord),
        )
        .expect("degraded open tolerates quarantined blobs");
        let opts_full = ScanOpts::new()
            .stats(true)
            .on_error(OnError::SkipAndRecord)
            .index(IndexPolicy::Off);
        let (expect, _) = twin
            .passes("trip", &zone, &window, &opts_full)
            .expect("full scan survives quarantine");

        let attached = rel.has_index();
        let opts_auto = ScanOpts::new()
            .stats(true)
            .on_error(OnError::SkipAndRecord)
            .index(IndexPolicy::Auto);
        let (got, stats) = rel
            .passes("trip", &zone, &window, &opts_auto)
            .expect("scan never fails because of the index");
        let stats = stats.unwrap();
        assert_eq!(got, expect, "seed {seed}: answers are damage-invariant");
        if attached {
            assert_eq!(stats.index_fallbacks, 0, "seed {seed}");
            assert!(stats.candidates.is_some(), "seed {seed}: pruned path");
        } else {
            index_casualties += 1;
            assert!(rel.index_damaged(), "seed {seed}");
            assert_eq!(
                stats.index_fallbacks, 1,
                "seed {seed}: fallback must be recorded"
            );
            assert_eq!(stats.candidates, None, "seed {seed}: full path");
        }
    }
    assert!(opens_ok >= 10, "only {opens_ok} degraded opens succeeded");
    assert!(
        index_casualties >= 3,
        "only {index_casualties} seeds damaged the index — campaign too weak"
    );
}
