//! Attribute values: the discrete data types embedded "as attribute
//! types into object-relational or other data models" (Sec 1–2).

use mob_base::DecodeResult;
use mob_base::{Instant, Real, Text, TimeInterval, Val};
use mob_core::{MovingBool, MovingPoint, MovingReal, MovingRegion, UPoint, UnitSeq};
use mob_spatial::{Line, Point, Points, Region};
use mob_storage::mapping_store::{StoredMapping, UPointRecord};
use mob_storage::{open_mpoint, MappingView, PageStore, Verify};
use std::borrow::Cow;
use std::fmt;
use std::sync::Arc;

/// A **storage-backed** `moving(point)` attribute: the root record
/// ([`StoredMapping`]) of a serialized flight plus a shared handle to
/// the page store holding its unit array. Queries access it through
/// [`MPointSeq`] — unit records are decoded lazily, so `atinstant` costs
/// `O(log n)` record reads instead of materializing all `n` units.
///
/// The store handle is an [`Arc`] and [`PageStore`] counters are
/// atomic, so tuples holding `MPointRef`s are `Send + Sync`: the
/// parallel relation scans ([`crate::Relation::snapshot_at`],
/// [`crate::Relation::filter_inside`]) fan tuples out across `mob-par`
/// workers, each opening its own short-lived view over the shared,
/// immutable store.
#[derive(Clone)]
pub struct MPointRef {
    store: Arc<PageStore>,
    stored: StoredMapping,
}

impl MPointRef {
    /// Wrap a stored mapping living in `store`, **verifying its
    /// structure once** (record layouts, bounds, interval order — the
    /// same pass `open_mpoint(.., Verify::Full)` runs). A reference is
    /// only handed out for a well-formed stored value, so the probing
    /// accessors below are infallible.
    pub fn new(store: Arc<PageStore>, stored: StoredMapping) -> DecodeResult<MPointRef> {
        open_mpoint(&stored, &store, Verify::Full)?;
        Ok(MPointRef { store, stored })
    }

    /// A lazy [`UnitSeq`] view over the stored units.
    ///
    /// Opens through the [`Verify::Preverified`] fast path: the full
    /// `O(n)` structural scan already ran once in [`MPointRef::new`],
    /// and page store blobs are append-only and immutable, so per-query
    /// view opens pay only the `O(1)` layout checks.
    pub fn view(&self) -> MappingView<'_, UPointRecord> {
        open_mpoint(&self.stored, &self.store, Verify::Preverified)
            .expect("stored mapping verified at MPointRef construction")
    }

    /// Materialize the full in-memory [`MovingPoint`] (reads the whole
    /// unit array — the eager path the lazy view exists to avoid).
    pub fn materialize(&self) -> MovingPoint {
        self.view()
            .materialize_validated()
            .expect("stored mapping verified at MPointRef construction")
    }

    /// Number of stored units.
    pub fn num_units(&self) -> usize {
        self.stored.units.count
    }

    /// The page store this reference reads from.
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }

    /// The root record of the stored mapping.
    pub fn stored(&self) -> &StoredMapping {
        &self.stored
    }
}

impl PartialEq for MPointRef {
    fn eq(&self, other: &MPointRef) -> bool {
        Arc::ptr_eq(&self.store, &other.store) && self.stored == other.stored
    }
}

impl fmt::Debug for MPointRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mpoint_ref({} units)", self.num_units())
    }
}

/// A backend-polymorphic `moving(point)` access path: either a borrowed
/// in-memory [`MovingPoint`] or a lazy [`MappingView`] over serialized
/// records. Implements [`UnitSeq`], so every Section-5 algorithm (and
/// the Section-2 queries built on them) runs identically on both.
pub enum MPointSeq<'a> {
    /// Borrowed in-memory mapping.
    Mem(&'a MovingPoint),
    /// Lazy view over stored unit records.
    Stored(MappingView<'a, UPointRecord>),
}

impl UnitSeq for MPointSeq<'_> {
    type Unit = UPoint;

    fn len(&self) -> usize {
        match self {
            MPointSeq::Mem(m) => UnitSeq::len(*m),
            MPointSeq::Stored(v) => v.len(),
        }
    }

    fn interval(&self, i: usize) -> TimeInterval {
        match self {
            MPointSeq::Mem(m) => UnitSeq::interval(*m, i),
            MPointSeq::Stored(v) => v.interval(i),
        }
    }

    fn unit(&self, i: usize) -> Cow<'_, UPoint> {
        match self {
            MPointSeq::Mem(m) => UnitSeq::unit(*m, i),
            MPointSeq::Stored(v) => v.unit(i),
        }
    }
}

/// The attribute types available to relation schemas.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum AttrType {
    /// `int`
    Int,
    /// `real`
    Real,
    /// `string`
    Str,
    /// `bool`
    Bool,
    /// `instant`
    Instant,
    /// `point`
    Point,
    /// `points`
    Points,
    /// `line`
    Line,
    /// `region`
    Region,
    /// `moving(point)` — `mpoint` in the paper's schema notation.
    MPoint,
    /// `moving(real)`
    MReal,
    /// `moving(bool)`
    MBool,
    /// `moving(region)`
    MRegion,
}

/// A value of one of the attribute types.
#[derive(Clone, PartialEq)]
pub enum AttrValue {
    /// `int` value (possibly ⊥).
    Int(Val<i64>),
    /// `real` value.
    Real(Val<Real>),
    /// `string` value.
    Str(Val<Text>),
    /// `bool` value.
    Bool(Val<bool>),
    /// `instant` value.
    Instant(Val<Instant>),
    /// `point` value.
    Point(Val<Point>),
    /// `points` value.
    Points(Points),
    /// `line` value.
    Line(Line),
    /// `region` value.
    Region(Region),
    /// `moving(point)` value, materialized in memory.
    MPoint(MovingPoint),
    /// `moving(point)` value, resident in a page store and queried in
    /// place (same schema type as [`AttrValue::MPoint`]).
    MPointRef(MPointRef),
    /// `moving(real)` value.
    MReal(MovingReal),
    /// `moving(bool)` value.
    MBool(MovingBool),
    /// `moving(region)` value.
    MRegion(MovingRegion),
    /// A value whose stored bytes failed their integrity checks during a
    /// **degraded** open ([`crate::Relation::from_stored`]): the
    /// page-store blob behind it is quarantined, so the value cannot be
    /// decoded. The variant keeps the tuple structurally intact — it
    /// remembers the schema type the value would have had plus the first
    /// detected damage — so relation scans can apply their
    /// [`crate::scan::OnError`] policy per tuple instead of refusing to
    /// open the whole relation.
    Quarantined {
        /// The schema type of the unavailable value.
        ty: AttrType,
        /// Why the value is unavailable (the quarantine diagnostic).
        detail: String,
    },
}

impl AttrValue {
    /// The type of this value.
    pub fn attr_type(&self) -> AttrType {
        match self {
            AttrValue::Int(_) => AttrType::Int,
            AttrValue::Real(_) => AttrType::Real,
            AttrValue::Str(_) => AttrType::Str,
            AttrValue::Bool(_) => AttrType::Bool,
            AttrValue::Instant(_) => AttrType::Instant,
            AttrValue::Point(_) => AttrType::Point,
            AttrValue::Points(_) => AttrType::Points,
            AttrValue::Line(_) => AttrType::Line,
            AttrValue::Region(_) => AttrType::Region,
            AttrValue::MPoint(_) => AttrType::MPoint,
            AttrValue::MPointRef(_) => AttrType::MPoint,
            AttrValue::MReal(_) => AttrType::MReal,
            AttrValue::MBool(_) => AttrType::MBool,
            AttrValue::MRegion(_) => AttrType::MRegion,
            AttrValue::Quarantined { ty, .. } => *ty,
        }
    }

    /// `true` when this value was quarantined by a degraded open and
    /// carries no data ([`AttrValue::Quarantined`]).
    pub fn is_quarantined(&self) -> bool {
        matches!(self, AttrValue::Quarantined { .. })
    }

    /// The quarantine diagnostic, if this value is quarantined.
    pub fn quarantine_detail(&self) -> Option<&str> {
        match self {
            AttrValue::Quarantined { detail, .. } => Some(detail),
            _ => None,
        }
    }

    /// Convenience constructor for defined strings.
    pub fn str(s: &str) -> AttrValue {
        AttrValue::Str(Val::Def(Text::new(s)))
    }

    /// Convenience constructor for defined reals.
    pub fn real(v: f64) -> AttrValue {
        AttrValue::Real(Val::Def(Real::new(v)))
    }

    /// Convenience constructor for defined ints.
    pub fn int(v: i64) -> AttrValue {
        AttrValue::Int(Val::Def(v))
    }

    /// The string content, if this is a defined string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(Val::Def(t)) => Some(t.as_str()),
            _ => None,
        }
    }

    /// The real content, if defined.
    pub fn as_real(&self) -> Option<Real> {
        match self {
            AttrValue::Real(Val::Def(r)) => Some(*r),
            _ => None,
        }
    }

    /// The int content, if defined.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(Val::Def(i)) => Some(*i),
            _ => None,
        }
    }

    /// The bool content, if defined.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            AttrValue::Bool(Val::Def(b)) => Some(*b),
            _ => None,
        }
    }

    /// The moving point, if that is the variant.
    pub fn as_mpoint(&self) -> Option<&MovingPoint> {
        match self {
            AttrValue::MPoint(m) => Some(m),
            _ => None,
        }
    }

    /// A backend-agnostic [`UnitSeq`] over a `moving(point)` attribute —
    /// borrowed from memory for [`AttrValue::MPoint`], a lazy storage
    /// view for [`AttrValue::MPointRef`]. The uniform access path the
    /// Section-2 queries use.
    pub fn as_mpoint_seq(&self) -> Option<MPointSeq<'_>> {
        match self {
            AttrValue::MPoint(m) => Some(MPointSeq::Mem(m)),
            AttrValue::MPointRef(r) => Some(MPointSeq::Stored(r.view())),
            _ => None,
        }
    }

    /// The storage-backed moving point, if that is the variant.
    pub fn as_mpoint_ref(&self) -> Option<&MPointRef> {
        match self {
            AttrValue::MPointRef(r) => Some(r),
            _ => None,
        }
    }

    /// The moving real, if that is the variant.
    pub fn as_mreal(&self) -> Option<&MovingReal> {
        match self {
            AttrValue::MReal(m) => Some(m),
            _ => None,
        }
    }

    /// The moving region, if that is the variant.
    pub fn as_mregion(&self) -> Option<&MovingRegion> {
        match self {
            AttrValue::MRegion(m) => Some(m),
            _ => None,
        }
    }

    /// The region, if that is the variant.
    pub fn as_region(&self) -> Option<&Region> {
        match self {
            AttrValue::Region(r) => Some(r),
            _ => None,
        }
    }

    /// The line, if that is the variant.
    pub fn as_line(&self) -> Option<&Line> {
        match self {
            AttrValue::Line(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Debug for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v:?}"),
            AttrValue::Real(v) => write!(f, "{v:?}"),
            AttrValue::Str(v) => write!(f, "{v:?}"),
            AttrValue::Bool(v) => write!(f, "{v:?}"),
            AttrValue::Instant(v) => write!(f, "{v:?}"),
            AttrValue::Point(v) => write!(f, "{v:?}"),
            AttrValue::Points(v) => write!(f, "{v:?}"),
            AttrValue::Line(v) => write!(f, "line({} segs)", v.num_segments()),
            AttrValue::Region(v) => write!(f, "region({} faces)", v.num_faces()),
            AttrValue::MPoint(v) => write!(f, "mpoint({} units)", v.num_units()),
            AttrValue::MPointRef(v) => write!(f, "{v:?}"),
            AttrValue::MReal(v) => write!(f, "mreal({} units)", v.num_units()),
            AttrValue::MBool(v) => write!(f, "mbool({} units)", v.num_units()),
            AttrValue::MRegion(v) => write!(f, "mregion({} units)", v.num_units()),
            AttrValue::Quarantined { ty, detail } => {
                write!(f, "quarantined({ty:?}: {detail})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn types_and_accessors() {
        assert_eq!(AttrValue::int(3).attr_type(), AttrType::Int);
        assert_eq!(AttrValue::str("LH").as_str(), Some("LH"));
        assert_eq!(AttrValue::real(1.5).as_real(), Some(Real::new(1.5)));
        assert_eq!(AttrValue::int(3).as_int(), Some(3));
        assert_eq!(AttrValue::int(3).as_real(), None);
        assert!(AttrValue::MPoint(MovingPoint::empty())
            .as_mpoint()
            .is_some());
        assert_eq!(
            AttrValue::MPoint(MovingPoint::empty()).attr_type(),
            AttrType::MPoint
        );
    }

    #[test]
    fn quarantined_values() {
        let q = AttrValue::Quarantined {
            ty: AttrType::MPoint,
            detail: "blob 3 quarantined".into(),
        };
        assert!(q.is_quarantined());
        assert_eq!(q.attr_type(), AttrType::MPoint);
        assert_eq!(q.quarantine_detail(), Some("blob 3 quarantined"));
        assert!(q.as_mpoint_seq().is_none(), "no data behind a quarantine");
        assert_eq!(format!("{q:?}"), "quarantined(MPoint: blob 3 quarantined)");
        assert!(!AttrValue::int(1).is_quarantined());
    }

    #[test]
    fn undefined_values() {
        let u = AttrValue::Real(Val::Undef);
        assert_eq!(u.as_real(), None);
        assert_eq!(u.attr_type(), AttrType::Real);
    }
}
