//! Relation schemas: named, typed attributes.

use crate::value::AttrType;
use mob_base::error::{InvariantViolation, Result};

/// A relation schema, e.g.
/// `planes(airline: string, id: string, flight: mpoint)` (Sec 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    attrs: Vec<(String, AttrType)>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs; names must be unique.
    pub fn new(attrs: &[(&str, AttrType)]) -> Result<Schema> {
        for (i, (n, _)) in attrs.iter().enumerate() {
            if attrs.iter().skip(i + 1).any(|(m, _)| m == n) {
                return Err(InvariantViolation::with_detail(
                    "schema: attribute names must be unique",
                    (*n).to_string(),
                ));
            }
        }
        Ok(Schema {
            attrs: attrs.iter().map(|(n, t)| ((*n).to_string(), *t)).collect(),
        })
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute `(name, type)` pairs in order.
    pub fn attrs(&self) -> &[(String, AttrType)] {
        &self.attrs
    }

    /// The position of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|(n, _)| n == name)
    }

    /// The type of an attribute by name.
    pub fn type_of(&self, name: &str) -> Option<AttrType> {
        self.attrs.iter().find(|(n, _)| n == name).map(|(_, t)| *t)
    }

    /// Schema of the concatenation of two relations (for joins); clashing
    /// names are prefixed with `left.`/`right.`.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut attrs = Vec::with_capacity(self.arity() + other.arity());
        for (n, t) in &self.attrs {
            let clash = other.attrs.iter().any(|(m, _)| m == n);
            let name = if clash {
                format!("left.{n}")
            } else {
                n.clone()
            };
            attrs.push((name, *t));
        }
        for (n, t) in &other.attrs {
            let clash = self.attrs.iter().any(|(m, _)| m == n);
            let name = if clash {
                format!("right.{n}")
            } else {
                n.clone()
            };
            attrs.push((name, *t));
        }
        Schema { attrs }
    }

    /// A sub-schema with the named attributes, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let mut attrs = Vec::with_capacity(names.len());
        for n in names {
            match self.type_of(n) {
                Some(t) => attrs.push(((*n).to_string(), t)),
                None => {
                    return Err(InvariantViolation::with_detail(
                        "schema: unknown attribute",
                        (*n).to_string(),
                    ))
                }
            }
        }
        Ok(Schema { attrs })
    }

    /// Extend by one attribute.
    pub fn extend(&self, name: &str, ty: AttrType) -> Result<Schema> {
        if self.index_of(name).is_some() {
            return Err(InvariantViolation::with_detail(
                "schema: attribute names must be unique",
                name.to_string(),
            ));
        }
        let mut attrs = self.attrs.clone();
        attrs.push((name.to_string(), ty));
        Ok(Schema { attrs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes() -> Schema {
        Schema::new(&[
            ("airline", AttrType::Str),
            ("id", AttrType::Str),
            ("flight", AttrType::MPoint),
        ])
        .unwrap()
    }

    #[test]
    fn basic_lookup() {
        let s = planes();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("id"), Some(1));
        assert_eq!(s.type_of("flight"), Some(AttrType::MPoint));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn unique_names_enforced() {
        assert!(Schema::new(&[("a", AttrType::Int), ("a", AttrType::Real)]).is_err());
    }

    #[test]
    fn concat_prefixes_clashes() {
        let s = planes();
        let j = s.concat(&s);
        assert_eq!(j.arity(), 6);
        assert!(j.index_of("left.airline").is_some());
        assert!(j.index_of("right.airline").is_some());
        // Non-clashing concat keeps names.
        let other = Schema::new(&[("x", AttrType::Int)]).unwrap();
        let k = s.concat(&other);
        assert!(k.index_of("airline").is_some());
        assert!(k.index_of("x").is_some());
    }

    #[test]
    fn project_and_extend() {
        let s = planes();
        let p = s.project(&["id", "airline"]).unwrap();
        assert_eq!(p.attrs()[0].0, "id");
        assert!(s.project(&["nope"]).is_err());
        let e = s.extend("len", AttrType::Real).unwrap();
        assert_eq!(e.arity(), 4);
        assert!(s.extend("id", AttrType::Real).is_err());
    }
}
