//! Relation-wide **parallel batch scans** — the set-at-a-time queries
//! of Sec 2 ("where were all planes at 8:00?") executed tuple-parallel
//! over a `mob-par` worker pool.
//!
//! The operators are backend-agnostic per tuple: an in-memory
//! [`AttrValue::MPoint`] is probed directly, a storage-backed
//! [`AttrValue::MPointRef`](crate::value::MPointRef) through a
//! short-lived lazy view each worker opens for itself (the page store
//! behind the `Arc` is `Sync`; its blobs are immutable).
//!
//! # Determinism
//!
//! Both operators inherit the ordering guarantee of
//! [`Pool::chunked_map`]: output tuples appear in input-tuple order for
//! **every** thread count, so `snapshot_at` / `filter_inside` results
//! are byte-identical whether `MOB_THREADS` is 1 or 64.

use crate::relation::{Relation, Tuple};
use crate::schema::Schema;
use crate::value::{AttrType, AttrValue};
use mob_base::Instant;
use mob_core::{inside_region_seq, UnitSeq};
use mob_par::Pool;
use mob_spatial::Region;

impl Relation {
    /// Snapshot the whole relation at one instant: every
    /// `moving(point)` attribute becomes a `point` attribute holding
    /// its value at `t` (⊥ where the object is undefined at `t`); all
    /// other attributes pass through unchanged.
    ///
    /// Tuples are scanned in parallel on a pool honoring `MOB_THREADS`
    /// ([`Pool::new`]); use [`Relation::snapshot_at_with`] for an
    /// explicit pool.
    pub fn snapshot_at(&self, t: Instant) -> Relation {
        self.snapshot_at_with(Pool::new(), t)
    }

    /// [`Relation::snapshot_at`] on an explicit worker pool.
    pub fn snapshot_at_with(&self, pool: Pool, t: Instant) -> Relation {
        let attrs: Vec<(String, AttrType)> = self
            .schema()
            .attrs()
            .iter()
            .map(|(n, ty)| {
                let ty = if *ty == AttrType::MPoint {
                    AttrType::Point
                } else {
                    *ty
                };
                (n.clone(), ty)
            })
            .collect();
        let refs: Vec<(&str, AttrType)> = attrs.iter().map(|(n, ty)| (n.as_str(), *ty)).collect();
        let schema = Schema::new(&refs).expect("snapshot schema mirrors a valid schema");
        let tuples = pool.chunked_map(self.tuples(), |tup| {
            Tuple::new(
                tup.values()
                    .iter()
                    .map(|v| match v.as_mpoint_seq() {
                        Some(seq) => AttrValue::Point(seq.at_instant(t)),
                        None => v.clone(),
                    })
                    .collect(),
            )
        });
        Relation::from_parts(schema, tuples)
    }

    /// Keep the tuples whose `moving(point)` attribute `attr` is ever
    /// inside the (static) `region` — the relation-wide lifted `inside`
    /// scan, evaluated tuple-parallel. Tuples whose attribute is not a
    /// moving point (or never inside) are dropped; input order is
    /// preserved.
    ///
    /// Panics if `attr` is not an attribute of the schema (same
    /// contract as [`Relation::attr`]).
    pub fn filter_inside(&self, attr: &str, region: &Region) -> Relation {
        self.filter_inside_with(Pool::new(), attr, region)
    }

    /// [`Relation::filter_inside`] on an explicit worker pool.
    pub fn filter_inside_with(&self, pool: Pool, attr: &str, region: &Region) -> Relation {
        let idx = self.attr(attr);
        let keep = pool.chunked_map(self.tuples(), |tup| {
            tup.at(idx)
                .as_mpoint_seq()
                .map(|seq| !inside_region_seq(&seq, region).when_true().is_empty())
                .unwrap_or(false)
        });
        let tuples = self
            .tuples()
            .iter()
            .zip(&keep)
            .filter(|(_, k)| **k)
            .map(|(t, _)| t.clone())
            .collect();
        Relation::from_parts(self.schema().clone(), tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::save_relation;
    use crate::queries::planes_relation;
    use mob_base::{t, Val};
    use mob_core::MovingPoint;
    use mob_spatial::{pt, rect_ring, Region};
    use mob_storage::PageStore;
    use std::sync::Arc;

    fn fleet(n: usize) -> Relation {
        planes_relation(
            (0..n)
                .map(|k| {
                    let x0 = k as f64;
                    (
                        format!("A{}", k % 3),
                        format!("F{k}"),
                        MovingPoint::from_samples(&[
                            (t(0.0), pt(x0, 0.0)),
                            (t(10.0), pt(x0, 10.0)),
                        ]),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn snapshot_replaces_mpoint_with_point() {
        let rel = fleet(7);
        let snap = rel.snapshot_at(t(5.0));
        assert_eq!(snap.len(), rel.len());
        let f = snap.attr("flight");
        assert_eq!(snap.schema().attrs()[f].1, AttrType::Point);
        for (k, tup) in snap.tuples().iter().enumerate() {
            match tup.at(f) {
                AttrValue::Point(Val::Def(p)) => {
                    assert_eq!(p.x.get(), k as f64);
                    assert_eq!(p.y.get(), 5.0);
                }
                other => panic!("expected a defined point, got {other:?}"),
            }
        }
        // Outside every lifetime: all positions undefined, tuples kept.
        let missed = rel.snapshot_at(t(99.0));
        assert_eq!(missed.len(), rel.len());
        assert!(missed
            .tuples()
            .iter()
            .all(|tup| matches!(tup.at(f), AttrValue::Point(Val::Undef))));
    }

    #[test]
    fn snapshot_deterministic_across_thread_counts() {
        let rel = fleet(23);
        let expect = rel.snapshot_at_with(Pool::with_threads(1), t(3.25));
        for threads in [2usize, 3, 4, 8] {
            let got = rel.snapshot_at_with(Pool::with_threads(threads), t(3.25));
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn filter_inside_keeps_crossing_flights_in_order() {
        let rel = fleet(9);
        // Flights k = 2, 3, 4 pass through x ∈ [1.5, 4.5].
        let zone = Region::from_ring(rect_ring(1.5, 2.0, 4.5, 8.0));
        let hit = rel.filter_inside("flight", &zone);
        let ids: Vec<&str> = hit
            .tuples()
            .iter()
            .filter_map(|tup| tup.at(1).as_str())
            .collect();
        assert_eq!(ids, ["F2", "F3", "F4"]);
        assert_eq!(hit.schema(), rel.schema());
        for threads in [1usize, 2, 4] {
            assert_eq!(
                rel.filter_inside_with(Pool::with_threads(threads), "flight", &zone),
                hit,
                "{threads} threads"
            );
        }
        // Empty region keeps nothing.
        assert!(rel.filter_inside("flight", &Region::empty()).is_empty());
    }

    #[test]
    fn scans_agree_across_backends() {
        // The same fleet, in memory and opened from storage, must give
        // identical scan results.
        let rel = fleet(11);
        let mut store = PageStore::new();
        let stored = save_relation(&rel, &mut store).unwrap();
        let opened = Relation::from_store(&stored, Arc::new(store)).unwrap();
        let ti = t(6.5);
        assert_eq!(rel.snapshot_at(ti), opened.snapshot_at(ti));
        let zone = Region::from_ring(rect_ring(2.5, 0.0, 6.5, 10.0));
        let a = rel.filter_inside("flight", &zone);
        let b = opened.filter_inside("flight", &zone);
        assert_eq!(a.len(), b.len());
        let ids = |r: &Relation| -> Vec<String> {
            r.tuples()
                .iter()
                .filter_map(|tup| tup.at(1).as_str().map(str::to_owned))
                .collect()
        };
        assert_eq!(ids(&a), ids(&b));
    }
}
