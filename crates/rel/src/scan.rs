//! Relation-wide **parallel batch scans** — the set-at-a-time queries
//! of Sec 2 ("where were all planes at 8:00?") executed tuple-parallel
//! over a `mob-par` worker pool.
//!
//! The operators are backend-agnostic per tuple: an in-memory
//! [`AttrValue::MPoint`] is probed directly, a storage-backed
//! [`AttrValue::MPointRef`](crate::value::MPointRef) through a
//! short-lived lazy view each worker opens for itself (the page store
//! behind the `Arc` is `Sync`; its blobs are immutable).
//!
//! # The pipeline
//!
//! Each scan runs in three stages: **plan** (choose full vs pruned
//! access, [`crate::plan::plan_scan`]), **prune** (consult the
//! relation's R-tree for the candidate tuple set) and **execute** (the
//! batch kernels below, over candidates only). The planner never
//! changes answers — see the equivalence contract in
//! [`crate::plan`].
//!
//! # Determinism
//!
//! All operators inherit the ordering guarantee of
//! [`Pool::chunked_map`]: output tuples appear in input-tuple order for
//! **every** thread count, so `snapshot_at` / `filter_inside` /
//! `passes` results are byte-identical whether `MOB_THREADS` is 1 or
//! 64 — and whether the index is on, off, or quarantined.

use crate::plan::{plan_scan, AttrNeed, Plan, PlanReport, Probe};
use crate::relation::{Relation, Tuple};
use crate::schema::Schema;
use crate::value::{AttrType, AttrValue};
use mob_base::error::{DecodeError, DecodeResult};
use mob_base::{Instant, Periods, TimeInterval, Val};
use mob_core::{inside_region_seq, UnitSeq};
use mob_obs::{Registry, Snapshot};
use mob_par::{CancelToken, Cancellable, Pool};
use mob_spatial::{Cube, Region};
use mob_storage::Clock;
use std::sync::Arc;
use std::time::Duration;

/// A relation scan failed — either the tuples themselves are damaged
/// ([`ScanError::Decode`], the pre-existing error surface) or the
/// scan's deadline expired before every tuple was probed
/// ([`ScanError::Deadline`]).
///
/// `From<DecodeError>` keeps `?` working inside the scan kernels, and
/// `Display` preserves every message callers already match on.
#[derive(Debug)]
pub enum ScanError {
    /// The underlying decode/quarantine error (everything scans could
    /// fail with before deadlines existed).
    Decode(DecodeError),
    /// The [`ScanOpts::deadline`] expired. The scan stopped at a chunk
    /// boundary — no partial relation is returned (answers are never
    /// silently truncated), but the progress made is reported honestly.
    Deadline {
        /// Which scan operator hit the deadline (span name).
        what: &'static str,
        /// Tuples actually probed before the scan stopped.
        items_done: usize,
        /// The partial [`QueryStats`] (when [`ScanOpts::stats`] was
        /// on): wall time and metric deltas up to the expiry.
        stats: Option<QueryStats>,
    },
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Decode(e) => e.fmt(f),
            ScanError::Deadline {
                what, items_done, ..
            } => write!(
                f,
                "{what}: deadline exceeded after {items_done} tuples; \
                 results withheld (rerun with a larger budget)"
            ),
        }
    }
}

impl std::error::Error for ScanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScanError::Decode(e) => Some(e),
            ScanError::Deadline { .. } => None,
        }
    }
}

impl From<DecodeError> for ScanError {
    fn from(e: DecodeError) -> ScanError {
        ScanError::Decode(e)
    }
}

impl From<mob_base::error::InvariantViolation> for ScanError {
    fn from(e: mob_base::error::InvariantViolation) -> ScanError {
        ScanError::Decode(e.into())
    }
}

/// Result alias for the relation scans: [`ScanError`] instead of the
/// bare [`DecodeError`].
pub type ScanResult<T> = Result<T, ScanError>;

/// The deadline attached to a scan: a wall-clock expiry measured on an
/// injectable [`Clock`], so tests drive expiry through a
/// `VirtualClock` deterministically.
#[derive(Clone)]
struct ScanDeadline {
    clock: Arc<dyn Clock>,
    expires_at: Duration,
}

impl ScanDeadline {
    fn expired(&self) -> bool {
        self.clock.now() >= self.expires_at
    }

    /// The chunk-boundary token handed to `mob-par`.
    fn token(&self) -> CancelToken {
        let d = self.clone();
        CancelToken::new(move || d.expired())
    }
}

impl std::fmt::Debug for ScanDeadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanDeadline")
            .field("expires_at", &self.expires_at)
            .field("expired", &self.expired())
            .finish()
    }
}

/// Options for the relation-wide scans — one struct instead of the old
/// `snapshot_at` / `snapshot_at_with(pool, ..)` method matrix.
///
/// The default is **sequential, no stats**: one worker thread, results
/// only. Opt into parallelism with [`ScanOpts::parallel`] (honors
/// `MOB_THREADS`) or an explicit [`ScanOpts::pool`], and into
/// per-query observability with [`ScanOpts::stats`]. A
/// [`ScanOpts::deadline`] bounds the scan's wall time cooperatively.
#[derive(Clone, Debug)]
pub struct ScanOpts {
    pool: Pool,
    stats: bool,
    on_error: OnError,
    deadline: Option<ScanDeadline>,
    pub(crate) index: IndexPolicy,
}

/// Whether the planner may, must, or must not use the relation's
/// R-tree index for a scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IndexPolicy {
    /// Use the index when one is attached and covers the scanned
    /// attribute; silently scan fully otherwise. The default.
    #[default]
    Auto,
    /// Demand the index: with no usable index the scan still runs full
    /// (answers are never withheld) but records a planner fallback
    /// (`index.fallbacks`, [`QueryStats::index_fallbacks`]).
    Force,
    /// Never consult the index — the reference full-scan path.
    Off,
}

/// What a relation scan does when it meets a tuple carrying an
/// [`AttrValue::Quarantined`] attribute (produced by a degraded open of
/// a damaged store, [`Relation::from_stored`]).
///
/// [`Relation::from_stored`]: crate::Relation::from_stored
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OnError {
    /// Abort the whole scan with [`DecodeError::Quarantined`] naming the
    /// first damaged tuple. The default: damage is loud unless the
    /// caller explicitly opts into degradation.
    #[default]
    Fail,
    /// Drop the damaged tuple and keep scanning the healthy ones. Every
    /// skip is recorded: the `scan.tuples_quarantined` registry counter
    /// and [`QueryStats::tuples_quarantined`] both advance by the number
    /// of tuples dropped.
    SkipAndRecord,
}

impl Default for ScanOpts {
    fn default() -> Self {
        ScanOpts {
            pool: Pool::with_threads(1),
            stats: false,
            on_error: OnError::Fail,
            deadline: None,
            index: IndexPolicy::Auto,
        }
    }
}

impl ScanOpts {
    /// Sequential scan, no stats (same as `Default`).
    #[must_use]
    pub fn new() -> ScanOpts {
        ScanOpts::default()
    }

    /// A parallel scan on a pool honoring `MOB_THREADS`
    /// ([`Pool::new`]).
    #[must_use]
    pub fn parallel() -> ScanOpts {
        ScanOpts::default().pool(Pool::new())
    }

    /// Run on an explicit worker pool.
    #[must_use]
    pub fn pool(mut self, pool: Pool) -> ScanOpts {
        self.pool = pool;
        self
    }

    /// Run on `n` worker threads (shorthand for
    /// [`Pool::with_threads`]).
    #[must_use]
    pub fn threads(self, n: usize) -> ScanOpts {
        self.pool(Pool::with_threads(n))
    }

    /// Collect a [`QueryStats`] alongside the result.
    #[must_use]
    pub fn stats(mut self, on: bool) -> ScanOpts {
        self.stats = on;
        self
    }

    /// What to do with tuples carrying quarantined attribute values
    /// (default: [`OnError::Fail`]).
    #[must_use]
    pub fn on_error(mut self, policy: OnError) -> ScanOpts {
        self.on_error = policy;
        self
    }

    /// Index policy for the planner (default: [`IndexPolicy::Auto`]).
    #[must_use]
    pub fn index(mut self, policy: IndexPolicy) -> ScanOpts {
        self.index = policy;
        self
    }

    /// Bound the scan's wall time: `budget` from now, measured on
    /// `clock`. The deadline is **cooperative** — it is checked between
    /// the plan/prune/execute stages and before every worker chunk
    /// claim ([`mob_par::CancelToken`]), so an expired scan stops at
    /// the next boundary, returns [`ScanError::Deadline`] (counting
    /// `scan.deadline_exceeded`), and never hangs or returns a
    /// silently-truncated relation. Pass a
    /// [`mob_storage::VirtualClock`] to drive expiry deterministically
    /// in tests.
    #[must_use]
    pub fn deadline(mut self, clock: Arc<dyn Clock>, budget: Duration) -> ScanOpts {
        let expires_at = clock.now() + budget;
        self.deadline = Some(ScanDeadline { clock, expires_at });
        self
    }

    /// Stage-boundary deadline check (plan → prune → execute).
    fn check_deadline(&self, what: &'static str) -> ScanResult<()> {
        match &self.deadline {
            Some(d) if d.expired() => Err(deadline_exceeded(what, 0)),
            _ => Ok(()),
        }
    }
}

/// What one relation scan did: the per-query observability summary
/// returned when [`ScanOpts::stats`] is on.
///
/// `metrics` is the delta of the process-wide `mob-obs` registry across
/// the scan — with observability disabled (`MOB_OBS=0`) it is empty,
/// while `tuples` / `threads` / `wall_ns` are always filled. The delta
/// is attributed from global counters, so concurrent queries in other
/// threads show up in it; attribute queries one at a time (or use
/// [`mob_obs::explain`]) when exact attribution matters.
#[derive(Clone, Debug)]
pub struct QueryStats {
    /// Tuples scanned (the input relation's cardinality).
    pub tuples: usize,
    /// Worker threads of the pool that ran the scan.
    pub threads: usize,
    /// Wall time of the whole scan, in nanoseconds.
    pub wall_ns: u64,
    /// Tuples dropped because an attribute value was quarantined
    /// (always 0 under [`OnError::Fail`] — the scan errors instead).
    pub tuples_quarantined: u64,
    /// Candidate tuples after index pruning; `None` when the planner
    /// chose (or was forced into) a full scan.
    pub candidates: Option<usize>,
    /// 1 when the scan wanted an index but the planner had to degrade
    /// to a full scan (damaged, mismatched or missing-under-`Force`
    /// index); 0 otherwise.
    pub index_fallbacks: u64,
    /// Registry counter deltas caused while the scan ran.
    pub metrics: Snapshot,
}

impl QueryStats {
    /// Fill in the quarantine tally after the observed section ran.
    fn with_quarantined(mut self, n: u64) -> QueryStats {
        self.tuples_quarantined = n;
        self
    }

    /// Fill in the planner's summary.
    fn with_plan(mut self, report: &PlanReport) -> QueryStats {
        self.candidates = report.candidates;
        self.index_fallbacks = report.fallbacks;
        self
    }
}

/// Run `f` under a named span, optionally bracketed by registry
/// snapshots for [`QueryStats`] attribution.
fn observed<R>(
    name: &'static str,
    opts: &ScanOpts,
    tuples: usize,
    f: impl FnOnce(Pool) -> R,
) -> (R, Option<QueryStats>) {
    if !opts.stats {
        let _span = mob_obs::span(name);
        return (f(opts.pool), None);
    }
    let before = Registry::global().snapshot();
    let start = std::time::Instant::now();
    let out = {
        let _span = mob_obs::span(name);
        f(opts.pool)
    };
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let metrics = Registry::global().snapshot().delta(&before);
    (
        out,
        Some(QueryStats {
            tuples,
            threads: opts.pool.threads(),
            wall_ns,
            tuples_quarantined: 0,
            candidates: None,
            index_fallbacks: 0,
            metrics,
        }),
    )
}

/// A deadline tripped: count it (`scan.deadline_exceeded` — inside the
/// observed section, so it shows in the query's own metric delta) and
/// build the typed error. Partial stats are attached by [`finish`]
/// once the observed section closes.
fn deadline_exceeded(what: &'static str, items_done: usize) -> ScanError {
    mob_obs::metric!("scan.deadline_exceeded").add(1);
    ScanError::Deadline {
        what,
        items_done,
        stats: None,
    }
}

/// Close out one scan: merge the per-scan tallies into the stats on
/// success, attach the partial stats to a deadline error.
fn finish(
    res: ScanResult<(Relation, u64, PlanReport)>,
    stats: Option<QueryStats>,
) -> ScanResult<(Relation, Option<QueryStats>)> {
    match res {
        Ok((rel, quarantined, report)) => Ok((
            rel,
            stats.map(|s| s.with_quarantined(quarantined).with_plan(&report)),
        )),
        Err(ScanError::Deadline {
            what, items_done, ..
        }) => Err(ScanError::Deadline {
            what,
            items_done,
            stats,
        }),
        Err(e) => Err(e),
    }
}

/// Apply the scan's [`OnError`] policy to per-tuple outcomes where
/// `None` marks a tuple that carries a quarantined attribute: under
/// [`OnError::Fail`] the first damaged tuple aborts the scan, under
/// [`OnError::SkipAndRecord`] the damaged ones are counted (registry
/// counter `scan.tuples_quarantined`) and the survivors returned.
fn apply_on_error<T>(outcomes: Vec<Option<T>>, policy: OnError) -> DecodeResult<(Vec<T>, u64)> {
    let quarantined = outcomes.iter().filter(|o| o.is_none()).count() as u64;
    if quarantined > 0 {
        if policy == OnError::Fail {
            let first = outcomes.iter().position(Option::is_none).unwrap_or(0);
            return Err(DecodeError::Quarantined {
                what: "relation scan",
                detail: format!(
                    "tuple {first} carries a quarantined attribute \
                     ({quarantined} damaged in total); rerun with \
                     OnError::SkipAndRecord to scan around the damage"
                ),
            });
        }
        mob_obs::metric!("scan.tuples_quarantined").add(quarantined);
    }
    Ok((outcomes.into_iter().flatten().collect(), quarantined))
}

/// Stage 3, **execute**: run `f` over every tuple in input order,
/// telling it whether the tuple survived pruning. Non-candidates still
/// flow through `f` (so quarantine accounting and ordering are
/// identical to a full scan), but `f` must not probe their units —
/// that is the planner's whole saving.
fn execute_scan<T: Send>(
    pool: Pool,
    tuples: &[Tuple],
    plan: &Plan,
    deadline: Option<&ScanDeadline>,
    f: impl Fn(&Tuple, bool) -> T + Sync,
) -> Cancellable<Vec<T>> {
    let _span = mob_obs::span("scan.execute");
    mob_obs::metric!("scan.tuples").add(tuples.len() as u64);
    let probed = match plan {
        Plan::Full => tuples.len(),
        Plan::Pruned { count, .. } => *count,
    };
    mob_obs::metric!("scan.tuples_probed").add(probed as u64);
    let idxs: Vec<usize> = (0..tuples.len()).collect();
    let token = deadline.map_or_else(CancelToken::never, ScanDeadline::token);
    match pool.try_chunked_map_cancel(&idxs, &token, |&i| f(&tuples[i], plan.is_candidate(i))) {
        Ok(out) => out,
        // Keep the `chunked_map` contract: a worker panic resurfaces on
        // the caller's thread with the contained message.
        Err(e) => panic!("{e}"),
    }
}

impl Relation {
    /// Snapshot the whole relation at one instant: every
    /// `moving(point)` attribute becomes a `point` attribute holding
    /// its value at `t` (⊥ where the object is undefined at `t`); all
    /// other attributes pass through unchanged.
    ///
    /// Scheduling and observability are controlled by `opts`
    /// ([`ScanOpts::default`] = sequential, no stats); the result
    /// relation is identical for every pool width.
    ///
    /// # Errors
    ///
    /// On a relation opened degraded ([`Relation::from_stored`]),
    /// tuples may carry [`AttrValue::Quarantined`] attributes; what
    /// happens then is the [`ScanOpts::on_error`] policy — the default
    /// [`OnError::Fail`] aborts with [`DecodeError::Quarantined`],
    /// [`OnError::SkipAndRecord`] drops and counts the damaged tuples
    /// ([`QueryStats::tuples_quarantined`]).
    pub fn snapshot_at(
        &self,
        t: Instant,
        opts: &ScanOpts,
    ) -> ScanResult<(Relation, Option<QueryStats>)> {
        let (res, stats) = observed(
            "rel.snapshot_at",
            opts,
            self.len(),
            |pool| -> ScanResult<(Relation, u64, PlanReport)> {
                opts.check_deadline("rel.snapshot_at")?;
                let attrs: Vec<(String, AttrType)> = self
                    .schema()
                    .attrs()
                    .iter()
                    .map(|(n, ty)| {
                        let ty = if *ty == AttrType::MPoint {
                            AttrType::Point
                        } else {
                            *ty
                        };
                        (n.clone(), ty)
                    })
                    .collect();
                let refs: Vec<(&str, AttrType)> =
                    attrs.iter().map(|(n, ty)| (n.as_str(), *ty)).collect();
                let schema = Schema::new(&refs)?;
                let (plan, report) =
                    plan_scan(self, &Probe::At(t), AttrNeed::AllMPoints, opts.index);
                opts.check_deadline("rel.snapshot_at")?;
                let outcomes = execute_scan(
                    pool,
                    self.tuples(),
                    &plan,
                    opts.deadline.as_ref(),
                    |tup, candidate| {
                        if tup.values().iter().any(AttrValue::is_quarantined) {
                            return None;
                        }
                        Some(Tuple::new(
                            tup.values()
                                .iter()
                                .map(|v| match v.as_mpoint_seq() {
                                    // A non-candidate has no unit alive at
                                    // `t` — ⊥ without touching its units.
                                    Some(_) if !candidate => AttrValue::Point(Val::Undef),
                                    Some(seq) => AttrValue::Point(seq.at_instant(t)),
                                    None => v.clone(),
                                })
                                .collect(),
                        ))
                    },
                );
                let outcomes = match outcomes {
                    Cancellable::Done(o) => o,
                    Cancellable::Cancelled { items_done } => {
                        return Err(deadline_exceeded("rel.snapshot_at", items_done))
                    }
                };
                let (tuples, quarantined) = apply_on_error(outcomes, opts.on_error)?;
                Ok((Relation::from_parts(schema, tuples), quarantined, report))
            },
        );
        finish(res, stats)
    }

    /// Keep the tuples whose `moving(point)` attribute `attr` is ever
    /// inside the (static) `region` — the relation-wide lifted `inside`
    /// scan. Tuples whose attribute is not a moving point (or never
    /// inside) are dropped; input order is preserved.
    ///
    /// # Errors
    ///
    /// Fails (instead of panicking) when `attr` is not an attribute of
    /// the schema — the name is resolved through
    /// [`Relation::try_attr`]. Tuples carrying quarantined attributes
    /// follow the [`ScanOpts::on_error`] policy, exactly as in
    /// [`Relation::snapshot_at`].
    pub fn filter_inside(
        &self,
        attr: &str,
        region: &Region,
        opts: &ScanOpts,
    ) -> ScanResult<(Relation, Option<QueryStats>)> {
        let idx = self.try_attr(attr)?;
        let (res, stats) = observed(
            "rel.filter_inside",
            opts,
            self.len(),
            |pool| -> ScanResult<(Relation, u64, PlanReport)> {
                opts.check_deadline("rel.filter_inside")?;
                let (plan, report) = plan_scan(
                    self,
                    &Probe::Window(region.bbox()),
                    AttrNeed::Exactly(idx),
                    opts.index,
                );
                opts.check_deadline("rel.filter_inside")?;
                // Three-way per-tuple outcome: quarantined (None), kept
                // (Some(Some(tuple))), filtered out (Some(None)).
                let outcomes = execute_scan(
                    pool,
                    self.tuples(),
                    &plan,
                    opts.deadline.as_ref(),
                    |tup, candidate| {
                        if tup.values().iter().any(AttrValue::is_quarantined) {
                            return None;
                        }
                        if !candidate {
                            // Pruned: its trajectory never meets the
                            // region's bounding box.
                            return Some(None);
                        }
                        let keep = tup
                            .at(idx)
                            .as_mpoint_seq()
                            .map(|seq| !inside_region_seq(&seq, region).when_true().is_empty())
                            .unwrap_or(false);
                        Some(if keep { Some(tup.clone()) } else { None })
                    },
                );
                let outcomes = match outcomes {
                    Cancellable::Done(o) => o,
                    Cancellable::Cancelled { items_done } => {
                        return Err(deadline_exceeded("rel.filter_inside", items_done))
                    }
                };
                let (kept, quarantined) = apply_on_error(outcomes, opts.on_error)?;
                let tuples = kept.into_iter().flatten().collect();
                Ok((
                    Relation::from_parts(self.schema().clone(), tuples),
                    quarantined,
                    report,
                ))
            },
        );
        finish(res, stats)
    }

    /// Keep the tuples whose `moving(point)` attribute `attr` is inside
    /// `region` at some instant of `window` — the selective
    /// space × time window query ("which flights pass the storm zone
    /// tonight?"), and the scan the R-tree prunes best: the probe is a
    /// single bounding cube.
    ///
    /// # Errors
    ///
    /// Unknown `attr` fails; quarantined tuples follow
    /// [`ScanOpts::on_error`], exactly as in [`Relation::snapshot_at`].
    pub fn passes(
        &self,
        attr: &str,
        region: &Region,
        window: &TimeInterval,
        opts: &ScanOpts,
    ) -> ScanResult<(Relation, Option<QueryStats>)> {
        let idx = self.try_attr(attr)?;
        let (res, stats) = observed(
            "rel.passes",
            opts,
            self.len(),
            |pool| -> ScanResult<(Relation, u64, PlanReport)> {
                opts.check_deadline("rel.passes")?;
                let probe = Probe::Volume(Cube::new(region.bbox(), window));
                let (plan, report) = plan_scan(self, &probe, AttrNeed::Exactly(idx), opts.index);
                opts.check_deadline("rel.passes")?;
                let outcomes = execute_scan(
                    pool,
                    self.tuples(),
                    &plan,
                    opts.deadline.as_ref(),
                    |tup, candidate| {
                        if tup.values().iter().any(AttrValue::is_quarantined) {
                            return None;
                        }
                        if !candidate {
                            return Some(None);
                        }
                        let keep = tup
                            .at(idx)
                            .as_mpoint_seq()
                            .map(|seq| {
                                let clipped = seq.at_periods(&Periods::single(*window));
                                !inside_region_seq(&clipped, region).when_true().is_empty()
                            })
                            .unwrap_or(false);
                        Some(if keep { Some(tup.clone()) } else { None })
                    },
                );
                let outcomes = match outcomes {
                    Cancellable::Done(o) => o,
                    Cancellable::Cancelled { items_done } => {
                        return Err(deadline_exceeded("rel.passes", items_done))
                    }
                };
                let (kept, quarantined) = apply_on_error(outcomes, opts.on_error)?;
                let tuples = kept.into_iter().flatten().collect();
                Ok((
                    Relation::from_parts(self.schema().clone(), tuples),
                    quarantined,
                    report,
                ))
            },
        );
        finish(res, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::save_relation;
    use crate::queries::planes_relation;
    use mob_base::{t, Val};
    use mob_core::MovingPoint;
    use mob_spatial::{pt, rect_ring, Region};
    use mob_storage::PageStore;
    use std::sync::Arc;

    fn fleet(n: usize) -> Relation {
        planes_relation(
            (0..n)
                .map(|k| {
                    let x0 = k as f64;
                    (
                        format!("A{}", k % 3),
                        format!("F{k}"),
                        MovingPoint::from_samples(&[
                            (t(0.0), pt(x0, 0.0)),
                            (t(10.0), pt(x0, 10.0)),
                        ]),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn snapshot_replaces_mpoint_with_point() {
        let rel = fleet(7);
        let (snap, stats) = rel.snapshot_at(t(5.0), &ScanOpts::default()).unwrap();
        assert!(stats.is_none(), "default opts carry no stats");
        assert_eq!(snap.len(), rel.len());
        let f = snap.attr("flight");
        assert_eq!(snap.schema().attrs()[f].1, AttrType::Point);
        for (k, tup) in snap.tuples().iter().enumerate() {
            match tup.at(f) {
                AttrValue::Point(Val::Def(p)) => {
                    assert_eq!(p.x.get(), k as f64);
                    assert_eq!(p.y.get(), 5.0);
                }
                other => panic!("expected a defined point, got {other:?}"),
            }
        }
        // Outside every lifetime: all positions undefined, tuples kept.
        let (missed, _) = rel.snapshot_at(t(99.0), &ScanOpts::default()).unwrap();
        assert_eq!(missed.len(), rel.len());
        assert!(missed
            .tuples()
            .iter()
            .all(|tup| matches!(tup.at(f), AttrValue::Point(Val::Undef))));
    }

    #[test]
    fn snapshot_deterministic_across_thread_counts() {
        let rel = fleet(23);
        let (expect, _) = rel.snapshot_at(t(3.25), &ScanOpts::default()).unwrap();
        for threads in [2usize, 3, 4, 8] {
            let (got, _) = rel
                .snapshot_at(t(3.25), &ScanOpts::new().threads(threads))
                .unwrap();
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn snapshot_stats_report_the_scan() {
        let rel = fleet(23);
        let (_, stats) = rel
            .snapshot_at(t(3.25), &ScanOpts::new().threads(4).stats(true))
            .unwrap();
        let stats = stats.expect("stats requested");
        assert_eq!(stats.tuples, 23);
        assert_eq!(stats.threads, 4);
        assert!(stats.wall_ns > 0);
        if mob_obs::enabled() {
            // The pool dispatched our 23 tuples (concurrent tests may
            // add more — the registry is process-wide).
            assert!(stats.metrics.get("par.items") >= 23);
        } else {
            assert!(stats.metrics.is_empty());
        }
    }

    #[test]
    fn filter_inside_keeps_crossing_flights_in_order() {
        let rel = fleet(9);
        // Flights k = 2, 3, 4 pass through x ∈ [1.5, 4.5].
        let zone = Region::from_ring(rect_ring(1.5, 2.0, 4.5, 8.0));
        let (hit, _) = rel
            .filter_inside("flight", &zone, &ScanOpts::default())
            .unwrap();
        let ids: Vec<&str> = hit
            .tuples()
            .iter()
            .filter_map(|tup| tup.at(1).as_str())
            .collect();
        assert_eq!(ids, ["F2", "F3", "F4"]);
        assert_eq!(hit.schema(), rel.schema());
        for threads in [1usize, 2, 4] {
            let (got, _) = rel
                .filter_inside("flight", &zone, &ScanOpts::new().threads(threads))
                .unwrap();
            assert_eq!(got, hit, "{threads} threads");
        }
        // Empty region keeps nothing.
        let (none, _) = rel
            .filter_inside("flight", &Region::empty(), &ScanOpts::default())
            .unwrap();
        assert!(none.is_empty());
        // Unknown attribute: an error, not a panic.
        assert!(rel
            .filter_inside("nope", &zone, &ScanOpts::default())
            .is_err());
    }

    /// A fleet with tuple 2's mpoint replaced by a quarantine
    /// placeholder (what a degraded open produces for a damaged blob).
    fn damaged_fleet(n: usize) -> Relation {
        let rel = fleet(n);
        let mut out = Relation::new(rel.schema().clone());
        for (i, tup) in rel.tuples().iter().enumerate() {
            let values = tup
                .values()
                .iter()
                .map(|v| {
                    if i == 2 && v.attr_type() == AttrType::MPoint {
                        AttrValue::Quarantined {
                            ty: AttrType::MPoint,
                            detail: "blob quarantined (test)".into(),
                        }
                    } else {
                        v.clone()
                    }
                })
                .collect();
            out.insert(Tuple::new(values)).unwrap();
        }
        out
    }

    #[test]
    fn quarantined_tuples_follow_the_on_error_policy() {
        let rel = damaged_fleet(6);
        // Default policy: loud failure naming the damaged tuple.
        let err = rel.snapshot_at(t(5.0), &ScanOpts::default()).unwrap_err();
        assert!(err.to_string().contains("tuple 2"), "{err}");
        let zone = Region::from_ring(rect_ring(-1.0, -1.0, 99.0, 99.0));
        assert!(rel
            .filter_inside("flight", &zone, &ScanOpts::default())
            .is_err());

        // SkipAndRecord: healthy tuples survive, the skip is counted.
        for threads in [1usize, 4] {
            let opts = ScanOpts::new()
                .threads(threads)
                .stats(true)
                .on_error(OnError::SkipAndRecord);
            let (snap, stats) = rel.snapshot_at(t(5.0), &opts).unwrap();
            assert_eq!(snap.len(), 5, "{threads} threads");
            let stats = stats.expect("stats requested");
            assert_eq!(stats.tuples_quarantined, 1);
            assert_eq!(stats.tuples, 6, "input cardinality unchanged");
            let ids: Vec<&str> = snap
                .tuples()
                .iter()
                .filter_map(|tup| tup.at(1).as_str())
                .collect();
            assert_eq!(ids, ["F0", "F1", "F3", "F4", "F5"]);
            if mob_obs::enabled() {
                assert!(stats.metrics.get("scan.tuples_quarantined") >= 1);
            }

            // The zone covers every flight; the damaged one still drops.
            let (hit, fstats) = rel.filter_inside("flight", &zone, &opts).unwrap();
            assert_eq!(hit.len(), 5);
            assert_eq!(fstats.expect("stats").tuples_quarantined, 1);
        }
    }

    #[test]
    fn indexed_scans_match_full_scans_and_prune() {
        let mut rel = fleet(40);
        rel.build_index("flight").unwrap();
        assert!(rel.has_index());
        let opts_full = ScanOpts::new().stats(true).index(IndexPolicy::Off);
        let opts_ix = ScanOpts::new().stats(true).index(IndexPolicy::Force);

        // snapshot_at: all flights alive at t=5, none at t=99.
        for ti in [t(5.0), t(99.0)] {
            let (a, _) = rel.snapshot_at(ti, &opts_full).unwrap();
            let (b, sb) = rel.snapshot_at(ti, &opts_ix).unwrap();
            assert_eq!(a, b, "t={ti:?}");
            assert_eq!(sb.unwrap().index_fallbacks, 0);
        }
        let (_, s99) = rel.snapshot_at(t(99.0), &opts_ix).unwrap();
        assert_eq!(
            s99.unwrap().candidates,
            Some(0),
            "no flight is alive at t=99"
        );

        // filter_inside: a selective x-window catches flights 10..=13.
        let zone = Region::from_ring(rect_ring(9.5, 2.0, 13.5, 8.0));
        let (a, sa) = rel.filter_inside("flight", &zone, &opts_full).unwrap();
        let (b, sb) = rel.filter_inside("flight", &zone, &opts_ix).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let sa = sa.unwrap();
        let sb = sb.unwrap();
        assert_eq!(sa.candidates, None, "full path reports no pruning");
        let cand = sb.candidates.expect("pruned path");
        assert!(
            (4..rel.len()).contains(&cand),
            "pruning kept {cand} of {} tuples",
            rel.len()
        );

        // passes: space × time window.
        let window = mob_base::Interval::closed(t(2.0), t(8.0));
        let (a, _) = rel.passes("flight", &zone, &window, &opts_full).unwrap();
        let (b, sb) = rel.passes("flight", &zone, &window, &opts_ix).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(sb.unwrap().candidates.unwrap() < rel.len());

        // A disjoint window prunes everything.
        let early = mob_base::Interval::closed(t(90.0), t(95.0));
        let (none, s) = rel.passes("flight", &zone, &early, &opts_ix).unwrap();
        assert!(none.is_empty());
        assert_eq!(s.unwrap().candidates, Some(0));
    }

    #[test]
    fn force_without_index_records_a_fallback() {
        let rel = fleet(5);
        let opts = ScanOpts::new().stats(true).index(IndexPolicy::Force);
        let (snap, stats) = rel.snapshot_at(t(5.0), &opts).unwrap();
        let stats = stats.unwrap();
        assert_eq!(stats.index_fallbacks, 1, "forced index, none attached");
        assert_eq!(stats.candidates, None);
        // Auto without an index is a plain full scan, not a fallback.
        let (_, auto_stats) = rel
            .snapshot_at(t(5.0), &ScanOpts::new().stats(true))
            .unwrap();
        assert_eq!(auto_stats.unwrap().index_fallbacks, 0);
        // And the answers are the full-scan answers either way.
        let (full, _) = rel
            .snapshot_at(t(5.0), &ScanOpts::new().index(IndexPolicy::Off))
            .unwrap();
        assert_eq!(snap, full);
    }

    #[test]
    fn index_on_wrong_attr_or_stale_cardinality_falls_back() {
        let mut rel = fleet(6);
        rel.build_index("flight").unwrap();
        // Insert invalidates: the index is dropped, scans run full.
        let extra = rel.tuples()[0].clone();
        rel.insert(extra).unwrap();
        assert!(!rel.has_index());
        let (_, stats) = rel
            .snapshot_at(t(5.0), &ScanOpts::new().stats(true))
            .unwrap();
        assert_eq!(stats.unwrap().index_fallbacks, 0, "Auto, index dropped");

        // Unknown / non-mpoint attributes are rejected at build time.
        assert!(rel.build_index("nope").is_err());
        assert!(rel.build_index("airline").is_err());
    }

    #[test]
    fn quarantined_tuples_survive_pruning_accounting() {
        let mut rel = damaged_fleet(8);
        rel.build_index("flight").unwrap();
        // Fail policy: the pruned scan names the damaged tuple exactly
        // like the full scan does, even when pruning would skip it.
        let tiny = Region::from_ring(rect_ring(90.0, 90.0, 91.0, 91.0));
        let err = rel
            .filter_inside("flight", &tiny, &ScanOpts::new().index(IndexPolicy::Force))
            .unwrap_err();
        assert!(err.to_string().contains("tuple 2"), "{err}");

        // SkipAndRecord: same survivors, same tally, index on or off.
        for policy in [IndexPolicy::Off, IndexPolicy::Force] {
            let opts = ScanOpts::new()
                .stats(true)
                .on_error(OnError::SkipAndRecord)
                .index(policy);
            let (hit, stats) = rel.filter_inside("flight", &tiny, &opts).unwrap();
            assert!(hit.is_empty());
            assert_eq!(stats.unwrap().tuples_quarantined, 1, "{policy:?}");
        }
    }

    #[test]
    fn expired_deadline_fails_typed_before_any_work() {
        let rel = fleet(20);
        let clock = Arc::new(mob_storage::VirtualClock::new());
        // Budget zero: already expired at the first stage boundary.
        let opts = ScanOpts::new()
            .stats(true)
            .deadline(clock.clone(), Duration::ZERO);
        let before = mob_obs::Registry::global()
            .snapshot()
            .get("scan.deadline_exceeded");
        let err = rel.snapshot_at(t(5.0), &opts).unwrap_err();
        match &err {
            ScanError::Deadline {
                what,
                items_done,
                stats,
            } => {
                assert_eq!(*what, "rel.snapshot_at");
                assert_eq!(*items_done, 0, "no tuple was probed");
                let stats = stats.as_ref().expect("stats requested");
                assert_eq!(stats.tuples, 20, "input cardinality is honest");
                if mob_obs::enabled() {
                    assert!(stats.metrics.get("scan.deadline_exceeded") >= 1);
                    let after = mob_obs::Registry::global()
                        .snapshot()
                        .get("scan.deadline_exceeded");
                    assert!(after > before, "registry counter advanced");
                }
            }
            other => panic!("expected a deadline error, got {other:?}"),
        }
        assert!(err.to_string().contains("deadline exceeded"), "{err}");

        // The other operators trip the same way.
        let zone = Region::from_ring(rect_ring(0.0, 0.0, 9.0, 9.0));
        let opts2 = ScanOpts::new().deadline(clock.clone(), Duration::ZERO);
        assert!(matches!(
            rel.filter_inside("flight", &zone, &opts2),
            Err(ScanError::Deadline {
                what: "rel.filter_inside",
                ..
            })
        ));
        let window = mob_base::Interval::closed(t(0.0), t(9.0));
        let opts3 = ScanOpts::new().deadline(clock, Duration::ZERO);
        assert!(matches!(
            rel.passes("flight", &zone, &window, &opts3),
            Err(ScanError::Deadline {
                what: "rel.passes",
                ..
            })
        ));
    }

    /// A clock whose time is the number of `now()` calls made so far —
    /// each deadline check observably advances it, so the expiry lands
    /// at a *deterministic* chunk boundary with no real sleeping.
    struct StepClock {
        calls: std::sync::Mutex<u32>,
        step: Duration,
    }

    impl StepClock {
        fn new(step: Duration) -> StepClock {
            StepClock {
                calls: std::sync::Mutex::new(0),
                step,
            }
        }
    }

    impl mob_storage::Clock for StepClock {
        fn now(&self) -> Duration {
            let mut calls = match self.calls.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            let n = *calls;
            *calls += 1;
            self.step * n
        }

        fn sleep(&self, _d: Duration) {}
    }

    #[test]
    fn deadline_expiring_mid_scan_reports_honest_progress() {
        let rel = fleet(100);
        // One worker over 100 tuples: chunk size 25, four chunks, and
        // `now()` is consulted once building the deadline (t=0), twice
        // at the stage boundaries (t=1,2 steps) and once before each
        // chunk claim (t=3,4,5,...). A budget of 4.5 steps lets chunks
        // 0 and 1 run (claims at 3 and 4 steps) and trips the claim at
        // 5 steps — exactly 50 tuples probed, deterministically.
        let step = Duration::from_millis(10);
        let clock = Arc::new(StepClock::new(step));
        let opts = ScanOpts::new().stats(true).deadline(clock, step * 9 / 2);
        let zone = Region::from_ring(rect_ring(-1.0, -1.0, 200.0, 200.0));
        match rel.filter_inside("flight", &zone, &opts) {
            Err(ScanError::Deadline {
                what,
                items_done,
                stats,
            }) => {
                assert_eq!(what, "rel.filter_inside");
                assert_eq!(items_done, 50, "two of four chunks completed");
                let stats = stats.expect("stats requested");
                assert_eq!(stats.tuples, 100);
                assert!(stats.wall_ns > 0, "partial stats carry real wall time");
            }
            other => panic!("expected a mid-scan deadline, got {other:?}"),
        }

        // The same scan with a clock that never reaches the budget
        // completes normally on the same options shape.
        let roomy = ScanOpts::new().deadline(
            Arc::new(mob_storage::VirtualClock::new()),
            Duration::from_secs(3600),
        );
        let (hit, _) = rel.filter_inside("flight", &zone, &roomy).unwrap();
        assert_eq!(hit.len(), 100);
    }

    #[test]
    fn deadline_answers_match_undeadlined_scans_when_not_expired() {
        let rel = fleet(23);
        let (expect, _) = rel.snapshot_at(t(3.25), &ScanOpts::default()).unwrap();
        let clock = Arc::new(mob_storage::SystemClock::new());
        for threads in [1usize, 4] {
            let opts = ScanOpts::new()
                .threads(threads)
                .deadline(clock.clone(), Duration::from_secs(3600));
            let (got, _) = rel.snapshot_at(t(3.25), &opts).unwrap();
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn scans_agree_across_backends() {
        // The same fleet, in memory and opened from storage, must give
        // identical scan results.
        let rel = fleet(11);
        let mut store = PageStore::new();
        let stored = save_relation(&rel, &mut store).unwrap();
        let opened = Relation::from_stored(&stored, Arc::new(store), OnError::Fail).unwrap();
        let ti = t(6.5);
        let opts = ScanOpts::parallel();
        assert_eq!(
            rel.snapshot_at(ti, &opts).unwrap().0,
            opened.snapshot_at(ti, &opts).unwrap().0
        );
        let zone = Region::from_ring(rect_ring(2.5, 0.0, 6.5, 10.0));
        let (a, _) = rel.filter_inside("flight", &zone, &opts).unwrap();
        let (b, _) = opened.filter_inside("flight", &zone, &opts).unwrap();
        assert_eq!(a.len(), b.len());
        let ids = |r: &Relation| -> Vec<String> {
            r.tuples()
                .iter()
                .filter_map(|tup| tup.at(1).as_str().map(str::to_owned))
                .collect()
        };
        assert_eq!(ids(&a), ids(&b));
    }
}
