//! # `mob-rel` — relational embedding of the moving-objects types
//!
//! Section 2 of the paper embeds the spatio-temporal data types "as
//! attribute types into object-relational or other data models". This
//! crate provides the minimal relational engine needed to run the
//! paper's example queries end to end: typed schemas, relations with
//! selection / projection / extension / nested-loop join, and the two
//! queries of Section 2 implemented verbatim over `mpoint` attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod plan;
pub mod queries;
pub mod relation;
pub mod scan;
pub mod schema;
pub mod value;

pub use catalog::{
    index_rebuilder, load_relation, rebuild_index_root, save_relation, OpenRelOpts, StoredRelation,
};
pub use plan::{Plan, PlanReport, Probe};
pub use queries::{
    close_encounters, closest_approach, closest_approach_seq, long_flights, planes_relation,
    planes_schema, storm_exposure,
};
pub use relation::{RelIndex, Relation, Tuple};
pub use scan::{IndexPolicy, OnError, QueryStats, ScanError, ScanOpts, ScanResult};
pub use schema::Schema;
pub use value::{AttrType, AttrValue, MPointRef, MPointSeq};
