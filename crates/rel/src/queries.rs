//! The two example queries of Section 2, verbatim.
//!
//! ```sql
//! SELECT airline, id FROM planes
//! WHERE airline = "Lufthansa" AND length(trajectory(flight)) > 5000
//!
//! SELECT p.airline, p.id, q.airline, q.id FROM planes p, planes q
//! WHERE val(initial(atmin(distance(p.flight, q.flight)))) < 0.5
//! ```

use crate::relation::{Relation, Tuple};
use crate::schema::Schema;
use crate::value::{AttrType, AttrValue};
use mob_base::{Real, Val};
use mob_core::{distance_seq, trajectory_seq, MovingPoint, UPoint, UnitSeq};

/// The `planes(airline: string, id: string, flight: mpoint)` schema.
pub fn planes_schema() -> Schema {
    Schema::new(&[
        ("airline", AttrType::Str),
        ("id", AttrType::Str),
        ("flight", AttrType::MPoint),
    ])
    .expect("static schema is valid")
}

/// Build the `planes` relation from `(airline, id, flight)` rows.
pub fn planes_relation(rows: Vec<(String, String, MovingPoint)>) -> Relation {
    let mut rel = Relation::new(planes_schema());
    for (airline, id, flight) in rows {
        rel.insert(Tuple::new(vec![
            AttrValue::str(&airline),
            AttrValue::str(&id),
            AttrValue::MPoint(flight),
        ]))
        .expect("rows match the planes schema");
    }
    rel
}

/// Query 1: "Give me all flights of `airline` longer than `min_length`"
/// — `length(trajectory(flight)) > min_length`, a pure projection into
/// space.
///
/// Backend-agnostic: `flight` may be an in-memory
/// [`AttrValue::MPoint`] or a storage-backed
/// [`AttrValue::MPointRef`](crate::value::MPointRef); the
/// [`trajectory_seq`] operation runs over either through
/// [`AttrValue::as_mpoint_seq`].
pub fn long_flights(planes: &Relation, airline: &str, min_length: f64) -> Relation {
    let a = planes.attr("airline");
    let f = planes.attr("flight");
    let min = Real::new(min_length);
    planes
        .select(|t| {
            t.at(a).as_str() == Some(airline)
                && t.at(f)
                    .as_mpoint_seq()
                    .map(|m| trajectory_seq(&m).length() > min)
                    .unwrap_or(false)
        })
        .project(&["airline", "id"])
        .expect("projection attributes exist")
}

/// The scalar distance of closest approach between two flights, generic
/// over both access paths:
/// `val(initial(atmin(distance(p, q))))`, ⊥ when the flights never
/// coexist in time.
pub fn closest_approach_seq<SA, SB>(p: &SA, q: &SB) -> Val<Real>
where
    SA: UnitSeq<Unit = UPoint>,
    SB: UnitSeq<Unit = UPoint>,
{
    distance_seq(p, q).atmin().initial().map(|it| it.val())
}

/// [`closest_approach_seq`] specialized to in-memory moving points.
pub fn closest_approach(p: &MovingPoint, q: &MovingPoint) -> Val<Real> {
    closest_approach_seq(p, q)
}

/// Query 2: "Find all pairs of planes that during their flight came
/// closer to each other than `threshold`" — the spatio-temporal join.
/// Pairs are reported once (`p.id < q.id`), excluding self-pairs.
pub fn close_encounters(planes: &Relation, threshold: f64) -> Relation {
    let id = planes.attr("id");
    let f = planes.attr("flight");
    let thr = Real::new(threshold);
    planes
        .join(planes, |p, q| {
            if p.at(id).as_str() >= q.at(id).as_str() {
                return false;
            }
            let (Some(fp), Some(fq)) = (p.at(f).as_mpoint_seq(), q.at(f).as_mpoint_seq()) else {
                return false;
            };
            match closest_approach_seq(&fp, &fq) {
                Val::Def(d) => d < thr,
                Val::Undef => false,
            }
        })
        .project(&["left.airline", "left.id", "right.airline", "right.id"])
        .expect("projection attributes exist")
}

/// Query 3 (extension): "Which planes fly through the storm, and for how
/// long?" — a lifted `inside` between an `mpoint` attribute and a
/// `moving(region)`, projected to exposure durations. Returns
/// `(airline, id, exposure)` rows for exposed planes, longest first.
pub fn storm_exposure(planes: &Relation, storm: &mob_core::MovingRegion) -> Relation {
    let f = planes.attr("flight");
    planes
        .extend("exposure", AttrType::Real, |t| {
            let dur = t
                .at(f)
                .as_mpoint_seq()
                .map(|m| storm.contains_moving_point(&m).when_true().total_duration())
                .unwrap_or(Real::ZERO);
            AttrValue::Real(Val::Def(dur))
        })
        .expect("fresh attribute name")
        .select(|t| {
            t.values()
                .last()
                .and_then(|v| v.as_real())
                .unwrap_or(Real::ZERO)
                > Real::ZERO
        })
        .order_by(|t| {
            // Longest exposure first; Real is totally ordered.
            std::cmp::Reverse(
                t.values()
                    .last()
                    .and_then(|v| v.as_real())
                    .unwrap_or(Real::ZERO),
            )
        })
        .project(&["airline", "id", "exposure"])
        .expect("projection attributes exist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::t;
    use mob_spatial::pt;

    fn fleet() -> Relation {
        // LH1: a long straight flight (length 8).
        let lh1 = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(4.0), pt(8.0, 0.0))]);
        // LH2: a short hop (length 1).
        let lh2 = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 5.0)), (t(1.0), pt(1.0, 5.0))]);
        // BA1: crosses LH1's path at (4, 0) at t = 2 — a near miss.
        let ba1 = MovingPoint::from_samples(&[(t(0.0), pt(4.0, -4.0)), (t(4.0), pt(4.0, 4.0))]);
        // AF1: far away the whole time.
        let af1 =
            MovingPoint::from_samples(&[(t(0.0), pt(100.0, 100.0)), (t(4.0), pt(101.0, 100.0))]);
        planes_relation(vec![
            ("Lufthansa".into(), "LH1".into(), lh1),
            ("Lufthansa".into(), "LH2".into(), lh2),
            ("British Airways".into(), "BA1".into(), ba1),
            ("Air France".into(), "AF1".into(), af1),
        ])
    }

    #[test]
    fn query1_long_flights() {
        let planes = fleet();
        let result = long_flights(&planes, "Lufthansa", 5.0);
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples()[0].at(1).as_str(), Some("LH1"));
        // Threshold above all lengths: empty.
        assert!(long_flights(&planes, "Lufthansa", 100.0).is_empty());
        // Other airline's flights (AF1 has length 1) are not reported.
        assert!(long_flights(&planes, "Air France", 2.0).is_empty());
    }

    #[test]
    fn query2_close_encounters() {
        let planes = fleet();
        // LH1 and BA1 actually collide at (4,0) at t=2: distance 0.
        let result = close_encounters(&planes, 0.5);
        assert_eq!(result.len(), 1);
        let t0 = &result.tuples()[0];
        assert_eq!(t0.at(1).as_str(), Some("BA1"));
        assert_eq!(t0.at(3).as_str(), Some("LH1"));
        // With a huge threshold every temporally overlapping pair counts
        // (AF1 overlaps in time with everyone; LH2 only until t=1).
        let all = close_encounters(&planes, 1e6);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn query3_storm_exposure() {
        use mob_base::Interval;
        use mob_core::{Mapping, URegion};
        use mob_spatial::rect_ring;
        // A stationary 10×10 "storm" over [0, 4].
        let storm: mob_core::MovingRegion = Mapping::single(
            URegion::interpolate(
                Interval::closed(t(0.0), t(4.0)),
                &rect_ring(0.0, 0.0, 10.0, 10.0),
                &rect_ring(0.0, 0.0, 10.0, 10.0),
            )
            .unwrap(),
        );
        // P1 crosses it for half its flight; P2 stays outside.
        let p1 = MovingPoint::from_samples(&[(t(0.0), pt(-10.0, 5.0)), (t(4.0), pt(10.0, 5.0))]);
        let p2 = MovingPoint::from_samples(&[(t(0.0), pt(50.0, 50.0)), (t(4.0), pt(60.0, 50.0))]);
        let planes = planes_relation(vec![
            ("X".into(), "P1".into(), p1),
            ("X".into(), "P2".into(), p2),
        ]);
        let result = storm_exposure(&planes, &storm);
        assert_eq!(result.len(), 1);
        let row = &result.tuples()[0];
        assert_eq!(row.at(1).as_str(), Some("P1"));
        // Inside for x ∈ [0,10] ⇒ t ∈ [2,4]: exposure 2.
        assert!(row.at(2).as_real().unwrap().approx_eq(Real::new(2.0), 1e-9));
    }

    #[test]
    fn closest_approach_values() {
        let a = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(2.0), pt(2.0, 0.0))]);
        let b = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 3.0)), (t(2.0), pt(2.0, 3.0))]);
        assert_eq!(closest_approach(&a, &b), Val::Def(Real::new(3.0)));
        // Disjoint lifetimes: undefined.
        let c = MovingPoint::from_samples(&[(t(10.0), pt(0.0, 0.0)), (t(11.0), pt(1.0, 0.0))]);
        assert!(closest_approach(&a, &c).is_undef());
    }
}
