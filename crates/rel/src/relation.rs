//! Relations and the operators needed to run the paper's queries:
//! selection, projection, extension (computed attributes) and the
//! nested-loop join used by the spatio-temporal join of Sec 2 — plus
//! the optional per-relation R-tree index consulted by the scan
//! planner ([`crate::plan`]).

use crate::schema::Schema;
use crate::value::{AttrType, AttrValue};
use mob_base::error::{InvariantViolation, Result};
use mob_core::{unit_cubes, RTree};
use mob_storage::index_store::{load_index, StoredIndex};
use mob_storage::PageStore;
use std::sync::Arc;

/// A tuple: attribute values matching a schema.
#[derive(Clone, PartialEq, Debug)]
pub struct Tuple {
    values: Vec<AttrValue>,
}

impl Tuple {
    /// Build from values (validated against the schema on insert).
    pub fn new(values: Vec<AttrValue>) -> Tuple {
        Tuple { values }
    }

    /// The values.
    pub fn values(&self) -> &[AttrValue] {
        &self.values
    }

    /// Value by position.
    pub fn at(&self, idx: usize) -> &AttrValue {
        &self.values[idx]
    }
}

/// A spatio-temporal index over one `moving(point)` attribute of a
/// relation: a packed [`RTree`] over per-unit bounding cubes, plus the
/// tuples that must bypass pruning entirely.
///
/// `always` lists the tuple ids the tree cannot speak for — tuples
/// carrying a quarantined attribute (their outcome is an *error*, which
/// pruning must not hide) or whose indexed attribute yields no unit
/// sequence. They join every candidate set, so the pruned path reports
/// quarantine damage byte-identically to a full scan.
#[derive(Debug)]
pub struct RelIndex {
    pub(crate) attr: usize,
    pub(crate) tree: RTree,
    pub(crate) always: Vec<u32>,
}

/// A materialized relation.
///
/// Equality and hashing consider only schema and tuples; the optional
/// index is an access path, never part of the value.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
    index: Option<Arc<RelIndex>>,
    index_damaged: bool,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.schema == other.schema && self.tuples == other.tuples
    }
}

impl Relation {
    /// An empty relation over a schema.
    pub fn new(schema: Schema) -> Relation {
        Relation::from_parts(schema, Vec::new())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Assemble a relation from parts already known to match (used by
    /// the operators in [`crate::scan`], whose output tuples are
    /// constructed column-by-column from a validated input relation).
    pub(crate) fn from_parts(schema: Schema, tuples: Vec<Tuple>) -> Relation {
        Relation {
            schema,
            tuples,
            index: None,
            index_damaged: false,
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Insert a tuple, checking arity and types.
    pub fn insert(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.values.len() != self.schema.arity() {
            return Err(InvariantViolation::new("relation: tuple arity mismatch"));
        }
        for (v, (name, ty)) in tuple.values.iter().zip(self.schema.attrs()) {
            if v.attr_type() != *ty {
                return Err(InvariantViolation::with_detail(
                    "relation: attribute type mismatch",
                    format!("{name}: expected {ty:?}, got {:?}", v.attr_type()),
                ));
            }
        }
        self.tuples.push(tuple);
        // The tree no longer covers the relation; drop it rather than
        // serve stale candidate sets.
        self.index = None;
        Ok(())
    }

    /// Build (or rebuild) the R-tree index over the `moving(point)`
    /// attribute `attr` from the relation's own unit summaries: one
    /// [`unit_cubes`] entry per unit, bulk-loaded via [`RTree::bulk`].
    ///
    /// Tuples whose indexed attribute cannot be opened (quarantined, or
    /// any attribute quarantined) go to the index's `always` list so
    /// pruned scans still see them.
    ///
    /// # Errors
    ///
    /// Fails when `attr` is unknown or not of type `mpoint`.
    pub fn build_index(&mut self, attr: &str) -> Result<()> {
        let idx = self.index_attr_checked(attr)?;
        let mut entries = Vec::new();
        let mut always = Vec::new();
        for (i, tup) in self.tuples.iter().enumerate() {
            let i = u32::try_from(i).expect("tuple count fits u32");
            if tup.values().iter().any(AttrValue::is_quarantined) {
                always.push(i);
                continue;
            }
            match tup.at(idx as usize).as_mpoint_seq() {
                Some(seq) => entries.extend(unit_cubes(i, &seq)),
                None => always.push(i),
            }
        }
        let tree = RTree::bulk(self.tuples.len(), entries);
        self.index = Some(Arc::new(RelIndex {
            attr: idx as usize,
            tree,
            always,
        }));
        self.index_damaged = false;
        Ok(())
    }

    /// Attach a deserialized index ([`StoredIndex`], the tag-11 root
    /// record) to this relation.
    ///
    /// Returns `Ok(true)` when the index loaded, re-validated and
    /// matched the relation's cardinality. `Ok(false)` means the stored
    /// index was unusable — damaged, forged, or built for a different
    /// cardinality; the relation is marked *index-damaged* so the next
    /// scan records a planner fallback (`index.fallbacks`) and runs
    /// full. Results are never wrong either way.
    ///
    /// # Errors
    ///
    /// Fails only on caller misuse: `attr` unknown or not `mpoint`.
    pub fn attach_stored_index(
        &mut self,
        attr: &str,
        stored: &StoredIndex,
        store: &PageStore,
    ) -> Result<bool> {
        self.attach_stored_index_stale(attr, stored, store, &[], false)
    }

    /// [`Relation::attach_stored_index`] tolerating a *stale* index —
    /// the attach path for relations opened from a [generation] whose
    /// delta chain grew past the committed index.
    ///
    /// The tree may cover a **prefix** of the relation (`num_tuples() <=
    /// len`, requires `allow_partial`): tuples beyond its coverage and
    /// every tuple id in `stale` (objects whose mapping gained units the
    /// tree has never seen) join the `always` list, so pruned scans
    /// still visit them and results stay byte-identical to a full scan —
    /// staleness costs pruning efficiency, never correctness.
    ///
    /// # Errors
    ///
    /// Fails only on caller misuse: `attr` unknown or not `mpoint`.
    ///
    /// [generation]: mob_storage::Generation
    pub fn attach_stored_index_stale(
        &mut self,
        attr: &str,
        stored: &StoredIndex,
        store: &PageStore,
        stale: &[u32],
        allow_partial: bool,
    ) -> Result<bool> {
        let idx = self.index_attr_checked(attr)?;
        let usable = |n: usize| {
            if allow_partial {
                n <= self.len()
            } else {
                n == self.len()
            }
        };
        match load_index(stored, store) {
            Ok(tree) if usable(tree.num_tuples()) => {
                let covered = tree.num_tuples();
                let mut always: Vec<u32> = (0..self.tuples.len())
                    .filter(|&i| {
                        let tup = &self.tuples[i];
                        i >= covered
                            || tup.values().iter().any(AttrValue::is_quarantined)
                            || tup.at(idx as usize).as_mpoint_seq().is_none()
                    })
                    .map(|i| u32::try_from(i).expect("tuple count fits u32"))
                    .collect();
                always.extend(stale.iter().copied().filter(|&i| (i as usize) < self.len()));
                always.sort_unstable();
                always.dedup();
                self.index = Some(Arc::new(RelIndex {
                    attr: idx as usize,
                    tree,
                    always,
                }));
                self.index_damaged = false;
                Ok(true)
            }
            _ => {
                self.index = None;
                self.index_damaged = true;
                Ok(false)
            }
        }
    }

    /// Resolve `attr` and require it to be a `moving(point)` column.
    fn index_attr_checked(&self, attr: &str) -> Result<u32> {
        let idx = self.try_attr(attr)?;
        if self.schema.attrs()[idx].1 != AttrType::MPoint {
            return Err(InvariantViolation::with_detail(
                "relation: index attribute is not a moving point",
                attr.to_string(),
            ));
        }
        Ok(u32::try_from(idx).expect("arity fits u32"))
    }

    /// Record that a requested access path could not be attached (used
    /// by [`Relation::open`] so the next scan logs a planner fallback).
    ///
    /// [`Relation::open`]: crate::Relation::open
    pub(crate) fn mark_index_damaged(&mut self) {
        self.index = None;
        self.index_damaged = true;
    }

    /// The attached index, if any (consulted by the scan planner).
    pub(crate) fn index(&self) -> Option<&RelIndex> {
        self.index.as_deref()
    }

    /// The attached index's R-tree, e.g. for persisting via
    /// [`mob_storage::index_store::save_index`].
    pub fn index_tree(&self) -> Option<&RTree> {
        self.index.as_ref().map(|ix| &ix.tree)
    }

    /// `true` when an index is attached.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// `true` when the last [`Relation::attach_stored_index`] found the
    /// stored index unusable — the planner will record a fallback.
    pub fn index_damaged(&self) -> bool {
        self.index_damaged
    }

    /// Resolve an attribute name to its index, fallibly — the
    /// resolution path every name-taking operator goes through
    /// ([`Relation::project`], the scans in [`crate::scan`]).
    pub fn try_attr(&self, name: &str) -> Result<usize> {
        self.schema.index_of(name).ok_or_else(|| {
            InvariantViolation::with_detail("relation: unknown attribute", name.to_string())
        })
    }

    /// A named accessor closure factory: `rel.attr("flight")` returns the
    /// attribute index for use in predicates.
    ///
    /// Panics on an unknown name — use [`Relation::try_attr`] when the
    /// name is not statically known to be in the schema.
    pub fn attr(&self, name: &str) -> usize {
        self.try_attr(name)
            .unwrap_or_else(|e| panic!("{}", e.to_string()))
    }

    /// Selection: keep the tuples satisfying the predicate.
    pub fn select(&self, pred: impl Fn(&Tuple) -> bool) -> Relation {
        Relation::from_parts(
            self.schema.clone(),
            self.tuples.iter().filter(|t| pred(t)).cloned().collect(),
        )
    }

    /// Projection onto named attributes.
    pub fn project(&self, names: &[&str]) -> Result<Relation> {
        let schema = self.schema.project(names)?;
        let idx: Vec<usize> = names
            .iter()
            .map(|n| self.try_attr(n))
            .collect::<Result<_>>()?;
        let tuples = self
            .tuples
            .iter()
            .map(|t| Tuple::new(idx.iter().map(|&i| t.values[i].clone()).collect()))
            .collect();
        Ok(Relation::from_parts(schema, tuples))
    }

    /// Extension: add a computed attribute (the algebra's `extend`, used
    /// for terms like `length(trajectory(flight))`).
    pub fn extend(
        &self,
        name: &str,
        ty: AttrType,
        f: impl Fn(&Tuple) -> AttrValue,
    ) -> Result<Relation> {
        let schema = self.schema.extend(name, ty)?;
        let mut tuples = Vec::with_capacity(self.tuples.len());
        for t in &self.tuples {
            let v = f(t);
            if v.attr_type() != ty {
                return Err(InvariantViolation::new(
                    "relation: extend closure returned wrong type",
                ));
            }
            let mut values = t.values.clone();
            values.push(v);
            tuples.push(Tuple::new(values));
        }
        Ok(Relation::from_parts(schema, tuples))
    }

    /// Sort by a key extracted from each tuple (the algebra's `sortby`).
    pub fn order_by<K: Ord>(&self, key: impl Fn(&Tuple) -> K) -> Relation {
        let mut tuples = self.tuples.clone();
        tuples.sort_by_key(|t| key(t));
        Relation::from_parts(self.schema.clone(), tuples)
    }

    /// Remove exact duplicate tuples (the algebra's `rdup`).
    pub fn distinct(&self) -> Relation {
        let mut tuples: Vec<Tuple> = Vec::with_capacity(self.tuples.len());
        for t in &self.tuples {
            if !tuples.contains(t) {
                tuples.push(t.clone());
            }
        }
        Relation::from_parts(self.schema.clone(), tuples)
    }

    /// Aggregate a real-valued expression over all tuples (`sum`).
    pub fn sum_real(&self, f: impl Fn(&Tuple) -> f64) -> f64 {
        self.tuples.iter().map(f).sum()
    }

    /// Maximum of a real-valued expression (`max`), `None` when empty.
    pub fn max_real(&self, f: impl Fn(&Tuple) -> f64) -> Option<f64> {
        self.tuples
            .iter()
            .map(f)
            .max_by(|a, b| a.partial_cmp(b).expect("no NaN aggregates"))
    }

    /// Nested-loop join: concatenate all pairs satisfying the predicate.
    /// The predicate sees the two source tuples.
    pub fn join(&self, other: &Relation, pred: impl Fn(&Tuple, &Tuple) -> bool) -> Relation {
        let schema = self.schema.concat(other.schema());
        let mut tuples = Vec::new();
        for a in &self.tuples {
            for b in &other.tuples {
                if pred(a, b) {
                    let mut values = a.values.clone();
                    values.extend(b.values.iter().cloned());
                    tuples.push(Tuple::new(values));
                }
            }
        }
        Relation::from_parts(schema, tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let schema = Schema::new(&[("name", AttrType::Str), ("n", AttrType::Int)]).unwrap();
        let mut rel = Relation::new(schema);
        rel.insert(Tuple::new(vec![AttrValue::str("a"), AttrValue::int(1)]))
            .unwrap();
        rel.insert(Tuple::new(vec![AttrValue::str("b"), AttrValue::int(2)]))
            .unwrap();
        rel.insert(Tuple::new(vec![AttrValue::str("c"), AttrValue::int(3)]))
            .unwrap();
        rel
    }

    #[test]
    fn insert_validates() {
        let mut rel = sample();
        assert!(rel.insert(Tuple::new(vec![AttrValue::int(1)])).is_err()); // arity
        assert!(rel
            .insert(Tuple::new(vec![AttrValue::int(1), AttrValue::int(2)]))
            .is_err()); // type
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn select_project_extend() {
        let rel = sample();
        let n = rel.attr("n");
        let big = rel.select(|t| t.at(n).as_int().unwrap() >= 2);
        assert_eq!(big.len(), 2);
        let names = big.project(&["name"]).unwrap();
        assert_eq!(names.schema().arity(), 1);
        assert_eq!(names.tuples()[0].at(0).as_str(), Some("b"));
        let doubled = rel
            .extend("twice", AttrType::Int, |t| {
                AttrValue::int(t.at(n).as_int().unwrap() * 2)
            })
            .unwrap();
        assert_eq!(doubled.tuples()[2].at(2).as_int(), Some(6));
        // Wrong type from closure.
        assert!(rel
            .extend("bad", AttrType::Real, |_| AttrValue::int(1))
            .is_err());
    }

    #[test]
    fn join_pairs() {
        let rel = sample();
        let n = rel.attr("n");
        // Pairs with strictly increasing n: 3 pairs.
        let pairs = rel.join(&rel, |a, b| {
            a.at(n).as_int().unwrap() < b.at(n).as_int().unwrap()
        });
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs.schema().arity(), 4);
        assert!(pairs.schema().index_of("left.name").is_some());
    }

    #[test]
    fn order_distinct_aggregate() {
        let rel = sample();
        let n = rel.attr("n");
        let ordered = rel.order_by(|t| std::cmp::Reverse(t.at(n).as_int().unwrap()));
        assert_eq!(ordered.tuples()[0].at(n).as_int(), Some(3));
        let doubled = {
            let mut r2 = rel.clone();
            for t in rel.tuples() {
                r2.insert(t.clone()).unwrap();
            }
            r2
        };
        assert_eq!(doubled.len(), 6);
        assert_eq!(doubled.distinct().len(), 3);
        assert_eq!(rel.sum_real(|t| t.at(n).as_int().unwrap() as f64), 6.0);
        assert_eq!(
            rel.max_real(|t| t.at(n).as_int().unwrap() as f64),
            Some(3.0)
        );
        assert_eq!(Relation::new(rel.schema().clone()).max_real(|_| 0.0), None);
    }

    #[test]
    fn empty_relation() {
        let rel = Relation::new(Schema::new(&[("x", AttrType::Int)]).unwrap());
        assert!(rel.is_empty());
        assert!(rel.select(|_| true).is_empty());
    }
}
