//! The **plan** and **prune** stages of the relation-scan pipeline.
//!
//! Every relation scan now runs in three explicit stages:
//!
//! 1. **plan** ([`plan_scan`]) — inspect the [`ScanOpts`] index policy
//!    and whatever index the relation carries, and choose an access
//!    path: a full scan, or a pruned scan over index candidates.
//! 2. **prune** ([`Plan::candidates`]) — consult the R-tree for the
//!    candidate tuple set of the query's probe volume, merge in the
//!    tuples the index cannot speak for, and produce a membership mask.
//! 3. **execute** (in [`crate::scan`]) — run the existing batch kernels
//!    over candidates only, in input-tuple order.
//!
//! The planner is *policy*: it may only ever trade work for work. A
//! damaged, missing or mismatched index degrades to a full scan — a
//! recorded event (`index.fallbacks`), never a wrong answer.

use crate::relation::Relation;
use crate::scan::IndexPolicy;
use mob_base::Instant;
use mob_core::Candidates;
use mob_spatial::{Cube, Rect};

/// The probe volume of one scan: what part of (x, y, t) space the query
/// actually touches. Built by the scan operators, consumed by the prune
/// stage.
#[derive(Clone, Copy, Debug)]
pub enum Probe {
    /// A time slice (`snapshot_at`): everything alive at the instant.
    At(Instant),
    /// A spatial window over all time (`filter_inside`).
    Window(Rect),
    /// A space × time window (`passes`).
    Volume(Cube),
}

/// Which attribute the scan needs the index to cover.
#[derive(Clone, Copy, Debug)]
pub enum AttrNeed {
    /// The scan probes one specific attribute (by schema position).
    Exactly(usize),
    /// The scan probes *every* `mpoint` attribute (`snapshot_at`) — an
    /// index is only usable when the indexed attribute is the sole one.
    AllMPoints,
}

/// The access path chosen by the planner.
#[derive(Debug)]
pub enum Plan {
    /// Touch every tuple.
    Full,
    /// Touch index candidates only.
    Pruned {
        /// `mask[i]` — is tuple `i` a candidate?
        mask: Vec<bool>,
        /// Number of candidate tuples (`mask.iter().filter(|c| **c)`).
        count: usize,
        /// R-tree nodes visited while pruning.
        nodes_visited: u64,
    },
}

/// The planner's summary, threaded into `QueryStats` and the metrics
/// registry by the execute stage.
#[derive(Debug, Default)]
pub struct PlanReport {
    /// Candidate tuples after pruning; `None` on the full path.
    pub candidates: Option<usize>,
    /// 1 when the scan wanted an index but had to fall back.
    pub fallbacks: u64,
}

/// Stage 1 + 2: choose the access path for a scan of `rel` probing
/// `probe` through `need`, then prune.
///
/// Fallback rules (each recorded in the `index.fallbacks` metric and
/// [`PlanReport::fallbacks`]):
///
/// * the relation is marked index-damaged (a stored index failed to
///   load) and the policy still wants an index;
/// * an index is attached but unusable — wrong attribute, or stale
///   cardinality;
/// * [`IndexPolicy::Force`] with no index at all.
///
/// [`IndexPolicy::Auto`] with no index (and no damage) is a plain full
/// scan, not a fallback — there was nothing to fall back *from*.
pub fn plan_scan(
    rel: &Relation,
    probe: &Probe,
    need: AttrNeed,
    policy: IndexPolicy,
) -> (Plan, PlanReport) {
    let _span = mob_obs::span("scan.plan");
    if policy == IndexPolicy::Off {
        return (Plan::Full, PlanReport::default());
    }
    let fallback = || {
        mob_obs::metric!("index.fallbacks").add(1);
        (
            Plan::Full,
            PlanReport {
                candidates: None,
                fallbacks: 1,
            },
        )
    };
    let Some(ix) = rel.index() else {
        if rel.index_damaged() || policy == IndexPolicy::Force {
            return fallback();
        }
        return (Plan::Full, PlanReport::default());
    };
    let usable = ix.tree.num_tuples() == rel.len()
        && match need {
            AttrNeed::Exactly(attr) => ix.attr == attr,
            AttrNeed::AllMPoints => {
                use crate::value::AttrType;
                rel.schema()
                    .attrs()
                    .iter()
                    .enumerate()
                    .all(|(i, (_, ty))| *ty != AttrType::MPoint || i == ix.attr)
            }
        };
    if !usable {
        return fallback();
    }

    // Stage 2: prune.
    let _span = mob_obs::span("scan.prune");
    let found: Candidates = match probe {
        Probe::At(t) => ix.tree.query_instant(*t),
        Probe::Window(rect) => ix.tree.query_rect(rect),
        Probe::Volume(cube) => ix.tree.query(cube),
    };
    let mut mask = vec![false; rel.len()];
    for &t in found.tuples.iter().chain(ix.always.iter()) {
        mask[t as usize] = true;
    }
    let count = mask.iter().filter(|c| **c).count();
    mob_obs::metric!("index.nodes_visited").add(found.nodes_visited);
    mob_obs::metric!("index.candidates").add(count as u64);
    (
        Plan::Pruned {
            mask,
            count,
            nodes_visited: found.nodes_visited,
        },
        PlanReport {
            candidates: Some(count),
            fallbacks: 0,
        },
    )
}

impl Plan {
    /// Is tuple `i` a candidate under this plan?
    pub fn is_candidate(&self, i: usize) -> bool {
        match self {
            Plan::Full => true,
            Plan::Pruned { mask, .. } => mask.get(i).copied().unwrap_or(true),
        }
    }
}
