//! Relation persistence: tuples as fixed root records plus database
//! arrays, exactly the shape Sec 4 prescribes for attribute data types
//! ("values are placed under control of the DBMS into memory", each
//! value a root record inside the tuple plus arrays inline or in page
//! chains).

use crate::relation::{Relation, Tuple};
use crate::scan::OnError;
use crate::schema::Schema;
use crate::value::{AttrType, AttrValue, MPointRef};
use mob_base::error::{DecodeError, DecodeResult, InvariantViolation, Result};
use mob_base::{Real, Text, Val};
use mob_storage::line_store::{
    load_line, load_points, save_line, save_points, StoredLine, StoredPoints,
};
use mob_storage::mapping_store::{
    save_mbool, save_mpoint, save_mreal, save_mregion, StoredMRegion, StoredMapping,
};
use mob_storage::region_store::{load_region, save_region, StoredRegion};
use mob_storage::{
    open_mbool, open_mpoint, open_mreal, open_mregion, Generation, PageStore, RootRecord,
    TupleLayout, Verify,
};
use std::sync::Arc;

/// One stored attribute value: the persistent form of [`AttrValue`].
///
/// Scalar variants live entirely in the (conceptual) root record; the
/// constructed types carry their root metadata plus database arrays.
#[derive(Clone, Debug, PartialEq)]
pub enum StoredAttr {
    /// `int` (⊥ as `None`).
    Int(Option<i64>),
    /// `real`.
    Real(Option<f64>),
    /// `string`.
    Str(Option<String>),
    /// `bool`.
    Bool(Option<bool>),
    /// `instant`.
    Instant(Option<f64>),
    /// `point`.
    Point(Option<(f64, f64)>),
    /// `points` value.
    Points(StoredPoints),
    /// `line` value.
    Line(StoredLine),
    /// `region` value.
    Region(StoredRegion),
    /// `moving(point)`.
    MPoint(StoredMapping),
    /// `moving(real)`.
    MReal(StoredMapping),
    /// `moving(bool)`.
    MBool(StoredMapping),
    /// `moving(region)`.
    MRegion(StoredMRegion),
}

/// A stored tuple: one stored attribute per schema column.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredTuple {
    /// The stored attributes in schema order.
    pub attrs: Vec<StoredAttr>,
}

/// A stored relation: schema (by name/type) plus stored tuples.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredRelation {
    /// Attribute names and types.
    pub schema: Vec<(String, AttrType)>,
    /// The stored tuples.
    pub tuples: Vec<StoredTuple>,
}

fn save_attr(v: &AttrValue, store: &mut PageStore) -> Result<StoredAttr> {
    Ok(match v {
        AttrValue::Int(x) => StoredAttr::Int(x.as_ref().into_option().copied()),
        AttrValue::Real(x) => StoredAttr::Real(x.as_ref().into_option().map(|r| r.get())),
        AttrValue::Str(x) => {
            StoredAttr::Str(x.as_ref().into_option().map(|t| t.as_str().to_string()))
        }
        AttrValue::Bool(x) => StoredAttr::Bool(x.as_ref().into_option().copied()),
        AttrValue::Instant(x) => StoredAttr::Instant(x.as_ref().into_option().map(|i| i.as_f64())),
        AttrValue::Point(x) => {
            StoredAttr::Point(x.as_ref().into_option().map(|p| (p.x.get(), p.y.get())))
        }
        AttrValue::Points(ps) => StoredAttr::Points(save_points(ps, store)),
        AttrValue::Line(l) => StoredAttr::Line(save_line(l, store)),
        AttrValue::Region(r) => StoredAttr::Region(save_region(r, store)),
        AttrValue::MPoint(m) => StoredAttr::MPoint(save_mpoint(m, store)),
        // Re-saving a storage-backed reference copies its root record;
        // the unit bytes are rewritten into the target store.
        AttrValue::MPointRef(r) => StoredAttr::MPoint(save_mpoint(&r.materialize(), store)),
        AttrValue::MReal(m) => StoredAttr::MReal(save_mreal(m, store)),
        AttrValue::MBool(m) => StoredAttr::MBool(save_mbool(m, store)),
        AttrValue::MRegion(m) => StoredAttr::MRegion(save_mregion(m, store)),
        // A quarantined value has no bytes to save: persisting it would
        // silently launder damage into a "clean" store.
        AttrValue::Quarantined { ty, detail } => {
            return Err(InvariantViolation::with_detail(
                "save: attribute value is quarantined",
                format!("{ty:?}: {detail}"),
            ))
        }
    })
}

/// The schema type a stored attribute decodes to (used to type the
/// [`AttrValue::Quarantined`] placeholder when decoding is impossible).
fn stored_attr_type(a: &StoredAttr) -> AttrType {
    match a {
        StoredAttr::Int(_) => AttrType::Int,
        StoredAttr::Real(_) => AttrType::Real,
        StoredAttr::Str(_) => AttrType::Str,
        StoredAttr::Bool(_) => AttrType::Bool,
        StoredAttr::Instant(_) => AttrType::Instant,
        StoredAttr::Point(_) => AttrType::Point,
        StoredAttr::Points(_) => AttrType::Points,
        StoredAttr::Line(_) => AttrType::Line,
        StoredAttr::Region(_) => AttrType::Region,
        StoredAttr::MPoint(_) => AttrType::MPoint,
        StoredAttr::MReal(_) => AttrType::MReal,
        StoredAttr::MBool(_) => AttrType::MBool,
        StoredAttr::MRegion(_) => AttrType::MRegion,
    }
}

fn load_attr(a: &StoredAttr, store: &PageStore) -> DecodeResult<AttrValue> {
    Ok(match a {
        StoredAttr::Int(x) => AttrValue::Int(x.map(Val::Def).unwrap_or(Val::Undef)),
        StoredAttr::Real(x) => {
            AttrValue::Real(x.map(|v| Val::Def(Real::new(v))).unwrap_or(Val::Undef))
        }
        StoredAttr::Str(x) => AttrValue::Str(match x {
            Some(s) => Val::Def(Text::try_new(s)?),
            None => Val::Undef,
        }),
        StoredAttr::Bool(x) => AttrValue::Bool(x.map(Val::Def).unwrap_or(Val::Undef)),
        StoredAttr::Instant(x) => AttrValue::Instant(
            x.map(|v| Val::Def(mob_base::Instant::from_f64(v)))
                .unwrap_or(Val::Undef),
        ),
        StoredAttr::Point(x) => AttrValue::Point(
            x.map(|(px, py)| Val::Def(mob_spatial::Point::from_f64(px, py)))
                .unwrap_or(Val::Undef),
        ),
        StoredAttr::Points(ps) => AttrValue::Points(load_points(ps, store)?),
        StoredAttr::Line(l) => AttrValue::Line(load_line(l, store)?),
        StoredAttr::Region(r) => AttrValue::Region(load_region(r, store)?),
        StoredAttr::MPoint(m) => {
            AttrValue::MPoint(open_mpoint(m, store, Verify::Full)?.materialize_validated()?)
        }
        StoredAttr::MReal(m) => {
            AttrValue::MReal(open_mreal(m, store, Verify::Full)?.materialize_validated()?)
        }
        StoredAttr::MBool(m) => {
            AttrValue::MBool(open_mbool(m, store, Verify::Full)?.materialize_validated()?)
        }
        StoredAttr::MRegion(m) => {
            AttrValue::MRegion(open_mregion(m, store, Verify::Full)?.materialize_validated()?)
        }
    })
}

/// Persist a relation into the page store.
pub fn save_relation(rel: &Relation, store: &mut PageStore) -> Result<StoredRelation> {
    let mut tuples = Vec::with_capacity(rel.len());
    for t in rel.tuples() {
        let attrs = t
            .values()
            .iter()
            .map(|v| save_attr(v, store))
            .collect::<Result<_>>()?;
        tuples.push(StoredTuple { attrs });
    }
    Ok(StoredRelation {
        schema: rel.schema().attrs().to_vec(),
        tuples,
    })
}

/// Load a relation back from the page store.
///
/// Decoding is fully untrusted: any structural damage in the stored
/// records surfaces as a [`mob_base::DecodeError`], never a panic.
pub fn load_relation(stored: &StoredRelation, store: &PageStore) -> DecodeResult<Relation> {
    let attrs: Vec<(&str, AttrType)> = stored
        .schema
        .iter()
        .map(|(n, t)| (n.as_str(), *t))
        .collect();
    let mut rel = Relation::new(Schema::new(&attrs)?);
    for t in &stored.tuples {
        let values = t
            .attrs
            .iter()
            .map(|a| load_attr(a, store))
            .collect::<DecodeResult<_>>()?;
        rel.insert(Tuple::new(values))?;
    }
    Ok(rel)
}

/// Options for [`Relation::open`] — how a [`Generation`]'s catalog of
/// `moving(point)` roots becomes a queryable relation.
///
/// ```
/// use mob_rel::{OnError, OpenRelOpts};
///
/// let opts = OpenRelOpts::new()
///     .name_attr("flight")
///     .mpoint_attr("trip")
///     .on_error(OnError::SkipAndRecord)
///     .index("fleet/index");
/// assert_eq!(opts.index_root(), Some("fleet/index"));
/// ```
#[derive(Clone, Debug)]
pub struct OpenRelOpts {
    name_attr: String,
    mpoint_attr: String,
    on_error: OnError,
    index: Option<String>,
}

impl Default for OpenRelOpts {
    fn default() -> Self {
        OpenRelOpts::new()
    }
}

impl OpenRelOpts {
    /// Defaults: schema `(name: string, trip: mpoint)`, [`OnError::Fail`],
    /// no index attach.
    #[must_use]
    pub fn new() -> OpenRelOpts {
        OpenRelOpts {
            name_attr: "name".to_string(),
            mpoint_attr: "trip".to_string(),
            on_error: OnError::Fail,
            index: None,
        }
    }

    /// Name of the string attribute carrying the root names.
    #[must_use]
    pub fn name_attr(mut self, name: &str) -> OpenRelOpts {
        self.name_attr = name.to_string();
        self
    }

    /// Name of the `moving(point)` attribute.
    #[must_use]
    pub fn mpoint_attr(mut self, name: &str) -> OpenRelOpts {
        self.mpoint_attr = name.to_string();
        self
    }

    /// Damage policy for quarantined roots (see [`Relation::from_stored`]).
    #[must_use]
    pub fn on_error(mut self, policy: OnError) -> OpenRelOpts {
        self.on_error = policy;
        self
    }

    /// Attach the stored index committed under this root name (a tag-11
    /// [`RootRecord::Index`] entry). A missing, damaged, or unusable
    /// index marks the relation *index-damaged* — scans fall back to
    /// full, recording `index.fallbacks` — and never fails the open.
    #[must_use]
    pub fn index(mut self, root_name: &str) -> OpenRelOpts {
        self.index = Some(root_name.to_string());
        self
    }

    /// The configured index root name, if any.
    #[must_use]
    pub fn index_root(&self) -> Option<&str> {
        self.index.as_deref()
    }
}

impl Relation {
    /// Open a stored relation for **query-in-place**: scalar and small
    /// attributes are loaded eagerly (they live in the root record
    /// anyway), but every `moving(point)` attribute becomes an
    /// [`AttrValue::MPointRef`] — a handle that decodes unit records
    /// lazily from the shared page store when a query probes it. This is
    /// the scan path of the query-over-storage design: opening the
    /// relation runs **one** structural verification scan per flight
    /// (untrusted bytes are never probed blindly), after which a
    /// single-instant query costs `O(log n)` record reads instead of
    /// materializing all `n` units.
    #[deprecated(note = "use Relation::from_stored(stored, store, OnError::Fail)")]
    pub fn from_store(stored: &StoredRelation, store: Arc<PageStore>) -> DecodeResult<Relation> {
        Relation::from_stored(stored, store, OnError::Fail)
    }

    /// [`Relation::from_stored`] under its pre-MVCC name.
    #[deprecated(note = "use Relation::from_stored")]
    pub fn from_store_with(
        stored: &StoredRelation,
        store: Arc<PageStore>,
        on_error: OnError,
    ) -> DecodeResult<Relation> {
        Relation::from_stored(stored, store, on_error)
    }

    /// Open a pinned [`Generation`] as a relation: one tuple per
    /// `moving(point)` root, `(name, mpoint-ref)` in catalog order, the
    /// unit arrays decoded lazily from the generation's page store.
    /// Entries of other kinds (indexes, scalars) are skipped — they are
    /// catalog metadata, not fleet members.
    ///
    /// Because a [`Generation`] is immutable, the relation keeps
    /// answering queries bit-for-bit identically while a writer ingests
    /// deltas and compacts newer generations of the same store.
    ///
    /// Damage policy ([`OpenRelOpts::on_error`]): quarantined roots
    /// (recovered degraded) abort under [`OnError::Fail`] or become
    /// [`AttrValue::Quarantined`] placeholders under
    /// [`OnError::SkipAndRecord`], exactly like [`Relation::from_stored`].
    ///
    /// Index attach ([`OpenRelOpts::index`]): the stored tree may be
    /// *stale* — built before later deltas appended units or objects.
    /// Tuples the tree cannot speak for (ids past its coverage, roots
    /// listed stale by the generation, quarantined tuples) bypass
    /// pruning via the index's `always` list, so a stale index costs
    /// pruning efficiency, never correctness. An unusable index marks
    /// the relation index-damaged (next scan records `index.fallbacks`).
    ///
    /// # Errors
    ///
    /// Structural damage in the root records, or quarantine under
    /// [`OnError::Fail`].
    pub fn open(generation: &Generation, opts: &OpenRelOpts) -> DecodeResult<Relation> {
        let schema = Schema::new(&[
            (opts.name_attr.as_str(), AttrType::Str),
            (opts.mpoint_attr.as_str(), AttrType::MPoint),
        ])
        .map_err(|e| DecodeError::BadStructure {
            what: "relation open",
            detail: e.to_string(),
        })?;
        let store = generation.store_arc();
        let mut rel = Relation::new(schema);
        let mut stale_ids: Vec<u32> = Vec::new();
        let mut stored_ix: Option<&mob_storage::index_store::StoredIndex> = None;
        let mut tuple_id = 0u32;
        for (name, root) in generation.entries() {
            match root {
                RootRecord::MPoint(m) => {
                    let value = match MPointRef::new(store.clone(), m.clone()) {
                        Ok(r) => AttrValue::MPointRef(r),
                        Err(e @ DecodeError::Quarantined { .. })
                            if opts.on_error == OnError::SkipAndRecord =>
                        {
                            mob_obs::metric!("rel.attrs_quarantined").add(1);
                            AttrValue::Quarantined {
                                ty: AttrType::MPoint,
                                detail: e.to_string(),
                            }
                        }
                        Err(e) => return Err(e),
                    };
                    if generation.is_stale(name) {
                        stale_ids.push(tuple_id);
                    }
                    let name_val =
                        AttrValue::Str(mob_base::Val::Def(mob_base::Text::try_new(name)?));
                    rel.insert(Tuple::new(vec![name_val, value])).map_err(|e| {
                        DecodeError::BadStructure {
                            what: "relation open",
                            detail: e.to_string(),
                        }
                    })?;
                    tuple_id = tuple_id.saturating_add(1);
                }
                RootRecord::Index(ix) if opts.index.as_deref() == Some(name.as_str()) => {
                    stored_ix = Some(ix);
                }
                _ => {}
            }
        }
        if let Some(want) = &opts.index {
            let attached = match stored_ix {
                Some(ix) => rel
                    .attach_stored_index_stale(
                        &opts.mpoint_attr,
                        ix,
                        generation.store(),
                        &stale_ids,
                        true,
                    )
                    .map_err(|e| DecodeError::BadStructure {
                        what: "relation open",
                        detail: e.to_string(),
                    })?,
                None => false,
            };
            if !attached {
                // Missing or unusable: fall back loudly, never fail the
                // open because of an access path.
                rel.mark_index_damaged();
                mob_obs::metric!("rel.index_unusable").add(1);
                let _ = want;
            }
        }
        Ok(rel)
    }

    /// Open a [`StoredRelation`] with an explicit damage policy — the
    /// open path for hand-assembled catalogs and stores recovered
    /// **degraded** (bit rot quarantined some page-store blobs).
    ///
    /// Under [`OnError::Fail`] any quarantined attribute aborts the
    /// open. Under [`OnError::SkipAndRecord`] a quarantined attribute
    /// becomes an [`AttrValue::Quarantined`] placeholder — the relation
    /// opens with every tuple present, healthy values fully queryable,
    /// and the scans ([`Relation::snapshot_at`],
    /// [`Relation::filter_inside`]) apply their own `on_error` policy to
    /// the damaged tuples. Each placeholder advances the
    /// `rel.attrs_quarantined` registry counter.
    ///
    /// # Errors
    ///
    /// Structural damage (anything other than
    /// [`DecodeError::Quarantined`]) always fails: degradation covers
    /// values whose bytes are *known missing*, not records that decode
    /// to nonsense.
    pub fn from_stored(
        stored: &StoredRelation,
        store: Arc<PageStore>,
        on_error: OnError,
    ) -> DecodeResult<Relation> {
        let attrs: Vec<(&str, AttrType)> = stored
            .schema
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect();
        let mut rel = Relation::new(Schema::new(&attrs)?);
        for t in &stored.tuples {
            let mut values = Vec::with_capacity(t.attrs.len());
            for a in &t.attrs {
                let loaded = match a {
                    StoredAttr::MPoint(m) => {
                        MPointRef::new(store.clone(), m.clone()).map(AttrValue::MPointRef)
                    }
                    other => load_attr(other, &store),
                };
                values.push(match loaded {
                    Ok(v) => v,
                    Err(e @ DecodeError::Quarantined { .. })
                        if on_error == OnError::SkipAndRecord =>
                    {
                        mob_obs::metric!("rel.attrs_quarantined").add(1);
                        AttrValue::Quarantined {
                            ty: stored_attr_type(a),
                            detail: e.to_string(),
                        }
                    }
                    Err(e) => return Err(e),
                });
            }
            rel.insert(Tuple::new(values))?;
        }
        Ok(rel)
    }
}

/// Account the physical layout of a stored tuple (how many bytes sit in
/// the tuple itself vs. in external page chains).
pub fn tuple_layout(t: &StoredTuple, store: &PageStore) -> TupleLayout {
    // Scalar root fields: conservatively 16 bytes each (value + defined
    // flag + padding), plus per-constructed-value root metadata.
    let mut layout = TupleLayout::with_root(16 * t.attrs.len());
    let mut add = |a: &mob_storage::SavedArray| {
        layout.add_array(a, store);
    };
    for a in &t.attrs {
        match a {
            StoredAttr::Int(_)
            | StoredAttr::Real(_)
            | StoredAttr::Str(_)
            | StoredAttr::Bool(_)
            | StoredAttr::Instant(_)
            | StoredAttr::Point(_) => {}
            StoredAttr::Points(ps) => add(&ps.points),
            StoredAttr::Line(l) => add(&l.halfsegs),
            StoredAttr::Region(r) => {
                add(&r.halfsegments);
                add(&r.cycles);
                add(&r.faces);
            }
            StoredAttr::MPoint(m) | StoredAttr::MReal(m) | StoredAttr::MBool(m) => add(&m.units),
            StoredAttr::MRegion(m) => {
                add(&m.units);
                add(&m.msegments);
                add(&m.mcycles);
                add(&m.mfaces);
            }
        }
    }
    layout
}

/// Rebuild the R-tree index of a pinned [`Generation`] from scratch:
/// open the generation as a relation (no stale index attached), bulk-load
/// a fresh tree over every `moving(point)` root, and return a new
/// [`StoreFile`] carrying the same data plus the tree committed under
/// `index_root` (a tag-11 [`RootRecord::Index`] entry).
///
/// Returns `Ok(None)` when the generation holds no `moving(point)`
/// roots — there is nothing to index, so the caller (typically the
/// maintenance supervisor) skips the commit.
///
/// # Errors
///
/// Structural damage opening the generation. Quarantined roots do *not*
/// fail the rebuild: they open under [`OnError::SkipAndRecord`] and the
/// tree's `always` list keeps them visible to pruned scans.
///
/// [`StoreFile`]: mob_storage::StoreFile
pub fn rebuild_index_root(
    generation: &Generation,
    opts: &OpenRelOpts,
    index_root: &str,
) -> DecodeResult<Option<mob_storage::StoreFile>> {
    let open = OpenRelOpts::new()
        .name_attr(&opts.name_attr)
        .mpoint_attr(&opts.mpoint_attr)
        .on_error(OnError::SkipAndRecord);
    let mut rel = Relation::open(generation, &open)?;
    if rel.is_empty() {
        return Ok(None);
    }
    rel.build_index(&opts.mpoint_attr)
        .map_err(|e| DecodeError::BadStructure {
            what: "index rebuild",
            detail: e.to_string(),
        })?;
    let tree = rel.index_tree().ok_or_else(|| DecodeError::BadStructure {
        what: "index rebuild",
        detail: "build_index left no tree attached".to_string(),
    })?;
    let mut file = generation.to_store_file();
    let stored = mob_storage::save_index(tree, file.store_mut());
    file.put(index_root, RootRecord::Index(stored));
    mob_obs::metric!("rel.index_rebuilt").add(1);
    Ok(Some(file))
}

/// Package [`rebuild_index_root`] as a maintenance-supervisor
/// [`Rebuilder`]: the closure the supervisor runs (under its retry
/// policy) after every compaction, closing the stale-index degradation
/// window — scans over the next generation prune through a tree that
/// covers every appended unit again.
///
/// [`Rebuilder`]: mob_storage::Rebuilder
pub fn index_rebuilder(opts: OpenRelOpts, index_root: String) -> mob_storage::Rebuilder {
    Arc::new(move |generation: &Generation| rebuild_index_root(generation, &opts, &index_root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{close_encounters, long_flights, planes_relation};
    use mob_base::t;
    use mob_core::MovingPoint;
    use mob_spatial::pt;

    fn fleet() -> Relation {
        planes_relation(vec![
            (
                "Lufthansa".into(),
                "LH1".into(),
                MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(4.0), pt(8.0, 0.0))]),
            ),
            (
                "KLM".into(),
                "KL1".into(),
                MovingPoint::from_samples(&[(t(0.0), pt(4.0, -4.0)), (t(4.0), pt(4.0, 4.0))]),
            ),
        ])
    }

    #[test]
    fn relation_roundtrip() {
        let rel = fleet();
        let mut store = PageStore::new();
        let stored = save_relation(&rel, &mut store).unwrap();
        assert_eq!(stored.tuples.len(), 2);
        let back = load_relation(&stored, &store).unwrap();
        assert_eq!(back, rel);
        // Queries agree on original and reloaded data.
        assert_eq!(
            long_flights(&rel, "Lufthansa", 5.0),
            long_flights(&back, "Lufthansa", 5.0)
        );
        assert_eq!(close_encounters(&rel, 1.0), close_encounters(&back, 1.0));
    }

    #[test]
    fn mixed_attribute_relation_roundtrip() {
        use mob_spatial::{rect_ring, Region};
        let schema = Schema::new(&[
            ("name", AttrType::Str),
            ("count", AttrType::Int),
            ("zone", AttrType::Region),
        ])
        .unwrap();
        let mut rel = Relation::new(schema);
        rel.insert(Tuple::new(vec![
            AttrValue::str("alpha"),
            AttrValue::int(7),
            AttrValue::Region(Region::from_ring(rect_ring(0.0, 0.0, 3.0, 3.0))),
        ]))
        .unwrap();
        rel.insert(Tuple::new(vec![
            AttrValue::Str(Val::Undef),
            AttrValue::Int(Val::Undef),
            AttrValue::Region(Region::empty()),
        ]))
        .unwrap();
        let mut store = PageStore::new();
        let stored = save_relation(&rel, &mut store).unwrap();
        let back = load_relation(&stored, &store).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn layout_accounting() {
        let rel = fleet();
        let mut store = PageStore::new();
        let stored = save_relation(&rel, &mut store).unwrap();
        let layout = tuple_layout(&stored.tuples[0], &store);
        assert!(layout.tuple_bytes() > 0);
        // Small flights fit inline entirely.
        assert!(layout.fully_inline());
    }

    #[test]
    fn every_attribute_type_roundtrips() {
        use mob_core::{MovingBool, MovingReal, MovingRegion};
        use mob_spatial::{rect_ring, Line, Points, Region};
        let schema = Schema::new(&[
            ("p", AttrType::Point),
            ("ps", AttrType::Points),
            ("ti", AttrType::Instant),
            ("l", AttrType::Line),
            ("mr", AttrType::MReal),
            ("mb", AttrType::MBool),
            ("mrg", AttrType::MRegion),
            ("z", AttrType::Region),
        ])
        .unwrap();
        let mp = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(2.0), pt(2.0, 2.0))]);
        let region = Region::from_ring(rect_ring(0.0, 0.0, 4.0, 4.0));
        let mregion: MovingRegion = mob_core::Mapping::single(
            mob_core::URegion::stationary(mob_base::Interval::closed(t(0.0), t(2.0)), &region)
                .unwrap(),
        );
        let mreal: MovingReal = mp.speed();
        let mbool: MovingBool = mp.inside_region(&region);
        let mut rel = Relation::new(schema);
        rel.insert(Tuple::new(vec![
            AttrValue::Point(Val::Def(pt(1.0, 1.0))),
            AttrValue::Points(Points::from_points(vec![pt(0.0, 0.0), pt(1.0, 2.0)])),
            AttrValue::Instant(Val::Def(t(3.5))),
            AttrValue::Line(Line::single(mob_spatial::seg(0.0, 0.0, 1.0, 1.0))),
            AttrValue::MReal(mreal),
            AttrValue::MBool(mbool),
            AttrValue::MRegion(mregion),
            AttrValue::Region(region),
        ]))
        .unwrap();
        let mut store = PageStore::new();
        let stored = save_relation(&rel, &mut store).unwrap();
        let back = load_relation(&stored, &store).unwrap();
        // MRegion compares by unit structure; the rest must be identical.
        assert_eq!(back.schema(), rel.schema());
        assert_eq!(back.len(), rel.len());
        for (a, b) in back.tuples()[0]
            .values()
            .iter()
            .zip(rel.tuples()[0].values())
        {
            match (a, b) {
                (AttrValue::MRegion(x), AttrValue::MRegion(y)) => {
                    assert_eq!(x.num_units(), y.num_units());
                    assert_eq!(
                        x.at_instant(t(1.0)).unwrap().area(),
                        y.at_instant(t(1.0)).unwrap().area()
                    );
                }
                _ => assert_eq!(a, b),
            }
        }
        let layout = tuple_layout(&stored.tuples[0], &store);
        assert!(layout.tuple_bytes() > 0);
    }
}
