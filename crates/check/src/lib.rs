//! # `mob-check` — deep auditing of serialized moving-object values
//!
//! The storage layer already verifies structure when a value is opened
//! (`open_*` constructors) and decoded (`load_array`); this crate drives
//! those checks over a whole [`StoreFile`] and reports per-entry
//! results, so a store produced by one process can be audited by
//! another without trusting a single byte of it:
//!
//! 1. **decode** the store file itself (magic, blob table, catalog);
//! 2. **open** each moving entry as a storage-backed `MappingView`
//!    (structural verification: layouts, record bounds, interval order);
//! 3. **deep-validate** the view (value well-formedness + canonicity,
//!    Sec 3.2.4) without materializing it;
//! 4. **load** the value into memory and re-validate with the in-memory
//!    [`Validate`] impls — the two paths must agree.
//!
//! Every failure is a reported [`String`]; no input, however corrupt,
//! may panic the auditor (the corruption property tests in
//! `mob-storage` enforce this for the decode layer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mob_base::Validate;
use mob_storage::store_file::RootRecord;
use mob_storage::{
    index_store, line_store, mapping_store, range_store, region_store, view, PageStore, StoreFile,
};

/// Audit outcome for one catalog entry.
#[derive(Debug)]
pub struct EntryReport {
    /// Entry name (catalog key).
    pub name: String,
    /// Value kind (`mpoint`, `region`, …).
    pub kind: &'static str,
    /// Number of units (moving kinds) or components (static kinds)
    /// found, when decodable.
    pub count: Option<usize>,
    /// `Ok(())` or the first failure, phase-tagged (`open:`, `validate:`,
    /// `load:`).
    pub result: Result<(), String>,
}

impl EntryReport {
    fn ok(name: &str, kind: &'static str, count: usize) -> EntryReport {
        EntryReport {
            name: name.to_string(),
            kind,
            count: Some(count),
            result: Ok(()),
        }
    }

    fn fail(
        name: &str,
        kind: &'static str,
        phase: &str,
        err: impl std::fmt::Display,
    ) -> EntryReport {
        EntryReport {
            name: name.to_string(),
            kind,
            count: None,
            result: Err(format!("{phase}: {err}")),
        }
    }
}

/// Audit outcome for a whole store file.
#[derive(Debug)]
pub struct AuditReport {
    /// Per-entry outcomes, in catalog order.
    pub entries: Vec<EntryReport>,
    /// Pages read while auditing (I/O cost of the audit itself).
    pub pages_read: u64,
    /// Number of blobs in the page store.
    pub num_blobs: usize,
}

impl AuditReport {
    /// `true` if every entry passed.
    pub fn all_ok(&self) -> bool {
        self.entries.iter().all(|e| e.result.is_ok())
    }

    /// Number of failed entries.
    pub fn num_failed(&self) -> usize {
        self.entries.iter().filter(|e| e.result.is_err()).count()
    }

    /// Render the report as the CLI's text output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match (&e.result, e.count) {
                (Ok(()), Some(n)) => {
                    out.push_str(&format!("ok   {:<10} {:<20} {} units\n", e.kind, e.name, n));
                }
                (Ok(()), None) => {
                    out.push_str(&format!("ok   {:<10} {}\n", e.kind, e.name));
                }
                (Err(err), _) => {
                    out.push_str(&format!("FAIL {:<10} {:<20} {}\n", e.kind, e.name, err));
                }
            }
        }
        out.push_str(&format!(
            "{} entries, {} failed, {} blobs, {} pages read\n",
            self.entries.len(),
            self.num_failed(),
            self.num_blobs,
            self.pages_read
        ));
        out
    }
}

/// Decode and audit a serialized store file.
///
/// A file that fails to decode at all is reported as a single failed
/// pseudo-entry named `<store file>`.
pub fn audit_bytes(bytes: &[u8]) -> AuditReport {
    match StoreFile::from_bytes(bytes) {
        Ok(file) => audit_store_file(&file),
        Err(e) => AuditReport {
            entries: vec![EntryReport::fail("<store file>", "store", "decode", e)],
            pages_read: 0,
            num_blobs: 0,
        },
    }
}

/// Audit every catalog entry of a decoded store file.
pub fn audit_store_file(file: &StoreFile) -> AuditReport {
    let store = file.store();
    store.reset_counters();
    let entries = file
        .entries()
        .iter()
        .map(|(name, root)| audit_entry(name, root, store))
        .collect();
    AuditReport {
        entries,
        pages_read: store.pages_read(),
        num_blobs: store.num_blobs(),
    }
}

/// Open → deep-validate → load → re-validate one entry.
pub fn audit_entry(name: &str, root: &RootRecord, store: &PageStore) -> EntryReport {
    let kind = root.kind_name();
    macro_rules! moving {
        ($stored:expr, $open:path) => {{
            let view = match $open($stored, store, view::Verify::Full) {
                Ok(v) => v,
                Err(e) => return EntryReport::fail(name, kind, "open", e),
            };
            if let Err(e) = view.validate() {
                return EntryReport::fail(name, kind, "validate", e);
            }
            let loaded = match view.materialize_validated() {
                Ok(v) => v,
                Err(e) => return EntryReport::fail(name, kind, "load", e),
            };
            if let Err(e) = loaded.validate() {
                return EntryReport::fail(name, kind, "revalidate", e);
            }
            EntryReport::ok(name, kind, loaded.num_units())
        }};
    }
    match root {
        RootRecord::MBool(s) => moving!(s, view::open_mbool),
        RootRecord::MReal(s) => moving!(s, view::open_mreal),
        RootRecord::MPoint(s) => moving!(s, view::open_mpoint),
        RootRecord::MPoints(s) => moving!(s, view::open_mpoints),
        RootRecord::MLine(s) => moving!(s, view::open_mline),
        RootRecord::MRegion(s) => moving!(s, view::open_mregion),
        RootRecord::Line(s) => match line_store::load_line(s, store) {
            Ok(l) => EntryReport::ok(name, kind, l.num_segments()),
            Err(e) => EntryReport::fail(name, kind, "load", e),
        },
        RootRecord::Points(s) => match line_store::load_points(s, store) {
            Ok(p) => EntryReport::ok(name, kind, p.len()),
            Err(e) => EntryReport::fail(name, kind, "load", e),
        },
        RootRecord::Region(s) => match region_store::load_region(s, store) {
            Ok(r) => EntryReport::ok(name, kind, r.faces().len()),
            Err(e) => EntryReport::fail(name, kind, "load", e),
        },
        RootRecord::Periods(s) => match range_store::load_periods(s, store) {
            Ok(p) => match p.validate() {
                Ok(()) => EntryReport::ok(name, kind, p.num_intervals()),
                Err(e) => EntryReport::fail(name, kind, "revalidate", e),
            },
            Err(e) => EntryReport::fail(name, kind, "load", e),
        },
        // `load_index` re-runs the full structural validation: every
        // child cube contained in its parent, every level tiling the
        // one below, every leaf tuple id in range.
        RootRecord::Index(s) => match index_store::load_index(s, store) {
            Ok(tree) => EntryReport::ok(name, kind, tree.num_entries()),
            Err(e) => EntryReport::fail(name, kind, "load", e),
        },
    }
}

/// Per-entry recoverability verdict of a deep verify
/// ([`deep_verify_image`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Decodes, deep-validates and re-validates cleanly.
    Intact,
    /// The entry's bytes were damaged at rest: the backing blob is
    /// quarantined, the value is unavailable, and the damage is
    /// **isolated** — every other entry still serves.
    Quarantined,
    /// The entry fails structural or semantic checks for a reason other
    /// than quarantine (a decoder-level inconsistency).
    Corrupt,
}

/// Deep-verification report over a **durable snapshot image** (the
/// framed superblock + chunk format `DurableStore` commits).
#[derive(Debug)]
pub struct DeepReport {
    /// Generation number from the superblock, when it verifies.
    pub generation: Option<u64>,
    /// Total payload chunks in the image.
    pub chunks_total: usize,
    /// Chunks whose frame checksum failed (zero-filled for recovery).
    pub chunks_corrupt: usize,
    /// Whole-file structural health: `Err` when the superblock or the
    /// store file's structural bytes are damaged — nothing is
    /// recoverable then.
    pub structural: Result<(), String>,
    /// Per-entry audit outcome and recoverability verdict, in catalog
    /// order (empty when `structural` is `Err`).
    pub entries: Vec<(EntryReport, Verdict)>,
}

impl DeepReport {
    /// `true` when the image opens at all (possibly with quarantined
    /// entries).
    pub fn recoverable(&self) -> bool {
        self.structural.is_ok()
    }

    /// `true` when every entry is [`Verdict::Intact`].
    pub fn all_intact(&self) -> bool {
        self.structural.is_ok() && self.entries.iter().all(|(_, v)| *v == Verdict::Intact)
    }

    /// Number of entries with the given verdict.
    pub fn count(&self, v: Verdict) -> usize {
        self.entries.iter().filter(|(_, got)| *got == v).count()
    }

    /// Render the report as the CLI's text output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self.generation {
            Some(generation) => out.push_str(&format!(
                "image: generation {generation}, {} chunks ({} corrupt, zero-filled)\n",
                self.chunks_total, self.chunks_corrupt
            )),
            None => out.push_str("image: superblock unreadable\n"),
        }
        if let Err(e) = &self.structural {
            out.push_str(&format!("verdict: UNRECOVERABLE — {e}\n"));
            return out;
        }
        for (e, v) in &self.entries {
            let tag = match v {
                Verdict::Intact => "intact    ",
                Verdict::Quarantined => "QUARANTINE",
                Verdict::Corrupt => "CORRUPT   ",
            };
            match (&e.result, e.count) {
                (Ok(()), Some(n)) => {
                    out.push_str(&format!("{tag} {:<10} {:<20} {n} units\n", e.kind, e.name))
                }
                (Ok(()), None) => out.push_str(&format!("{tag} {:<10} {}\n", e.kind, e.name)),
                (Err(err), _) => {
                    out.push_str(&format!("{tag} {:<10} {:<20} {err}\n", e.kind, e.name))
                }
            }
        }
        out.push_str(&format!(
            "verdict: recoverable — {} intact, {} quarantined, {} corrupt\n",
            self.count(Verdict::Intact),
            self.count(Verdict::Quarantined),
            self.count(Verdict::Corrupt),
        ));
        out
    }
}

/// Deep-verify a durable snapshot image: verify the superblock, checksum
/// every chunk frame, open the store file **degraded** (damaged blobs
/// quarantined, structural damage fatal) and give each catalog entry a
/// recoverability [`Verdict`].
///
/// Never panics, whatever the bytes — damage shows up in the report.
pub fn deep_verify_image(bytes: &[u8]) -> DeepReport {
    let img = match mob_storage::decode_image_degraded(bytes) {
        Ok(img) => img,
        Err(e) => {
            return DeepReport {
                generation: None,
                chunks_total: 0,
                chunks_corrupt: 0,
                structural: Err(format!("image: {e}")),
                entries: Vec::new(),
            }
        }
    };
    let (generation, chunks_total, chunks_corrupt) =
        (img.generation, img.chunks_total, img.chunks_corrupt);
    let file = match StoreFile::from_bytes_with_damage(&img.payload, &img.damaged) {
        Ok((file, _quarantined)) => file,
        Err(e) => {
            return DeepReport {
                generation: Some(generation),
                chunks_total,
                chunks_corrupt,
                structural: Err(format!("store file: {e}")),
                entries: Vec::new(),
            }
        }
    };
    let store = file.store();
    let entries = file
        .entries()
        .iter()
        .map(|(name, root)| {
            let rep = audit_entry(name, root, store);
            let verdict = match &rep.result {
                Ok(()) => Verdict::Intact,
                Err(msg) if msg.contains("quarantined") => Verdict::Quarantined,
                Err(_) => Verdict::Corrupt,
            };
            (rep, verdict)
        })
        .collect();
    DeepReport {
        generation: Some(generation),
        chunks_total,
        chunks_corrupt,
        structural: Ok(()),
        entries,
    }
}

/// Probe a durable image's `planes/index` entry: decode degraded, load
/// (and so fully re-validate) the index, and return its candidate tuple
/// set at `at`. `None` when the image is refused or the index is
/// unavailable — the outcomes a query planner degrades through.
fn image_index_candidates(bytes: &[u8], at: mob_base::Instant) -> Option<Vec<u32>> {
    let img = mob_storage::decode_image_degraded(bytes).ok()?;
    let (file, _) = StoreFile::from_bytes_with_damage(&img.payload, &img.damaged).ok()?;
    let RootRecord::Index(stored) = file.get("planes/index")? else {
        return None;
    };
    let tree = index_store::load_index(stored, file.store()).ok()?;
    Some(tree.query_instant(at).tuples)
}

/// Hermetic fault-injection self-test (the CLI's `--self-test`): commit
/// the demo store durably in memory, then deep-verify the pristine image
/// plus one single-byte-flipped image per 13-byte stride. Proves, on
/// this very build:
///
/// * the pristine image verifies fully intact;
/// * no damaged image panics the verifier;
/// * every flip is *seen* — either the image is refused (superblock /
///   structural damage) or at least one chunk reports corrupt;
/// * both refusal and per-entry quarantine actually occur across the
///   campaign (the harness is not vacuous);
/// * the index entry never lies: on every damaged image it is either
///   unavailable (refused or quarantined — the planner's fallback) or
///   answers a fixed probe with exactly the pristine candidate set.
///
/// Returns a human-readable summary, or the first violated expectation.
pub fn self_test(seed: u64) -> Result<String, String> {
    use mob_storage::{DurableStore, MemIo, StoreIo};

    let file = demo_store_file(seed);

    // The fixed index probe: the middle of the fleet's lifetime, and
    // the candidate set the pristine tree answers for it.
    let (probe_at, pristine_cands) = {
        let Some(RootRecord::Index(stored)) = file.get("planes/index") else {
            return Err("demo store lost its planes/index entry".to_string());
        };
        let tree = index_store::load_index(stored, file.store())
            .map_err(|e| format!("pristine index: {e}"))?;
        let root = tree.nodes().last().ok_or("pristine index is empty")?;
        let at = mob_base::t((root.cube.t_min.as_f64() + root.cube.t_max.as_f64()) / 2.0);
        (at, tree.query_instant(at).tuples)
    };
    if pristine_cands.is_empty() {
        return Err("pristine index probe matched nothing — probe too weak".to_string());
    }
    let dir = MemIo::new();
    let mut store = DurableStore::options()
        .chunk_size(256)
        .open(dir.clone())
        .map_err(|e| format!("open: {e}"))?;
    let mut txn = store.begin();
    txn.put_store_file(&file)
        .map_err(|e| format!("stage: {e}"))?;
    txn.commit().map_err(|e| format!("commit: {e}"))?;
    let snaps: Vec<String> = dir
        .list()
        .map_err(|e| format!("list: {e}"))?
        .into_iter()
        .filter(|n| n.starts_with("snap-"))
        .collect();
    let [snap] = snaps.as_slice() else {
        return Err(format!("expected exactly one snapshot, found {snaps:?}"));
    };
    let image = dir
        .read_file(snap)
        .map_err(|e| format!("read {snap}: {e}"))?;

    let pristine = deep_verify_image(&image);
    if !pristine.all_intact() {
        return Err(format!(
            "pristine image must verify intact:\n{}",
            pristine.render()
        ));
    }

    let (mut refused, mut with_quarantine, mut with_corrupt, mut fully_intact) =
        (0u32, 0u32, 0u32, 0u32);
    let (mut index_served, mut index_fallback) = (0u32, 0u32);
    let mut cases = 0u32;
    for pos in (0..image.len()).step_by(13) {
        let mut bad = image.clone();
        bad[pos] ^= 0x40;

        // The index contract: whatever the flip hit, the index is
        // either unavailable (a planner fallback) or exactly right.
        match image_index_candidates(&bad, probe_at) {
            Some(cands) if cands != pristine_cands => {
                return Err(format!(
                    "flip at byte {pos}: index served a WRONG candidate set \
                     ({cands:?} instead of {pristine_cands:?})"
                ));
            }
            Some(_) => index_served += 1,
            None => index_fallback += 1,
        }

        let rep = deep_verify_image(&bad);
        cases += 1;
        if rep.structural.is_err() {
            refused += 1;
            continue;
        }
        if rep.chunks_corrupt == 0 {
            return Err(format!(
                "flip at byte {pos} went unnoticed: image recovered with zero corrupt chunks"
            ));
        }
        if rep.count(Verdict::Corrupt) > 0 {
            with_corrupt += 1;
        } else if rep.count(Verdict::Quarantined) > 0 {
            with_quarantine += 1;
        } else {
            fully_intact += 1;
        }
    }
    if refused == 0 {
        return Err(
            "no flip ever made the verifier refuse the image — superblock damage untested"
                .to_string(),
        );
    }
    if with_quarantine == 0 {
        return Err("no flip ever quarantined an entry — degradation path untested".to_string());
    }
    if index_fallback == 0 {
        return Err("no flip ever made the index unavailable — index frames untested".to_string());
    }
    Ok(format!(
        "self-test ok: {cases} damaged images — {refused} refused, \
         {with_quarantine} with quarantined entries, {with_corrupt} with corrupt entries, \
         {fully_intact} recovered fully intact (damage in unreferenced bytes); \
         index probe: {index_served} served (all byte-exact), {index_fallback} fell back; \
         pristine image intact ({} entries)",
        pristine.entries.len()
    ))
}

/// Build the deterministic demo store file the CLI's `--demo` mode
/// writes: one entry per root-record kind, generated from the seeded
/// workload generators.
pub fn demo_store_file(seed: u64) -> StoreFile {
    use mob_gen::{moving_front, plane_fleet, storm, FrontConfig, GridNetwork, StormConfig};

    let mut file = StoreFile::new();

    let planes = plane_fleet(seed, 2, 12);
    for plane in &planes {
        let stored = mapping_store::save_mpoint(&plane.flight, file.store_mut());
        file.put(format!("plane/{}", plane.id), RootRecord::MPoint(stored));
    }

    let net = GridNetwork::new(4, 100.0);
    let taxi = net.random_drive(seed ^ 1, 30, 5.0);
    let stored = mapping_store::save_mpoint(&taxi, file.store_mut());
    file.put("taxi/0", RootRecord::MPoint(stored));
    let stored = line_store::save_line(&net.as_line(), file.store_mut());
    file.put("network", RootRecord::Line(stored));

    let storm_region = storm(seed ^ 2, 6, 8);
    let stored = mapping_store::save_mregion(&storm_region, file.store_mut());
    file.put("storm", RootRecord::MRegion(stored));
    let eye = mob_gen::storm_with_eye(seed ^ 3, &StormConfig::default());
    let stored = mapping_store::save_mregion(&eye, file.store_mut());
    file.put("storm/eye", RootRecord::MRegion(stored));

    let front = moving_front(seed ^ 4, &FrontConfig::default());
    let stored = mapping_store::save_mline(&front, file.store_mut());
    file.put("front", RootRecord::MLine(stored));

    // The planner's pruning structure: an R-tree over the fleet's
    // per-unit bounding cubes, one leaf entry per flight unit.
    let mut cubes = Vec::new();
    for (i, plane) in planes.iter().enumerate() {
        cubes.extend(mob_core::unit_cubes(i as u32, &plane.flight));
    }
    let tree = mob_core::RTree::bulk(planes.len(), cubes);
    let stored = index_store::save_index(&tree, file.store_mut());
    file.put("planes/index", RootRecord::Index(stored));

    // Derived values exercise the remaining kinds.
    let deftime = taxi.deftime();
    let stored = range_store::save_periods(&deftime, file.store_mut());
    file.put("taxi/0/deftime", RootRecord::Periods(stored));
    let speed = distance_pair(&planes);
    let stored = mapping_store::save_mreal(&speed, file.store_mut());
    file.put("planes/distance", RootRecord::MReal(stored));

    file
}

fn distance_pair(planes: &[mob_gen::Plane]) -> mob_core::MovingReal {
    match planes {
        [a, b, ..] => mob_core::distance_seq(&a.flight, &b.flight),
        _ => mob_core::Mapping::empty(),
    }
}

/// What role a file in a durable directory plays in the snapshot/delta
/// chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainRole {
    /// A `snap-<gen>.mob` snapshot image.
    Snapshot(u64),
    /// A `delta-<gen>.mob` WAL segment.
    Delta(u64),
    /// A `tmp-*` shadow file left by a crashed commit (harmless).
    Tmp,
    /// Anything else in the directory (ignored by recovery).
    Other,
}

/// Per-file verdict of a [`audit_chain`] run.
#[derive(Debug)]
pub struct ChainFile {
    /// File name inside the durable directory.
    pub name: String,
    /// Role the name claims in the chain.
    pub role: ChainRole,
    /// `Ok(summary)` or why the file fails its role.
    pub verdict: Result<String, String>,
}

/// Outcome of auditing a durable directory's snapshot + delta chain.
#[derive(Debug)]
pub struct ChainReport {
    /// Per-file verdicts, sorted by name.
    pub files: Vec<ChainFile>,
    /// Generation of the newest intact snapshot (recovery's base), if
    /// any snapshot decodes.
    pub base: Option<u64>,
    /// Generation recovery would reach after replaying the contiguous
    /// delta chain above `base`.
    pub head: Option<u64>,
}

impl ChainReport {
    /// `true` when every file passes its role — the directory recovers
    /// to `head` with nothing lost or shadowed.
    pub fn all_ok(&self) -> bool {
        self.files.iter().all(|f| f.verdict.is_ok())
    }

    /// Render the report as the CLI's text output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.files {
            let role = match f.role {
                ChainRole::Snapshot(g) => format!("snapshot g={g}"),
                ChainRole::Delta(g) => format!("delta    g={g}"),
                ChainRole::Tmp => "tmp".to_string(),
                ChainRole::Other => "other".to_string(),
            };
            match &f.verdict {
                Ok(note) => out.push_str(&format!("ok   {:<28} {role}  {note}\n", f.name)),
                Err(err) => out.push_str(&format!("FAIL {:<28} {role}  {err}\n", f.name)),
            }
        }
        match (self.base, self.head) {
            (Some(b), Some(h)) => out.push_str(&format!(
                "chain: base snapshot g={b}, replays to g={h} ({} files)\n",
                self.files.len()
            )),
            (None, Some(h)) => out.push_str(&format!(
                "chain: genesis delta chain, replays to g={h} ({} files)\n",
                self.files.len()
            )),
            _ => out.push_str(&format!(
                "chain: no intact snapshot ({} files)\n",
                self.files.len()
            )),
        }
        out
    }
}

/// Audit a durable directory's snapshot/delta chain without opening a
/// [`mob_storage::DurableStore`]: classify every file, strictly decode
/// each snapshot and delta, and verify the WAL chain is contiguous from
/// the newest intact snapshot (`base + 1, base + 2, …`) with each
/// delta's recorded `base_generation` linking to its predecessor.
///
/// Shadowed deltas (generation ≤ base) and stale snapshots are reported
/// as failures — recovery would silently discard them, and an operator
/// auditing a directory should know bytes are about to be dropped. The
/// one exception is the snapshot exactly one generation below the base:
/// `commit_full` keeps it on purpose as the recovery fallback, so it is
/// reported healthy.
pub fn audit_chain<I: mob_storage::StoreIo>(io: &I) -> Result<ChainReport, String> {
    use mob_storage::{decode_delta_payload, decode_image_strict, parse_delta_name};

    let mut names = io.list().map_err(|e| format!("list: {e}"))?;
    names.sort();

    // Pass 1: find the recovery base — the newest strictly-intact
    // snapshot, exactly as `StoreOptions::open` would.
    let mut base: Option<u64> = None;
    for name in &names {
        let Some(g) = mob_storage::parse_snapshot_name(name) else {
            continue;
        };
        let intact = io
            .read_file(name)
            .ok()
            .and_then(|b| decode_image_strict(&b).ok())
            .is_some_and(|img| img.generation == g);
        if intact && base.is_none_or(|b| g > b) {
            base = Some(g);
        }
    }

    // Pass 2: walk the delta chain upward from the base. With no
    // snapshot at all the chain is a *genesis* chain: recovery replays
    // deltas from generation 1 over the empty store, so that is where
    // the walk starts.
    let mut expect = base.map_or(Some(1), |b| b.checked_add(1));
    let mut head = base;
    let mut deltas: Vec<(u64, String)> = names
        .iter()
        .filter_map(|n| parse_delta_name(n).map(|g| (g, n.clone())))
        .collect();
    deltas.sort();
    let mut delta_verdicts: Vec<(String, Result<String, String>)> = Vec::new();
    for (g, name) in deltas {
        if base.is_some_and(|b| g <= b) {
            delta_verdicts.push((
                name,
                Err(format!("shadowed: generation {g} is at or below the base")),
            ));
            continue;
        }
        if Some(g) != expect {
            delta_verdicts.push((
                name,
                Err(format!(
                    "chain gap: expected generation {expect:?}, found {g} — \
                     this delta and everything above it is unreachable"
                )),
            ));
            expect = None;
            continue;
        }
        // A delta file is a chunk-framed image whose payload is the
        // WAL record: unwrap the frame, then decode the record.
        let verdict = io
            .read_file(&name)
            .map_err(|e| format!("read: {e}"))
            .and_then(|b| decode_image_strict(&b).map_err(|e| format!("frame: {e}")))
            .and_then(|img| {
                if img.generation == g {
                    Ok(img)
                } else {
                    Err(format!(
                        "name/superblock mismatch: superblock says g={}",
                        img.generation
                    ))
                }
            })
            .and_then(|img| decode_delta_payload(&img.payload).map_err(|e| format!("decode: {e}")))
            .and_then(|p| {
                if p.base_generation.checked_add(1) == Some(g) {
                    Ok(format!(
                        "{} object batch(es) over base g={}",
                        p.appends.len(),
                        p.base_generation
                    ))
                } else {
                    Err(format!(
                        "link mismatch: records base g={}, name claims g={g}",
                        p.base_generation
                    ))
                }
            });
        if verdict.is_ok() {
            head = Some(g);
            expect = g.checked_add(1);
        } else {
            expect = None;
        }
        delta_verdicts.push((name, verdict));
    }

    // Pass 3: assemble per-file verdicts in name order.
    let mut files = Vec::new();
    for name in names {
        if let Some(g) = mob_storage::parse_snapshot_name(&name) {
            let verdict = io
                .read_file(&name)
                .map_err(|e| format!("read: {e}"))
                .and_then(|b| decode_image_strict(&b).map_err(|e| format!("decode: {e}")))
                .and_then(|img| {
                    if img.generation != g {
                        Err(format!(
                            "name/superblock mismatch: superblock says g={}",
                            img.generation
                        ))
                    } else if base.is_some_and(|b| g.checked_add(1) == Some(b)) {
                        // `commit_full` deliberately keeps exactly one
                        // older snapshot as the recovery fallback.
                        Ok(format!(
                            "previous snapshot (recovery fallback), {} payload bytes",
                            img.payload.len()
                        ))
                    } else if base.is_some_and(|b| g < b) {
                        Err(format!("stale: shadowed by base snapshot g={base:?}"))
                    } else {
                        Ok(format!("{} payload bytes", img.payload.len()))
                    }
                });
            files.push(ChainFile {
                name,
                role: ChainRole::Snapshot(g),
                verdict,
            });
        } else if let Some(g) = mob_storage::parse_delta_name(&name) {
            let verdict = delta_verdicts
                .iter()
                .find(|(n, _)| *n == name)
                .map_or(Err("delta not walked".to_string()), |(_, v)| v.clone());
            files.push(ChainFile {
                name,
                role: ChainRole::Delta(g),
                verdict,
            });
        } else if name.starts_with("tmp-") {
            files.push(ChainFile {
                name,
                role: ChainRole::Tmp,
                verdict: Err("leftover shadow file from a crashed commit".to_string()),
            });
        } else {
            files.push(ChainFile {
                name,
                role: ChainRole::Other,
                verdict: Ok("ignored by recovery".to_string()),
            });
        }
    }
    Ok(ChainReport { files, base, head })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_store_audits_clean() {
        let file = demo_store_file(42);
        let report = audit_store_file(&file);
        assert!(report.all_ok(), "demo audit failed:\n{}", report.render());
        assert!(report.entries.len() >= 7);
    }

    #[test]
    fn demo_roundtrip_audits_clean() {
        let bytes = demo_store_file(7).to_bytes().unwrap();
        let report = audit_bytes(&bytes);
        assert!(
            report.all_ok(),
            "roundtrip audit failed:\n{}",
            report.render()
        );
    }

    #[test]
    fn corrupt_bytes_fail_without_panic() {
        let bytes = demo_store_file(3).to_bytes().unwrap();
        // Flip one byte in each 97-byte stride across the whole file; the
        // audit must never panic, and flips in structural fields must be
        // reported as failures (value-field flips may legitimately decode
        // to different-but-valid values).
        for pos in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xff;
            let _ = audit_bytes(&bad); // must not panic
        }
        // Truncations must always fail.
        let report = audit_bytes(&bytes[..bytes.len() / 2]);
        assert!(!report.all_ok());
    }

    #[test]
    fn deep_verify_accepts_a_pristine_image_and_survives_damage() {
        use mob_storage::{DurableStore, MemIo, StoreIo};

        let dir = MemIo::new();
        let mut store = DurableStore::options()
            .chunk_size(256)
            .open(dir.clone())
            .unwrap();
        let mut txn = store.begin();
        txn.put_store_file(&demo_store_file(11)).unwrap();
        txn.commit().unwrap();
        let snap = dir
            .list()
            .unwrap()
            .into_iter()
            .find(|n| n.starts_with("snap-"))
            .unwrap();
        let image = dir.read_file(&snap).unwrap();

        let report = deep_verify_image(&image);
        assert!(report.all_intact(), "pristine:\n{}", report.render());
        assert!(report.recoverable());
        assert!(report.render().contains("verdict: recoverable"));

        // Damage never panics the verifier; whatever survives renders.
        for pos in (0..image.len()).step_by(131) {
            let mut bad = image.clone();
            bad[pos] ^= 0x08;
            let rep = deep_verify_image(&bad);
            let _ = rep.render();
            assert!(
                rep.structural.is_err() || rep.chunks_corrupt >= 1,
                "flip at {pos} invisible to the deep verifier"
            );
        }

        // Garbage is refused, not panicked on.
        assert!(!deep_verify_image(b"not an image").recoverable());
    }

    #[test]
    fn self_test_passes() {
        let summary = self_test(42).expect("self-test must pass on a healthy build");
        assert!(summary.contains("self-test ok"), "{summary}");
    }

    /// A directory with a snapshot plus a contiguous delta chain audits
    /// clean, and the report names the right base and head.
    #[test]
    fn chain_audit_accepts_a_healthy_directory() {
        use mob_base::t;
        use mob_spatial::pt;
        use mob_storage::{DurableStore, Ingestor, MemIo};

        let dir = MemIo::new();
        let mut store = DurableStore::options().open(dir.clone()).unwrap();
        let mut txn = store.begin();
        txn.put_store_file(&demo_store_file(5)).unwrap();
        txn.commit().unwrap();
        let mut ingest = Ingestor::new();
        for k in 0..3u32 {
            ingest
                .append("chase/0", t(f64::from(k)), pt(f64::from(k), 0.0))
                .unwrap();
            ingest
                .append("chase/1", t(f64::from(k)), pt(0.0, f64::from(k)))
                .unwrap();
        }
        let mut txn = store.begin();
        ingest.seal_into(&mut txn);
        txn.commit().unwrap();

        let report = audit_chain(&dir).unwrap();
        assert!(report.all_ok(), "healthy chain:\n{}", report.render());
        assert_eq!(report.base, Some(1));
        assert_eq!(report.head, Some(2));
        assert!(report.render().contains("replays to g=2"));
    }

    /// Two full commits leave the base snapshot plus exactly one older
    /// snapshot — the recovery fallback `commit_full` keeps on purpose.
    /// The audit must report that directory clean, not "stale".
    #[test]
    fn chain_audit_accepts_the_previous_snapshot_fallback() {
        use mob_storage::{DurableStore, MemIo, StoreIo};

        let dir = MemIo::new();
        let mut store = DurableStore::options().open(dir.clone()).unwrap();
        let mut txn = store.begin();
        txn.put_store_file(&demo_store_file(5)).unwrap();
        txn.commit().unwrap();
        let mut txn = store.begin();
        txn.put_store_file(&demo_store_file(6)).unwrap();
        txn.commit().unwrap();

        let names = dir.list().unwrap();
        assert!(
            names.iter().any(|n| n.contains("snap-0000000000000001")),
            "premise: the previous snapshot survives the prune ({names:?})"
        );
        let report = audit_chain(&dir).unwrap();
        assert!(
            report.all_ok(),
            "fallback snapshot must audit clean:\n{}",
            report.render()
        );
        assert_eq!(report.base, Some(2));
        assert!(report.render().contains("recovery fallback"));
    }

    /// A store that has only ever committed deltas (never compacted)
    /// has no snapshot: recovery replays the chain from generation 1
    /// over the empty store, and the audit must agree.
    #[test]
    fn chain_audit_accepts_a_genesis_delta_chain() {
        use mob_base::t;
        use mob_core::MovingPoint;
        use mob_spatial::pt;
        use mob_storage::{DurableStore, MemIo};

        let dir = MemIo::new();
        let mut store = DurableStore::options().open(dir.clone()).unwrap();
        for k in 0..3u64 {
            let k = k as f64;
            let units = MovingPoint::from_samples(&[
                (t(k * 2.0), pt(k, 0.0)),
                (t(k * 2.0 + 1.0), pt(k + 1.0, 1.0)),
            ])
            .units()
            .to_vec();
            let mut txn = store.begin();
            txn.append_units(&format!("obj{k}"), &units);
            txn.commit().unwrap();
        }

        let report = audit_chain(&dir).unwrap();
        assert!(
            report.all_ok(),
            "genesis chain must audit clean:\n{}",
            report.render()
        );
        assert_eq!((report.base, report.head), (None, Some(3)));
        assert!(report.render().contains("genesis delta chain"));
    }

    /// Gaps, torn deltas, and leftover tmp files are all called out.
    #[test]
    fn chain_audit_flags_gaps_and_torn_files() {
        use mob_storage::{delta_name, DurableStore, MemIo, StoreIo};

        let dir = MemIo::new();
        let mut store = DurableStore::options().open(dir.clone()).unwrap();
        let mut txn = store.begin();
        txn.put_payload(b"base payload");
        txn.commit().unwrap();

        // A gap: delta for generation 3 with no generation-2 link.
        dir.write_file(&delta_name(3), b"MOBDELT1 torn nonsense")
            .unwrap();
        // A crashed commit's shadow file.
        dir.write_file("tmp-0000000000000009.mob", b"partial")
            .unwrap();

        let report = audit_chain(&dir).unwrap();
        assert!(!report.all_ok());
        assert_eq!(report.base, Some(1));
        assert_eq!(report.head, Some(1), "gap must stop the replay walk");
        let rendered = report.render();
        assert!(rendered.contains("chain gap"), "{rendered}");
        assert!(rendered.contains("leftover shadow"), "{rendered}");
    }
}
