//! # `mob-check` — deep auditing of serialized moving-object values
//!
//! The storage layer already verifies structure when a value is opened
//! (`view_*` constructors) and decoded (`load_*`); this crate drives
//! those checks over a whole [`StoreFile`] and reports per-entry
//! results, so a store produced by one process can be audited by
//! another without trusting a single byte of it:
//!
//! 1. **decode** the store file itself (magic, blob table, catalog);
//! 2. **open** each moving entry as a storage-backed `MappingView`
//!    (structural verification: layouts, record bounds, interval order);
//! 3. **deep-validate** the view (value well-formedness + canonicity,
//!    Sec 3.2.4) without materializing it;
//! 4. **load** the value into memory and re-validate with the in-memory
//!    [`Validate`] impls — the two paths must agree.
//!
//! Every failure is a reported [`String`]; no input, however corrupt,
//! may panic the auditor (the corruption property tests in
//! `mob-storage` enforce this for the decode layer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mob_base::Validate;
use mob_storage::store_file::RootRecord;
use mob_storage::{
    line_store, mapping_store, range_store, region_store, view, PageStore, StoreFile,
};

/// Audit outcome for one catalog entry.
#[derive(Debug)]
pub struct EntryReport {
    /// Entry name (catalog key).
    pub name: String,
    /// Value kind (`mpoint`, `region`, …).
    pub kind: &'static str,
    /// Number of units (moving kinds) or components (static kinds)
    /// found, when decodable.
    pub count: Option<usize>,
    /// `Ok(())` or the first failure, phase-tagged (`open:`, `validate:`,
    /// `load:`).
    pub result: Result<(), String>,
}

impl EntryReport {
    fn ok(name: &str, kind: &'static str, count: usize) -> EntryReport {
        EntryReport {
            name: name.to_string(),
            kind,
            count: Some(count),
            result: Ok(()),
        }
    }

    fn fail(
        name: &str,
        kind: &'static str,
        phase: &str,
        err: impl std::fmt::Display,
    ) -> EntryReport {
        EntryReport {
            name: name.to_string(),
            kind,
            count: None,
            result: Err(format!("{phase}: {err}")),
        }
    }
}

/// Audit outcome for a whole store file.
#[derive(Debug)]
pub struct AuditReport {
    /// Per-entry outcomes, in catalog order.
    pub entries: Vec<EntryReport>,
    /// Pages read while auditing (I/O cost of the audit itself).
    pub pages_read: u64,
    /// Number of blobs in the page store.
    pub num_blobs: usize,
}

impl AuditReport {
    /// `true` if every entry passed.
    pub fn all_ok(&self) -> bool {
        self.entries.iter().all(|e| e.result.is_ok())
    }

    /// Number of failed entries.
    pub fn num_failed(&self) -> usize {
        self.entries.iter().filter(|e| e.result.is_err()).count()
    }

    /// Render the report as the CLI's text output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match (&e.result, e.count) {
                (Ok(()), Some(n)) => {
                    out.push_str(&format!("ok   {:<10} {:<20} {} units\n", e.kind, e.name, n));
                }
                (Ok(()), None) => {
                    out.push_str(&format!("ok   {:<10} {}\n", e.kind, e.name));
                }
                (Err(err), _) => {
                    out.push_str(&format!("FAIL {:<10} {:<20} {}\n", e.kind, e.name, err));
                }
            }
        }
        out.push_str(&format!(
            "{} entries, {} failed, {} blobs, {} pages read\n",
            self.entries.len(),
            self.num_failed(),
            self.num_blobs,
            self.pages_read
        ));
        out
    }
}

/// Decode and audit a serialized store file.
///
/// A file that fails to decode at all is reported as a single failed
/// pseudo-entry named `<store file>`.
pub fn audit_bytes(bytes: &[u8]) -> AuditReport {
    match StoreFile::from_bytes(bytes) {
        Ok(file) => audit_store_file(&file),
        Err(e) => AuditReport {
            entries: vec![EntryReport::fail("<store file>", "store", "decode", e)],
            pages_read: 0,
            num_blobs: 0,
        },
    }
}

/// Audit every catalog entry of a decoded store file.
pub fn audit_store_file(file: &StoreFile) -> AuditReport {
    let store = file.store();
    store.reset_counters();
    let entries = file
        .entries()
        .iter()
        .map(|(name, root)| audit_entry(name, root, store))
        .collect();
    AuditReport {
        entries,
        pages_read: store.pages_read(),
        num_blobs: store.num_blobs(),
    }
}

/// Open → deep-validate → load → re-validate one entry.
pub fn audit_entry(name: &str, root: &RootRecord, store: &PageStore) -> EntryReport {
    let kind = root.kind_name();
    macro_rules! moving {
        ($stored:expr, $open:path) => {{
            let view = match $open($stored, store, view::Verify::Full) {
                Ok(v) => v,
                Err(e) => return EntryReport::fail(name, kind, "open", e),
            };
            if let Err(e) = view.validate() {
                return EntryReport::fail(name, kind, "validate", e);
            }
            let loaded = match view.materialize_validated() {
                Ok(v) => v,
                Err(e) => return EntryReport::fail(name, kind, "load", e),
            };
            if let Err(e) = loaded.validate() {
                return EntryReport::fail(name, kind, "revalidate", e);
            }
            EntryReport::ok(name, kind, loaded.num_units())
        }};
    }
    match root {
        RootRecord::MBool(s) => moving!(s, view::open_mbool),
        RootRecord::MReal(s) => moving!(s, view::open_mreal),
        RootRecord::MPoint(s) => moving!(s, view::open_mpoint),
        RootRecord::MPoints(s) => moving!(s, view::open_mpoints),
        RootRecord::MLine(s) => moving!(s, view::open_mline),
        RootRecord::MRegion(s) => moving!(s, view::open_mregion),
        RootRecord::Line(s) => match line_store::load_line(s, store) {
            Ok(l) => EntryReport::ok(name, kind, l.num_segments()),
            Err(e) => EntryReport::fail(name, kind, "load", e),
        },
        RootRecord::Points(s) => match line_store::load_points(s, store) {
            Ok(p) => EntryReport::ok(name, kind, p.len()),
            Err(e) => EntryReport::fail(name, kind, "load", e),
        },
        RootRecord::Region(s) => match region_store::load_region(s, store) {
            Ok(r) => EntryReport::ok(name, kind, r.faces().len()),
            Err(e) => EntryReport::fail(name, kind, "load", e),
        },
        RootRecord::Periods(s) => match range_store::load_periods(s, store) {
            Ok(p) => match p.validate() {
                Ok(()) => EntryReport::ok(name, kind, p.num_intervals()),
                Err(e) => EntryReport::fail(name, kind, "revalidate", e),
            },
            Err(e) => EntryReport::fail(name, kind, "load", e),
        },
    }
}

/// Build the deterministic demo store file the CLI's `--demo` mode
/// writes: one entry per root-record kind, generated from the seeded
/// workload generators.
pub fn demo_store_file(seed: u64) -> StoreFile {
    use mob_gen::{moving_front, plane_fleet, storm, FrontConfig, GridNetwork, StormConfig};

    let mut file = StoreFile::new();

    let planes = plane_fleet(seed, 2, 12);
    for plane in &planes {
        let stored = mapping_store::save_mpoint(&plane.flight, file.store_mut());
        file.put(format!("plane/{}", plane.id), RootRecord::MPoint(stored));
    }

    let net = GridNetwork::new(4, 100.0);
    let taxi = net.random_drive(seed ^ 1, 30, 5.0);
    let stored = mapping_store::save_mpoint(&taxi, file.store_mut());
    file.put("taxi/0", RootRecord::MPoint(stored));
    let stored = line_store::save_line(&net.as_line(), file.store_mut());
    file.put("network", RootRecord::Line(stored));

    let storm_region = storm(seed ^ 2, 6, 8);
    let stored = mapping_store::save_mregion(&storm_region, file.store_mut());
    file.put("storm", RootRecord::MRegion(stored));
    let eye = mob_gen::storm_with_eye(seed ^ 3, &StormConfig::default());
    let stored = mapping_store::save_mregion(&eye, file.store_mut());
    file.put("storm/eye", RootRecord::MRegion(stored));

    let front = moving_front(seed ^ 4, &FrontConfig::default());
    let stored = mapping_store::save_mline(&front, file.store_mut());
    file.put("front", RootRecord::MLine(stored));

    // Derived values exercise the remaining kinds.
    let deftime = taxi.deftime();
    let stored = range_store::save_periods(&deftime, file.store_mut());
    file.put("taxi/0/deftime", RootRecord::Periods(stored));
    let speed = distance_pair(&planes);
    let stored = mapping_store::save_mreal(&speed, file.store_mut());
    file.put("planes/distance", RootRecord::MReal(stored));

    file
}

fn distance_pair(planes: &[mob_gen::Plane]) -> mob_core::MovingReal {
    match planes {
        [a, b, ..] => mob_core::distance_seq(&a.flight, &b.flight),
        _ => mob_core::Mapping::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_store_audits_clean() {
        let file = demo_store_file(42);
        let report = audit_store_file(&file);
        assert!(report.all_ok(), "demo audit failed:\n{}", report.render());
        assert!(report.entries.len() >= 7);
    }

    #[test]
    fn demo_roundtrip_audits_clean() {
        let bytes = demo_store_file(7).to_bytes().unwrap();
        let report = audit_bytes(&bytes);
        assert!(
            report.all_ok(),
            "roundtrip audit failed:\n{}",
            report.render()
        );
    }

    #[test]
    fn corrupt_bytes_fail_without_panic() {
        let bytes = demo_store_file(3).to_bytes().unwrap();
        // Flip one byte in each 97-byte stride across the whole file; the
        // audit must never panic, and flips in structural fields must be
        // reported as failures (value-field flips may legitimately decode
        // to different-but-valid values).
        for pos in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xff;
            let _ = audit_bytes(&bad); // must not panic
        }
        // Truncations must always fail.
        let report = audit_bytes(&bytes[..bytes.len() / 2]);
        assert!(!report.all_ok());
    }
}
