//! `mob-check` — audit a serialized moving-objects store file.
//!
//! ```text
//! mob-check <file>                  audit an existing store file
//! mob-check verify <file>           same as the bare form
//! mob-check verify --deep <file>    deep-verify a DURABLE SNAPSHOT IMAGE:
//!                                   superblock + per-chunk checksums +
//!                                   per-entry recoverability verdicts
//! mob-check --demo <file>           write a generated demo store, audit it
//! mob-check --demo-image <file>     write a durable SNAPSHOT IMAGE of the
//!                                   demo store (input for verify --deep)
//! mob-check --demo-seed N ...       seed for --demo / --self-test (default 42)
//! mob-check --self-test             hermetic fault-injection self-test
//! ```
//!
//! Exit status: 0 if every entry passes (for `--deep`: every entry
//! intact), 1 if any entry fails, 2 on usage or I/O errors.

use mob_storage::{FsIo, StoreIo};
use std::path::Path;
use std::process::ExitCode;

/// Open a [`FsIo`] on the file's parent directory and return it with the
/// bare file name — `FsIo` speaks a flat namespace, the CLI speaks paths.
fn io_for(path: &str) -> Result<(FsIo, String), String> {
    let p = Path::new(path);
    let name = p
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("{path}: not a file path"))?
        .to_string();
    let parent = match p.parent() {
        Some(dir) if dir.as_os_str().is_empty() => Path::new("."),
        Some(dir) => dir,
        None => Path::new("."),
    };
    let io = FsIo::open(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
    Ok((io, name))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut demo = false;
    let mut demo_image = false;
    let mut deep = false;
    let mut verify = false;
    let mut chain = false;
    let mut self_test = false;
    let mut seed: u64 = 42;
    let mut path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "verify" if path.is_none() && !verify => verify = true,
            "chain" if path.is_none() && !chain => chain = true,
            "--deep" => deep = true,
            "--demo" => demo = true,
            "--demo-image" => demo_image = true,
            "--self-test" => self_test = true,
            "--demo-seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--demo-seed needs an integer"),
            },
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if path.is_none() && !a.starts_with('-') => path = Some(a),
            _ => return usage(&format!("unexpected argument `{a}`")),
        }
    }
    if deep && !verify {
        return usage("--deep only applies to the `verify` subcommand");
    }
    if chain && (verify || demo || demo_image) {
        return usage("`chain` does not combine with other modes");
    }

    if chain {
        let Some(dir) = path else {
            return usage("chain needs a <dir>");
        };
        let io = match mob_storage::FsIo::open(Path::new(&dir)) {
            Ok(io) => io,
            Err(e) => {
                eprintln!("mob-check: {dir}: {e}");
                return ExitCode::from(2);
            }
        };
        return match mob_check::audit_chain(&io) {
            Ok(report) => {
                print!("{}", report.render());
                if report.all_ok() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("mob-check: chain audit: {e}");
                ExitCode::from(2)
            }
        };
    }

    if self_test {
        return match mob_check::self_test(seed) {
            Ok(summary) => {
                println!("{summary}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mob-check: self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(path) = path else {
        return usage("missing <file>");
    };
    let (io, name) = match io_for(&path) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("mob-check: {e}");
            return ExitCode::from(2);
        }
    };

    if demo || demo_image {
        let file = mob_check::demo_store_file(seed);
        let bytes = if demo_image {
            match demo_image_bytes(&file) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("mob-check: committing demo image failed: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            match file.to_bytes() {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("mob-check: serializing demo store failed: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        if let Err(e) = io.write_file(&name, &bytes).and_then(|()| io.sync(&name)) {
            eprintln!("mob-check: writing {path}: {e}");
            return ExitCode::from(2);
        }
        let what = if demo_image {
            "demo snapshot image"
        } else {
            "demo store"
        };
        println!(
            "wrote {what} ({} bytes, seed {seed}) to {path}",
            bytes.len()
        );
    }
    // A snapshot image only makes sense under the deep verifier.
    let deep = deep || demo_image;

    let bytes = match io.read_file(&name) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mob-check: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };

    if deep {
        let report = mob_check::deep_verify_image(&bytes);
        print!("{}", report.render());
        return if report.all_intact() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let report = mob_check::audit_bytes(&bytes);
    print!("{}", report.render());
    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Commit the demo store through the durable lifecycle (in memory) and
/// return the resulting snapshot image bytes.
fn demo_image_bytes(file: &mob_storage::StoreFile) -> Result<Vec<u8>, String> {
    use mob_storage::{DurableStore, MemIo};
    let dir = MemIo::new();
    let mut store = DurableStore::options()
        .open(dir.clone())
        .map_err(|e| e.to_string())?;
    let mut txn = store.begin();
    txn.put_store_file(file).map_err(|e| e.to_string())?;
    txn.commit().map_err(|e| e.to_string())?;
    let snap = dir
        .list()
        .map_err(|e| e.to_string())?
        .into_iter()
        .find(|n| n.starts_with("snap-"))
        .ok_or("commit produced no snapshot")?;
    dir.read_file(&snap).map_err(|e| e.to_string())
}

const USAGE: &str =
    "usage: mob-check [verify [--deep]] [--demo|--demo-image [--demo-seed N]] <file>
       mob-check chain <dir>
       mob-check --self-test [--demo-seed N]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("mob-check: {msg}\n{USAGE}");
    ExitCode::from(2)
}
