//! `mob-check` — audit a serialized moving-objects store file.
//!
//! ```text
//! mob-check <file>            audit an existing store file
//! mob-check --demo <file>     write a generated demo store, then audit it
//! mob-check --demo-seed N ... seed for --demo (default 42)
//! ```
//!
//! Exit status: 0 if every entry passes, 1 if any entry fails, 2 on
//! usage or I/O errors.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut demo = false;
    let mut seed: u64 = 42;
    let mut path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--demo" => demo = true,
            "--demo-seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--demo-seed needs an integer"),
            },
            "-h" | "--help" => {
                eprintln!("usage: mob-check [--demo [--demo-seed N]] <file>");
                return ExitCode::SUCCESS;
            }
            _ if path.is_none() && !a.starts_with('-') => path = Some(a),
            _ => return usage(&format!("unexpected argument `{a}`")),
        }
    }
    let Some(path) = path else {
        return usage("missing <file>");
    };

    if demo {
        let file = mob_check::demo_store_file(seed);
        let bytes = match file.to_bytes() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("mob-check: serializing demo store failed: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&path, &bytes) {
            eprintln!("mob-check: writing {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "wrote demo store ({} bytes, seed {seed}) to {path}",
            bytes.len()
        );
    }

    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mob-check: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = mob_check::audit_bytes(&bytes);
    print!("{}", report.render());
    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("mob-check: {msg}\nusage: mob-check [--demo [--demo-seed N]] <file>");
    ExitCode::from(2)
}
