//! Offline drop-in shim for the subset of the [`rand`] crate API used by
//! this workspace.
//!
//! The build container has no registry access, so the real `rand` crate
//! cannot be vendored. This shim provides `StdRng`/`SmallRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over the integer and
//! float range types the generators in `mob-gen` need, backed by a
//! [splitmix64 → xoshiro256++] generator. It is deterministic per seed
//! (which is all the seeded workload generators rely on) but makes **no**
//! claim of statistical equivalence with the real `rand` streams.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator contract (shim of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy. The shim derives the seed from
    /// the current time — only used by code paths that do not require
    /// reproducibility.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// User-facing sampling methods (shim of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`start..end` or `start..=end`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Sample a value of type `T` (shim of `Rng::gen`). Supported for the
    /// primitive types via [`Standard`] sampling.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`] without a range.
pub trait StandardSample: Sized {
    /// Uniform sample over the type's natural domain.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        sample_unit_f64(rng)
    }
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
fn sample_unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types accepted by [`Rng::gen_range`] (shim of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $ty {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "gen_range: empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (s as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * sample_unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (s, e) = (*self.start(), *self.end());
        assert!(s <= e, "gen_range: empty range");
        s + (e - s) * sample_unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * sample_unit_f64(rng) as f32
    }
}

/// xoshiro256++ state, seeded via splitmix64.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        // splitmix64 stream to fill the state (never all-zero).
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Xoshiro256 {
        Xoshiro256::from_u64(seed)
    }
}

/// Named generators (shim of `rand::rngs`).
pub mod rngs {
    /// The "standard" generator — here the same xoshiro256++ core.
    pub type StdRng = super::Xoshiro256;
    /// The "small" generator — identical in the shim.
    pub type SmallRng = super::Xoshiro256;
}

/// Convenience prelude matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
            let u = rng.gen_range(0usize..=3);
            assert!(u <= 3);
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..4000 {
            let v = rng.gen_range(0.0f64..1.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }
}
