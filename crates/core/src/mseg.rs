//! Moving segments (Sec 3.2.6): `MSeg = {(s, e) | s, e ∈ MPoint, s ≠ e,
//! s coplanar with e}` — two coplanar lines in (x, y, t) space.
//!
//! Coplanarity of the two 3D lines is exactly the paper's *non-rotation*
//! constraint: the segment direction `e(t) − s(t)` keeps a fixed bearing,
//! so the swept surface is planar (a trapezium, degenerating to a
//! triangle when the end points coincide at one end of the interval).

use crate::upoint::PointMotion;
use crate::ureal::{UReal, ValueTimes};
use mob_base::error::{InvariantViolation, Result};
use mob_base::{Instant, Real, TimeInterval};
use mob_spatial::{Point, Seg};

/// A linear function of time, `c0 + c1·t` — helper for polynomial
/// expansion of geometric predicates on motions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lin {
    /// Constant coefficient.
    pub c0: Real,
    /// Linear coefficient.
    pub c1: Real,
}

impl Lin {
    /// Construct.
    pub fn new(c0: Real, c1: Real) -> Lin {
        Lin { c0, c1 }
    }

    /// Value at `t`.
    pub fn at(&self, t: Instant) -> Real {
        self.c0 + self.c1 * t.value()
    }

    /// Difference of two linear functions.
    pub fn sub(&self, o: &Lin) -> Lin {
        Lin::new(self.c0 - o.c0, self.c1 - o.c1)
    }

    /// Product of two linear functions as quadratic coefficients
    /// `(a, b, c)` of `a·t² + b·t + c`.
    pub fn mul(&self, o: &Lin) -> (Real, Real, Real) {
        (
            self.c1 * o.c1,
            self.c0 * o.c1 + self.c1 * o.c0,
            self.c0 * o.c0,
        )
    }
}

/// x(t) and y(t) of a motion as linear functions.
pub fn motion_lin(m: &PointMotion) -> (Lin, Lin) {
    (Lin::new(m.x0, m.x1), Lin::new(m.y0, m.y1))
}

/// A moving segment: two coplanar point motions.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MSeg {
    s: PointMotion,
    e: PointMotion,
}

impl MSeg {
    /// Validating constructor: motions must differ and be coplanar
    /// (non-rotating).
    pub fn try_new(s: PointMotion, e: PointMotion) -> Result<MSeg> {
        if s == e {
            return Err(InvariantViolation::new("mseg: s ≠ e"));
        }
        // Coplanarity: cross((Δx0, Δy0), (Δx1, Δy1)) = 0 where Δ is the
        // difference of the two motions' intercepts / velocities.
        //
        // Computed in raw f64: near-overflow coefficients (possible when
        // validating decoded, untrusted values) make the bilinear terms
        // ±∞ and their difference NaN, which must surface as a rejection
        // rather than reach the NaN-free `Real` arithmetic.
        let dx0 = e.x0.get() - s.x0.get();
        let dy0 = e.y0.get() - s.y0.get();
        let dx1 = e.x1.get() - s.x1.get();
        let dy1 = e.y1.get() - s.y1.get();
        let cross = dx0 * dy1 - dy0 * dx1;
        // Tolerance relative to the magnitude of the bilinear terms:
        // data built from rounded similarity transforms must pass.
        let scale = (dx0.abs() + dy0.abs()) * (dx1.abs() + dy1.abs());
        if !cross.is_finite() || !scale.is_finite() {
            return Err(InvariantViolation::new(
                "mseg: end point motion coefficients overflow",
            ));
        }
        let tol = 1e-9 * scale.max(1.0);
        if cross.abs() > tol {
            return Err(InvariantViolation::with_detail(
                "mseg: end point motions must be coplanar (non-rotating)",
                format!("cross = {cross}"),
            ));
        }
        Ok(MSeg { s, e })
    }

    /// Construct from motions already known to satisfy the `mseg` side
    /// conditions (e.g. consecutive vertices of a validated [`MCycle`],
    /// whose edges all passed [`MSeg::try_new`] at construction).
    /// Debug-checked only.
    ///
    /// [`MCycle`]: crate::uregion::MCycle
    pub(crate) fn from_validated(s: PointMotion, e: PointMotion) -> MSeg {
        debug_assert!(
            MSeg::try_new(s, e).is_ok(),
            "from_validated motions violate the mseg invariants"
        );
        MSeg { s, e }
    }

    /// The moving segment between two snapshot segments: from `seg0` at
    /// `t0` to `seg1` at `t1`, matching `seg0.u→seg1.u` and `seg0.v→seg1.v`.
    /// Fails if the resulting motion rotates.
    pub fn between(
        t0: Instant,
        p0: Point,
        q0: Point,
        t1: Instant,
        p1: Point,
        q1: Point,
    ) -> Result<MSeg> {
        let s = if p0 == p1 {
            PointMotion::stationary(p0)
        } else {
            PointMotion::through(t0, p0, t1, p1)
        };
        let e = if q0 == q1 {
            PointMotion::stationary(q0)
        } else {
            PointMotion::through(t0, q0, t1, q1)
        };
        MSeg::try_new(s, e)
    }

    /// The start-vertex motion.
    pub fn start_motion(&self) -> &PointMotion {
        &self.s
    }

    /// The end-vertex motion.
    pub fn end_motion(&self) -> &PointMotion {
        &self.e
    }

    /// `ι`: the pair of end points at `t` (possibly coincident at
    /// interval end points — the caller applies the cleanup rules).
    pub fn eval_pair(&self, t: Instant) -> (Point, Point) {
        (self.s.at(t), self.e.at(t))
    }

    /// The evaluated segment at `t`, or `None` if degenerated to a point.
    pub fn eval_seg(&self, t: Instant) -> Option<Seg> {
        let (p, q) = self.eval_pair(t);
        Seg::try_from_unordered(p, q)
    }

    /// `true` if the segment degenerates (to a point) at `t`.
    pub fn degenerate_at(&self, t: Instant) -> bool {
        let (p, q) = self.eval_pair(t);
        p == q
    }

    /// The signed "side" of motion `p` relative to this moving segment as
    /// a quadratic: `side(t) = cross(e(t) − s(t), p(t) − s(t))`. Zero
    /// exactly when `p(t)` lies on the carrier line of the segment.
    pub fn side_quadratic(&self, p: &PointMotion) -> (Real, Real, Real) {
        let (sx, sy) = motion_lin(&self.s);
        let (ex, ey) = motion_lin(&self.e);
        let (px, py) = motion_lin(p);
        let dx = ex.sub(&sx);
        let dy = ey.sub(&sy);
        let rx = px.sub(&sx);
        let ry = py.sub(&sy);
        let (a1, b1, c1) = dx.mul(&ry);
        let (a2, b2, c2) = dy.mul(&rx);
        (a1 - a2, b1 - b2, c1 - c2)
    }

    /// The instants within `interval` at which motion `p` crosses this
    /// moving segment (lies *on* the segment, between its end points).
    ///
    /// This is the 3D "line stabs trapezium" test of Algorithm
    /// `upoint_uregion_inside` (Sec 5.2).
    pub fn crossings_with(&self, p: &PointMotion, interval: &TimeInterval) -> Vec<Instant> {
        let (a, b, c) = self.side_quadratic(p);
        let probe = UReal::quadratic(*interval, a, b, c);
        let candidates = match probe.times_at_value(Real::ZERO) {
            ValueTimes::Never => return Vec::new(),
            ValueTimes::At(ts) => ts,
            ValueTimes::Always => {
                // The point rides along the carrier line the whole time —
                // a degenerate tangency; no transversal crossings.
                return Vec::new();
            }
        };
        candidates
            .into_iter()
            .filter(|t| {
                // The root guarantees pp lies on the carrier line up to
                // rounding; only the "between the end points" condition
                // needs checking — parametrically, with a tolerance, so
                // genuine crossings are not lost to f64 residue.
                let (sp, ep) = self.eval_pair(*t);
                let pp = p.at(*t);
                let dx = ep.x - sp.x;
                let dy = ep.y - sp.y;
                let len_sq = dx * dx + dy * dy;
                if len_sq.get() == 0.0 {
                    return sp.approx_eq(pp, 1e-9);
                }
                let param = ((pp.x - sp.x) * dx + (pp.y - sp.y) * dy) / len_sq;
                (-1e-9..=1.0 + 1e-9).contains(&param.get())
            })
            .collect()
    }
}

/// The *critical times* at which the interaction topology of two moving
/// segments can change within `iv`: instants where an end point of one
/// segment lies on the other segment (transversal incidences), where two
/// end points coincide (collinear sliding transitions), or where either
/// segment degenerates. Between consecutive critical times the validity
/// of a configuration is constant, so checking one interior sample per
/// gap decides validity *exactly* (up to root-finding precision).
pub fn critical_times(a: &MSeg, b: &MSeg, iv: &TimeInterval) -> Vec<Instant> {
    let mut out: Vec<Instant> = Vec::new();
    // End point of one on the other segment.
    out.extend(b.crossings_with(a.start_motion(), iv));
    out.extend(b.crossings_with(a.end_motion(), iv));
    out.extend(a.crossings_with(b.start_motion(), iv));
    out.extend(a.crossings_with(b.end_motion(), iv));
    // End point coincidences (collinear sliding overlaps start/stop here).
    use crate::upoint::Coincidence;
    for (p, q) in [
        (a.start_motion(), b.start_motion()),
        (a.start_motion(), b.end_motion()),
        (a.end_motion(), b.start_motion()),
        (a.end_motion(), b.end_motion()),
    ] {
        if let Coincidence::At(t) = p.meet_time(q) {
            if iv.contains(&t) {
                out.push(t);
            }
        }
    }
    // Degeneracies.
    for ms in [a, b] {
        if let Coincidence::At(t) = ms.start_motion().meet_time(ms.end_motion()) {
            if iv.contains(&t) {
                out.push(t);
            }
        }
    }
    out.sort();
    out.dedup_by(|x, y| (*x - *y).abs().get() <= 1e-12);
    out
}

/// The exact validation schedule for a set of moving segments on an
/// interval: all pairwise critical times inside the open interval, plus
/// one interior sample per gap between consecutive schedule points.
/// Checking validity at every returned instant decides condition (i) of
/// the `uline`/`uregion` carrier sets exactly.
pub fn validation_instants(msegs: &[MSeg], iv: &TimeInterval) -> Vec<Instant> {
    let mut crits: Vec<Instant> = Vec::new();
    for (i, a) in msegs.iter().enumerate() {
        for b in msegs.iter().skip(i + 1) {
            crits.extend(critical_times(a, b, iv));
        }
    }
    crits.retain(|t| iv.contains_open(t));
    crits.sort();
    crits.dedup_by(|x, y| (*x - *y).abs().get() <= 1e-12);
    // Gap midpoints (boundaries included as gap ends).
    let mut bounds = Vec::with_capacity(crits.len() + 2);
    bounds.push(*iv.start());
    bounds.extend(crits.iter().copied());
    bounds.push(*iv.end());
    let mut out = Vec::with_capacity(2 * bounds.len());
    for w in bounds.windows(2) {
        if w[0] < w[1] {
            out.push(w[0].midpoint(w[1]));
        }
    }
    out.extend(crits);
    out.sort();
    out.dedup();
    out
}

/// Canonical ordering key for motions (used to keep unit values sorted so
/// representation equality is set equality).
pub fn motion_key(m: &PointMotion) -> [u64; 4] {
    [
        m.x0.get().to_bits() ^ (1 << 63),
        m.x1.get().to_bits() ^ (1 << 63),
        m.y0.get().to_bits() ^ (1 << 63),
        m.y1.get().to_bits() ^ (1 << 63),
    ]
}

/// Canonical ordering key for moving segments.
pub fn mseg_key(s: &MSeg) -> [u64; 8] {
    let a = motion_key(&s.s);
    let b = motion_key(&s.e);
    [a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{r, t, Interval};
    use mob_spatial::pt;

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    #[test]
    fn lin_algebra() {
        let a = Lin::new(r(1.0), r(2.0)); // 1 + 2t
        let b = Lin::new(r(3.0), r(-1.0)); // 3 - t
        assert_eq!(a.at(t(2.0)), r(5.0));
        let (qa, qb, qc) = a.mul(&b); // (1+2t)(3-t) = 3 + 5t - 2t²
        assert_eq!((qa, qb, qc), (r(-2.0), r(5.0), r(3.0)));
        assert_eq!(a.sub(&b), Lin::new(r(-2.0), r(3.0)));
    }

    #[test]
    fn coplanarity_enforced() {
        // Translating segment: ok.
        let s = PointMotion::through(t(0.0), pt(0.0, 0.0), t(1.0), pt(1.0, 1.0));
        let e = PointMotion::through(t(0.0), pt(2.0, 0.0), t(1.0), pt(3.0, 1.0));
        assert!(MSeg::try_new(s, e).is_ok());
        // Rotating segment (one end swings around): rejected.
        let e_rot = PointMotion::through(t(0.0), pt(2.0, 0.0), t(1.0), pt(0.0, 2.0));
        assert!(MSeg::try_new(s, e_rot).is_err());
        // Identical motions rejected.
        assert!(MSeg::try_new(s, s).is_err());
    }

    #[test]
    fn triangle_msegs_are_valid() {
        // Degenerate at t=0 (both ends at the same point), expanding later:
        // a "triangle" in 3D — explicitly allowed (Fig 5).
        let m = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(0.0, 0.0),
            t(1.0),
            pt(0.0, 0.0),
            pt(1.0, 0.0),
        );
        // s stationary at origin, e moves right: coplanar.
        let m = m.unwrap();
        assert!(m.degenerate_at(t(0.0)));
        assert!(!m.degenerate_at(t(0.5)));
        assert_eq!(m.eval_seg(t(0.0)), None);
        assert_eq!(
            m.eval_seg(t(1.0)).unwrap(),
            Seg::new(pt(0.0, 0.0), pt(1.0, 0.0))
        );
    }

    #[test]
    fn evaluation() {
        let m = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(1.0, 0.0),
            t(2.0),
            pt(0.0, 2.0),
            pt(1.0, 2.0),
        )
        .unwrap();
        assert_eq!(
            m.eval_seg(t(1.0)).unwrap(),
            Seg::new(pt(0.0, 1.0), pt(1.0, 1.0))
        );
    }

    #[test]
    fn crossing_moving_point_through_moving_segment() {
        // Segment fixed on the x-axis from (0,0) to (2,0); point falls
        // from (1, 2) at t=0 to (1, -2) at t=2: crosses at t=1.
        let seg = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(2.0, 0.0),
            t(2.0),
            pt(0.0, 0.0),
            pt(2.0, 0.0),
        )
        .unwrap();
        let p = PointMotion::through(t(0.0), pt(1.0, 2.0), t(2.0), pt(1.0, -2.0));
        assert_eq!(seg.crossings_with(&p, &iv(0.0, 2.0)), vec![t(1.0)]);
        // Restricting the interval hides the crossing.
        assert!(seg.crossings_with(&p, &iv(0.0, 0.5)).is_empty());
        // A point passing beside the segment does not cross.
        let q = PointMotion::through(t(0.0), pt(5.0, 2.0), t(2.0), pt(5.0, -2.0));
        assert!(seg.crossings_with(&q, &iv(0.0, 2.0)).is_empty());
    }

    #[test]
    fn critical_times_detect_interactions() {
        // A stationary segment on the x-axis and one sweeping down
        // through it: the sweep's endpoints hit the carrier at distinct
        // times; the actual incidences are the critical times.
        let base = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(2.0, 0.0),
            t(2.0),
            pt(0.0, 0.0),
            pt(2.0, 0.0),
        )
        .unwrap();
        let sweep = MSeg::between(
            t(0.0),
            pt(0.5, 1.0),
            pt(1.5, 1.0),
            t(2.0),
            pt(0.5, -1.0),
            pt(1.5, -1.0),
        )
        .unwrap();
        let iv = Interval::closed(t(0.0), t(2.0));
        let crit = critical_times(&base, &sweep, &iv);
        assert_eq!(crit, vec![t(1.0)]); // both endpoints cross at t=1
                                        // Disjoint parallel segments: no critical times.
        let far = MSeg::between(
            t(0.0),
            pt(0.0, 5.0),
            pt(2.0, 5.0),
            t(2.0),
            pt(0.0, 5.0),
            pt(2.0, 5.0),
        )
        .unwrap();
        assert!(critical_times(&base, &far, &iv).is_empty());
        // Validation schedule: midpoints of [0,1] and [1,2] plus t=1.
        let sched = validation_instants(&[base, sweep], &iv);
        assert_eq!(sched, vec![t(0.5), t(1.0), t(1.5)]);
    }

    #[test]
    fn crossing_both_moving() {
        // Segment rises (y = t), point sinks (y = 2 - t): meet at t=1
        // where both are at y=1; point x=1 is inside [0,2].
        let seg = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(2.0, 0.0),
            t(2.0),
            pt(0.0, 2.0),
            pt(2.0, 2.0),
        )
        .unwrap();
        let p = PointMotion::through(t(0.0), pt(1.0, 2.0), t(2.0), pt(1.0, 0.0));
        assert_eq!(seg.crossings_with(&p, &iv(0.0, 2.0)), vec![t(1.0)]);
    }
}
