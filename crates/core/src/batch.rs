//! **Batch query kernels** — set-at-a-time versions of the Section-5
//! algorithms.
//!
//! The paper's motivating queries are set-oriented ("where were all
//! taxis at 8:00?", Sec 2), yet the plain Section-5 algorithms answer
//! one probe at a time: `q` snapshots of one mapping are `q`
//! independent `O(log n)` binary searches, and every search decodes its
//! hit unit from scratch on a storage-backed sequence. The kernels in
//! this module make the *batch* the unit of execution:
//!
//! * [`UnitCursor`] — a monotone hint cursor over any [`UnitSeq`]:
//!   repeated lookups at non-decreasing instants gallop forward from
//!   the previous hit instead of re-searching from scratch, and a
//!   one-slot decode cache hands the same unit out repeatedly without
//!   re-decoding it;
//! * [`batch_at_instant`] — `atinstant` for a whole sorted probe set in
//!   one merge scan: `O(n + q)` interval-header reads (in practice
//!   `O(q·log(n/q))` thanks to galloping) instead of `O(q log n)`, and
//!   at most one decode per distinct hit unit;
//! * [`batch_lift2`] / [`batch_inside`] — one probe argument against a
//!   *slice* of mappings, decoding the probe's units exactly once for
//!   the whole batch instead of once per pairing.
//!
//! The kernels are strictly sequential — `mob-core` stays free of
//! threading concerns. `mob-rel` composes them with the `mob-par`
//! worker pool to turn relation scans parallel.

use crate::lift::lift2;
use crate::mapping::Mapping;
use crate::moving::MovingBool;
use crate::seq::UnitSeq;
use crate::unit::Unit;
use crate::upoint::UPoint;
use crate::uregion::URegion;
use mob_base::{Instant, TimeInterval, Val};
use std::borrow::Cow;

/// `true` if the interval lies entirely before `t` — the advance
/// predicate of the monotone cursor.
fn ends_before(iv: &TimeInterval, t: Instant) -> bool {
    *iv.end() < t || (*iv.end() == t && !iv.right_closed())
}

/// A monotone *hint cursor* over a [`UnitSeq`].
///
/// For query streams whose probe instants never decrease (sorted batch
/// probes, the refinement walk of `lift2`, merge joins), the cursor
/// remembers where the previous probe landed and **gallops** forward
/// from there — doubling steps followed by a binary search over the
/// overshot range — instead of binary-searching the whole sequence
/// again. A one-slot decode cache makes repeated accesses to the same
/// unit free, which is what storage-backed sequences (where
/// [`UnitSeq::unit`] decodes a record) care about.
///
/// Total cost over a whole query stream: `O(q · log(n/q) + q)` interval
/// header reads and at most one decode per *distinct* unit touched —
/// versus `O(q log n)` reads and one decode per *probe* for independent
/// [`UnitSeq::find_unit`] calls.
pub struct UnitCursor<'a, S: UnitSeq> {
    seq: &'a S,
    /// Lower bound: every unit before `lo` ends before the last sought
    /// instant, so no future (non-decreasing) probe can land there.
    lo: usize,
    /// One-slot decode cache (unit index → decoded unit).
    cached: Option<(usize, Cow<'a, S::Unit>)>,
    #[cfg(debug_assertions)]
    last_sought: Option<Instant>,
}

impl<'a, S: UnitSeq> UnitCursor<'a, S> {
    /// A cursor positioned before the first unit.
    pub fn new(seq: &'a S) -> UnitCursor<'a, S> {
        UnitCursor {
            seq,
            lo: 0,
            cached: None,
            #[cfg(debug_assertions)]
            last_sought: None,
        }
    }

    /// The underlying sequence.
    pub fn seq(&self) -> &'a S {
        self.seq
    }

    /// Index of the unit whose interval contains `t`, advancing the
    /// cursor. Instants passed to successive `seek` calls must be
    /// non-decreasing (checked in debug builds).
    ///
    /// Galloping search: doubling steps from the hint position, then a
    /// binary search inside the overshot window — `O(log gap)` interval
    /// header reads where `gap` is the distance advanced.
    pub fn seek(&mut self, t: Instant) -> Option<usize> {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                self.last_sought.is_none_or(|prev| prev <= t),
                "UnitCursor::seek instants must be non-decreasing"
            );
            self.last_sought = Some(t);
        }
        let n = self.seq.len();
        if self.lo >= n {
            return None;
        }
        if ends_before(&self.seq.interval(self.lo), t) {
            // Gallop: find a window (base, base + step] whose far end no
            // longer lies before t, then binary search inside it for the
            // first such index.
            let mut base = self.lo;
            let mut step = 1usize;
            while base + step < n && ends_before(&self.seq.interval(base + step), t) {
                base += step;
                step = step.saturating_mul(2);
            }
            // Invariant: units ..= base end before t; either base+step
            // overshoots n or unit base+step does not end before t.
            let (mut lo, mut hi) = (base + 1, (base + step).min(n));
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if ends_before(&self.seq.interval(mid), t) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            self.lo = lo;
            if self.lo >= n {
                return None;
            }
        }
        // Unit `lo` does not end before `t`; it is the only candidate.
        if self.seq.interval(self.lo).contains(&t) {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Unit `i` through the one-slot decode cache: hits clone the
    /// cached [`Cow`] (free for borrowed units), misses decode once and
    /// refill the slot.
    pub fn unit(&mut self, i: usize) -> Cow<'a, S::Unit> {
        match &self.cached {
            Some((k, u)) if *k == i => u.clone(),
            _ => {
                let u = self.seq.unit(i);
                self.cached = Some((i, u.clone()));
                u
            }
        }
    }

    /// `atinstant` through the cursor: seek + cached evaluate.
    pub fn value_at(&mut self, t: Instant) -> Val<<S::Unit as Unit>::Value> {
        match self.seek(t) {
            Some(i) => Val::Def(self.unit(i).at(t)),
            None => Val::Undef,
        }
    }
}

/// The `atinstant` operation for a whole **sorted** probe set, as a
/// single merge scan over the unit list.
///
/// Instead of `q` independent binary searches (`O(q log n)` interval
/// header reads, one unit decode per probe), the scan advances a
/// [`UnitCursor`] monotonically through the sequence: `O(n + q)` header
/// reads worst case, `O(q · log(n/q))` with galloping when probes are
/// sparse, and at most one decode per *distinct* unit hit.
///
/// `sorted_instants` must be non-decreasing (the caller pre-sorts;
/// checked in debug builds). Element `k` of the result is exactly
/// `seq.at_instant(sorted_instants[k])`.
pub fn batch_at_instant<S: UnitSeq>(
    seq: &S,
    sorted_instants: &[Instant],
) -> Vec<Val<<S::Unit as Unit>::Value>> {
    debug_assert!(
        sorted_instants.windows(2).all(|w| w[0] <= w[1]),
        "batch_at_instant probes must be sorted (non-decreasing)"
    );
    let _span = mob_obs::span("core.batch_at_instant");
    mob_obs::metric!("core.batch_at_instant.probes").add(sorted_instants.len() as u64);
    let mut cursor = UnitCursor::new(seq);
    sorted_instants
        .iter()
        .map(|&t| cursor.value_at(t))
        .collect()
}

/// Binary lift of one probe argument against a **slice** of second
/// arguments: `kernel` runs on every refinement part of `(a, bs[k])`
/// for each `k`, and the probe's units are materialized (decoded)
/// exactly **once** for the whole batch.
///
/// For an in-memory probe the materialization is a plain clone; for a
/// storage-backed probe it replaces `bs.len()` full decode passes by
/// one. Element `k` of the result equals `lift2(a, &bs[k], kernel)`.
pub fn batch_lift2<SA, SB, UC, F>(a: &SA, bs: &[SB], kernel: F) -> Vec<Mapping<UC>>
where
    SA: UnitSeq,
    SB: UnitSeq,
    UC: Unit,
    F: Fn(&TimeInterval, &SA::Unit, &SB::Unit) -> Vec<UC>,
{
    let _span = mob_obs::span("core.batch_lift2");
    mob_obs::metric!("core.batch_lift2.pairs").add(bs.len() as u64);
    let probe: Mapping<SA::Unit> = a.materialize();
    bs.iter().map(|b| lift2(&probe, b, &kernel)).collect()
}

/// Algorithm `inside` (Sec 5.2) for one moving region against a slice
/// of moving points: the region's units are decoded once for the whole
/// batch. Element `k` equals `inside(&points[k], region)`.
///
/// This is the set-at-a-time shape of the Section-2 query "which
/// flights passed over New Jersey?" — one region, a relation's worth of
/// flights.
pub fn batch_inside<SP, SR>(points: &[SP], region: &SR) -> Vec<MovingBool>
where
    SP: UnitSeq<Unit = UPoint>,
    SR: UnitSeq<Unit = URegion>,
{
    let _span = mob_obs::span("core.batch_inside");
    mob_obs::metric!("core.batch_inside.pairs").add(points.len() as u64);
    let probe: Mapping<URegion> = region.materialize();
    points
        .iter()
        .map(|p| crate::moving::mregion::inside(p, &probe))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uconst::ConstUnit;
    use mob_base::{t, Interval};

    fn cu(s: f64, e: f64, lc: bool, rc: bool, v: i64) -> ConstUnit<i64> {
        ConstUnit::new(Interval::new(t(s), t(e), lc, rc), v)
    }

    fn gapped() -> Mapping<ConstUnit<i64>> {
        Mapping::try_new(vec![
            cu(0.0, 1.0, true, true, 1),
            cu(1.0, 2.0, false, false, 2),
            cu(5.0, 6.0, true, true, 3),
            cu(8.0, 9.0, true, false, 4),
        ])
        .unwrap()
    }

    #[test]
    fn batch_agrees_with_per_call_at_instant() {
        let m = gapped();
        let probes: Vec<Instant> = [
            -3.0, 0.0, 0.25, 0.25, 1.0, 1.5, 2.0, 3.3, 5.0, 5.5, 6.0, 7.0, 8.0, 8.5, 9.0, 12.0,
        ]
        .iter()
        .map(|&k| t(k))
        .collect();
        let batch = batch_at_instant(&m, &probes);
        for (k, &ti) in probes.iter().enumerate() {
            assert_eq!(batch[k], m.at_instant(ti), "probe {k} at {ti:?}");
        }
    }

    #[test]
    fn batch_on_empty_and_singleton() {
        let empty: Mapping<ConstUnit<i64>> = Mapping::empty();
        let probes = vec![t(0.0), t(1.0)];
        assert_eq!(batch_at_instant(&empty, &probes), vec![Val::Undef; 2]);
        assert!(batch_at_instant(&gapped(), &[]).is_empty());
    }

    #[test]
    fn cursor_gallops_past_long_runs() {
        // Many units, a few probes near the end: the cursor must still
        // find the right units after long jumps.
        let units: Vec<ConstUnit<i64>> = (0..1000)
            .map(|k| cu(k as f64, k as f64 + 1.0, true, false, k))
            .collect();
        let m = Mapping::try_new(units).unwrap();
        let probes = vec![t(0.5), t(997.25), t(999.5)];
        assert_eq!(
            batch_at_instant(&m, &probes),
            vec![Val::Def(0), Val::Def(997), Val::Def(999)]
        );
    }

    #[test]
    fn cursor_seek_reuses_hit_unit() {
        let m = gapped();
        let mut c = UnitCursor::new(&m);
        assert_eq!(c.seek(t(0.2)), Some(0));
        assert_eq!(c.seek(t(0.9)), Some(0)); // same unit, no advance
        assert_eq!(c.seek(t(4.0)), None); // gap
        assert_eq!(c.seek(t(5.5)), Some(2)); // later unit still reachable
        assert_eq!(c.value_at(t(8.2)), Val::Def(4));
    }

    #[test]
    fn batch_lift2_matches_lift2() {
        let a = Mapping::try_new(vec![cu(0.0, 4.0, true, true, 10)]).unwrap();
        let bs = vec![
            Mapping::try_new(vec![cu(1.0, 3.0, true, true, 1)]).unwrap(),
            Mapping::try_new(vec![cu(2.0, 6.0, true, true, 2)]).unwrap(),
            Mapping::empty(),
        ];
        let kernel = |iv: &TimeInterval, ua: &ConstUnit<i64>, ub: &ConstUnit<i64>| {
            vec![ConstUnit::new(*iv, ua.value() + ub.value())]
        };
        let batch = batch_lift2(&a, &bs, kernel);
        for (k, b) in bs.iter().enumerate() {
            let single = lift2(&a, b, |iv, ua, ub| {
                vec![ConstUnit::new(*iv, ua.value() + ub.value())]
            });
            assert_eq!(batch[k], single, "pairing {k}");
        }
    }
}
