//! The `uregion` unit type (Sec 3.2.6, Fig 6): moving faces built from
//! moving cycles of non-rotating moving segments, valid as a `region`
//! value throughout the open unit interval, with the `ι_s`/`ι_e`
//! endpoint cleanup (degenerate segments removed, overlapping collinear
//! fragments resolved by the even/odd rule, then `close()`).

use crate::mseg::MSeg;
use crate::uconst::ConstUnit;
use crate::unit::Unit;
use crate::upoint::{PointMotion, UPoint};
use crate::ureal::UReal;
use mob_base::error::{InvariantViolation, Result};
use mob_base::{Instant, Interval, Real, TimeInterval};
use mob_spatial::seg::parity_fragments;
use mob_spatial::{Cube, Face, Point, Rect, Region, Ring, Seg};
use std::fmt;

/// A moving cycle: a closed chain of moving vertices; edge `i` is the
/// moving segment from vertex `i` to vertex `i+1 (mod n)`.
#[derive(Clone, PartialEq)]
pub struct MCycle {
    verts: Vec<PointMotion>,
}

impl MCycle {
    /// Validating constructor: at least 3 vertices, every edge a valid
    /// (coplanar, not permanently degenerate) moving segment.
    pub fn try_new(verts: Vec<PointMotion>) -> Result<MCycle> {
        if verts.len() < 3 {
            return Err(InvariantViolation::new("mcycle: n >= 3"));
        }
        for i in 0..verts.len() {
            let j = (i + 1) % verts.len();
            // MSeg::try_new enforces s ≠ e and coplanarity.
            MSeg::try_new(verts[i], verts[j])?;
        }
        Ok(MCycle { verts })
    }

    /// The moving cycle interpolating linearly between two snapshots of
    /// the same vertex count, `ring0` at `t0` and `ring1` at `t1`
    /// (vertex `k` travels to vertex `k`).
    pub fn interpolate(t0: Instant, ring0: &Ring, t1: Instant, ring1: &Ring) -> Result<MCycle> {
        if ring0.len() != ring1.len() {
            return Err(InvariantViolation::new(
                "mcycle: snapshot rings must have equal vertex counts",
            ));
        }
        let verts = ring0
            .points()
            .iter()
            .zip(ring1.points())
            .map(|(p, q)| {
                if p == q {
                    PointMotion::stationary(*p)
                } else {
                    PointMotion::through(t0, *p, t1, *q)
                }
            })
            .collect();
        MCycle::try_new(verts)
    }

    /// The moving vertices.
    pub fn verts(&self) -> &[PointMotion] {
        &self.verts
    }

    /// Number of moving segments (= vertices).
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Never true: the constructor requires at least 3 vertices.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// The edges as moving segments.
    pub fn msegs(&self) -> Vec<MSeg> {
        (0..self.verts.len())
            .map(|i| {
                // Every edge passed `MSeg::try_new` in `MCycle::try_new`.
                MSeg::from_validated(self.verts[i], self.verts[(i + 1) % self.verts.len()])
            })
            .collect()
    }

    /// Evaluate the vertex chain at `t`, dropping consecutive duplicates
    /// (including across the wrap-around).
    pub fn eval_points(&self, t: Instant) -> Vec<Point> {
        let mut pts: Vec<Point> = Vec::with_capacity(self.verts.len());
        for m in &self.verts {
            let p = m.at(t);
            if pts.last() != Some(&p) {
                pts.push(p);
            }
        }
        while pts.len() > 1 && pts.first() == pts.last() {
            pts.pop();
        }
        pts
    }

    /// Evaluate to a validated ring (fails on degeneracies — callers fall
    /// back to the cleanup path).
    pub fn eval_ring(&self, t: Instant) -> Result<Ring> {
        Ring::try_new(self.eval_points(t))
    }

    /// The signed area of the evaluated cycle as a quadratic in `t`:
    /// the shoelace sum of products of linear coordinate functions.
    pub fn signed_area_quadratic(&self) -> (Real, Real, Real) {
        let n = self.verts.len();
        let (mut a, mut b, mut c) = (Real::ZERO, Real::ZERO, Real::ZERO);
        for i in 0..n {
            let p = &self.verts[i];
            let q = &self.verts[(i + 1) % n];
            let (px, py) = (
                crate::mseg::Lin::new(p.x0, p.x1),
                crate::mseg::Lin::new(p.y0, p.y1),
            );
            let (qx, qy) = (
                crate::mseg::Lin::new(q.x0, q.x1),
                crate::mseg::Lin::new(q.y0, q.y1),
            );
            let (a1, b1, c1) = px.mul(&qy);
            let (a2, b2, c2) = qx.mul(&py);
            a += a1 - a2;
            b += b1 - b2;
            c += c1 - c2;
        }
        let half = Real::new(0.5);
        (a * half, b * half, c * half)
    }
}

impl fmt::Debug for MCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MCycle({} verts)", self.verts.len())
    }
}

/// A moving face: an outer moving cycle plus moving holes.
#[derive(Clone, PartialEq, Debug)]
pub struct MFace {
    /// The outer moving cycle.
    pub outer: MCycle,
    /// The moving hole cycles.
    pub holes: Vec<MCycle>,
}

impl MFace {
    /// Construct a moving face.
    pub fn new(outer: MCycle, holes: Vec<MCycle>) -> MFace {
        MFace { outer, holes }
    }

    /// A hole-free moving face.
    pub fn simple(outer: MCycle) -> MFace {
        MFace {
            outer,
            holes: Vec::new(),
        }
    }

    /// All moving segments of the face.
    pub fn msegs(&self) -> Vec<MSeg> {
        let mut out = self.outer.msegs();
        for h in &self.holes {
            out.extend(h.msegs());
        }
        out
    }
}

/// A moving `region` unit.
#[derive(Clone, PartialEq)]
pub struct URegion {
    interval: TimeInterval,
    faces: Vec<MFace>,
    /// Precomputed 3D bounding cube — the Sec 4.2 summary field that
    /// makes the `inside` fast path O(1) per unit pair.
    cube: Cube,
}

impl URegion {
    /// Validating constructor: evaluations at every instant of the exact
    /// critical-time schedule (or the single instant of a point unit)
    /// must be valid regions — see `mob_core::mseg::validation_instants`.
    pub fn try_new(interval: TimeInterval, faces: Vec<MFace>) -> Result<URegion> {
        if faces.is_empty() {
            return Err(InvariantViolation::new("uregion: at least one face"));
        }
        let cube = compute_cube(&faces, &interval);
        let u = URegion {
            interval,
            faces,
            cube,
        };
        // Exact validation schedule: pairwise critical times of the
        // moving segments plus one sample per gap (see DESIGN.md).
        let samples: Vec<Instant> = if interval.is_point() {
            vec![*interval.start()]
        } else {
            crate::mseg::validation_instants(&u.msegs(), &interval)
        };
        for t in samples {
            let strict = interval.is_point() || interval.contains_open(&t);
            if !strict {
                continue;
            }
            u.eval_strict(t).map_err(|e| {
                InvariantViolation::with_detail(
                    "uregion: evaluation inside the open interval must be a valid region",
                    format!("at {t:?}: {e}"),
                )
            })?;
        }
        Ok(u)
    }

    /// A motionless moving region: the static `region` held constant over
    /// the interval (used to lift operations against static regions).
    pub fn stationary(interval: TimeInterval, region: &Region) -> Result<URegion> {
        let cycle = |ring: &Ring| {
            MCycle::try_new(
                ring.points()
                    .iter()
                    .map(|p| PointMotion::stationary(*p))
                    .collect(),
            )
        };
        let mut faces = Vec::with_capacity(region.faces().len());
        for f in region.faces() {
            let outer = cycle(f.outer())?;
            let holes = f.holes().iter().map(cycle).collect::<Result<Vec<_>>>()?;
            faces.push(MFace::new(outer, holes));
        }
        URegion::try_new(interval, faces)
    }

    /// The single-face, hole-free moving region interpolating between two
    /// snapshot rings.
    pub fn interpolate(interval: TimeInterval, ring0: &Ring, ring1: &Ring) -> Result<URegion> {
        let cyc = MCycle::interpolate(*interval.start(), ring0, *interval.end(), ring1)?;
        URegion::try_new(interval, vec![MFace::simple(cyc)])
    }

    /// The moving faces.
    pub fn faces(&self) -> &[MFace] {
        &self.faces
    }

    /// All moving segments (the `msegments` subarray of Sec 4.2).
    pub fn msegs(&self) -> Vec<MSeg> {
        self.faces.iter().flat_map(MFace::msegs).collect()
    }

    /// Number of moving segments.
    pub fn num_msegs(&self) -> usize {
        self.faces
            .iter()
            .map(|f| f.outer.len() + f.holes.iter().map(MCycle::len).sum::<usize>())
            .sum()
    }

    /// Fast evaluation at an *interior* instant: the unit invariant
    /// certifies validity there (condition (i) of `D_uregion`), so the
    /// region is assembled without re-validation and `atinstant` keeps
    /// its `O(log n + r)` bound (Sec 5.1). Returns `None` on unexpected
    /// degeneracy (callers fall back to the cleanup path).
    fn eval_unchecked(&self, t: Instant) -> Option<Region> {
        let mut faces = Vec::with_capacity(self.faces.len());
        for mf in &self.faces {
            let outer_pts = mf.outer.eval_points(t);
            if outer_pts.len() < 3 {
                return None;
            }
            let outer = Ring::new_unchecked(outer_pts);
            let mut holes = Vec::with_capacity(mf.holes.len());
            for h in &mf.holes {
                let pts = h.eval_points(t);
                if pts.len() < 3 {
                    return None;
                }
                holes.push(Ring::new_unchecked(pts));
            }
            faces.push(Face::new_unchecked(outer, holes));
        }
        Some(Region::from_faces_unchecked(faces))
    }

    /// Strict evaluation at `t` via direct face construction; fails on
    /// degeneracies.
    fn eval_strict(&self, t: Instant) -> Result<Region> {
        let mut faces = Vec::with_capacity(self.faces.len());
        for mf in &self.faces {
            let outer = mf.outer.eval_ring(t)?;
            let holes = mf
                .holes
                .iter()
                .map(|h| h.eval_ring(t))
                .collect::<Result<Vec<Ring>>>()?;
            faces.push(Face::try_new(outer, holes)?);
        }
        Region::try_new(faces)
    }

    /// Evaluation with the full `ι_s`/`ι_e` cleanup: degenerate pairs
    /// dropped, even/odd fragment rule applied, structure rebuilt with
    /// `close()` (Sec 3.2.6 end-of-section construction).
    fn eval_cleanup(&self, t: Instant) -> Region {
        let mut segs: Vec<Seg> = Vec::new();
        for mf in &self.faces {
            for ms in mf.msegs() {
                if let Some(s) = ms.eval_seg(t) {
                    segs.push(s);
                }
            }
        }
        let fragments = parity_fragments(&segs);
        Region::close(fragments).unwrap_or_else(|_| Region::empty())
    }

    /// The time-dependent total area of the moving region, as a `ureal`
    /// quadratic — exactly representable because the shoelace sum of
    /// linearly moving vertices is quadratic in `t`. (This is the "size"
    /// summary the paper suggests storing with each unit, Sec 4.2.)
    pub fn area_ureal(&self) -> UReal {
        let probe = self.interval.interior_instant();
        let (mut a, mut b, mut c) = (Real::ZERO, Real::ZERO, Real::ZERO);
        let mut add = |cyc: &MCycle, sign: Real| {
            let (qa, qb, qc) = cyc.signed_area_quadratic();
            // Normalize the cycle's signed area to be positive at the
            // probe instant, then apply the face/hole sign.
            let val = (qa * probe.value() * probe.value()) + qb * probe.value() + qc;
            let orient = if val < Real::ZERO {
                -Real::ONE
            } else {
                Real::ONE
            };
            a += qa * orient * sign;
            b += qb * orient * sign;
            c += qc * orient * sign;
        };
        for mf in &self.faces {
            add(&mf.outer, Real::ONE);
            for h in &mf.holes {
                add(h, -Real::ONE);
            }
        }
        UReal::quadratic(self.interval, a, b, c)
    }

    /// Exact perimeter at an instant (the sum of √quadratic edge lengths
    /// is *not* a `ureal`; the paper accepts this closure limit).
    pub fn perimeter_at(&self, t: Instant) -> Real {
        self.faces
            .iter()
            .flat_map(MFace::msegs)
            .filter_map(|ms| ms.eval_seg(t))
            .fold(Real::ZERO, |acc, s| acc + s.length())
    }

    /// 3D bounding cube over the unit interval (Sec 4.2 summary field,
    /// precomputed at construction so the `inside` fast path is O(1)).
    pub fn bounding_cube(&self) -> Cube {
        self.cube
    }

    /// Algorithm `upoint_uregion_inside` (Sec 5.2): the boolean units
    /// describing when the moving point `up` is inside this moving
    /// region, over the intersection `iv` of the two unit intervals.
    ///
    /// Deviation from the paper: when the bounding cubes are disjoint we
    /// return a single `false` unit instead of ∅, so that the lifted
    /// `inside` is defined wherever both arguments are (see DESIGN.md).
    pub fn inside_units(&self, up: &UPoint, iv: &TimeInterval) -> Vec<ConstUnit<bool>> {
        // Fast path: disjoint bounding cubes (Sec 5.2, O(1)).
        let up_clipped = match crate::unit::Unit::restrict(up, iv) {
            Some(u) => u,
            None => return Vec::new(),
        };
        if !self.bounding_cube().intersects(&up_clipped.bounding_cube()) {
            return vec![ConstUnit::new(*iv, false)];
        }
        // Find all crossings of the moving point with the moving
        // boundary segments (3D trapezium stabbing).
        let motion = up.motion();
        let mut times: Vec<Instant> = Vec::new();
        for ms in self.msegs() {
            times.extend(ms.crossings_with(motion, iv));
        }
        times.sort();
        times.dedup_by(|a, b| (*a - *b).abs().get() <= 1e-12);
        // Keep only crossings strictly inside the interval; boundary
        // instants are handled through interval closedness below.
        let s = *iv.start();
        let e = *iv.end();
        times.retain(|t| iv.contains_open(t));

        if iv.is_point() {
            let inside = self.point_inside_at(motion, s);
            return vec![ConstUnit::new(*iv, inside)];
        }

        // Sub-interval classification by midpoint (robust against
        // tangential touches and vertex double-hits).
        let mut cuts = Vec::with_capacity(times.len() + 2);
        cuts.push(s);
        cuts.extend(times.iter().copied());
        cuts.push(e);
        let mut out: Vec<ConstUnit<bool>> = Vec::new();
        let mut push = |unit: ConstUnit<bool>| {
            // Local concat (the O(1) merge of Sec 5.2).
            if let Some(last) = out.last_mut() {
                if let Some(m) = crate::unit::Unit::try_merge(last, &unit) {
                    *last = m;
                    return;
                }
            }
            out.push(unit);
        };
        for (k, w) in cuts.windows(2).enumerate() {
            let (t0, t1) = (w[0], w[1]);
            let inside = self.point_inside_at(motion, t0.midpoint(t1));
            // Crossing instants lie on the boundary: closure semantics
            // puts them on the `true` side.
            let lc = if k == 0 { iv.left_closed() } else { inside };
            let rc = if k == cuts.len() - 2 {
                iv.right_closed()
            } else {
                inside
            };
            // At the very ends, the on-boundary rule still applies: if
            // the end instant itself is on the boundary and the adjacent
            // open piece is outside, emit a separate instant unit.
            if k == 0 && iv.left_closed() {
                let at_start = self.point_inside_at(motion, t0);
                if at_start != inside {
                    push(ConstUnit::new(TimeInterval::point(t0), at_start));
                    push(ConstUnit::new(Interval::new(t0, t1, false, rc), inside));
                    continue;
                }
            }
            if k == cuts.len() - 2 && iv.right_closed() {
                let at_end = self.point_inside_at(motion, t1);
                if at_end != inside {
                    push(ConstUnit::new(Interval::new(t0, t1, lc, false), inside));
                    push(ConstUnit::new(TimeInterval::point(t1), at_end));
                    continue;
                }
            }
            push(ConstUnit::new(Interval::new(t0, t1, lc, rc), inside));
        }
        out
    }

    /// Ablation variant of [`URegion::inside_units`] that skips the
    /// bounding-cube fast path (always scans the moving segments). Used
    /// by the ablation benchmarks to quantify the value of the Sec 4.2
    /// summary cube; not part of the normal API surface.
    pub fn inside_units_scan(&self, up: &UPoint, iv: &TimeInterval) -> Vec<ConstUnit<bool>> {
        let motion = up.motion();
        let mut times: Vec<Instant> = Vec::new();
        for ms in self.msegs() {
            times.extend(ms.crossings_with(motion, iv));
        }
        times.sort();
        times.dedup_by(|a, b| (*a - *b).abs().get() <= 1e-12);
        times.retain(|t| iv.contains_open(t));
        let s = *iv.start();
        if iv.is_point() {
            return vec![ConstUnit::new(*iv, self.point_inside_at(motion, s))];
        }
        let e = *iv.end();
        let mut cuts = Vec::with_capacity(times.len() + 2);
        cuts.push(s);
        cuts.extend(times);
        cuts.push(e);
        let mut out: Vec<ConstUnit<bool>> = Vec::new();
        for (k, w) in cuts.windows(2).enumerate() {
            let inside = self.point_inside_at(motion, w[0].midpoint(w[1]));
            let lc = if k == 0 { iv.left_closed() } else { inside };
            let rc = if k == cuts.len() - 2 {
                iv.right_closed()
            } else {
                inside
            };
            let unit = ConstUnit::new(Interval::new(w[0], w[1], lc, rc), inside);
            if let Some(last) = out.last_mut() {
                if let Some(m) = crate::unit::Unit::try_merge(last, &unit) {
                    *last = m;
                    continue;
                }
            }
            out.push(unit);
        }
        out
    }

    /// Static point-in-moving-region test at a single instant (the
    /// "plumbline" step of Sec 5.2).
    fn point_inside_at(&self, motion: &PointMotion, t: Instant) -> bool {
        let p = motion.at(t);
        let segs: Vec<Seg> = self
            .msegs()
            .into_iter()
            .filter_map(|ms| ms.eval_seg(t))
            .collect();
        mob_spatial::arrangement::on_any_segment(&segs, p)
            || mob_spatial::arrangement::parity_inside(&segs, p)
    }
}

/// Bounding cube of a face set over an interval: the vertices at both
/// interval ends bound all linear motion in between.
fn compute_cube(faces: &[MFace], interval: &TimeInterval) -> Cube {
    let s = *interval.start();
    let e = *interval.end();
    let mut rect = Rect::EMPTY;
    let mut add_cycle = |c: &MCycle| {
        for m in c.verts() {
            rect = rect
                .union(&Rect::of_point(m.at(s)))
                .union(&Rect::of_point(m.at(e)));
        }
    };
    for f in faces {
        add_cycle(&f.outer);
        for h in &f.holes {
            add_cycle(h);
        }
    }
    Cube::new(rect, interval)
}

impl Unit for URegion {
    type Value = Region;

    fn interval(&self) -> &TimeInterval {
        &self.interval
    }

    fn with_interval(&self, iv: TimeInterval) -> Self {
        URegion {
            interval: iv,
            faces: self.faces.clone(),
            cube: compute_cube(&self.faces, &iv),
        }
    }

    /// `uregion_atinstant` (Sec 5.1): direct (unvalidated — the unit
    /// invariant certifies validity) face construction at interior
    /// instants; validated construction with cleanup fallback
    /// (`ι_s`/`ι_e`) at the end points, where degeneracies may occur.
    fn at(&self, t: Instant) -> Region {
        if self.interval.contains_open(&t) {
            if let Some(region) = self.eval_unchecked(t) {
                return region;
            }
            return self.eval_cleanup(t);
        }
        match self.eval_strict(t) {
            Ok(region) => region,
            Err(_) => self.eval_cleanup(t),
        }
    }

    fn value_eq(&self, other: &Self) -> bool {
        self.faces == other.faces
    }
}

impl fmt::Debug for URegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}↦{} moving faces ({} msegs)",
            self.interval,
            self.faces.len(),
            self.num_msegs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{r, t};
    use mob_spatial::{pt, rect_ring};

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    /// A unit square translating right by 2 over [0,2].
    fn sliding_square() -> URegion {
        URegion::interpolate(
            iv(0.0, 2.0),
            &rect_ring(0.0, 0.0, 1.0, 1.0),
            &rect_ring(2.0, 0.0, 3.0, 1.0),
        )
        .unwrap()
    }

    /// A square growing from side 2 to side 4, centred at the origin.
    fn growing_square() -> URegion {
        URegion::interpolate(
            iv(0.0, 1.0),
            &rect_ring(-1.0, -1.0, 1.0, 1.0),
            &rect_ring(-2.0, -2.0, 2.0, 2.0),
        )
        .unwrap()
    }

    #[test]
    fn atinstant_translating() {
        let u = sliding_square();
        let r0 = u.at(t(0.0));
        assert_eq!(r0.area(), r(1.0));
        assert!(r0.contains_point(pt(0.5, 0.5)));
        let r1 = u.at(t(1.0));
        assert!(r1.contains_point(pt(1.5, 0.5)));
        assert!(!r1.contains_point(pt(0.0, 0.5)));
        let r2 = u.at(t(2.0));
        assert!(r2.contains_point(pt(2.5, 0.5)));
    }

    #[test]
    fn area_quadratic_matches_evaluation() {
        let u = growing_square();
        let area = u.area_ureal();
        // side(t) = 2 + 2t, area = (2+2t)² = 4t² + 8t + 4.
        assert_eq!(area.value_at(t(0.0)), r(4.0));
        assert_eq!(area.value_at(t(0.5)), r(9.0));
        assert_eq!(area.value_at(t(1.0)), r(16.0));
        // Cross-check against the spatial evaluation.
        for k in [0.0, 0.25, 0.5, 0.75, 1.0] {
            assert!(area.value_at(t(k)).approx_eq(u.at(t(k)).area(), 1e-9));
        }
    }

    #[test]
    fn perimeter_at() {
        let u = growing_square();
        assert_eq!(u.perimeter_at(t(0.0)), r(8.0));
        assert_eq!(u.perimeter_at(t(1.0)), r(16.0));
    }

    #[test]
    fn collapse_at_endpoint_cleaned() {
        // A square collapsing to a point at t=1 (Fig 6 degeneracy).
        let cyc = MCycle::try_new(vec![
            PointMotion::through(t(0.0), pt(0.0, 0.0), t(1.0), pt(1.0, 1.0)),
            PointMotion::through(t(0.0), pt(2.0, 0.0), t(1.0), pt(1.0, 1.0)),
            PointMotion::through(t(0.0), pt(2.0, 2.0), t(1.0), pt(1.0, 1.0)),
            PointMotion::through(t(0.0), pt(0.0, 2.0), t(1.0), pt(1.0, 1.0)),
        ])
        .unwrap();
        let u = URegion::try_new(iv(0.0, 1.0), vec![MFace::simple(cyc)]).unwrap();
        assert_eq!(u.at(t(0.0)).area(), r(4.0));
        assert!(u.at(t(0.5)).area().approx_eq(r(1.0), 1e-9));
        // At t=1 the region degenerates: cleanup yields the empty region.
        assert!(u.at(t(1.0)).is_empty());
        // The area quadratic still evaluates to 0 there.
        assert!(u.area_ureal().value_at(t(1.0)).approx_eq(r(0.0), 1e-9));
    }

    #[test]
    fn moving_region_with_hole() {
        let outer = MCycle::interpolate(
            t(0.0),
            &rect_ring(0.0, 0.0, 4.0, 4.0),
            t(1.0),
            &rect_ring(1.0, 0.0, 5.0, 4.0),
        )
        .unwrap();
        let hole = MCycle::interpolate(
            t(0.0),
            &rect_ring(1.0, 1.0, 2.0, 2.0),
            t(1.0),
            &rect_ring(2.0, 1.0, 3.0, 2.0),
        )
        .unwrap();
        let u = URegion::try_new(iv(0.0, 1.0), vec![MFace::new(outer, vec![hole])]).unwrap();
        let r0 = u.at(t(0.0));
        assert_eq!(r0.num_cycles(), 2);
        assert_eq!(r0.area(), r(15.0));
        assert!(!u.at(t(0.5)).contains_point(pt(2.0, 1.5))); // inside moving hole
        assert!(u.at(t(0.0)).contains_point(pt(3.0, 3.0)));
        // Area stays 15 (hole translates with same speed).
        assert!(u.area_ureal().value_at(t(0.5)).approx_eq(r(15.0), 1e-9));
    }

    #[test]
    fn invalid_interior_selfintersection_rejected() {
        // Square whose right edge sweeps across its left edge mid-interval:
        // produces a bow-tie inside the interval.
        let cyc = MCycle::try_new(vec![
            PointMotion::stationary(pt(0.0, 0.0)),
            PointMotion::through(t(0.0), pt(2.0, 0.0), t(1.0), pt(-2.0, 0.0)),
            PointMotion::through(t(0.0), pt(2.0, 2.0), t(1.0), pt(-2.0, 2.0)),
            PointMotion::stationary(pt(0.0, 2.0)),
        ])
        .unwrap();
        assert!(URegion::try_new(iv(0.0, 1.0), vec![MFace::simple(cyc)]).is_err());
    }

    #[test]
    fn inside_units_crossing() {
        // Stationary unit square [0,1]²; point flies through it.
        let u = URegion::interpolate(
            iv(0.0, 4.0),
            &rect_ring(0.0, 0.0, 1.0, 1.0),
            &rect_ring(0.0, 0.0, 1.0, 1.0),
        )
        .unwrap();
        // Point moves from (-1, 0.5) to (3, 0.5) over [0,4]: inside during
        // x ∈ [0,1] ⇒ t ∈ [1, 2].
        let up = UPoint::between(iv(0.0, 4.0), pt(-1.0, 0.5), pt(3.0, 0.5));
        let units = u.inside_units(&up, &iv(0.0, 4.0));
        let vals: Vec<(bool, f64, f64)> = units
            .iter()
            .map(|cu| {
                (
                    *cu.value(),
                    cu.interval().start().as_f64(),
                    cu.interval().end().as_f64(),
                )
            })
            .collect();
        assert_eq!(
            vals,
            vec![(false, 0.0, 1.0), (true, 1.0, 2.0), (false, 2.0, 4.0)]
        );
        // Closure semantics: crossing instants belong to the true unit.
        assert!(units[1].interval().left_closed());
        assert!(units[1].interval().right_closed());
        assert!(!units[0].interval().right_closed());
        assert!(!units[2].interval().left_closed());
    }

    #[test]
    fn inside_units_bbox_fast_path() {
        let u = sliding_square();
        let up = UPoint::between(iv(0.0, 2.0), pt(50.0, 50.0), pt(60.0, 60.0));
        let units = u.inside_units(&up, &iv(0.0, 2.0));
        assert_eq!(units.len(), 1);
        assert!(!units[0].value());
        assert_eq!(*units[0].interval(), iv(0.0, 2.0));
    }

    #[test]
    fn inside_units_never_leaves() {
        // Point rides inside the sliding square the whole time.
        let u = sliding_square();
        let up = UPoint::between(iv(0.0, 2.0), pt(0.5, 0.5), pt(2.5, 0.5));
        let units = u.inside_units(&up, &iv(0.0, 2.0));
        assert_eq!(units.len(), 1);
        assert!(*units[0].value());
    }

    #[test]
    fn inside_units_point_interval() {
        let u = sliding_square();
        let up = UPoint::between(TimeInterval::point(t(1.0)), pt(1.5, 0.5), pt(1.5, 0.5));
        let units = u.inside_units(&up, &TimeInterval::point(t(1.0)));
        assert_eq!(units.len(), 1);
        assert!(*units[0].value());
    }

    #[test]
    fn interpolate_rejects_mismatched_rings() {
        let tri = Ring::try_new(vec![pt(0.0, 0.0), pt(1.0, 0.0), pt(0.5, 1.0)]).unwrap();
        let sq = rect_ring(0.0, 0.0, 1.0, 1.0);
        assert!(URegion::interpolate(iv(0.0, 1.0), &tri, &sq).is_err());
    }
}
