//! The `ureal` unit type (Sec 3.2.5): the "simple" function of a moving
//! real is a polynomial of degree ≤ 2 or the square root of one:
//!
//! `D_ureal = Interval(Instant) × {(a, b, c, r) | a,b,c ∈ real, r ∈ bool}`
//! with `ι((a,b,c,r), t) = a·t² + b·t + c` (or its square root if `r`).
//!
//! The square-root form is exactly what time-dependent Euclidean
//! distances between linearly moving points require; the paper notes the
//! class is closed under lifted `size`, `perimeter` and `distance` but
//! *not* under `derivative`, which is therefore deliberately absent.

use crate::unit::Unit;
use mob_base::error::{InvariantViolation, Result};
use mob_base::{Instant, Real, TimeInterval};
use std::fmt;

/// Absolute tolerance used when validating non-negativity under a root
/// and when comparing extremal values.
const EPS: f64 = 1e-9;

/// A moving-real unit: `a·t² + b·t + c`, optionally under a square root.
///
/// ```
/// use mob_core::UReal;
/// use mob_base::{r, t, Interval};
///
/// // (t-1)² on [0,2], under a root: |t-1|.
/// let u = UReal::try_new(
///     Interval::closed(t(0.0), t(2.0)), r(1.0), r(-2.0), r(1.0), true,
/// ).unwrap();
/// assert_eq!(u.value_at(t(0.0)), r(1.0));
/// assert_eq!(u.value_at(t(1.0)), r(0.0));
/// assert_eq!(u.extrema(), (r(0.0), r(1.0)));
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct UReal {
    interval: TimeInterval,
    a: Real,
    b: Real,
    c: Real,
    root: bool,
}

impl UReal {
    /// Construct, validating that a rooted polynomial is non-negative on
    /// the interval (otherwise evaluation would be undefined there).
    pub fn try_new(interval: TimeInterval, a: Real, b: Real, c: Real, root: bool) -> Result<UReal> {
        let u = UReal {
            interval,
            a,
            b,
            c,
            root,
        };
        if root {
            let (min, _) = u.poly_extrema();
            if min.get() < -EPS {
                return Err(InvariantViolation::with_detail(
                    "ureal: rooted polynomial must be non-negative on the interval",
                    format!("min {}", min),
                ));
            }
        }
        Ok(u)
    }

    /// Construct a rooted unit from a polynomial that is non-negative *by
    /// construction* (e.g. a squared distance — a sum of squares), so the
    /// [`UReal::try_new`] sign check is redundant. Debug builds still run
    /// it; evaluation uses `sqrt_clamped`, so sub-epsilon float dips
    /// below zero clamp instead of producing NaN.
    pub(crate) fn rooted_nonneg(interval: TimeInterval, a: Real, b: Real, c: Real) -> UReal {
        let u = UReal {
            interval,
            a,
            b,
            c,
            root: true,
        };
        debug_assert!(
            UReal::try_new(interval, a, b, c, true).is_ok(),
            "rooted_nonneg polynomial dips below -EPS on the interval"
        );
        u
    }

    /// Negate a unit known to be non-rooted (callers guard on
    /// [`UReal::is_root`]; rooted units are never negative, so the
    /// branches that negate never see one). Debug-checked.
    pub(crate) fn neg_unrooted(&self) -> UReal {
        debug_assert!(!self.root, "neg_unrooted on a rooted unit");
        UReal::quadratic(self.interval, -self.a, -self.b, -self.c)
    }

    /// Polynomial difference `self - other` of two non-rooted units on
    /// `self`'s interval (callers guarantee both; debug-checked).
    pub(crate) fn sub_unrooted(&self, other: &UReal) -> UReal {
        debug_assert!(
            !self.root && !other.root,
            "sub_unrooted on a rooted operand"
        );
        debug_assert!(
            self.interval == other.interval,
            "sub_unrooted operands must share the interval"
        );
        UReal::quadratic(
            self.interval,
            self.a - other.a,
            self.b - other.b,
            self.c - other.c,
        )
    }

    /// Construct a plain (non-rooted) quadratic unit.
    pub fn quadratic(interval: TimeInterval, a: Real, b: Real, c: Real) -> UReal {
        UReal {
            interval,
            a,
            b,
            c,
            root: false,
        }
    }

    /// A constant unit.
    pub fn constant(interval: TimeInterval, v: Real) -> UReal {
        UReal::quadratic(interval, Real::ZERO, Real::ZERO, v)
    }

    /// A linear unit `slope·t + offset` (absolute time).
    pub fn linear(interval: TimeInterval, slope: Real, offset: Real) -> UReal {
        UReal::quadratic(interval, Real::ZERO, slope, offset)
    }

    /// Coefficient accessors: `(a, b, c, r)`.
    pub fn coeffs(&self) -> (Real, Real, Real, bool) {
        (self.a, self.b, self.c, self.root)
    }

    /// `true` if this unit is under a square root.
    pub fn is_root(&self) -> bool {
        self.root
    }

    /// The polynomial part evaluated at `t` (before any square root).
    pub fn poly_at(&self, t: Instant) -> Real {
        let x = t.value();
        self.a * x * x + self.b * x + self.c
    }

    /// The unit function value `ι((a,b,c,r), t)`.
    pub fn value_at(&self, t: Instant) -> Real {
        let p = self.poly_at(t);
        if self.root {
            p.sqrt_clamped()
        } else {
            p
        }
    }

    /// `true` for a constant function.
    pub fn is_constant(&self) -> bool {
        self.a == Real::ZERO && self.b == Real::ZERO
    }

    /// Minimum and maximum of the *polynomial* over the interval
    /// (endpoints plus interior vertex).
    fn poly_extrema(&self) -> (Real, Real) {
        let s = *self.interval.start();
        let e = *self.interval.end();
        let mut lo = self.poly_at(s).min(self.poly_at(e));
        let mut hi = self.poly_at(s).max(self.poly_at(e));
        if self.a != Real::ZERO {
            let vx = -self.b / (Real::new(2.0) * self.a);
            let vt = Instant::new(vx);
            if s < vt && vt < e {
                let v = self.poly_at(vt);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        (lo, hi)
    }

    /// Minimum and maximum of the unit function over the interval.
    pub fn extrema(&self) -> (Real, Real) {
        let (lo, hi) = self.poly_extrema();
        if self.root {
            (lo.sqrt_clamped(), hi.sqrt_clamped())
        } else {
            (lo, hi)
        }
    }

    /// All instants in the (closed view of the) interval where the unit
    /// function equals `v`. Returns `ValueTimes::Always` when the
    /// function is constantly `v`.
    pub fn times_at_value(&self, v: Real) -> ValueTimes {
        // Solve poly(t) = target where target = v (plain) or v² (rooted).
        if self.root && v < Real::ZERO {
            return ValueTimes::Never;
        }
        let target = if self.root { v * v } else { v };
        let (a, b, c) = (self.a.get(), self.b.get(), (self.c - target).get());
        let in_iv = |x: f64| -> Option<Instant> {
            let t = Instant::from_f64(x);
            (*self.interval.start() <= t && t <= *self.interval.end()).then_some(t)
        };
        if a == 0.0 {
            if b == 0.0 {
                return if c.abs() <= EPS {
                    ValueTimes::Always
                } else {
                    ValueTimes::Never
                };
            }
            return match in_iv(-c / b) {
                Some(t) => ValueTimes::At(vec![t]),
                None => ValueTimes::Never,
            };
        }
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return ValueTimes::Never;
        }
        if disc == 0.0 {
            return match in_iv(-b / (2.0 * a)) {
                Some(t) => ValueTimes::At(vec![t]),
                None => ValueTimes::Never,
            };
        }
        // Numerically stable quadratic roots.
        let sq = disc.sqrt();
        let q = -0.5 * (b + b.signum() * sq);
        let (mut r1, mut r2) = (q / a, if q != 0.0 { c / q } else { -b / a });
        if r1 > r2 {
            std::mem::swap(&mut r1, &mut r2);
        }
        let ts: Vec<Instant> = [r1, r2].into_iter().filter_map(in_iv).collect();
        if ts.is_empty() {
            ValueTimes::Never
        } else {
            ValueTimes::At(ts)
        }
    }

    /// The sub-intervals of the unit interval where the unit function is
    /// strictly below `v` (used by lifted comparisons such as
    /// `distance(p, q) < 0.5`).
    pub fn intervals_below(&self, v: Real) -> Vec<TimeInterval> {
        self.sign_intervals(v, |x, v| x < v)
    }

    /// The sub-intervals where the unit function is strictly above `v`.
    pub fn intervals_above(&self, v: Real) -> Vec<TimeInterval> {
        self.sign_intervals(v, |x, v| x > v)
    }

    fn sign_intervals(&self, v: Real, pred: impl Fn(Real, Real) -> bool) -> Vec<TimeInterval> {
        let s = *self.interval.start();
        let e = *self.interval.end();
        // Cut points: times where the function equals v.
        let mut cuts: Vec<Instant> = vec![s];
        match self.times_at_value(v) {
            ValueTimes::At(ts) => cuts.extend(ts),
            ValueTimes::Always => return Vec::new(),
            ValueTimes::Never => {}
        }
        cuts.push(e);
        cuts.sort();
        cuts.dedup();
        let mut out = Vec::new();
        if self.interval.is_point() {
            if pred(self.value_at(s), v) {
                out.push(TimeInterval::point(s));
            }
            return out;
        }
        for w in cuts.windows(2) {
            let mid = w[0].midpoint(w[1]);
            if pred(self.value_at(mid), v) {
                // Determine closedness: an end point belongs iff the
                // function satisfies the predicate there AND the unit
                // interval includes it.
                let lc = pred(self.value_at(w[0]), v) && (w[0] != s || self.interval.left_closed());
                let rc =
                    pred(self.value_at(w[1]), v) && (w[1] != e || self.interval.right_closed());
                if w[0] == w[1] {
                    if lc {
                        out.push(TimeInterval::point(w[0]));
                    }
                } else {
                    out.push(TimeInterval::new(w[0], w[1], lc, rc));
                }
            }
        }
        out
    }

    /// Sum of two non-rooted units on the same interval. Rooted operands
    /// leave the representable class (a sum of square roots is not a
    /// square root of a quadratic) — the paper accepts this closure limit.
    pub fn try_add(&self, other: &UReal) -> Result<UReal> {
        if self.root || other.root {
            return Err(InvariantViolation::new(
                "ureal: sum involving rooted units is not representable",
            ));
        }
        if self.interval != other.interval {
            return Err(InvariantViolation::new(
                "ureal: operands must share the interval",
            ));
        }
        Ok(UReal::quadratic(
            self.interval,
            self.a + other.a,
            self.b + other.b,
            self.c + other.c,
        ))
    }

    /// Negation (non-rooted only).
    pub fn try_neg(&self) -> Result<UReal> {
        if self.root {
            return Err(InvariantViolation::new(
                "ureal: negation of a rooted unit is not representable",
            ));
        }
        Ok(UReal::quadratic(self.interval, -self.a, -self.b, -self.c))
    }

    /// Scaling by a constant. Scaling a rooted unit by `k ≥ 0` stays in
    /// class (`k·√p = √(k²·p)`); negative `k` on a rooted unit does not.
    pub fn try_scale(&self, k: Real) -> Result<UReal> {
        if self.root {
            if k < Real::ZERO {
                return Err(InvariantViolation::new(
                    "ureal: negative scaling of a rooted unit is not representable",
                ));
            }
            let k2 = k * k;
            return Ok(UReal {
                interval: self.interval,
                a: self.a * k2,
                b: self.b * k2,
                c: self.c * k2,
                root: true,
            });
        }
        Ok(UReal::quadratic(
            self.interval,
            self.a * k,
            self.b * k,
            self.c * k,
        ))
    }

    /// The square of the unit function — always representable
    /// (√p squared is p; a linear function squared is quadratic). A
    /// non-rooted *quadratic* squared would be degree 4: rejected.
    pub fn try_square(&self) -> Result<UReal> {
        if self.root {
            return Ok(UReal::quadratic(self.interval, self.a, self.b, self.c));
        }
        if self.a != Real::ZERO {
            return Err(InvariantViolation::new(
                "ureal: square of a quadratic exceeds degree 2",
            ));
        }
        // (b·t + c)² = b²t² + 2bc·t + c².
        Ok(UReal::quadratic(
            self.interval,
            self.b * self.b,
            Real::new(2.0) * self.b * self.c,
            self.c * self.c,
        ))
    }
}

/// Result of [`UReal::times_at_value`].
#[derive(Clone, Debug, PartialEq)]
pub enum ValueTimes {
    /// The function never takes the value on the interval.
    Never,
    /// The function takes the value exactly at these instants.
    At(Vec<Instant>),
    /// The function is constantly equal to the value.
    Always,
}

impl Unit for UReal {
    type Value = Real;

    fn interval(&self) -> &TimeInterval {
        &self.interval
    }

    fn with_interval(&self, iv: TimeInterval) -> Self {
        UReal {
            interval: iv,
            ..*self
        }
    }

    fn at(&self, t: Instant) -> Real {
        self.value_at(t)
    }

    fn value_eq(&self, other: &Self) -> bool {
        self.a == other.a && self.b == other.b && self.c == other.c && self.root == other.root
    }
}

impl fmt::Debug for UReal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let poly = format!("{}t²+{}t+{}", self.a, self.b, self.c);
        if self.root {
            write!(f, "{:?}↦√({})", self.interval, poly)
        } else {
            write!(f, "{:?}↦{}", self.interval, poly)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{r, t, Interval};

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    #[test]
    fn evaluation() {
        // f(t) = t² - 2t + 1 = (t-1)².
        let u = UReal::quadratic(iv(0.0, 2.0), r(1.0), r(-2.0), r(1.0));
        assert_eq!(u.value_at(t(0.0)), r(1.0));
        assert_eq!(u.value_at(t(1.0)), r(0.0));
        assert_eq!(u.value_at(t(2.0)), r(1.0));
        // Rooted: |t-1|.
        let s = UReal::try_new(iv(0.0, 2.0), r(1.0), r(-2.0), r(1.0), true).unwrap();
        assert_eq!(s.value_at(t(0.0)), r(1.0));
        assert_eq!(s.value_at(t(1.0)), r(0.0));
    }

    #[test]
    fn root_validation() {
        // t - 1 is negative on [0, 2): rooted construction must fail.
        assert!(UReal::try_new(iv(0.0, 2.0), r(0.0), r(1.0), r(-1.0), true).is_err());
        // (t-1)² is fine.
        assert!(UReal::try_new(iv(0.0, 2.0), r(1.0), r(-2.0), r(1.0), true).is_ok());
    }

    #[test]
    fn extrema_with_interior_vertex() {
        let u = UReal::quadratic(iv(0.0, 4.0), r(1.0), r(-4.0), r(5.0)); // (t-2)²+1
        assert_eq!(u.extrema(), (r(1.0), r(5.0)));
        // Vertex outside the interval: endpoints only.
        let v = UReal::quadratic(iv(3.0, 4.0), r(1.0), r(-4.0), r(5.0));
        assert_eq!(v.extrema(), (r(2.0), r(5.0)));
        // Constant.
        let c = UReal::constant(iv(0.0, 1.0), r(7.0));
        assert_eq!(c.extrema(), (r(7.0), r(7.0)));
    }

    #[test]
    fn times_at_value() {
        let u = UReal::quadratic(iv(0.0, 4.0), r(1.0), r(-4.0), r(5.0)); // (t-2)²+1
        assert_eq!(
            u.times_at_value(r(2.0)),
            ValueTimes::At(vec![t(1.0), t(3.0)])
        );
        assert_eq!(u.times_at_value(r(1.0)), ValueTimes::At(vec![t(2.0)]));
        assert_eq!(u.times_at_value(r(0.5)), ValueTimes::Never);
        let c = UReal::constant(iv(0.0, 1.0), r(7.0));
        assert_eq!(c.times_at_value(r(7.0)), ValueTimes::Always);
        assert_eq!(c.times_at_value(r(6.0)), ValueTimes::Never);
        // Linear.
        let l = UReal::linear(iv(0.0, 10.0), r(2.0), r(0.0));
        assert_eq!(l.times_at_value(r(6.0)), ValueTimes::At(vec![t(3.0)]));
        assert_eq!(l.times_at_value(r(100.0)), ValueTimes::Never);
        // Rooted with negative target.
        let s = UReal::try_new(iv(0.0, 2.0), r(1.0), r(-2.0), r(1.0), true).unwrap();
        assert_eq!(s.times_at_value(r(-1.0)), ValueTimes::Never);
        assert_eq!(
            s.times_at_value(r(1.0)),
            ValueTimes::At(vec![t(0.0), t(2.0)])
        );
    }

    #[test]
    fn intervals_below() {
        // (t-2)²+1 < 2 on (1, 3).
        let u = UReal::quadratic(iv(0.0, 4.0), r(1.0), r(-4.0), r(5.0));
        let below = u.intervals_below(r(2.0));
        assert_eq!(below, vec![Interval::open(t(1.0), t(3.0))]);
        let above = u.intervals_above(r(2.0));
        assert_eq!(
            above,
            vec![
                Interval::closed_open(t(0.0), t(1.0)),
                Interval::open_closed(t(3.0), t(4.0)),
            ]
        );
        // Always below.
        assert_eq!(u.intervals_below(r(100.0)), vec![iv(0.0, 4.0)]);
        // Never below.
        assert!(u.intervals_below(r(0.0)).is_empty());
    }

    #[test]
    fn intervals_below_on_point_interval() {
        let u = UReal::constant(TimeInterval::point(t(1.0)), r(3.0));
        assert_eq!(u.intervals_below(r(4.0)), vec![TimeInterval::point(t(1.0))]);
        assert!(u.intervals_below(r(2.0)).is_empty());
    }

    #[test]
    fn arithmetic_closure() {
        let u = UReal::linear(iv(0.0, 1.0), r(1.0), r(2.0));
        let v = UReal::quadratic(iv(0.0, 1.0), r(1.0), r(0.0), r(0.0));
        let sum = u.try_add(&v).unwrap();
        assert_eq!(sum.value_at(t(1.0)), r(4.0));
        assert_eq!(u.try_neg().unwrap().value_at(t(1.0)), r(-3.0));
        assert_eq!(u.try_scale(r(2.0)).unwrap().value_at(t(1.0)), r(6.0));
        // Rooted sums are out of class.
        let s = UReal::try_new(iv(0.0, 1.0), r(0.0), r(0.0), r(4.0), true).unwrap();
        assert!(s.try_add(&u).is_err());
        assert!(s.try_neg().is_err());
        // Rooted scaling by positive constant works: 3·√4 = 6.
        let scaled = s.try_scale(r(3.0)).unwrap();
        assert_eq!(scaled.value_at(t(0.5)), r(6.0));
        assert!(s.try_scale(r(-1.0)).is_err());
        // Squares.
        assert_eq!(s.try_square().unwrap().value_at(t(0.5)), r(4.0));
        assert_eq!(u.try_square().unwrap().value_at(t(1.0)), r(9.0));
        assert!(v.try_square().is_err());
    }

    #[test]
    fn unit_trait_merge() {
        let a = UReal::linear(Interval::new(t(0.0), t(1.0), true, true), r(1.0), r(0.0));
        let b = UReal::linear(Interval::new(t(1.0), t(2.0), false, true), r(1.0), r(0.0));
        let m = a.try_merge(&b).unwrap();
        assert_eq!(*m.interval(), iv(0.0, 2.0));
        // Different slope: no merge.
        let c = UReal::linear(Interval::new(t(1.0), t(2.0), false, true), r(2.0), r(0.0));
        assert!(a.try_merge(&c).is_none());
    }
}
