//! Operations on `moving(point)` — trajectories, speed, lifted distance
//! (Sec 2's operation table) and `inside` against static regions.

use crate::lift::{lift1, lift2};
use crate::mapping::{Mapping, MappingBuilder};
use crate::moving::{MovingBool, MovingPoint, MovingReal};
use crate::seq::UnitSeq;
use crate::uconst::ConstUnit;
use crate::unit::Unit;
use crate::upoint::{Coincidence, UPoint};
use crate::ureal::UReal;
use crate::uregion::URegion;
use mob_base::{Instant, Real, TimeInterval};
use mob_spatial::{Cube, Line, Point, Region, Seg};

/// The `trajectory` operation, generic over the access path: projection
/// of any `upoint` sequence (in-memory or storage-backed) into the
/// plane, keeping the line parts.
pub fn trajectory_seq<S: UnitSeq<Unit = UPoint>>(s: &S) -> Line {
    let segs: Vec<Seg> = (0..s.len())
        .filter_map(|i| s.unit(i).projection().ok())
        .collect();
    Line::normalize(segs)
}

/// Total distance travelled (∫ speed dt), generic over the access path.
pub fn distance_travelled_seq<S: UnitSeq<Unit = UPoint>>(s: &S) -> Real {
    (0..s.len()).fold(Real::ZERO, |acc, i| {
        acc + match s.unit(i).projection() {
            Ok(seg) => seg.length(),
            Err(_) => Real::ZERO,
        }
    })
}

/// The lifted `distance` between two moving points, generic over the
/// access path of **both** arguments — Sec 2's spatio-temporal join
/// operation running directly on stored records when given views.
pub fn distance_seq<SA, SB>(a: &SA, b: &SB) -> MovingReal
where
    SA: UnitSeq<Unit = UPoint>,
    SB: UnitSeq<Unit = UPoint>,
{
    lift2(a, b, |iv, ua, ub| vec![ua.distance_ureal(ub, *iv)])
}

/// Lifted `inside` against a *static* region, generic over the access
/// path — [`Mapping::inside_region`] for any `upoint` sequence
/// (in-memory or storage-backed). The relation-wide `filter_inside`
/// scan of `mob-rel` evaluates this per tuple.
pub fn inside_region_seq<S: UnitSeq<Unit = UPoint>>(s: &S, region: &Region) -> MovingBool {
    let all_false = |s: &S| -> MovingBool {
        let mut builder = MappingBuilder::new();
        for i in 0..s.len() {
            builder.push(ConstUnit::new(s.interval(i), false));
        }
        builder.finish()
    };
    if region.is_empty() || s.len() == 0 {
        return all_false(s);
    }
    let span = TimeInterval::closed(*s.interval(0).start(), *s.interval(s.len() - 1).end());
    match URegion::stationary(span, region) {
        Ok(ur) => crate::moving::mregion::inside(s, &Mapping::single(ur)),
        // Unreachable for a valid non-empty region; degrade to "never
        // inside" rather than panic on the infallible access path.
        Err(_) => all_false(s),
    }
}

impl Mapping<UPoint> {
    /// Build a moving point from a sequence of `(instant, position)`
    /// samples, linearly interpolated between consecutive samples
    /// (the standard way trajectory data enters the model).
    ///
    /// Consecutive units share their boundary instants; each unit owns
    /// `[t_i, t_{i+1})`, the last one is closed.
    pub fn from_samples(samples: &[(Instant, Point)]) -> MovingPoint {
        if samples.is_empty() {
            return MovingPoint::empty();
        }
        if samples.len() == 1 {
            return MovingPoint::single(UPoint::between(
                TimeInterval::point(samples[0].0),
                samples[0].1,
                samples[0].1,
            ));
        }
        let mut builder = MappingBuilder::new();
        for (k, w) in samples.windows(2).enumerate() {
            let (t0, p0) = w[0];
            let (t1, p1) = w[1];
            assert!(t0 < t1, "sample instants must strictly increase");
            let last = k == samples.len() - 2;
            let iv = TimeInterval::new(t0, t1, true, last);
            builder.push(UPoint::between(TimeInterval::closed(t0, t1), p0, p1).with_interval(iv));
        }
        builder.finish()
    }

    /// The `trajectory` operation (Sec 2): the projection of the moving
    /// point into the plane — "the line parts of such a projection"
    /// (isolated points from stationary units are dropped). Because
    /// `line` is an unstructured segment set this "can be done very
    /// efficiently" — no graph structure is computed.
    pub fn trajectory(&self) -> Line {
        trajectory_seq(self)
    }

    /// The isolated points of the projection into the plane: positions
    /// where the point stands still for a whole unit (the complement of
    /// `trajectory`, which keeps only the line parts — together they are
    /// the paper's full projection of a moving point).
    pub fn locations(&self) -> mob_spatial::Points {
        mob_spatial::Points::from_points(
            self.units()
                .iter()
                .filter_map(|u| u.projection().err())
                .collect(),
        )
    }

    /// Total distance actually travelled (∫ speed dt) — differs from
    /// `length(trajectory(...))` when the point retraces its path.
    pub fn distance_travelled(&self) -> Real {
        distance_travelled_seq(self)
    }

    /// Lifted `speed`: a moving real, constant per unit.
    pub fn speed(&self) -> MovingReal {
        lift1(self, |u| vec![u.speed_ureal()])
    }

    /// Lifted `direction` (heading in radians): undefined while the point
    /// is stationary.
    pub fn direction(&self) -> MovingReal {
        let mut builder = MappingBuilder::new();
        for u in self.units() {
            if let Some(d) = u.motion().direction() {
                builder.push(UReal::constant(*u.interval(), d));
            }
        }
        builder.finish()
    }

    /// The lifted `distance` between two moving points (Sec 2's
    /// spatio-temporal join operation): a moving real whose units are
    /// square roots of quadratics.
    pub fn distance(&self, other: &MovingPoint) -> MovingReal {
        distance_seq(self, other)
    }

    /// The lifted distance to a fixed point.
    pub fn distance_to_point(&self, p: Point) -> MovingReal {
        lift1(self, |u| {
            vec![u.distance_to_point_ureal(p).with_interval(*u.interval())]
        })
    }

    /// The `passes` predicate: does the point ever run through `p`?
    pub fn passes(&self, p: Point) -> bool {
        self.units()
            .iter()
            .any(|u| u.passes_at(p) != Coincidence::Never)
    }

    /// The `at` operation for a point value: restrict to the times the
    /// moving point is exactly at `p`.
    pub fn at_point(&self, p: Point) -> MovingPoint {
        let mut units = Vec::new();
        for u in self.units() {
            match u.passes_at(p) {
                Coincidence::Never => {}
                Coincidence::Always => units.push(*u),
                Coincidence::At(t) => units.push(u.with_interval(TimeInterval::point(t))),
            }
        }
        Mapping::from_units_trusted(units)
    }

    /// Lifted `inside` against a *static* region: a moving bool. (The
    /// fully dynamic version against a moving region is
    /// `MovingRegion::inside`.)
    pub fn inside_region(&self, region: &Region) -> MovingBool {
        inside_region_seq(self, region)
    }

    /// The `at` operation for a region value: restrict the moving point
    /// to the times it is inside the (static) region — composition of
    /// the lifted `inside` with `atperiods`.
    pub fn at_region(&self, region: &Region) -> MovingPoint {
        let periods = self.inside_region(region).when_true();
        self.atperiods(&periods)
    }

    /// The same movement shifted in time by `dt` (a time-domain
    /// transformation from the abstract model's projection/translation
    /// group).
    pub fn time_shifted(&self, dt: Real) -> MovingPoint {
        let units = self
            .units()
            .iter()
            .map(|u| {
                let iv = u.interval();
                let shifted = TimeInterval::new(
                    *iv.start() + dt,
                    *iv.end() + dt,
                    iv.left_closed(),
                    iv.right_closed(),
                );
                // Recompute the motion so positions are preserved:
                // p'(t) = p(t - dt).
                let m = u.motion();
                let motion =
                    crate::upoint::PointMotion::new(m.x0 - m.x1 * dt, m.x1, m.y0 - m.y1 * dt, m.y1);
                UPoint::new(shifted, motion)
            })
            .collect();
        // Shifting every interval by the same offset preserves order,
        // disjointness and canonicity.
        Mapping::from_raw(units)
    }

    /// Bounding cube of the whole movement.
    pub fn bounding_cube(&self) -> Option<Cube> {
        let mut it = self.units().iter().map(|u| u.bounding_cube());
        let first = it.next()?;
        Some(it.fold(first, |acc, c| acc.union(&c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{r, t, Val};
    use mob_spatial::{pt, rect_ring};

    fn zigzag() -> MovingPoint {
        MovingPoint::from_samples(&[
            (t(0.0), pt(0.0, 0.0)),
            (t(1.0), pt(1.0, 0.0)),
            (t(2.0), pt(1.0, 1.0)),
            (t(3.0), pt(0.0, 1.0)),
        ])
    }

    #[test]
    fn from_samples_covers_whole_span() {
        let m = zigzag();
        assert_eq!(m.num_units(), 3);
        assert_eq!(m.at_instant(t(0.0)), Val::Def(pt(0.0, 0.0)));
        assert_eq!(m.at_instant(t(0.5)), Val::Def(pt(0.5, 0.0)));
        assert_eq!(m.at_instant(t(3.0)), Val::Def(pt(0.0, 1.0)));
        assert_eq!(m.at_instant(t(3.5)), Val::Undef);
        assert_eq!(m.deftime().num_intervals(), 1);
    }

    #[test]
    fn trajectory_and_lengths() {
        let m = zigzag();
        let traj = m.trajectory();
        assert_eq!(traj.num_segments(), 3);
        assert_eq!(traj.length(), r(3.0));
        assert_eq!(m.distance_travelled(), r(3.0));
        // Retracing: out and back over the same segment.
        let back = MovingPoint::from_samples(&[
            (t(0.0), pt(0.0, 0.0)),
            (t(1.0), pt(2.0, 0.0)),
            (t(2.0), pt(0.0, 0.0)),
        ]);
        assert_eq!(back.trajectory().length(), r(2.0)); // projection merges
        assert_eq!(back.distance_travelled(), r(4.0)); // actual travel
    }

    #[test]
    fn locations_of_stationary_phases() {
        let m = MovingPoint::from_samples(&[
            (t(0.0), pt(0.0, 0.0)),
            (t(1.0), pt(1.0, 0.0)),
            (t(2.0), pt(1.0, 0.0)), // parked at (1,0)
            (t(3.0), pt(2.0, 0.0)),
        ]);
        let locs = m.locations();
        assert_eq!(locs.as_slice(), &[pt(1.0, 0.0)]);
        // Pure motion has no isolated points.
        assert!(zigzag().locations().is_empty());
    }

    #[test]
    fn speed_and_direction() {
        let m = zigzag();
        let s = m.speed();
        assert_eq!(s.at_instant(t(0.5)), Val::Def(r(1.0)));
        let d = m.direction();
        assert_eq!(d.at_instant(t(0.5)), Val::Def(r(0.0))); // east
        assert!(d
            .at_instant(t(1.5))
            .unwrap()
            .approx_eq(r(std::f64::consts::FRAC_PI_2), 1e-12)); // north
                                                                // Stationary point has undefined direction.
        let still = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(1.0), pt(0.0, 0.0))]);
        assert!(still.direction().is_empty());
        assert_eq!(still.speed().at_instant(t(0.5)), Val::Def(r(0.0)));
    }

    #[test]
    fn lifted_distance_closest_approach() {
        // Two points crossing: closest approach 0 at t=1.
        let a = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(2.0), pt(2.0, 0.0))]);
        let b = MovingPoint::from_samples(&[(t(0.0), pt(2.0, 0.0)), (t(2.0), pt(0.0, 0.0))]);
        let d = a.distance(&b);
        assert_eq!(d.at_instant(t(0.0)), Val::Def(r(2.0)));
        assert_eq!(d.at_instant(t(1.0)), Val::Def(r(0.0)));
        // The paper's min-distance idiom.
        let closest = d.atmin().initial().unwrap();
        assert_eq!(closest.instant, t(1.0));
        assert_eq!(closest.value, r(0.0));
    }

    #[test]
    fn distance_to_fixed_point() {
        let a = MovingPoint::from_samples(&[(t(0.0), pt(-2.0, 1.0)), (t(4.0), pt(2.0, 1.0))]);
        let d = a.distance_to_point(pt(0.0, 0.0));
        let m = d.atmin().initial().unwrap();
        assert_eq!(m.instant, t(2.0));
        assert_eq!(m.value, r(1.0));
    }

    #[test]
    fn passes_and_at_point() {
        let m = zigzag();
        assert!(m.passes(pt(1.0, 0.5)));
        assert!(!m.passes(pt(5.0, 5.0)));
        let at = m.at_point(pt(1.0, 0.5));
        assert_eq!(at.num_units(), 1);
        assert_eq!(*at.units()[0].interval().start(), t(1.5));
    }

    #[test]
    fn inside_static_region() {
        let m = MovingPoint::from_samples(&[(t(0.0), pt(-1.0, 0.5)), (t(4.0), pt(3.0, 0.5))]);
        let region = Region::from_ring(rect_ring(0.0, 0.0, 1.0, 1.0));
        let inside = m.inside_region(&region);
        assert_eq!(inside.at_instant(t(1.5)), Val::Def(true));
        assert_eq!(inside.at_instant(t(0.5)), Val::Def(false));
        assert_eq!(inside.at_instant(t(3.0)), Val::Def(false));
        let p = inside.when_true();
        assert_eq!(p.num_intervals(), 1);
        assert_eq!(*p.as_slice()[0].start(), t(1.0));
        assert_eq!(*p.as_slice()[0].end(), t(2.0));
    }

    #[test]
    fn at_region_restricts() {
        let m = MovingPoint::from_samples(&[(t(0.0), pt(-1.0, 0.5)), (t(4.0), pt(3.0, 0.5))]);
        let region = Region::from_ring(rect_ring(0.0, 0.0, 1.0, 1.0));
        let at = m.at_region(&region);
        assert!(at.at_instant(t(0.5)).is_undef());
        assert_eq!(at.at_instant(t(1.5)), Val::Def(pt(0.5, 0.5)));
        assert!(at.at_instant(t(3.0)).is_undef());
        assert_eq!(at.deftime().total_duration(), r(1.0));
    }

    #[test]
    fn time_shift_preserves_positions() {
        let m = zigzag();
        let shifted = m.time_shifted(r(10.0));
        for k in [0.0, 0.5, 1.5, 3.0] {
            assert_eq!(m.at_instant(t(k)), shifted.at_instant(t(k + 10.0)));
        }
        assert!(shifted.at_instant(t(0.5)).is_undef());
        // Shifting back is the identity on observations.
        let back = shifted.time_shifted(r(-10.0));
        for k in [0.0, 1.0, 2.9] {
            let (a, b) = (m.at_instant(t(k)).unwrap(), back.at_instant(t(k)).unwrap());
            assert!(a.approx_eq(b, 1e-9));
        }
    }

    #[test]
    fn bounding_cube() {
        let m = zigzag();
        let c = m.bounding_cube().unwrap();
        assert_eq!(c.t_min, t(0.0));
        assert_eq!(c.t_max, t(3.0));
        assert!(c.rect.contains_point(pt(1.0, 1.0)));
        assert!(MovingPoint::empty().bounding_cube().is_none());
    }
}
