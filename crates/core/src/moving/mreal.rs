//! Operations on `moving(real)` — the workhorse of the paper's example
//! queries: `val(initial(atmin(distance(p.flight, q.flight)))) < 0.5`.

use crate::lift::lift2;
use crate::mapping::{Mapping, MappingBuilder};
use crate::moving::{MovingBool, MovingReal};
use crate::uconst::ConstUnit;
use crate::unit::Unit;
use crate::ureal::{UReal, ValueTimes};
use mob_base::error::Result;
use mob_base::{Real, TimeInterval, Val};

/// Relative tolerance when comparing extremal values across units.
const EXTREMUM_EPS: f64 = 1e-9;

impl Mapping<UReal> {
    /// Global minimum value over the definition time (⊥ when empty).
    pub fn min_value(&self) -> Val<Real> {
        self.units().iter().map(|u| u.extrema().0).min().into()
    }

    /// Global maximum value over the definition time (⊥ when empty).
    pub fn max_value(&self) -> Val<Real> {
        self.units().iter().map(|u| u.extrema().1).max().into()
    }

    /// The `atmin` operation: restrict to all times where the value
    /// attains its global minimum.
    pub fn atmin(&self) -> MovingReal {
        match self.min_value() {
            Val::Def(m) => self.at_extremum(m),
            Val::Undef => MovingReal::empty(),
        }
    }

    /// The `atmax` operation.
    pub fn atmax(&self) -> MovingReal {
        match self.max_value() {
            Val::Def(m) => self.at_extremum(m),
            Val::Undef => MovingReal::empty(),
        }
    }

    /// Restrict to all times where the value equals `v` (the `at`
    /// operation for a single real).
    pub fn at_value(&self, v: Real) -> MovingReal {
        self.at_extremum(v)
    }

    fn at_extremum(&self, v: Real) -> MovingReal {
        let scale = v.abs().max(Real::ONE).get();
        let eps = EXTREMUM_EPS * scale;
        let mut units: Vec<UReal> = Vec::new();
        for u in self.units() {
            if u.is_constant() {
                if (u.value_at(*u.interval().start()) - v).abs().get() <= eps {
                    units.push(*u);
                }
                continue;
            }
            // Candidate instants: interval end points, the interior
            // vertex, and the exact solutions of value = v. The
            // candidate set (rather than root-solving alone) is robust
            // when v is an attained extremum — the discriminant of
            // poly = v² can round slightly negative there.
            let mut cands: Vec<mob_base::Instant> =
                vec![*u.interval().start(), *u.interval().end()];
            let (a, b, _, _) = u.coeffs();
            if a != Real::ZERO {
                let vt = mob_base::Instant::new(-b / (Real::new(2.0) * a));
                if u.interval().contains(&vt) {
                    cands.push(vt);
                }
            }
            if let ValueTimes::At(ts) = u.times_at_value(v) {
                cands.extend(ts);
            }
            cands.sort();
            cands.dedup_by(|x, y| (*x - *y).abs().get() <= eps);
            for t in cands {
                if u.interval().contains(&t) && (u.value_at(t) - v).abs().get() <= eps {
                    units.push(u.with_interval(TimeInterval::point(t)));
                }
            }
        }
        Mapping::from_units_trusted(units)
    }

    /// Lifted `< v` comparison against a constant: a moving bool.
    pub fn lt_const(&self, v: Real) -> MovingBool {
        self.compare_const(v, |u, v| u.intervals_below(v), false)
    }

    /// Lifted `> v` comparison against a constant.
    pub fn gt_const(&self, v: Real) -> MovingBool {
        self.compare_const(v, |u, v| u.intervals_above(v), false)
    }

    fn compare_const(
        &self,
        v: Real,
        true_parts: impl Fn(&UReal, Real) -> Vec<TimeInterval>,
        _strictness_marker: bool,
    ) -> MovingBool {
        let mut builder = MappingBuilder::new();
        for u in self.units() {
            let trues = true_parts(u, v);
            // Complement within the unit interval → false parts; then
            // interleave in time order.
            let whole = mob_base::Periods::single(*u.interval());
            let true_set: mob_base::Periods = trues.iter().copied().collect();
            let false_set = whole.difference(&true_set);
            let mut parts: Vec<(TimeInterval, bool)> = trues
                .into_iter()
                .map(|iv| (iv, true))
                .chain(false_set.iter().map(|iv| (*iv, false)))
                .collect();
            parts.sort_by(|a, b| a.0.cmp_start(&b.0));
            for (iv, val) in parts {
                builder.push(ConstUnit::new(iv, val));
            }
        }
        builder.finish()
    }

    /// Lifted addition. Fails if a rooted unit participates (the class is
    /// not closed under sums of square roots — see the paper, Sec 3.2.5).
    pub fn try_add(&self, other: &MovingReal) -> Result<MovingReal> {
        self.zip_ureal(other, |a, b| a.try_add(b))
    }

    /// Lifted subtraction (same closure caveat).
    pub fn try_sub(&self, other: &MovingReal) -> Result<MovingReal> {
        self.zip_ureal(other, |a, b| a.try_add(&b.try_neg()?))
    }

    fn zip_ureal(
        &self,
        other: &MovingReal,
        f: impl Fn(&UReal, &UReal) -> Result<UReal>,
    ) -> Result<MovingReal> {
        let err = std::cell::RefCell::new(None);
        let out = lift2(self, other, |iv, a, b| {
            let (ra, rb) = (a.with_interval(*iv), b.with_interval(*iv));
            match f(&ra, &rb) {
                Ok(u) => vec![u],
                Err(e) => {
                    *err.borrow_mut() = Some(e);
                    Vec::new()
                }
            }
        });
        match err.into_inner() {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Lifted scaling by a constant.
    pub fn try_scale(&self, k: Real) -> Result<MovingReal> {
        let mut units = Vec::with_capacity(self.num_units());
        for u in self.units() {
            units.push(u.try_scale(k)?);
        }
        Mapping::from_units(units)
    }

    /// Restrict to the times the value lies within `[lo, hi]` (the `at`
    /// operation for a `range(real)` argument), as periods.
    pub fn when_within(&self, lo: Real, hi: Real) -> mob_base::Periods {
        let below_lo = self.lt_const(lo).when_true();
        let above_hi = self.gt_const(hi).when_true();
        self.deftime().difference(&below_lo).difference(&above_hi)
    }

    /// The `rangevalues` operation of the abstract model: the set of
    /// real values taken by the moving real, as a `range(real)`. Exact:
    /// each unit's image is the closed interval between its extrema
    /// (continuous functions on intervals attain everything between).
    pub fn rangevalues(&self) -> mob_base::RangeSet<Real> {
        let ivs = self
            .units()
            .iter()
            .map(|u| {
                let (lo, hi) = u.extrema();
                mob_base::Interval::closed(lo, hi)
            })
            .collect();
        mob_base::RangeSet::from_unmerged(ivs)
    }

    /// Lifted absolute value. Rooted units are already non-negative;
    /// plain quadratics are split at their zero crossings and negated on
    /// the negative pieces (stays within the `ureal` class).
    pub fn abs(&self) -> MovingReal {
        let mut builder = MappingBuilder::new();
        for u in self.units() {
            if u.is_root() {
                builder.push(*u);
                continue;
            }
            let below = u.intervals_below(Real::ZERO);
            let whole = mob_base::Periods::single(*u.interval());
            let below_set: mob_base::Periods = below.iter().copied().collect();
            let nonneg = whole.difference(&below_set);
            let mut parts: Vec<(TimeInterval, bool)> = below
                .into_iter()
                .map(|iv| (iv, true))
                .chain(nonneg.iter().map(|iv| (*iv, false)))
                .collect();
            parts.sort_by(|a, b| a.0.cmp_start(&b.0));
            for (iv, negate) in parts {
                let piece = u.with_interval(iv);
                builder.push(if negate {
                    // Rooted units are never negative, so a piece that
                    // dips below zero is always a plain quadratic.
                    piece.neg_unrooted()
                } else {
                    piece
                });
            }
        }
        builder.finish()
    }

    /// Integral of the value over the definition time (∫ of quadratics is
    /// closed-form; rooted units are integrated numerically with Simpson
    /// refinement — documented approximation).
    pub fn integral(&self) -> Real {
        let mut total = Real::ZERO;
        for u in self.units() {
            let iv = u.interval();
            let (s, e) = (iv.start().as_f64(), iv.end().as_f64());
            if s == e {
                continue;
            }
            let (a, b, c, root) = u.coeffs();
            if !root {
                let f = |x: f64| a.get() * x * x * x / 3.0 + b.get() * x * x / 2.0 + c.get() * x;
                total += Real::new(f(e) - f(s));
            } else {
                // Composite Simpson with 64 panels per unit.
                let n = 64;
                let h = (e - s) / n as f64;
                let eval = |x: f64| u.value_at(mob_base::Instant::from_f64(x)).get();
                let mut acc = eval(s) + eval(e);
                for k in 1..n {
                    let w = if k % 2 == 1 { 4.0 } else { 2.0 };
                    acc += w * eval(s + k as f64 * h);
                }
                total += Real::new(acc * h / 3.0);
            }
        }
        total
    }
}

/// Lifted comparison between two moving reals: `a < b` as a moving bool.
/// Implemented as sign analysis of the difference where representable,
/// and of the squared comparison for rooted operands.
pub fn mreal_lt(a: &MovingReal, b: &MovingReal) -> MovingBool {
    lift2(a, b, |iv, ua, ub| {
        let (ra, rb) = (ua.with_interval(*iv), ub.with_interval(*iv));
        lt_units(&ra, &rb)
    })
}

fn lt_units(a: &UReal, b: &UReal) -> Vec<ConstUnit<bool>> {
    let iv = *a.interval();
    // Plain quadratics: the difference is representable — sign analysis
    // is exact.
    if !a.is_root() && !b.is_root() {
        let diff = b.sub_unrooted(a);
        return diff
            .intervals_above(Real::ZERO)
            .into_iter()
            .map(|p| (p, true))
            .chain(below_complement(&diff, &iv))
            .collect_sorted();
    }
    // General case: sample-based sign partition at the crossings of
    // a² = b² restricted to consistent signs. Compute crossing times of
    // (a - b) via the quadratic a_poly - b_poly when both rooted, else
    // fall back to dense crossing detection on the squared forms.
    let scale = 1.0f64;
    let _ = scale;
    if iv.is_point() {
        let s = *iv.start();
        return vec![ConstUnit::new(iv, a.value_at(s) < b.value_at(s))];
    }
    let cross_times = crossing_times(a, b);
    let mut cuts = vec![*iv.start()];
    cuts.extend(cross_times.into_iter().filter(|t| iv.contains_open(t)));
    cuts.push(*iv.end());
    cuts.sort();
    cuts.dedup();
    // Midpoint value of each window.
    let vals: Vec<bool> = cuts
        .windows(2)
        .map(|w| {
            let mid = w[0].midpoint(w[1]);
            a.value_at(mid) < b.value_at(mid)
        })
        .collect();
    // Assign each interior cut instant to exactly one owner: the left
    // window if the predicate value at the instant matches it, else the
    // right window if it matches that, else a standalone instant unit
    // (tangency: both neighbouring windows share the other value).
    let at_cut: Vec<bool> = cuts
        .iter()
        .map(|t| a.value_at(*t) < b.value_at(*t))
        .collect();
    let mut out = Vec::new();
    for (k, w) in cuts.windows(2).enumerate() {
        let val = vals[k];
        let lc = if k == 0 {
            iv.left_closed()
        } else {
            at_cut[k] == val && at_cut[k] != vals[k - 1]
        };
        let rc = if k == vals.len() - 1 {
            iv.right_closed()
        } else {
            at_cut[k + 1] == val
        };
        if k > 0 && at_cut[k] != val && at_cut[k] != vals[k - 1] {
            out.push(ConstUnit::new(TimeInterval::point(w[0]), at_cut[k]));
        }
        out.push(ConstUnit::new(TimeInterval::new(w[0], w[1], lc, rc), val));
    }
    out
}

/// Times where the two unit functions are equal (within the interval).
fn crossing_times(a: &UReal, b: &UReal) -> Vec<mob_base::Instant> {
    let (aa, ab, ac, ar) = a.coeffs();
    let (ba, bb, bc, br) = b.coeffs();
    let iv = *a.interval();
    if ar == br {
        // Equal rootedness: compare polynomials directly (valid because
        // √ is monotone and both polys are ≥ 0 when rooted).
        let diff = UReal::quadratic(iv, aa - ba, ab - bb, ac - bc);
        return match diff.times_at_value(Real::ZERO) {
            ValueTimes::At(ts) => ts,
            _ => Vec::new(),
        };
    }
    // Mixed: solve poly_a = poly_b² (or vice versa) would be quartic; we
    // bisect sign changes of the direct difference on a fine grid —
    // adequate for the workloads exercised (documented approximation).
    let (s, e) = (iv.start().as_f64(), iv.end().as_f64());
    let n = 256;
    let f = |x: f64| {
        let t = mob_base::Instant::from_f64(x);
        (a.value_at(t) - b.value_at(t)).get()
    };
    let mut out = Vec::new();
    let h = (e - s) / n as f64;
    if h == 0.0 {
        return out;
    }
    for k in 0..n {
        let (x0, x1) = (s + k as f64 * h, s + (k + 1) as f64 * h);
        let (f0, f1) = (f(x0), f(x1));
        if f0 == 0.0 {
            out.push(mob_base::Instant::from_f64(x0));
        }
        if f0 * f1 < 0.0 {
            // Bisection refine.
            let (mut lo, mut hi) = (x0, x1);
            for _ in 0..60 {
                let m = (lo + hi) / 2.0;
                if f(lo) * f(m) <= 0.0 {
                    hi = m;
                } else {
                    lo = m;
                }
            }
            out.push(mob_base::Instant::from_f64((lo + hi) / 2.0));
        }
    }
    out
}

fn below_complement(diff: &UReal, iv: &TimeInterval) -> impl Iterator<Item = (TimeInterval, bool)> {
    let above: mob_base::Periods = diff.intervals_above(Real::ZERO).into_iter().collect();
    let whole = mob_base::Periods::single(*iv);
    whole
        .difference(&above)
        .iter()
        .copied()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|p| (p, false))
}

trait CollectSorted {
    fn collect_sorted(self) -> Vec<ConstUnit<bool>>;
}

impl<I: Iterator<Item = (TimeInterval, bool)>> CollectSorted for I {
    fn collect_sorted(self) -> Vec<ConstUnit<bool>> {
        let mut v: Vec<(TimeInterval, bool)> = self.collect();
        v.sort_by(|a, b| a.0.cmp_start(&b.0));
        v.into_iter().map(|(iv, b)| ConstUnit::new(iv, b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{r, t, Interval};

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    /// A V-shaped moving real: |t - 2| on [0,4] as √((t-2)²).
    fn vee() -> MovingReal {
        Mapping::single(UReal::try_new(iv(0.0, 4.0), r(1.0), r(-4.0), r(4.0), true).unwrap())
    }

    #[test]
    fn extremes() {
        let m = vee();
        assert_eq!(m.min_value(), Val::Def(r(0.0)));
        assert_eq!(m.max_value(), Val::Def(r(2.0)));
        assert!(MovingReal::empty().min_value().is_undef());
    }

    #[test]
    fn atmin_restricts_to_minimum_times() {
        let m = vee();
        let am = m.atmin();
        assert_eq!(am.num_units(), 1);
        assert!(am.units()[0].interval().is_point());
        assert_eq!(*am.units()[0].interval().start(), t(2.0));
        // The paper's idiom: val(initial(atmin(d))).
        let init = am.initial().unwrap();
        assert_eq!(init.instant, t(2.0));
        assert_eq!(init.value, r(0.0));
    }

    #[test]
    fn atmax_finds_both_endpoints() {
        // |t-2| attains max 2 at t=0 and t=4.
        let m = vee();
        let am = m.atmax();
        assert_eq!(am.num_units(), 2);
        assert_eq!(*am.units()[0].interval().start(), t(0.0));
        assert_eq!(*am.units()[1].interval().start(), t(4.0));
    }

    #[test]
    fn atmin_of_constant_keeps_interval() {
        let m: MovingReal = Mapping::single(UReal::constant(iv(0.0, 3.0), r(5.0)));
        let am = m.atmin();
        assert_eq!(am.num_units(), 1);
        assert_eq!(*am.units()[0].interval(), iv(0.0, 3.0));
    }

    #[test]
    fn atmin_across_units() {
        // Two units: linear down to 1 on [0,1], constant 3 on (1,2].
        let m = Mapping::try_new(vec![
            UReal::linear(Interval::closed(t(0.0), t(1.0)), r(-2.0), r(3.0)),
            UReal::constant(Interval::open_closed(t(1.0), t(2.0)), r(3.0)),
        ])
        .unwrap();
        let am = m.atmin();
        assert_eq!(am.num_units(), 1);
        assert_eq!(*am.units()[0].interval().start(), t(1.0));
        assert_eq!(am.units()[0].value_at(t(1.0)), r(1.0));
    }

    #[test]
    fn lt_const_partitions_time() {
        let m = vee();
        let lt = m.lt_const(r(1.0)); // |t-2| < 1 on (1,3)
        assert_eq!(lt.at_instant(t(2.0)), Val::Def(true));
        assert_eq!(lt.at_instant(t(0.5)), Val::Def(false));
        assert_eq!(lt.at_instant(t(1.0)), Val::Def(false)); // boundary: equal
        let p = lt.when_true();
        assert_eq!(p.num_intervals(), 1);
        assert_eq!(p.as_slice()[0], Interval::open(t(1.0), t(3.0)));
        let gt = m.gt_const(r(1.0));
        assert_eq!(gt.when_true().num_intervals(), 2);
    }

    #[test]
    fn arithmetic() {
        let a: MovingReal = Mapping::single(UReal::linear(iv(0.0, 2.0), r(1.0), r(0.0)));
        let b: MovingReal = Mapping::single(UReal::constant(iv(0.0, 2.0), r(3.0)));
        let sum = a.try_add(&b).unwrap();
        assert_eq!(sum.at_instant(t(2.0)), Val::Def(r(5.0)));
        let diff = a.try_sub(&b).unwrap();
        assert_eq!(diff.at_instant(t(2.0)), Val::Def(r(-1.0)));
        let scaled = a.try_scale(r(10.0)).unwrap();
        assert_eq!(scaled.at_instant(t(1.0)), Val::Def(r(10.0)));
        // Rooted sum is rejected.
        assert!(vee().try_add(&b).is_err());
    }

    #[test]
    fn mreal_comparison_lifted() {
        // a(t) = t on [0,4]; b = 2: a < b until t = 2.
        let a: MovingReal = Mapping::single(UReal::linear(iv(0.0, 4.0), r(1.0), r(0.0)));
        let b: MovingReal = Mapping::single(UReal::constant(iv(0.0, 4.0), r(2.0)));
        let lt = mreal_lt(&a, &b);
        assert_eq!(lt.at_instant(t(1.0)), Val::Def(true));
        assert_eq!(lt.at_instant(t(3.0)), Val::Def(false));
        assert_eq!(lt.at_instant(t(2.0)), Val::Def(false)); // equal, not <
    }

    #[test]
    fn mreal_comparison_mixed_rootedness() {
        // √((t-2)²) = |t-2| vs the plain linear t/2 on [0,4]:
        // |t-2| < t/2 ⇔ t ∈ (4/3, 4).
        let a = vee();
        let b: MovingReal = Mapping::single(UReal::linear(iv(0.0, 4.0), r(0.5), r(0.0)));
        let lt = mreal_lt(&a, &b);
        assert_eq!(lt.at_instant(t(2.0)), Val::Def(true));
        assert_eq!(lt.at_instant(t(1.0)), Val::Def(false));
        assert_eq!(lt.at_instant(t(3.0)), Val::Def(true));
        assert_eq!(lt.at_instant(t(0.5)), Val::Def(false));
    }

    #[test]
    fn when_within_band() {
        // |t-2| on [0,4]: within [0.5, 1.0] during [1, 1.5] ∪ [2.5, 3].
        let m = vee();
        let w = m.when_within(r(0.5), r(1.0));
        assert_eq!(w.num_intervals(), 2);
        assert!(w.contains(&t(1.2)));
        assert!(w.contains(&t(2.8)));
        assert!(!w.contains(&t(2.0)));
        assert!(!w.contains(&t(0.2)));
        // Boundary values are included (non-strict comparison).
        assert!(w.contains(&t(1.0)));
        assert!(w.contains(&t(1.5)));
    }

    #[test]
    fn rangevalues_covers_image() {
        // |t-2| on [0,4] takes exactly [0,2].
        let m = vee();
        let rv = m.rangevalues();
        assert_eq!(rv.num_intervals(), 1);
        assert_eq!(rv.minimum(), Val::Def(r(0.0)));
        assert_eq!(rv.maximum(), Val::Def(r(2.0)));
        // Two disjoint constant plateaus give two range intervals.
        let m2: MovingReal = Mapping::try_new(vec![
            UReal::constant(iv(0.0, 1.0), r(1.0)),
            UReal::constant(Interval::open_closed(t(1.0), t(2.0)), r(5.0)),
        ])
        .unwrap();
        assert_eq!(m2.rangevalues().num_intervals(), 2);
    }

    #[test]
    fn abs_splits_at_zero_crossings() {
        // t - 2 on [0,4]: |t-2| has two pieces.
        let m: MovingReal = Mapping::single(UReal::linear(iv(0.0, 4.0), r(1.0), r(-2.0)));
        let a = m.abs();
        assert_eq!(a.at_instant(t(0.0)), Val::Def(r(2.0)));
        assert_eq!(a.at_instant(t(2.0)), Val::Def(r(0.0)));
        assert_eq!(a.at_instant(t(4.0)), Val::Def(r(2.0)));
        assert_eq!(a.num_units(), 2);
        assert_eq!(a.min_value(), Val::Def(r(0.0)));
        // Rooted values pass through unchanged.
        let v = vee();
        assert_eq!(v.abs(), v);
        // Always-positive values are unchanged too.
        let p: MovingReal = Mapping::single(UReal::constant(iv(0.0, 1.0), r(3.0)));
        assert_eq!(p.abs().at_instant(t(0.5)), Val::Def(r(3.0)));
    }

    #[test]
    fn integral_quadratic_and_rooted() {
        // ∫₀² t dt = 2.
        let a: MovingReal = Mapping::single(UReal::linear(iv(0.0, 2.0), r(1.0), r(0.0)));
        assert!(a.integral().approx_eq(r(2.0), 1e-9));
        // ∫₀⁴ |t-2| dt = 4 (two triangles of area 2).
        assert!(vee().integral().approx_eq(r(4.0), 1e-6));
    }
}
