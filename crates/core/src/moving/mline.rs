//! Operations on `moving(line)` and `moving(points)` — the remaining
//! spatial moving types of Table 3.

use crate::mapping::{Mapping, MappingBuilder};
use crate::moving::{MovingLine, MovingPoints, MovingReal};
use crate::uconst::ConstUnit;
use crate::uline::ULine;
use crate::unit::Unit;
use crate::upoints::UPoints;
use crate::ureal::UReal;
use mob_base::{Instant, Real, Val};
use mob_spatial::Cube;

impl Mapping<ULine> {
    /// Exact total length at an instant (the lifted `length` is *not*
    /// closed as a `ureal` — a sum of √quadratics — so evaluation is
    /// offered per instant, plus [`Mapping::length_approx`]).
    pub fn length_at(&self, t: Instant) -> Val<Real> {
        self.unit_at(t).map(|u| u.at(t).length()).into()
    }

    /// Piecewise-linear approximation of the moving length: each unit is
    /// chord-approximated through `samples + 1` knots. A documented
    /// approximation (DESIGN.md: operations leaving the `ureal` class).
    pub fn length_approx(&self, samples: usize) -> MovingReal {
        let mut builder = MappingBuilder::new();
        for u in self.units() {
            let iv = u.interval();
            if iv.is_point() {
                builder.push(UReal::constant(*iv, u.at(*iv.start()).length()));
                continue;
            }
            let (s, e) = (iv.start().as_f64(), iv.end().as_f64());
            let n = samples.max(1);
            for k in 0..n {
                let t0 = s + (e - s) * k as f64 / n as f64;
                let t1 = s + (e - s) * (k + 1) as f64 / n as f64;
                let v0 = u.at(Instant::from_f64(t0)).length();
                let v1 = u.at(Instant::from_f64(t1)).length();
                let slope = (v1 - v0) / Real::new(t1 - t0);
                let offset = v0 - slope * Real::new(t0);
                let piece = mob_base::Interval::new(
                    Instant::from_f64(t0),
                    Instant::from_f64(t1),
                    if k == 0 { iv.left_closed() } else { true },
                    if k == n - 1 { iv.right_closed() } else { false },
                );
                builder.push(UReal::linear(piece, slope, offset));
            }
        }
        builder.finish()
    }

    /// Total number of moving segments across all units.
    pub fn total_msegs(&self) -> usize {
        self.units().iter().map(ULine::len).sum()
    }

    /// Bounding cube of the whole development.
    pub fn bounding_cube(&self) -> Option<Cube> {
        let mut it = self.units().iter().map(ULine::bounding_cube);
        let first = it.next()?;
        Some(it.fold(first, |acc, c| acc.union(&c)))
    }
}

impl Mapping<UPoints> {
    /// The lifted `no_components`/count operation: how many (distinct)
    /// points exist over time. Constant inside each open unit interval
    /// by the `upoints` invariant; end-point collapses are reflected by
    /// instant units.
    pub fn count(&self) -> Mapping<ConstUnit<i64>> {
        // Saturating on paper: a `upoints` unit can never hold anywhere
        // near `i64::MAX` members, but the conversion stays total.
        let as_count = |n: usize| i64::try_from(n).unwrap_or(i64::MAX);
        let mut builder = MappingBuilder::new();
        for u in self.units() {
            let iv = *u.interval();
            let interior = as_count(u.len());
            if iv.is_point() {
                builder.push(ConstUnit::new(iv, as_count(u.at(*iv.start()).len())));
                continue;
            }
            let at_start = as_count(u.at(*iv.start()).len());
            let at_end = as_count(u.at(*iv.end()).len());
            let mut lc = iv.left_closed();
            let mut rc = iv.right_closed();
            if lc && at_start != interior {
                builder.push(ConstUnit::new(
                    mob_base::TimeInterval::point(*iv.start()),
                    at_start,
                ));
                lc = false;
            }
            let emit_end = rc && at_end != interior;
            if emit_end {
                rc = false;
            }
            builder.push(ConstUnit::new(
                mob_base::Interval::new(*iv.start(), *iv.end(), lc, rc),
                interior,
            ));
            if emit_end {
                builder.push(ConstUnit::new(
                    mob_base::TimeInterval::point(*iv.end()),
                    at_end,
                ));
            }
        }
        builder.finish()
    }

    /// Bounding cube of the whole development.
    pub fn bounding_cube(&self) -> Option<Cube> {
        let mut it = self.units().iter().map(UPoints::bounding_cube);
        let first = it.next()?;
        Some(it.fold(first, |acc, c| acc.union(&c)))
    }
}

/// Free-standing alias users can discover: `MovingLine`/`MovingPoints`
/// operations live as inherent methods on `Mapping<ULine>` /
/// `Mapping<UPoints>`.
pub type _Docs = (MovingLine, MovingPoints);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mseg::MSeg;
    use crate::upoint::PointMotion;
    use mob_base::{r, t, Interval, TimeInterval};
    use mob_spatial::pt;

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    fn growing_line() -> MovingLine {
        // One segment stretching from length 1 to length 3 over [0,2].
        let m = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(1.0, 0.0),
            t(2.0),
            pt(0.0, 0.0),
            pt(3.0, 0.0),
        )
        .unwrap();
        Mapping::single(ULine::try_new(iv(0.0, 2.0), vec![m]).unwrap())
    }

    #[test]
    fn length_at_exact() {
        let ml = growing_line();
        assert_eq!(ml.length_at(t(0.0)), Val::Def(r(1.0)));
        assert_eq!(ml.length_at(t(1.0)), Val::Def(r(2.0)));
        assert_eq!(ml.length_at(t(2.0)), Val::Def(r(3.0)));
        assert!(ml.length_at(t(9.0)).is_undef());
    }

    #[test]
    fn length_approx_converges() {
        // The length here is exactly linear, so even one sample is exact.
        let ml = growing_line();
        let approx = ml.length_approx(4);
        for k in [0.0, 0.5, 1.0, 1.7, 2.0] {
            let exact = ml.length_at(t(k)).unwrap();
            let got = approx.at_instant(t(k)).unwrap();
            assert!(got.approx_eq(exact, 1e-9), "{got} vs {exact} at {k}");
        }
        assert_eq!(ml.total_msegs(), 1);
        assert!(ml.bounding_cube().unwrap().rect.max_x() >= r(3.0));
    }

    #[test]
    fn count_with_endpoint_collapse() {
        // Two points meeting exactly at t=1 (the closed end).
        let a = PointMotion::through(t(0.0), pt(0.0, 0.0), t(1.0), pt(1.0, 0.0));
        let b = PointMotion::through(t(0.0), pt(2.0, 0.0), t(1.0), pt(1.0, 0.0));
        let mp: MovingPoints = Mapping::single(UPoints::try_new(iv(0.0, 1.0), vec![a, b]).unwrap());
        let c = mp.count();
        assert_eq!(c.at_instant(t(0.5)), Val::Def(2));
        assert_eq!(c.at_instant(t(1.0)), Val::Def(1)); // collapsed
        assert_eq!(c.at_instant(t(0.0)), Val::Def(2));
        assert_eq!(c.num_units(), 2); // half-open interior + instant unit
    }

    #[test]
    fn count_constant_when_no_collapse() {
        let a = PointMotion::stationary(pt(0.0, 0.0));
        let b = PointMotion::stationary(pt(5.0, 0.0));
        let mp: MovingPoints = Mapping::single(UPoints::try_new(iv(0.0, 3.0), vec![a, b]).unwrap());
        let c = mp.count();
        assert_eq!(c.num_units(), 1);
        assert_eq!(c.at_instant(t(1.5)), Val::Def(2));
        assert!(mp.bounding_cube().is_some());
    }
}
