//! Operations on `moving(region)` — Algorithm `atinstant` (Sec 5.1) is
//! [`crate::mapping::Mapping::at_instant`] specialized to `uregion`
//! units; this module adds Algorithm `inside` (Sec 5.2) and the lifted
//! `area` (`size`) operation.

use crate::lift::{lift1, lift2};
use crate::mapping::Mapping;
use crate::moving::{MovingBool, MovingPoint, MovingReal};
use crate::unit::Unit;
use crate::uregion::URegion;
use mob_base::{Instant, Real, Val};
use mob_spatial::Cube;

/// Overlap area of a snapshot with a static region (0 when the overlay
/// fails on a degenerate snapshot).
fn overlap_area(snapshot: &mob_spatial::Region, other: &mob_spatial::Region) -> Real {
    mob_spatial::setops::region_intersection(snapshot, other)
        .map(|r| r.area())
        .unwrap_or(Real::ZERO)
}

/// Algorithm `inside` (Sec 5.2): when is the moving point inside the
/// moving region? Traverses the two unit lists in parallel along the
/// refinement partition; for each part where both exist it runs
/// `upoint_uregion_inside` and `concat`s the boolean units.
///
/// Complexity: `O(n + m + Σ per-pair work)`; per pair the work is
/// `O(s)` for the bounding-cube/crossing scan plus the classification of
/// the `k` crossing sub-intervals, matching the paper's `O(n + m + S)`
/// for bounded crossing counts. When the bounding cubes of the pairs are
/// disjoint the per-pair work is `O(1)`, giving `O(n + m)`.
pub fn inside<SP, SR>(mp: &SP, mr: &SR) -> MovingBool
where
    SP: crate::seq::UnitSeq<Unit = crate::upoint::UPoint>,
    SR: crate::seq::UnitSeq<Unit = URegion>,
{
    lift2(mp, mr, |iv, up, ur| ur.inside_units(up, iv))
}

impl Mapping<URegion> {
    /// Lifted `inside` as a method (point first, matching the signature
    /// `inside: moving(point) × moving(region) → moving(bool)`).
    pub fn contains_moving_point<SP>(&self, mp: &SP) -> MovingBool
    where
        SP: crate::seq::UnitSeq<Unit = crate::upoint::UPoint>,
    {
        inside(mp, self)
    }

    /// The lifted `size`/`area` operation: a moving real, exactly
    /// representable as quadratic units.
    pub fn area(&self) -> MovingReal {
        lift1(self, |u| vec![u.area_ureal()])
    }

    /// Perimeter at an instant (not closed as a `ureal`; see Sec 3.2.5).
    pub fn perimeter_at(&self, t: Instant) -> Val<Real> {
        self.unit_at(t).map(|u| u.perimeter_at(t)).into()
    }

    /// The periods during which the moving region covers the fixed point
    /// `p` (a lifted `inside` with a stationary point).
    pub fn when_covers(&self, p: mob_spatial::Point) -> mob_base::Periods {
        let Some((first, last)) = self.units().first().zip(self.units().last()) else {
            return mob_base::Periods::empty();
        };
        let span = mob_base::Interval::closed(*first.interval().start(), *last.interval().end());
        let track = MovingPoint::single(crate::upoint::UPoint::new(
            span,
            crate::upoint::PointMotion::stationary(p),
        ));
        inside(&track, self).when_true()
    }

    /// The lifted `passes` for a fixed point: is `p` ever covered?
    pub fn ever_covers(&self, p: mob_spatial::Point) -> bool {
        !self.when_covers(p).is_empty()
    }

    /// The area traversed by the moving region: the union of snapshots
    /// sampled `per_unit` times per unit. An approximation of the
    /// abstract model's `traversed` operation (the exact union of a
    /// linearly moving polygon is not piecewise-linear-representable in
    /// general); precision grows with the sample count.
    pub fn traversed_approx(&self, per_unit: usize) -> mob_spatial::Region {
        let mut acc = mob_spatial::Region::empty();
        for u in self.units() {
            for ti in u.interval().sample_instants(per_unit) {
                let snap = u.at(ti);
                acc =
                    mob_spatial::setops::region_union(&acc, &snap).unwrap_or_else(|_| acc.clone());
            }
        }
        acc
    }

    /// The area of overlap with a *static* region over time, as a
    /// piecewise-linear moving real sampled `per_unit` times per unit
    /// (the exact overlap area of a morphing polygon is piecewise
    /// quadratic with breakpoints at combinatorial changes — outside the
    /// closed-form reach of this representation; the approximation
    /// converges with the sample count).
    pub fn area_of_intersection_approx(
        &self,
        other: &mob_spatial::Region,
        per_unit: usize,
    ) -> MovingReal {
        use crate::mapping::MappingBuilder;
        use crate::ureal::UReal;
        let mut builder = MappingBuilder::new();
        for u in self.units() {
            let iv = u.interval();
            if iv.is_point() {
                let a = overlap_area(&u.at(*iv.start()), other);
                builder.push(UReal::constant(*iv, a));
                continue;
            }
            let n = per_unit.max(1);
            let (s, e) = (iv.start().as_f64(), iv.end().as_f64());
            let mut prev = overlap_area(&u.at(Instant::from_f64(s)), other);
            for k in 0..n {
                let t0 = s + (e - s) * k as f64 / n as f64;
                let t1 = s + (e - s) * (k + 1) as f64 / n as f64;
                let next = overlap_area(&u.at(Instant::from_f64(t1)), other);
                let slope = (next - prev) / Real::new(t1 - t0);
                let offset = prev - slope * Real::new(t0);
                let piece = mob_base::Interval::new(
                    Instant::from_f64(t0),
                    Instant::from_f64(t1),
                    if k == 0 { iv.left_closed() } else { true },
                    if k == n - 1 { iv.right_closed() } else { false },
                );
                builder.push(UReal::linear(piece, slope, offset));
                prev = next;
            }
        }
        builder.finish()
    }

    /// Approximate center of the moving region over time: the centroid
    /// of each unit's snapshots, linearly interpolated (the abstract
    /// `rough_center`; the exact centroid of a morphing polygon is a
    /// rational function of t, outside the representable class).
    pub fn rough_center(&self, per_unit: usize) -> MovingPoint {
        let mut samples: Vec<(Instant, mob_spatial::Point)> = Vec::new();
        for u in self.units() {
            for ti in u.interval().sample_instants(per_unit.max(1)) {
                if let Some(c) = u.at(ti).centroid() {
                    if samples.last().map(|(prev, _)| *prev < ti).unwrap_or(true) {
                        samples.push((ti, c));
                    }
                }
            }
        }
        MovingPoint::from_samples(&samples)
    }

    /// Bounding cube of the whole development.
    pub fn bounding_cube(&self) -> Option<Cube> {
        let mut it = self.units().iter().map(|u| u.bounding_cube());
        let first = it.next()?;
        Some(it.fold(first, |acc, c| acc.union(&c)))
    }

    /// Total number of moving segments across all units (the `S` of the
    /// Sec 5.2 complexity analysis).
    pub fn total_msegs(&self) -> usize {
        self.units().iter().map(|u| u.num_msegs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moving::{MovingPoint, MovingRegion};
    use mob_base::{r, t, Interval, TimeInterval};
    use mob_spatial::{pt, rect_ring};

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    /// A square sliding right from [0,1]² to [4,5]×[0,1] over [0,4],
    /// in two units with a kink at t=2.
    fn sliding() -> MovingRegion {
        let u1 = URegion::interpolate(
            Interval::closed_open(t(0.0), t(2.0)),
            &rect_ring(0.0, 0.0, 1.0, 1.0),
            &rect_ring(2.0, 0.0, 3.0, 1.0),
        )
        .unwrap();
        // Second unit keeps the same x-velocity but adds upward drift —
        // a genuine kink, so the two units carry distinct unit functions.
        let u2 = URegion::interpolate(
            iv(2.0, 4.0),
            &rect_ring(2.0, 0.0, 3.0, 1.0),
            &rect_ring(4.0, 1.0, 5.0, 2.0),
        )
        .unwrap();
        Mapping::try_new(vec![u1, u2]).unwrap()
    }

    #[test]
    fn atinstant_over_units() {
        let m = sliding();
        // Binary search lands in the right unit.
        let r1 = m.at_instant(t(1.0)).unwrap();
        assert!(r1.contains_point(pt(1.5, 0.5)));
        let r3 = m.at_instant(t(3.0)).unwrap();
        assert!(r3.contains_point(pt(3.5, 1.0)));
        assert!(m.at_instant(t(9.0)).is_undef());
    }

    #[test]
    fn inside_moving_point_moving_region() {
        let m = sliding();
        // Point waits at (2.5, 0.5): the square sweeps over it.
        let p = MovingPoint::from_samples(&[(t(0.0), pt(2.5, 0.5)), (t(4.0), pt(2.5, 0.5))]);
        let ib = inside(&p, &m);
        // Square covers x ∈ [t, t+1]; contains 2.5 for t ∈ [1.5, 2.5].
        assert_eq!(ib.at_instant(t(2.0)), Val::Def(true));
        assert_eq!(ib.at_instant(t(1.0)), Val::Def(false));
        assert_eq!(ib.at_instant(t(3.0)), Val::Def(false));
        let w = ib.when_true();
        assert_eq!(w.num_intervals(), 1);
        assert!(w.as_slice()[0].start().as_f64() - 1.5 < 1e-9);
        assert!(w.as_slice()[0].end().as_f64() - 2.5 < 1e-9);
        // Method form agrees.
        assert_eq!(m.contains_moving_point(&p).when_true(), w);
    }

    #[test]
    fn inside_disjoint_deftimes_is_empty() {
        let m = sliding();
        let p = MovingPoint::from_samples(&[(t(10.0), pt(0.0, 0.0)), (t(11.0), pt(1.0, 1.0))]);
        assert!(inside(&p, &m).is_empty());
    }

    #[test]
    fn area_constant_under_translation() {
        let m = sliding();
        let a = m.area();
        for k in [0.0, 1.0, 2.5, 4.0] {
            assert!(a.at_instant(t(k)).unwrap().approx_eq(r(1.0), 1e-9));
        }
    }

    #[test]
    fn area_of_growing_region() {
        let g = Mapping::single(
            URegion::interpolate(
                iv(0.0, 1.0),
                &rect_ring(0.0, 0.0, 1.0, 1.0),
                &rect_ring(0.0, 0.0, 3.0, 3.0),
            )
            .unwrap(),
        );
        let a = g.area();
        assert_eq!(a.at_instant(t(0.0)), Val::Def(r(1.0)));
        assert_eq!(a.at_instant(t(1.0)), Val::Def(r(9.0)));
        assert_eq!(a.at_instant(t(0.5)), Val::Def(r(4.0)));
        assert_eq!(a.max_value(), Val::Def(r(9.0)));
    }

    #[test]
    fn perimeter_at_instant() {
        let m = sliding();
        assert_eq!(m.perimeter_at(t(1.0)), Val::Def(r(4.0)));
        assert!(m.perimeter_at(t(99.0)).is_undef());
    }

    #[test]
    fn when_covers_fixed_point() {
        let m = sliding();
        // The square (x ∈ [t, t+1]) covers x=2.5 during t ∈ [1.5, 2.5].
        let w = m.when_covers(pt(2.5, 0.5));
        assert_eq!(w.num_intervals(), 1);
        assert!((w.as_slice()[0].start().as_f64() - 1.5).abs() < 1e-9);
        assert!((w.as_slice()[0].end().as_f64() - 2.5).abs() < 1e-9);
        assert!(m.ever_covers(pt(2.5, 0.5)));
        assert!(!m.ever_covers(pt(50.0, 50.0)));
        assert!(MovingRegion::empty().when_covers(pt(0.0, 0.0)).is_empty());
    }

    #[test]
    fn traversed_covers_path() {
        let m = sliding();
        let swath = m.traversed_approx(6);
        // The square sweeps x ∈ [0, 5]: points along the corridor are in.
        assert!(swath.contains_point(pt(0.5, 0.5)));
        assert!(swath.contains_point(pt(2.5, 0.5)));
        assert!(swath.contains_point(pt(4.5, 1.2)));
        assert!(!swath.contains_point(pt(2.5, 8.0)));
        // Its area is at least one snapshot's and at most the bbox's.
        assert!(swath.area() >= r(1.0));
    }

    #[test]
    fn intersection_area_with_static_region() {
        let m = sliding();
        // County: x ∈ [2, 4]. The unit square overlaps it from t=1
        // (right edge reaches x=2) to t=4, fully inside during [2, 3].
        let county = mob_spatial::Region::from_ring(rect_ring(2.0, -1.0, 4.0, 2.0));
        let a = m.area_of_intersection_approx(&county, 8);
        assert!(a.at_instant(t(0.5)).unwrap().approx_eq(r(0.0), 1e-6));
        assert!(a.at_instant(t(2.5)).unwrap().approx_eq(r(1.0), 0.1));
        let half = a.at_instant(t(1.5)).unwrap();
        assert!(half > r(0.2) && half < r(0.8), "{half}");
    }

    #[test]
    fn rough_center_tracks_motion() {
        let m = sliding();
        let c = m.rough_center(4);
        let early = c.at_instant(t(0.5)).unwrap();
        let late = c.at_instant(t(3.5)).unwrap();
        assert!(late.x > early.x); // drifts right with the square
        assert!(c.present_at(t(2.0)));
    }

    #[test]
    fn total_msegs_counts() {
        let m = sliding();
        assert_eq!(m.total_msegs(), 8);
        assert!(m.bounding_cube().unwrap().rect.max_x() >= r(5.0));
    }
}
