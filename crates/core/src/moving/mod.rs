//! The moving data types of Table 3: each abstract `moving(α)` realized
//! as a `Mapping` over the corresponding unit type, with the operations
//! of the abstract model implemented on the sliced representation.
//!
//! | abstract          | discrete                     | Rust              |
//! |-------------------|------------------------------|-------------------|
//! | `moving(int)`     | `mapping(const(int))`        | [`MovingInt`]     |
//! | `moving(string)`  | `mapping(const(string))`     | [`MovingString`]  |
//! | `moving(bool)`    | `mapping(const(bool))`       | [`MovingBool`]    |
//! | `moving(real)`    | `mapping(ureal)`             | [`MovingReal`]    |
//! | `moving(point)`   | `mapping(upoint)`            | [`MovingPoint`]   |
//! | `moving(points)`  | `mapping(upoints)`           | [`MovingPoints`]  |
//! | `moving(line)`    | `mapping(uline)`             | [`MovingLine`]    |
//! | `moving(region)`  | `mapping(uregion)`           | [`MovingRegion`]  |

pub mod mbool;
pub mod mconst;
pub mod mline;
pub mod mpoint;
pub mod mreal;
pub mod mregion;

use crate::mapping::Mapping;
use crate::uconst::ConstUnit;
use crate::uline::ULine;
use crate::upoint::UPoint;
use crate::upoints::UPoints;
use crate::ureal::UReal;
use crate::uregion::URegion;
use mob_base::Text;

/// `moving(int)` = `mapping(const(int))`.
pub type MovingInt = Mapping<ConstUnit<i64>>;
/// `moving(string)` = `mapping(const(string))`.
pub type MovingString = Mapping<ConstUnit<Text>>;
/// `moving(bool)` = `mapping(const(bool))`.
pub type MovingBool = Mapping<ConstUnit<bool>>;
/// `moving(real)` = `mapping(ureal)`.
pub type MovingReal = Mapping<UReal>;
/// `moving(point)` = `mapping(upoint)`.
pub type MovingPoint = Mapping<UPoint>;
/// `moving(points)` = `mapping(upoints)`.
pub type MovingPoints = Mapping<UPoints>;
/// `moving(line)` = `mapping(uline)`.
pub type MovingLine = Mapping<ULine>;
/// `moving(region)` = `mapping(uregion)`.
pub type MovingRegion = Mapping<URegion>;
