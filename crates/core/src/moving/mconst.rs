//! Generic lifted operations on discretely changing moving values
//! (`mapping(const(α))`): comparisons and arithmetic where applicable.

use crate::lift::lift2;
use crate::mapping::Mapping;
use crate::moving::MovingBool;
use crate::uconst::ConstUnit;
use crate::unit::Unit;

impl<T: Clone + PartialEq> Mapping<ConstUnit<T>> {
    /// Lifted equality against another discretely changing value.
    pub fn eq_lifted(&self, other: &Mapping<ConstUnit<T>>) -> MovingBool {
        lift2(self, other, |iv, a, b| {
            vec![ConstUnit::new(*iv, a.value() == b.value())]
        })
    }

    /// Lifted equality against a constant.
    pub fn eq_const(&self, v: &T) -> MovingBool {
        let mut units = Vec::with_capacity(self.num_units());
        for u in self.units() {
            units.push(ConstUnit::new(*u.interval(), u.value() == v));
        }
        Mapping::from_units_trusted(units)
    }
}

impl<T: Clone + PartialEq + PartialOrd> Mapping<ConstUnit<T>> {
    /// Lifted `<` comparison.
    pub fn lt_lifted(&self, other: &Mapping<ConstUnit<T>>) -> MovingBool {
        lift2(self, other, |iv, a, b| {
            vec![ConstUnit::new(*iv, a.value() < b.value())]
        })
    }
}

impl<T: Clone + PartialEq + Ord> Mapping<ConstUnit<T>> {
    /// The minimum value taken (⊥ when empty) — the lifted `min`.
    pub fn min_const(&self) -> mob_base::Val<T> {
        self.units().iter().map(|u| u.value().clone()).min().into()
    }

    /// The maximum value taken (⊥ when empty).
    pub fn max_const(&self) -> mob_base::Val<T> {
        self.units().iter().map(|u| u.value().clone()).max().into()
    }

    /// Restrict to the periods where the value equals `v` (the `at`
    /// operation for discretely changing values).
    pub fn when_eq(&self, v: &T) -> mob_base::Periods {
        self.units()
            .iter()
            .filter(|u| u.value() == v)
            .map(|u| *u.interval())
            .collect()
    }
}

impl Mapping<ConstUnit<i64>> {
    /// Lifted integer addition.
    pub fn add_lifted(&self, other: &Mapping<ConstUnit<i64>>) -> Mapping<ConstUnit<i64>> {
        lift2(self, other, |iv, a, b| {
            vec![ConstUnit::new(*iv, a.value() + b.value())]
        })
    }

    /// Lifted integer multiplication.
    pub fn mul_lifted(&self, other: &Mapping<ConstUnit<i64>>) -> Mapping<ConstUnit<i64>> {
        lift2(self, other, |iv, a, b| {
            vec![ConstUnit::new(*iv, a.value() * b.value())]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{t, Interval, Val};

    fn cu(s: f64, e: f64, v: i64) -> ConstUnit<i64> {
        ConstUnit::new(Interval::closed_open(t(s), t(e)), v)
    }

    #[test]
    fn comparisons() {
        let a = Mapping::try_new(vec![cu(0.0, 2.0, 1), cu(2.0, 4.0, 5)]).unwrap();
        let b = Mapping::try_new(vec![cu(0.0, 4.0, 3)]).unwrap();
        let eq = a.eq_lifted(&b);
        assert_eq!(eq.at_instant(t(1.0)), Val::Def(false));
        let lt = a.lt_lifted(&b);
        assert_eq!(lt.at_instant(t(1.0)), Val::Def(true));
        assert_eq!(lt.at_instant(t(3.0)), Val::Def(false));
        let ec = a.eq_const(&5);
        assert_eq!(ec.at_instant(t(3.0)), Val::Def(true));
        assert_eq!(ec.at_instant(t(1.0)), Val::Def(false));
    }

    #[test]
    fn arithmetic() {
        let a = Mapping::try_new(vec![cu(0.0, 2.0, 2)]).unwrap();
        let b = Mapping::try_new(vec![cu(1.0, 3.0, 10)]).unwrap();
        let sum = a.add_lifted(&b);
        assert_eq!(sum.at_instant(t(1.5)), Val::Def(12));
        assert_eq!(sum.at_instant(t(0.5)), Val::Undef);
        let prod = a.mul_lifted(&b);
        assert_eq!(prod.at_instant(t(1.5)), Val::Def(20));
    }

    #[test]
    fn const_extremes_and_when_eq() {
        use mob_base::Val;
        let a = Mapping::try_new(vec![cu(0.0, 2.0, 4), cu(2.0, 4.0, 1), cu(5.0, 6.0, 4)]).unwrap();
        assert_eq!(a.min_const(), Val::Def(1));
        assert_eq!(a.max_const(), Val::Def(4));
        let w = a.when_eq(&4);
        assert_eq!(w.num_intervals(), 2);
        assert!(w.contains(&t(1.0)));
        assert!(!w.contains(&t(3.0)));
        assert!(Mapping::<ConstUnit<i64>>::empty().min_const().is_undef());
    }

    #[test]
    fn eq_const_merges_adjacent() {
        let a = Mapping::try_new(vec![cu(0.0, 1.0, 1), cu(1.0, 2.0, 2)]).unwrap();
        // Neither equals 7: both units map to false and merge.
        let m = a.eq_const(&7);
        assert_eq!(m.num_units(), 1);
    }
}
