//! Operations on `moving(bool)` — the result type of lifted predicates.

use crate::lift::{lift1, lift2};
use crate::mapping::Mapping;
use crate::moving::MovingBool;
use crate::uconst::ConstUnit;
use crate::unit::Unit;
use mob_base::{Periods, TimeInterval};

impl Mapping<ConstUnit<bool>> {
    /// A moving bool that is `value` over the given periods (and
    /// undefined elsewhere).
    pub fn from_periods(periods: &Periods, value: bool) -> MovingBool {
        // A `Periods` value is sorted, disjoint and non-adjacent by its
        // own invariant, which is exactly the mapping invariant here.
        Mapping::from_raw(
            periods
                .iter()
                .map(|iv| ConstUnit::new(*iv, value))
                .collect(),
        )
    }

    /// Lifted logical negation.
    pub fn not(&self) -> MovingBool {
        lift1(self, |u| vec![ConstUnit::new(*u.interval(), !u.value())])
    }

    /// Lifted conjunction (strict: undefined where either is undefined).
    pub fn and(&self, other: &MovingBool) -> MovingBool {
        lift2(self, other, |iv, a, b| {
            vec![ConstUnit::new(*iv, *a.value() && *b.value())]
        })
    }

    /// Lifted disjunction.
    pub fn or(&self, other: &MovingBool) -> MovingBool {
        lift2(self, other, |iv, a, b| {
            vec![ConstUnit::new(*iv, *a.value() || *b.value())]
        })
    }

    /// The periods during which the value is `true` (the `when` /
    /// `at(true)` projection).
    pub fn when_true(&self) -> Periods {
        self.when(true)
    }

    /// The periods during which the value equals `v`.
    pub fn when(&self, v: bool) -> Periods {
        let ivs: Vec<TimeInterval> = self
            .units()
            .iter()
            .filter(|u| *u.value() == v)
            .map(|u| *u.interval())
            .collect();
        Periods::from_unmerged(ivs)
    }

    /// `true` if the value is `true` somewhere (`sometimes`).
    pub fn sometimes(&self) -> bool {
        self.units().iter().any(|u| *u.value())
    }

    /// `true` if defined somewhere and `true` everywhere it is defined
    /// (`always`).
    pub fn always(&self) -> bool {
        !self.is_empty() && self.units().iter().all(|u| *u.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{t, Interval, Val};

    fn bu(s: f64, e: f64, v: bool) -> ConstUnit<bool> {
        ConstUnit::new(Interval::closed_open(t(s), t(e)), v)
    }

    fn sample() -> MovingBool {
        Mapping::try_new(vec![
            bu(0.0, 1.0, true),
            bu(1.0, 2.0, false),
            bu(3.0, 4.0, true),
        ])
        .unwrap()
    }

    #[test]
    fn logic() {
        let a = sample();
        let n = a.not();
        assert_eq!(n.at_instant(t(0.5)), Val::Def(false));
        assert_eq!(n.at_instant(t(1.5)), Val::Def(true));
        assert_eq!(n.at_instant(t(2.5)), Val::Undef);

        let b = Mapping::try_new(vec![bu(0.0, 4.0, true)]).unwrap();
        let both = a.and(&b);
        assert_eq!(both.at_instant(t(0.5)), Val::Def(true));
        assert_eq!(both.at_instant(t(1.5)), Val::Def(false));
        assert_eq!(both.at_instant(t(2.5)), Val::Undef); // a undefined

        let either = a.or(&a.not());
        assert!(either.always());
    }

    #[test]
    fn when_projections() {
        let a = sample();
        let tr = a.when_true();
        assert_eq!(tr.num_intervals(), 2);
        assert!(tr.contains(&t(0.5)));
        assert!(!tr.contains(&t(1.5)));
        assert!(tr.contains(&t(3.5)));
        let fl = a.when(false);
        assert_eq!(fl.num_intervals(), 1);
    }

    #[test]
    fn quantifiers() {
        assert!(sample().sometimes());
        assert!(!sample().always());
        let all_true = Mapping::try_new(vec![bu(0.0, 1.0, true)]).unwrap();
        assert!(all_true.always());
        assert!(!MovingBool::empty().always());
        assert!(!MovingBool::empty().sometimes());
    }

    #[test]
    fn from_periods_roundtrip() {
        let p = sample().when_true();
        let mb = MovingBool::from_periods(&p, true);
        assert_eq!(mb.when_true(), p);
    }
}
