//! Spatio-temporal index: a bulk-loaded **packed R-tree** over per-unit
//! (x, y, t) bounding cubes.
//!
//! Sec 4.2 already stores summary information (bounding boxes / time
//! intervals) with every unit precisely so that queries can prune
//! without decoding unit payloads. This module turns those summaries
//! into a queryable structure: [`unit_cubes`] extracts one [`Cube`] per
//! unit from any [`UnitSeq`] of `upoint`s (in-memory mapping or
//! storage-backed view alike), and [`RTree::build`] packs the cubes
//! with the classic Sort-Tile-Recurse (STR) bulk load — sort by x,
//! tile, sort by y, tile, sort by t, then pack consecutive runs into
//! nodes bottom-up. The result is pointer-free (children are array
//! index ranges, in the spirit of \[DG98\]) and therefore trivially
//! serializable by `mob-storage`.
//!
//! # Pruning contract
//!
//! Cubes are *conservative*: a query can only use a miss as evidence of
//! absence. [`RTree::query`] returns every `(tuple, unit)` whose cube
//! intersects the probe — a superset of the true answer — and the
//! caller re-checks candidates with the exact Section-5 algorithms.
//! Equivalently: a tuple **not** in the candidate set is guaranteed to
//! have no unit intersecting the probe cube, so a pruned scan may skip
//! it (or emit ⊥ for a snapshot) without changing the result.
//!
//! Decoded trees are untrusted like everything else read from storage:
//! [`RTree::from_parts`] re-validates the full structure (child ranges
//! tile each level exactly, every child cube contained in its parent,
//! leaf ids in range) and rejects anything inconsistent with a
//! [`DecodeError`].

use crate::seq::UnitSeq;
use crate::upoint::UPoint;
use mob_base::{DecodeError, DecodeResult, Instant};
use mob_spatial::{Cube, Rect};

/// Default node fan-out (maximum children per node).
pub const DEFAULT_FANOUT: usize = 16;

/// One leaf entry: the bounding cube of unit `unit` of tuple `tuple`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexEntry {
    /// Tuple id (position in the indexed relation).
    pub tuple: u32,
    /// Unit index within the tuple's mapping.
    pub unit: u32,
    /// The unit's (x, y, t) bounding cube.
    pub cube: Cube,
}

/// One tree node: a cube covering a contiguous run of children.
///
/// `level` 0 nodes reference entries (`first..first + count` into the
/// entry array); higher levels reference nodes of the level below (same
/// range convention into the node array). Nodes are stored level by
/// level, leaves first, the single root last.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexNode {
    /// Union cube of all children.
    pub cube: Cube,
    /// Index of the first child (entry index at level 0, node index
    /// above).
    pub first: u32,
    /// Number of children.
    pub count: u32,
    /// Height above the entries: 0 = leaf node.
    pub level: u32,
}

/// What one tree probe returned: the candidate tuples plus the honest
/// cost of finding them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Candidates {
    /// Candidate tuple ids, sorted ascending, deduplicated.
    pub tuples: Vec<u32>,
    /// Entry (unit) cubes that intersected the probe.
    pub units: u64,
    /// Tree nodes visited (the `index.nodes_visited` metric).
    pub nodes_visited: u64,
}

/// A packed (STR bulk-loaded) R-tree over unit bounding cubes.
#[derive(Clone, Debug, PartialEq)]
pub struct RTree {
    num_tuples: u32,
    fanout: u32,
    entries: Vec<IndexEntry>,
    nodes: Vec<IndexNode>,
}

/// Sort key: center of a cube along one axis (plain `f64` — carrier-set
/// types guarantee no NaN, so `total_cmp` is a total order anyway).
fn center(lo: f64, hi: f64) -> f64 {
    (lo + hi) / 2.0
}

impl RTree {
    /// Bulk-load a tree over `entries` describing a relation of
    /// `num_tuples` tuples, with the default fan-out.
    pub fn bulk(num_tuples: usize, entries: Vec<IndexEntry>) -> RTree {
        RTree::build(num_tuples, entries, DEFAULT_FANOUT)
    }

    /// Bulk-load with an explicit fan-out (`≥ 2`).
    ///
    /// STR: sort the entries by x-center and cut into vertical slabs,
    /// sort each slab by y-center and cut into runs, sort each run by
    /// t-center; then pack consecutive entries into leaf nodes of
    /// `fanout` and build the upper levels by packing consecutive nodes
    /// until a single root remains.
    pub fn build(num_tuples: usize, mut entries: Vec<IndexEntry>, fanout: usize) -> RTree {
        let fanout = fanout.max(2);
        let n = entries.len();
        if n > 0 {
            let leaves = n.div_ceil(fanout);
            // Number of slabs per axis: the smallest s with s³ ≥ leaves
            // (integer cube root, no float/int casts).
            let mut s = 1usize;
            while s * s * s < leaves {
                s += 1;
            }
            entries.sort_by(|a, b| {
                center(a.cube.rect.min_x().get(), a.cube.rect.max_x().get()).total_cmp(&center(
                    b.cube.rect.min_x().get(),
                    b.cube.rect.max_x().get(),
                ))
            });
            let slab = n.div_ceil(s);
            for chunk in entries.chunks_mut(slab.max(1)) {
                chunk.sort_by(|a, b| {
                    center(a.cube.rect.min_y().get(), a.cube.rect.max_y().get()).total_cmp(&center(
                        b.cube.rect.min_y().get(),
                        b.cube.rect.max_y().get(),
                    ))
                });
                let run = chunk.len().div_ceil(s);
                for run_chunk in chunk.chunks_mut(run.max(1)) {
                    run_chunk.sort_by(|a, b| {
                        center(a.cube.t_min.as_f64(), a.cube.t_max.as_f64())
                            .total_cmp(&center(b.cube.t_min.as_f64(), b.cube.t_max.as_f64()))
                    });
                }
            }
        }

        // Pack bottom-up: leaf nodes over entry runs, then node runs.
        let mut nodes: Vec<IndexNode> = Vec::new();
        if n > 0 {
            let mut first = 0usize;
            for chunk in entries.chunks(fanout) {
                let cube = union_cubes(&chunk[0].cube, chunk[1..].iter().map(|e| &e.cube));
                nodes.push(IndexNode {
                    cube,
                    first: idx_u32(first),
                    count: idx_u32(chunk.len()),
                    level: 0,
                });
                first += chunk.len();
            }
            let mut level = 0u32;
            let mut lvl_start = 0usize;
            while nodes.len() - lvl_start > 1 {
                let lvl_end = nodes.len();
                level += 1;
                let mut child = lvl_start;
                while child < lvl_end {
                    let count = fanout.min(lvl_end - child);
                    let cube = union_cubes(
                        &nodes[child].cube,
                        nodes[child + 1..child + count].iter().map(|nd| &nd.cube),
                    );
                    nodes.push(IndexNode {
                        cube,
                        first: idx_u32(child),
                        count: idx_u32(count),
                        level,
                    });
                    child += count;
                }
                lvl_start = lvl_end;
            }
        }

        let tree = RTree {
            num_tuples: idx_u32(num_tuples),
            fanout: idx_u32(fanout),
            entries,
            nodes,
        };
        debug_assert!(
            tree.validate().is_ok(),
            "bulk load broke its own invariants"
        );
        tree
    }

    /// Reassemble a tree from decoded parts, re-validating everything —
    /// the untrusted entry point `mob-storage`'s `load_index` uses.
    pub fn from_parts(
        num_tuples: u32,
        fanout: u32,
        entries: Vec<IndexEntry>,
        nodes: Vec<IndexNode>,
    ) -> DecodeResult<RTree> {
        let tree = RTree {
            num_tuples,
            fanout,
            entries,
            nodes,
        };
        tree.validate()?;
        Ok(tree)
    }

    /// Number of tuples in the relation the tree was built over.
    pub fn num_tuples(&self) -> usize {
        self.num_tuples as usize
    }

    /// Number of leaf entries (indexed unit cubes).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Number of tree nodes across all levels.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node fan-out the tree was packed with.
    pub fn fanout(&self) -> usize {
        self.fanout as usize
    }

    /// The leaf entries in packed order (for serialization).
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// The nodes, leaves first, root last (for serialization).
    pub fn nodes(&self) -> &[IndexNode] {
        &self.nodes
    }

    /// Check every structural invariant of the packed layout:
    ///
    /// * `fanout ≥ 2`; no nodes exactly when there are no entries;
    /// * nodes are stored level by level, levels contiguous from 0,
    ///   topped by a single root;
    /// * the children of each level tile the level below **exactly**
    ///   (level 0 tiles the entry array);
    /// * every child cube is contained in its parent's cube;
    /// * every leaf entry's tuple id is `< num_tuples`.
    ///
    /// Decode paths call this on untrusted bytes, so violations are
    /// [`DecodeError`]s, never panics.
    pub fn validate(&self) -> DecodeResult<()> {
        let bad = |detail: String| DecodeError::BadStructure {
            what: "rtree index",
            detail,
        };
        if self.fanout < 2 {
            return Err(bad(format!("fanout {} < 2", self.fanout)));
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.tuple >= self.num_tuples {
                return Err(DecodeError::OutOfBounds {
                    what: "rtree entry tuple id",
                    index: e.tuple as usize,
                    bound: self.num_tuples as usize,
                });
            }
            if e.cube.rect.is_empty() || e.cube.t_max < e.cube.t_min {
                return Err(bad(format!("entry {i} carries an empty or inverted cube")));
            }
        }
        if self.entries.is_empty() {
            if !self.nodes.is_empty() {
                return Err(bad("nodes present without entries".to_string()));
            }
            return Ok(());
        }
        if self.nodes.is_empty() {
            return Err(bad("entries present without nodes".to_string()));
        }
        // Walk the node array level by level; each level must tile its
        // child array exactly, left to right.
        let mut pos = 0usize;
        let mut level = 0u32;
        let mut lvl_start;
        let mut child_bound = self.entries.len(); // size of the level below
        let mut prev_level_first = 0usize; // node index where the level below starts
        loop {
            lvl_start = pos;
            let mut next_child = if level == 0 { 0 } else { prev_level_first };
            let tile_end = if level == 0 {
                child_bound
            } else {
                prev_level_first + child_bound
            };
            while pos < self.nodes.len() && self.nodes[pos].level == level {
                let nd = &self.nodes[pos];
                if nd.count == 0 {
                    return Err(bad(format!("node {pos} has no children")));
                }
                if nd.first as usize != next_child {
                    return Err(bad(format!(
                        "node {pos} children start at {} instead of {next_child}",
                        nd.first
                    )));
                }
                let end = nd.first as usize + nd.count as usize;
                if end > tile_end {
                    return Err(DecodeError::OutOfBounds {
                        what: "rtree node child range",
                        index: end,
                        bound: tile_end,
                    });
                }
                for c in nd.first as usize..end {
                    let child_cube = if level == 0 {
                        &self.entries[c].cube
                    } else {
                        &self.nodes[c].cube
                    };
                    if !nd.cube.contains(child_cube) {
                        return Err(bad(format!(
                            "node {pos} (level {level}) does not contain child {c}"
                        )));
                    }
                }
                next_child = end;
                pos += 1;
            }
            if next_child != tile_end {
                return Err(bad(format!(
                    "level {level} covers children up to {next_child}, expected {tile_end}"
                )));
            }
            let lvl_len = pos - lvl_start;
            if lvl_len == 0 {
                return Err(bad(format!("level {level} is empty")));
            }
            if pos == self.nodes.len() {
                if lvl_len != 1 {
                    return Err(bad(format!("top level has {lvl_len} roots, expected 1")));
                }
                return Ok(());
            }
            prev_level_first = lvl_start;
            child_bound = lvl_len;
            level += 1;
        }
    }

    /// Probe with a full (x, y, t) cube: every unit whose cube
    /// intersects `q` contributes its tuple to the candidate set.
    pub fn query(&self, q: &Cube) -> Candidates {
        self.search(|c| c.intersects(q))
    }

    /// Probe with an instant only (the `snapshot_at` prune): time-axis
    /// overlap, any spatial extent.
    pub fn query_instant(&self, t: Instant) -> Candidates {
        self.search(|c| c.t_min <= t && t <= c.t_max)
    }

    /// Probe with a spatial rectangle only (the `filter_inside` prune):
    /// space-axis overlap, any time.
    pub fn query_rect(&self, r: &Rect) -> Candidates {
        self.search(move |c| c.rect.intersects(r))
    }

    fn search(&self, hit: impl Fn(&Cube) -> bool) -> Candidates {
        let mut out = Candidates::default();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack = vec![self.nodes.len() - 1];
        while let Some(i) = stack.pop() {
            let nd = &self.nodes[i];
            out.nodes_visited += 1;
            if !hit(&nd.cube) {
                continue;
            }
            let range = nd.first as usize..nd.first as usize + nd.count as usize;
            if nd.level == 0 {
                for e in &self.entries[range] {
                    if hit(&e.cube) {
                        out.units += 1;
                        out.tuples.push(e.tuple);
                    }
                }
            } else {
                stack.extend(range);
            }
        }
        out.tuples.sort_unstable();
        out.tuples.dedup();
        out
    }
}

/// Union of a non-empty cube sequence, seeded with its first element
/// (callers always union over `chunks()` output, which is never empty).
fn union_cubes<'a>(first: &Cube, rest: impl Iterator<Item = &'a Cube>) -> Cube {
    rest.fold(*first, |acc, c| acc.union(c))
}

/// Saturating `usize → u32` for packed-array offsets and counts.
/// Indexes beyond `u32::MAX` entries are out of scope; a saturated
/// tree fails `validate()` loudly instead of truncating silently.
fn idx_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// Extract one [`IndexEntry`] per unit of a moving point — the Sec-4.2
/// summary fields (interval + endpoint box) turned into index cubes.
/// Works over both access paths: in-memory `Mapping<UPoint>` and the
/// storage-backed `MappingView` decode each unit exactly once here.
pub fn unit_cubes<S>(tuple: u32, seq: &S) -> Vec<IndexEntry>
where
    S: UnitSeq<Unit = UPoint>,
{
    (0..seq.len())
        .map(|i| IndexEntry {
            tuple,
            unit: idx_u32(i),
            cube: seq.unit(i).bounding_cube(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moving::MovingPoint;
    use mob_base::{t, Interval};
    use mob_spatial::pt;

    fn zigzag(k: usize, n: usize) -> MovingPoint {
        let x0 = k as f64;
        let samples: Vec<_> = (0..n)
            .map(|i| (t(i as f64), pt(x0 + (i % 2) as f64, i as f64 * 0.5)))
            .collect();
        MovingPoint::from_samples(&samples)
    }

    fn fleet_tree(tuples: usize, units: usize) -> RTree {
        let mut entries = Vec::new();
        for k in 0..tuples {
            entries.extend(unit_cubes(k as u32, &zigzag(k, units)));
        }
        RTree::bulk(tuples, entries)
    }

    /// Exhaustive reference: scan every entry cube.
    fn brute(tree: &RTree, hit: impl Fn(&Cube) -> bool) -> Vec<u32> {
        let mut out: Vec<u32> = tree
            .entries()
            .iter()
            .filter(|e| hit(&e.cube))
            .map(|e| e.tuple)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn empty_tree_is_valid_and_returns_nothing() {
        let tree = RTree::bulk(0, Vec::new());
        tree.validate().unwrap();
        assert_eq!(tree.num_nodes(), 0);
        let c = tree.query_instant(t(1.0));
        assert!(c.tuples.is_empty());
        assert_eq!(c.nodes_visited, 0);
    }

    #[test]
    fn build_validates_across_sizes_and_fanouts() {
        for (tuples, units, fanout) in [(1, 2, 2), (3, 5, 2), (7, 9, 4), (20, 13, 16), (40, 3, 5)] {
            let mut entries = Vec::new();
            for k in 0..tuples {
                entries.extend(unit_cubes(k as u32, &zigzag(k, units)));
            }
            let tree = RTree::build(tuples, entries, fanout);
            tree.validate()
                .unwrap_or_else(|e| panic!("{tuples}×{units} fanout {fanout}: {e}"));
            assert_eq!(tree.num_entries(), tuples * (units - 1));
        }
    }

    #[test]
    fn queries_agree_with_brute_force() {
        let tree = fleet_tree(17, 12);
        // Instant probes, including out-of-range ones.
        for ti in [-1.0, 0.0, 3.25, 10.9, 11.0, 99.0] {
            let got = tree.query_instant(t(ti));
            let want = brute(&tree, |c| c.t_min <= t(ti) && t(ti) <= c.t_max);
            assert_eq!(got.tuples, want, "instant {ti}");
            assert!(got.units as usize >= got.tuples.len());
        }
        // Rect probes.
        use mob_base::r;
        for (x0, x1) in [(0.0, 2.5), (5.0, 9.0), (40.0, 50.0)] {
            let rect = Rect::new(r(x0), r(0.0), r(x1), r(6.0));
            let got = tree.query_rect(&rect);
            let want = brute(&tree, |c| c.rect.intersects(&rect));
            assert_eq!(got.tuples, want, "rect {x0}..{x1}");
        }
        // Full cube probes.
        let cube = Cube::new(
            Rect::new(r(2.0), r(0.0), r(4.0), r(99.0)),
            &Interval::closed(t(1.0), t(2.0)),
        );
        let got = tree.query(&cube);
        assert_eq!(got.tuples, brute(&tree, |c| c.intersects(&cube)));
    }

    #[test]
    fn selective_probes_visit_few_nodes() {
        let tree = fleet_tree(64, 8);
        let all = tree.query_instant(t(3.0));
        assert_eq!(all.tuples.len(), 64, "every flight is live at t=3");
        // A probe outside every lifetime touches only the root.
        let none = tree.query_instant(t(500.0));
        assert!(none.tuples.is_empty());
        assert_eq!(none.nodes_visited, 1);
        // A spatially selective probe prunes most of the tree.
        use mob_base::r;
        let corner = tree.query_rect(&Rect::new(r(0.0), r(0.0), r(1.0), r(4.0)));
        assert!(!corner.tuples.is_empty());
        assert!(
            (corner.nodes_visited as usize) < tree.num_nodes(),
            "selective probe must not visit every node ({} of {})",
            corner.nodes_visited,
            tree.num_nodes()
        );
    }

    #[test]
    fn from_parts_rejects_forged_layouts() {
        let tree = fleet_tree(4, 6);
        let (nt, f) = (tree.num_tuples, tree.fanout);
        // Pristine parts round-trip.
        RTree::from_parts(nt, f, tree.entries.clone(), tree.nodes.clone()).unwrap();
        // Tuple id out of range.
        let mut e = tree.entries.clone();
        e[0].tuple = 99;
        assert!(RTree::from_parts(nt, f, e, tree.nodes.clone()).is_err());
        // Shrunk node cube no longer contains its children.
        let mut nd = tree.nodes.clone();
        let last = nd.len() - 1;
        nd[last].cube = tree.entries[0].cube;
        assert!(RTree::from_parts(nt, f, tree.entries.clone(), nd).is_err());
        // Child range overflowing the entry array.
        let mut nd = tree.nodes.clone();
        nd[0].count += 1000;
        assert!(RTree::from_parts(nt, f, tree.entries.clone(), nd).is_err());
        // Dropping the root leaves a forest, not a tree.
        let mut nd = tree.nodes.clone();
        nd.pop();
        assert!(nd.len() > 1, "test premise: multiple leaf nodes");
        assert!(RTree::from_parts(nt, f, tree.entries.clone(), nd).is_err());
        // Fanout below 2.
        assert!(RTree::from_parts(nt, 1, tree.entries.clone(), tree.nodes.clone()).is_err());
        // Entries without nodes / nodes without entries.
        assert!(RTree::from_parts(nt, f, tree.entries.clone(), Vec::new()).is_err());
        assert!(RTree::from_parts(nt, f, Vec::new(), tree.nodes.clone()).is_err());
        assert!(RTree::from_parts(nt, f, Vec::new(), Vec::new()).is_ok());
    }

    #[test]
    fn unit_cubes_match_unit_bounds() {
        let m = zigzag(2, 6);
        let cubes = unit_cubes(7, &m);
        assert_eq!(cubes.len(), crate::seq::UnitSeq::len(&m));
        for (i, e) in cubes.iter().enumerate() {
            assert_eq!(e.tuple, 7);
            assert_eq!(e.unit, i as u32);
            let u = crate::seq::UnitSeq::unit(&m, i).into_owned();
            assert_eq!(e.cube, u.bounding_cube());
        }
    }
}
