//! The `upoints` unit type (Sec 3.2.6): a set of linearly moving points
//! that never coincide inside the open unit interval.

use crate::mseg::motion_key;
use crate::unit::Unit;
use crate::upoint::{Coincidence, PointMotion};
use mob_base::error::{InvariantViolation, Result};
use mob_base::{Instant, TimeInterval};
use mob_spatial::{Cube, Points, Rect};
use std::fmt;

/// A moving `points` unit.
///
/// Condition (i): inside the open interval all motions evaluate to
/// distinct points; condition (ii): for instant units they are distinct
/// at that instant. Both are decided *exactly* from the closed-form meet
/// times of pairs of linear motions.
#[derive(Clone, PartialEq)]
pub struct UPoints {
    interval: TimeInterval,
    motions: Vec<PointMotion>,
}

impl UPoints {
    /// Validating constructor.
    pub fn try_new(interval: TimeInterval, mut motions: Vec<PointMotion>) -> Result<UPoints> {
        if motions.is_empty() {
            return Err(InvariantViolation::new("upoints: |M| >= 1"));
        }
        motions.sort_by_key(motion_key);
        for (i, a) in motions.iter().enumerate() {
            for b in motions.iter().skip(i + 1) {
                match a.meet_time(b) {
                    Coincidence::Never => {}
                    Coincidence::Always => {
                        return Err(InvariantViolation::new(
                            "upoints: motions must be pairwise distinct",
                        ))
                    }
                    Coincidence::At(t) => {
                        let collides = if interval.is_point() {
                            t == *interval.start()
                        } else {
                            interval.contains_open(&t)
                        };
                        if collides {
                            return Err(InvariantViolation::with_detail(
                                "upoints: motions must not coincide inside the open interval",
                                format!("collision at {t:?}"),
                            ));
                        }
                    }
                }
            }
        }
        Ok(UPoints { interval, motions })
    }

    /// The motions (sorted canonically).
    pub fn motions(&self) -> &[PointMotion] {
        &self.motions
    }

    /// Number of moving points.
    pub fn len(&self) -> usize {
        self.motions.len()
    }

    /// Always false (constructor requires ≥ 1 motion).
    pub fn is_empty(&self) -> bool {
        self.motions.is_empty()
    }

    /// 3D bounding cube over the unit interval.
    pub fn bounding_cube(&self) -> Cube {
        let s = *self.interval.start();
        let e = *self.interval.end();
        let rect = Rect::of_points(self.motions.iter().flat_map(|m| [m.at(s), m.at(e)]));
        Cube::new(rect, &self.interval)
    }
}

impl Unit for UPoints {
    type Value = Points;

    fn interval(&self) -> &TimeInterval {
        &self.interval
    }

    fn with_interval(&self, iv: TimeInterval) -> Self {
        UPoints {
            interval: iv,
            motions: self.motions.clone(),
        }
    }

    /// Evaluation; at interval end points coinciding points collapse —
    /// `Points` deduplicates, which is exactly the required cleanup.
    fn at(&self, t: Instant) -> Points {
        Points::from_points(self.motions.iter().map(|m| m.at(t)).collect())
    }

    fn value_eq(&self, other: &Self) -> bool {
        self.motions == other.motions
    }
}

impl fmt::Debug for UPoints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}↦{} moving points",
            self.interval,
            self.motions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{t, Interval};
    use mob_spatial::pt;

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    #[test]
    fn valid_parallel_motions() {
        let u = UPoints::try_new(
            iv(0.0, 2.0),
            vec![
                PointMotion::through(t(0.0), pt(0.0, 0.0), t(1.0), pt(1.0, 0.0)),
                PointMotion::through(t(0.0), pt(0.0, 1.0), t(1.0), pt(1.0, 1.0)),
            ],
        )
        .unwrap();
        assert_eq!(u.len(), 2);
        let v = u.at(t(1.0));
        assert_eq!(v.as_slice(), &[pt(1.0, 0.0), pt(1.0, 1.0)]);
    }

    #[test]
    fn collision_inside_open_interval_rejected() {
        // Two points meeting at t=1 inside (0,2).
        let a = PointMotion::through(t(0.0), pt(0.0, 0.0), t(1.0), pt(1.0, 0.0));
        let b = PointMotion::through(t(0.0), pt(2.0, 0.0), t(1.0), pt(1.0, 0.0));
        assert!(UPoints::try_new(iv(0.0, 2.0), vec![a, b]).is_err());
        // Meeting exactly at the interval end is allowed (degeneracy at
        // end points is the sliced representation's job).
        assert!(UPoints::try_new(iv(0.0, 1.0), vec![a, b]).is_ok());
    }

    #[test]
    fn endpoint_collapse_deduplicates() {
        let a = PointMotion::through(t(0.0), pt(0.0, 0.0), t(1.0), pt(1.0, 0.0));
        let b = PointMotion::through(t(0.0), pt(2.0, 0.0), t(1.0), pt(1.0, 0.0));
        let u = UPoints::try_new(iv(0.0, 1.0), vec![a, b]).unwrap();
        assert_eq!(u.at(t(0.5)).len(), 2);
        assert_eq!(u.at(t(1.0)).len(), 1); // collapsed at the end point
    }

    #[test]
    fn instant_unit_distinctness() {
        let a = PointMotion::stationary(pt(0.0, 0.0));
        let b = PointMotion::stationary(pt(1.0, 0.0));
        assert!(UPoints::try_new(TimeInterval::point(t(0.0)), vec![a, b]).is_ok());
        // Same position at the instant: rejected (condition ii).
        let c = PointMotion::through(t(0.0), pt(0.0, 0.0), t(1.0), pt(5.0, 5.0));
        assert!(UPoints::try_new(TimeInterval::point(t(0.0)), vec![a, c]).is_err());
    }

    #[test]
    fn identical_motions_rejected_and_empty_rejected() {
        let a = PointMotion::stationary(pt(0.0, 0.0));
        assert!(UPoints::try_new(iv(0.0, 1.0), vec![a, a]).is_err());
        assert!(UPoints::try_new(iv(0.0, 1.0), vec![]).is_err());
    }

    #[test]
    fn canonical_motion_order() {
        let a = PointMotion::stationary(pt(5.0, 0.0));
        let b = PointMotion::stationary(pt(0.0, 0.0));
        let u1 = UPoints::try_new(iv(0.0, 1.0), vec![a, b]).unwrap();
        let u2 = UPoints::try_new(iv(0.0, 1.0), vec![b, a]).unwrap();
        assert!(u1.value_eq(&u2));
    }

    #[test]
    fn bounding_cube_covers_travel() {
        let a = PointMotion::through(t(0.0), pt(0.0, 0.0), t(2.0), pt(4.0, 4.0));
        let u = UPoints::try_new(iv(0.0, 2.0), vec![a]).unwrap();
        let c = u.bounding_cube();
        assert!(c.rect.contains_point(pt(4.0, 4.0)));
        assert!(c.rect.contains_point(pt(0.0, 0.0)));
    }
}
