//! The `mapping` type constructor — the *sliced representation*
//! (Sec 3.2.4, Fig 1):
//!
//! `Mapping(S) = {U ⊆ Unit(S) | (i) equal intervals ⇒ equal values,
//! (ii) distinct intervals are disjoint, and adjacent ⇒ distinct values}`
//!
//! Conditions (i)+(ii) make the representation unique and minimal.
//! Units are stored ordered by their time intervals, so `atinstant` can
//! binary-search in `O(log n)` (Sec 5.1).

use crate::seq::UnitSeq;
use crate::unit::Unit;
use mob_base::error::{InvariantViolation, Result};
use mob_base::{Instant, Interval, Intime, Periods, TimeInterval, Val};
use std::cmp::Ordering;
use std::fmt;

/// A moving value in sliced representation: an ordered set of units with
/// pairwise disjoint intervals, adjacent units carrying distinct values.
///
/// ```
/// use mob_core::{ConstUnit, Mapping};
/// use mob_base::{t, Interval, Val};
///
/// // A discretely changing value: 1 on [0,2), 5 on [2,4].
/// let m = Mapping::try_new(vec![
///     ConstUnit::new(Interval::closed_open(t(0.0), t(2.0)), 1i64),
///     ConstUnit::new(Interval::closed(t(2.0), t(4.0)), 5i64),
/// ]).unwrap();
/// assert_eq!(m.at_instant(t(1.0)), Val::Def(1));
/// assert_eq!(m.at_instant(t(3.0)), Val::Def(5));
/// assert_eq!(m.at_instant(t(9.0)), Val::Undef);
/// assert_eq!(m.deftime().num_intervals(), 1); // [0,2) ∪ [2,4] merges
/// ```
#[derive(Clone, PartialEq)]
pub struct Mapping<U> {
    units: Vec<U>,
}

impl<U: Unit> Mapping<U> {
    /// The everywhere-undefined moving value.
    pub fn empty() -> Mapping<U> {
        Mapping { units: Vec::new() }
    }

    /// A moving value with a single unit.
    pub fn single(unit: U) -> Mapping<U> {
        Mapping { units: vec![unit] }
    }

    /// Validating constructor: units must be sorted by interval, pairwise
    /// disjoint, and adjacent units must carry distinct unit functions.
    pub fn try_new(units: Vec<U>) -> Result<Mapping<U>> {
        for w in units.windows(2) {
            let [u1, u2] = w else { continue };
            let (i1, i2) = (u1.interval(), u2.interval());
            if i1.cmp_start(i2) != Ordering::Less {
                return Err(InvariantViolation::new(
                    "mapping: units must be sorted by time interval",
                ));
            }
            if !i1.disjoint(i2) {
                return Err(InvariantViolation::new(
                    "mapping: unit intervals must be pairwise disjoint",
                ));
            }
            if i1.adjacent(i2) && u1.value_eq(u2) {
                return Err(InvariantViolation::new(
                    "mapping: adjacent units must carry distinct values",
                ));
            }
        }
        Ok(Mapping { units })
    }

    /// Normalizing constructor: sorts units and merges adjacent units
    /// with equal functions. Units must still be pairwise disjoint.
    pub fn from_units(units: Vec<U>) -> Result<Mapping<U>> {
        Mapping::try_new(Self::sort_and_merge(units))
    }

    /// Infallible counterpart of [`Mapping::from_units`] for unit vectors
    /// *derived from already-valid mappings* (restrictions, lifted maps):
    /// sorts, merges, and debug-validates instead of returning `Err` —
    /// the derivation guarantees disjointness, so the only work left is
    /// re-establishing canonicity.
    pub(crate) fn from_units_trusted(units: Vec<U>) -> Mapping<U> {
        Mapping::from_raw(Self::sort_and_merge(units))
    }

    /// Sort by interval start and merge adjacent equal-function units
    /// (the `concat` step of Sec 5.2).
    fn sort_and_merge(mut units: Vec<U>) -> Vec<U> {
        units.sort_by(|a, b| a.interval().cmp_start(b.interval()));
        let mut out: Vec<U> = Vec::with_capacity(units.len());
        for u in units {
            if let Some(last) = out.last_mut() {
                if let Some(m) = last.try_merge(&u) {
                    *last = m;
                    continue;
                }
            }
            out.push(u);
        }
        out
    }

    /// Construct from units already known to satisfy the invariants
    /// (restriction of a valid mapping, materialization of a valid
    /// [`UnitSeq`], …). Validated in debug builds only.
    pub(crate) fn from_raw(units: Vec<U>) -> Mapping<U> {
        debug_assert!(
            Mapping::try_new(units.clone()).is_ok(),
            "from_raw units violate the mapping invariants"
        );
        Mapping { units }
    }

    /// The units in time order.
    pub fn units(&self) -> &[U] {
        &self.units
    }

    /// Number of units (slices).
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// `true` if defined nowhere.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Index of the unit whose interval contains `t`, by binary search
    /// (`O(log n)` — the first step of Algorithm `atinstant`, Sec 5.1).
    ///
    /// Delegates to [`UnitSeq::find_unit`] — the single binary-search
    /// implementation shared by every access path (in-memory mappings and
    /// the storage-backed `MappingView`).
    pub fn unit_index_at(&self, t: Instant) -> Option<usize> {
        UnitSeq::find_unit(self, t)
    }

    /// The unit valid at `t`, if any.
    pub fn unit_at(&self, t: Instant) -> Option<&U> {
        self.unit_index_at(t).map(|i| &self.units[i])
    }

    /// The `atinstant` operation: the value at `t`, or ⊥ if undefined.
    pub fn at_instant(&self, t: Instant) -> Val<U::Value> {
        self.unit_at(t).map(|u| u.at(t)).into()
    }

    /// The `present` predicate for an instant.
    pub fn present_at(&self, t: Instant) -> bool {
        self.unit_at(t).is_some()
    }

    /// The `deftime` operation: the time domain as a `range(instant)`.
    /// (Generic implementation: [`UnitSeq::deftime`].)
    pub fn deftime(&self) -> Periods {
        UnitSeq::deftime(self)
    }

    /// The `initial` operation: the value at the earliest defined instant
    /// (the limit value if the first interval is left-open), with that
    /// instant, as an `intime` pair. ⊥ when empty.
    pub fn initial(&self) -> Val<Intime<U::Value>> {
        self.units
            .first()
            .map(|u| {
                let t0 = *u.interval().start();
                Intime::new(t0, u.at(t0))
            })
            .into()
    }

    /// The `final` operation (named `final_value` — `final` is reserved).
    pub fn final_value(&self) -> Val<Intime<U::Value>> {
        self.units
            .last()
            .map(|u| {
                let t1 = *u.interval().end();
                Intime::new(t1, u.at(t1))
            })
            .into()
    }

    /// Restrict to a single time interval.
    pub fn at_interval(&self, iv: &TimeInterval) -> Mapping<U> {
        let units = self.units.iter().filter_map(|u| u.restrict(iv)).collect();
        Mapping { units }
    }

    /// The `atperiods` operation: restrict to a set of time intervals.
    /// (Generic two-pointer implementation: [`UnitSeq::at_periods`].)
    pub fn atperiods(&self, periods: &Periods) -> Mapping<U> {
        UnitSeq::at_periods(self, periods)
    }

    /// Apply a per-unit transformation producing a unit of another type
    /// on the same interval (the shape of unary lifted operations).
    pub fn map_units<V: Unit>(&self, f: impl Fn(&U) -> V) -> Mapping<V> {
        Mapping {
            units: self.units.iter().map(f).collect(),
        }
    }

    /// Apply a per-unit transformation that may produce several result
    /// units per input unit (in time order); merges across boundaries.
    pub fn flat_map_units<V: Unit>(&self, f: impl Fn(&U) -> Vec<V>) -> Mapping<V> {
        let mut builder = MappingBuilder::new();
        for u in &self.units {
            for v in f(u) {
                builder.push(v);
            }
        }
        builder.finish()
    }

    /// Split a unit whose value degenerates at a closed interval end into
    /// an open-ended unit plus an instant unit (the storage trick
    /// suggested at the end of Sec 5.1). `pred` decides which closed unit
    /// ends to split off.
    pub fn split_degenerate_ends(&self, pred: impl Fn(&U, Instant) -> bool) -> Mapping<U> {
        let mut out = Vec::new();
        for u in &self.units {
            let iv = *u.interval();
            let mut start_split = false;
            let mut end_split = false;
            if !iv.is_point() {
                if iv.left_closed() && pred(u, *iv.start()) {
                    start_split = true;
                }
                if iv.right_closed() && pred(u, *iv.end()) {
                    end_split = true;
                }
            }
            if start_split {
                out.push(u.with_interval(TimeInterval::point(*iv.start())));
            }
            if start_split || end_split {
                let inner = Interval::new(
                    *iv.start(),
                    *iv.end(),
                    iv.left_closed() && !start_split,
                    iv.right_closed() && !end_split,
                );
                out.push(u.with_interval(inner));
            } else {
                out.push(u.clone());
            }
            if end_split {
                out.push(u.with_interval(TimeInterval::point(*iv.end())));
            }
        }
        Mapping { units: out }
    }
}

/// Incremental constructor that appends units in time order and performs
/// the `concat` merge of Sec 5.2 in O(1) per unit ("comparing the last
/// unit of mb with the first unit of ub").
pub struct MappingBuilder<U> {
    units: Vec<U>,
}

impl<U: Unit> MappingBuilder<U> {
    /// New empty builder.
    pub fn new() -> MappingBuilder<U> {
        MappingBuilder { units: Vec::new() }
    }

    /// Append a unit whose interval starts at/after the last one.
    ///
    /// Panics (debug) if ordering or disjointness is violated — builder
    /// users produce units in refinement order, which guarantees both.
    pub fn push(&mut self, unit: U) {
        if let Some(last) = self.units.last_mut() {
            debug_assert!(
                last.interval().disjoint(unit.interval()),
                "builder units must be disjoint"
            );
            debug_assert!(
                last.interval().cmp_start(unit.interval()) == Ordering::Less,
                "builder units must arrive in time order"
            );
            if let Some(merged) = last.try_merge(&unit) {
                *last = merged;
                return;
            }
        }
        self.units.push(unit);
    }

    /// Number of units so far.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// `true` if nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Finish into a mapping.
    pub fn finish(self) -> Mapping<U> {
        debug_assert!(Mapping::try_new(self.units.clone()).is_ok());
        Mapping { units: self.units }
    }
}

impl<U: Unit> Default for MappingBuilder<U> {
    fn default() -> Self {
        MappingBuilder::new()
    }
}

impl<U: Unit> Default for Mapping<U> {
    fn default() -> Self {
        Mapping::empty()
    }
}

impl<U: fmt::Debug> fmt::Debug for Mapping<U> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.units.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uconst::ConstUnit;
    use mob_base::t;

    fn cu(s: f64, e: f64, lc: bool, rc: bool, v: i64) -> ConstUnit<i64> {
        ConstUnit::new(Interval::new(t(s), t(e), lc, rc), v)
    }

    fn simple() -> Mapping<ConstUnit<i64>> {
        Mapping::try_new(vec![
            cu(0.0, 1.0, true, true, 1),
            cu(1.0, 2.0, false, false, 2),
            cu(5.0, 6.0, true, true, 3),
        ])
        .unwrap()
    }

    #[test]
    fn invariants_enforced() {
        // Overlapping.
        assert!(Mapping::try_new(vec![
            cu(0.0, 2.0, true, true, 1),
            cu(1.0, 3.0, true, true, 2)
        ])
        .is_err());
        // Unsorted.
        assert!(Mapping::try_new(vec![
            cu(5.0, 6.0, true, true, 1),
            cu(0.0, 1.0, true, true, 2)
        ])
        .is_err());
        // Adjacent with equal value: must be a single unit.
        assert!(Mapping::try_new(vec![
            cu(0.0, 1.0, true, true, 1),
            cu(1.0, 2.0, false, true, 1)
        ])
        .is_err());
        // Adjacent with distinct values: fine.
        assert!(Mapping::try_new(vec![
            cu(0.0, 1.0, true, true, 1),
            cu(1.0, 2.0, false, true, 2)
        ])
        .is_ok());
    }

    #[test]
    fn from_units_normalizes() {
        let m = Mapping::from_units(vec![
            cu(1.0, 2.0, false, true, 1),
            cu(0.0, 1.0, true, true, 1),
        ])
        .unwrap();
        assert_eq!(m.num_units(), 1);
        assert_eq!(*m.units()[0].interval(), Interval::closed(t(0.0), t(2.0)));
    }

    #[test]
    fn at_instant_binary_search() {
        let m = simple();
        assert_eq!(m.at_instant(t(0.5)), Val::Def(1));
        assert_eq!(m.at_instant(t(1.0)), Val::Def(1)); // [0,1] is closed
        assert_eq!(m.at_instant(t(1.5)), Val::Def(2));
        assert_eq!(m.at_instant(t(2.0)), Val::Undef); // (1,2) open
        assert_eq!(m.at_instant(t(3.0)), Val::Undef); // gap
        assert_eq!(m.at_instant(t(5.5)), Val::Def(3));
        assert_eq!(m.at_instant(t(-1.0)), Val::Undef);
        assert_eq!(m.at_instant(t(9.0)), Val::Undef);
    }

    #[test]
    fn deftime_and_present() {
        let m = simple();
        let dt = m.deftime();
        // [0,1] and (1,2) merge into [0,2); [5,6] stays.
        assert_eq!(dt.num_intervals(), 2);
        assert!(m.present_at(t(0.0)));
        assert!(!m.present_at(t(2.0)));
        assert!(m.present_at(t(5.0)));
    }

    #[test]
    fn initial_and_final() {
        let m = simple();
        let i = m.initial().unwrap();
        assert_eq!(i.instant, t(0.0));
        assert_eq!(i.value, 1);
        let f = m.final_value().unwrap();
        assert_eq!(f.instant, t(6.0));
        assert_eq!(f.value, 3);
        assert!(Mapping::<ConstUnit<i64>>::empty().initial().is_undef());
    }

    #[test]
    fn atperiods_restricts() {
        let m = simple();
        let p = Periods::from_unmerged(vec![
            Interval::closed(t(0.5), t(1.5)),
            Interval::closed(t(5.5), t(9.0)),
        ]);
        let r = m.atperiods(&p);
        assert_eq!(r.num_units(), 3);
        assert_eq!(r.at_instant(t(0.75)), Val::Def(1));
        assert_eq!(r.at_instant(t(1.25)), Val::Def(2));
        assert_eq!(r.at_instant(t(0.25)), Val::Undef);
        assert_eq!(r.at_instant(t(5.75)), Val::Def(3));
        assert_eq!(r.at_instant(t(5.25)), Val::Undef);
    }

    #[test]
    fn builder_concat_merges() {
        let mut b = MappingBuilder::new();
        b.push(cu(0.0, 1.0, true, true, 7));
        b.push(cu(1.0, 2.0, false, true, 7)); // adjacent same value: merge
        b.push(cu(2.0, 3.0, false, true, 8)); // adjacent distinct: keep
        let m = b.finish();
        assert_eq!(m.num_units(), 2);
        assert_eq!(*m.units()[0].interval(), Interval::closed(t(0.0), t(2.0)));
    }

    #[test]
    fn split_degenerate_ends() {
        let m = Mapping::single(cu(0.0, 2.0, true, true, 1));
        // Split the end instant off.
        let s = m.split_degenerate_ends(|_, at| at == t(2.0));
        assert_eq!(s.num_units(), 2);
        assert_eq!(
            *s.units()[0].interval(),
            Interval::new(t(0.0), t(2.0), true, false)
        );
        assert!(s.units()[1].interval().is_point());
        // Values still observable everywhere.
        assert_eq!(s.at_instant(t(2.0)), Val::Def(1));
        assert_eq!(s.at_instant(t(1.0)), Val::Def(1));
    }

    #[test]
    fn flat_map_units_splits_and_merges() {
        let m = Mapping::single(cu(0.0, 4.0, true, true, 9));
        // Split each unit at its midpoint into two halves carrying the
        // same value: the builder's concat merges them right back.
        let same = m.flat_map_units(|u| {
            let iv = u.interval();
            let mid = iv.start().midpoint(*iv.end());
            vec![
                ConstUnit::new(Interval::new(*iv.start(), mid, true, false), *u.value()),
                ConstUnit::new(Interval::new(mid, *iv.end(), true, true), *u.value()),
            ]
        });
        assert_eq!(same.num_units(), 1);
        // Distinct values stay split.
        let split = m.flat_map_units(|u| {
            let iv = u.interval();
            let mid = iv.start().midpoint(*iv.end());
            vec![
                ConstUnit::new(Interval::new(*iv.start(), mid, true, false), 1i64),
                ConstUnit::new(Interval::new(mid, *iv.end(), true, true), 2i64),
            ]
        });
        assert_eq!(split.num_units(), 2);
        assert_eq!(split.at_instant(t(1.0)), Val::Def(1));
        assert_eq!(split.at_instant(t(3.0)), Val::Def(2));
    }

    #[test]
    fn at_interval() {
        let m = simple();
        let c = m.at_interval(&Interval::closed(t(0.5), t(5.5)));
        assert_eq!(c.num_units(), 3);
        assert_eq!(c.deftime().minimum().unwrap(), t(0.5));
    }
}
