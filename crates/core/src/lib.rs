//! # `mob-core` — the sliced representation of moving objects
//!
//! The primary contribution of Forlizzi, Güting, Nardelli & Schneider
//! (SIGMOD 2000): discrete representations for the temporal types of the
//! abstract model, as **units** assembled by the **mapping** constructor
//! (Sec 3.2.4–3.2.6), plus the algorithms of Sec 5.
//!
//! * [`unit::Unit`] — the generic temporal-unit concept;
//! * [`uconst::ConstUnit`], [`ureal::UReal`], [`upoint::UPoint`],
//!   [`upoints::UPoints`], [`uline::ULine`], [`uregion::URegion`] — the
//!   unit types, with their carrier-set invariants and `ι`/`ι_s`/`ι_e`
//!   evaluation;
//! * [`mapping::Mapping`] — the sliced representation with binary-search
//!   `atinstant` (Algorithm 5.1), `deftime`, `atperiods`, `initial`,
//!   `final`;
//! * [`seq::UnitSeq`] — the query-over-storage access layer: the
//!   Section-5 algorithms (`atinstant`, `deftime`, `atperiods`, the lift
//!   skeletons) written once, generic over in-memory mappings *and*
//!   storage-backed views;
//! * [`refinement`](mod@crate::refinement) — the refinement partition (Fig 8);
//! * [`lift`] — the generic skeleton of binary lifted operations
//!   (Algorithm 5.2's outer loop), generic over [`seq::UnitSeq`];
//! * [`batch`] — set-at-a-time query kernels: a monotone
//!   [`batch::UnitCursor`] with galloping seek, `batch_at_instant` over
//!   sorted probe sets, and one-probe-many-mappings `batch_lift2` /
//!   `batch_inside`;
//! * [`moving`] — the eight moving types of Table 3 with their
//!   operations (`trajectory`, `distance`, `atmin`, `inside`, `area`, …);
//! * [`ops`] — Tables 1–3 as inspectable catalogues;
//! * [`semantics`] — σ-based cross-checking helpers;
//! * [`validate`](mod@crate::validate) — deep re-checking of the
//!   carrier-set invariants over units, mappings, and any [`seq::UnitSeq`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod index;
pub mod ingest;
pub mod lift;
pub mod mapping;
pub mod moving;
pub mod mseg;
pub mod ops;
pub mod refinement;
pub mod semantics;
pub mod seq;
pub mod uconst;
pub mod uline;
pub mod unit;
pub mod upoint;
pub mod upoints;
pub mod ureal;
pub mod uregion;
pub mod validate;

pub use batch::{batch_at_instant, batch_inside, batch_lift2, UnitCursor};
pub use index::{unit_cubes, Candidates, IndexEntry, IndexNode, RTree, DEFAULT_FANOUT};
pub use ingest::TailBuilder;
pub use lift::{lift1, lift2};
pub use mapping::{Mapping, MappingBuilder};
pub use moving::mpoint::{distance_seq, distance_travelled_seq, inside_region_seq, trajectory_seq};
pub use moving::mregion::inside;
pub use moving::{
    MovingBool, MovingInt, MovingLine, MovingPoint, MovingPoints, MovingReal, MovingRegion,
    MovingString,
};
pub use mseg::MSeg;
pub use refinement::{
    refinement, refinement_both, refinement_both_seq, walk_refinement, RefinedSlice,
};
pub use seq::UnitSeq;
pub use uconst::ConstUnit;
pub use uline::ULine;
pub use unit::Unit;
pub use upoint::{Coincidence, PointMotion, UPoint};
pub use upoints::UPoints;
pub use ureal::{UReal, ValueTimes};
pub use uregion::{MCycle, MFace, URegion};
pub use validate::check_unit_seq;
