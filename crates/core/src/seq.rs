//! The **query-over-storage access layer**: [`UnitSeq`], an abstraction
//! of "an ordered sequence of temporal units" that both the in-memory
//! [`Mapping`] and the storage-backed `MappingView` (in `mob-storage`)
//! implement.
//!
//! Section 5's algorithms only ever need four primitives from a sliced
//! value: how many units there are, the time interval of the `i`-th unit,
//! the `i`-th unit itself, and binary search for the unit covering an
//! instant. Everything else — `atinstant`, `present`, `deftime`,
//! `atperiods`, `initial`/`final`, and the lifted-operation skeletons in
//! [`crate::lift`] — is derivable, and is implemented here **once** as
//! default methods, generic over the access path:
//!
//! ```text
//!                 ┌───────────────────────────────┐
//!                 │   UnitSeq (this module)       │
//!                 │  len / interval(i) / unit(i)  │
//!                 │  ── derived: find_unit,       │
//!                 │     at_instant, deftime,      │
//!                 │     at_periods, initial, …    │
//!                 └──────┬───────────────┬────────┘
//!                        │               │
//!            ┌───────────┴────┐   ┌──────┴──────────────────┐
//!            │ Mapping<U>     │   │ MappingView (mob-storage)│
//!            │ Vec<U> in RAM  │   │ lazy decode of unit     │
//!            │                │   │ records from pages      │
//!            └────────────────┘   └─────────────────────────┘
//! ```
//!
//! The payoff: `atinstant` over a *serialized* mapping touches
//! `O(log n)` unit records (one interval header per probe of the binary
//! search plus one full unit decode) instead of deserializing all `n`
//! units first.
//!
//! Units are returned as [`Cow`]: borrowed (free) from an in-memory
//! mapping, owned (decoded on demand) from a storage view.

use crate::mapping::Mapping;
use crate::unit::Unit;
use mob_base::{Instant, Intime, Periods, TimeInterval, Val};
use std::borrow::Cow;

/// An ordered sequence of temporal units — the access-path abstraction
/// beneath the Section-5 algorithms.
///
/// Implementors provide the three *required* primitives; the temporal
/// operations come for free as default methods. The contract mirrors the
/// `mapping` invariants (Sec 3.2.4): intervals are sorted, pairwise
/// disjoint, and adjacent units carry distinct values.
pub trait UnitSeq {
    /// The unit type of the sequence.
    type Unit: Unit;

    /// Number of units.
    fn len(&self) -> usize;

    /// The time interval of unit `i` (`i < len()`).
    ///
    /// This must be *cheap* relative to [`UnitSeq::unit`]: storage-backed
    /// implementations read only the fixed-size interval header of the
    /// unit record, which is what makes the derived binary search touch
    /// `O(log n)` record headers rather than decode `O(log n)` full units.
    fn interval(&self, i: usize) -> TimeInterval;

    /// Unit `i` (`i < len()`): borrowed from memory or decoded from
    /// storage on demand.
    fn unit(&self, i: usize) -> Cow<'_, Self::Unit>;

    /// `true` if defined nowhere.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the unit whose interval contains `t`, by binary search
    /// over the interval headers (`O(log n)` — the first step of
    /// Algorithm `atinstant`, Sec 5.1).
    ///
    /// This is **the** unit-lookup of the workspace: `Mapping` and
    /// `MappingView` both resolve instants through it.
    fn find_unit(&self, t: Instant) -> Option<usize> {
        // partition_point over i ∈ [0, len): "unit i starts at or before
        // t" is monotone because intervals are sorted and disjoint.
        let (mut lo, mut hi) = (0usize, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let iv = self.interval(mid);
            let starts_not_after = *iv.start() < t || (*iv.start() == t && iv.left_closed());
            if starts_not_after {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            return None;
        }
        let cand = lo - 1;
        if self.interval(cand).contains(&t) {
            Some(cand)
        } else {
            None
        }
    }

    /// The `atinstant` operation: the value at `t`, or ⊥ if undefined.
    /// Decodes at most **one** unit.
    fn at_instant(&self, t: Instant) -> Val<<Self::Unit as Unit>::Value> {
        self.find_unit(t).map(|i| self.unit(i).at(t)).into()
    }

    /// The `present` predicate for an instant: decodes **no** units, only
    /// interval headers.
    fn present_at(&self, t: Instant) -> bool {
        self.find_unit(t).is_some()
    }

    /// The `deftime` operation: the time domain as a `range(instant)`.
    /// Reads every interval header but decodes no units.
    fn deftime(&self) -> Periods {
        Periods::from_unmerged((0..self.len()).map(|i| self.interval(i)).collect())
    }

    /// The `atperiods` operation: restrict to a set of time intervals.
    ///
    /// Walks both sorted interval sequences with two pointers and decodes
    /// a unit only when its interval actually intersects a period —
    /// `O(n + p)` header reads, `O(output)` unit decodes.
    fn at_periods(&self, periods: &Periods) -> Mapping<Self::Unit> {
        let ivs: Vec<&TimeInterval> = periods.iter().collect();
        let mut out = Vec::new();
        let mut pi = 0usize;
        for i in 0..self.len() {
            let uiv = self.interval(i);
            while pi < ivs.len() && ivs[pi].r_disjoint(&uiv) {
                pi += 1;
            }
            let mut k = pi;
            let mut decoded: Option<Cow<'_, Self::Unit>> = None;
            while k < ivs.len() && !uiv.r_disjoint(ivs[k]) {
                let u = decoded.get_or_insert_with(|| self.unit(i));
                if let Some(clip) = u.restrict(ivs[k]) {
                    out.push(clip);
                }
                k += 1;
            }
        }
        Mapping::from_raw(out)
    }

    /// The `initial` operation: value and instant at the earliest defined
    /// time; ⊥ when empty.
    fn initial(&self) -> Val<Intime<<Self::Unit as Unit>::Value>> {
        if self.is_empty() {
            return Val::Undef;
        }
        let u = self.unit(0);
        let t0 = *u.interval().start();
        Val::Def(Intime::new(t0, u.at(t0)))
    }

    /// The `final` operation (named `final_value` — `final` is reserved).
    fn final_value(&self) -> Val<Intime<<Self::Unit as Unit>::Value>> {
        if self.is_empty() {
            return Val::Undef;
        }
        let u = self.unit(self.len() - 1);
        let t1 = *u.interval().end();
        Val::Def(Intime::new(t1, u.at(t1)))
    }

    /// Materialize the whole sequence as an in-memory [`Mapping`] —
    /// decodes all `n` units (the "load everything first" baseline the
    /// lazy access path avoids).
    fn materialize(&self) -> Mapping<Self::Unit> {
        Mapping::from_raw((0..self.len()).map(|i| self.unit(i).into_owned()).collect())
    }
}

/// The in-memory sliced representation is the canonical [`UnitSeq`]:
/// units are borrowed straight out of the `Vec`.
impl<U: Unit> UnitSeq for Mapping<U> {
    type Unit = U;

    fn len(&self) -> usize {
        self.num_units()
    }

    fn interval(&self, i: usize) -> TimeInterval {
        *self.units()[i].interval()
    }

    fn unit(&self, i: usize) -> Cow<'_, U> {
        Cow::Borrowed(&self.units()[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uconst::ConstUnit;
    use mob_base::{t, Interval};

    fn cu(s: f64, e: f64, lc: bool, rc: bool, v: i64) -> ConstUnit<i64> {
        ConstUnit::new(Interval::new(t(s), t(e), lc, rc), v)
    }

    fn simple() -> Mapping<ConstUnit<i64>> {
        Mapping::try_new(vec![
            cu(0.0, 1.0, true, true, 1),
            cu(1.0, 2.0, false, false, 2),
            cu(5.0, 6.0, true, true, 3),
        ])
        .unwrap()
    }

    #[test]
    fn trait_and_inherent_agree() {
        let m = simple();
        for k in [-1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 5.5, 6.0, 9.0] {
            let ti = t(k);
            assert_eq!(UnitSeq::at_instant(&m, ti), m.at_instant(ti), "t={k}");
            assert_eq!(UnitSeq::present_at(&m, ti), m.present_at(ti), "t={k}");
            assert_eq!(UnitSeq::find_unit(&m, ti), m.unit_index_at(ti), "t={k}");
        }
        assert_eq!(UnitSeq::deftime(&m), m.deftime());
        assert_eq!(UnitSeq::initial(&m), m.initial());
        assert_eq!(UnitSeq::final_value(&m), m.final_value());
    }

    #[test]
    fn at_periods_matches_atperiods() {
        let m = simple();
        let p = Periods::from_unmerged(vec![
            Interval::closed(t(0.5), t(1.5)),
            Interval::closed(t(5.5), t(9.0)),
        ]);
        assert_eq!(UnitSeq::at_periods(&m, &p), m.atperiods(&p));
    }

    #[test]
    fn materialize_is_identity_for_mappings() {
        let m = simple();
        assert_eq!(m.materialize(), m);
        assert!(Mapping::<ConstUnit<i64>>::empty().materialize().is_empty());
    }
}
