//! Semantic cross-checking helpers (the `σ` functions of Sec 3).
//!
//! The semantics of a discrete value is an abstract-model value — a
//! function of time. These helpers compare a sliced representation
//! against a reference function by dense sampling; the property tests and
//! the Table 3 experiments use them to certify that the discrete types
//! faithfully represent their abstract counterparts.

use crate::mapping::Mapping;
use crate::unit::Unit;
use mob_base::{Instant, Real, Val};

/// Densely sample the definition time of a mapping: `per_unit` interior
/// instants per unit plus all included end points.
pub fn sample_deftime<U: Unit>(m: &Mapping<U>, per_unit: usize) -> Vec<Instant> {
    let mut out = Vec::new();
    for u in m.units() {
        out.extend(u.interval().sample_instants(per_unit));
    }
    out
}

/// Maximum absolute deviation between the mapping (as a moving real) and
/// a reference real-valued function of time, over dense samples.
pub fn max_abs_error<U>(
    m: &Mapping<U>,
    reference: impl Fn(Instant) -> Real,
    per_unit: usize,
) -> Real
where
    U: Unit<Value = Real>,
{
    let mut worst = Real::ZERO;
    for t in sample_deftime(m, per_unit) {
        if let Val::Def(v) = m.at_instant(t) {
            worst = worst.max((v - reference(t)).abs());
        }
    }
    worst
}

/// Check that two mappings agree (by `Value` equality) on dense samples
/// of their common definition time. Returns the first disagreeing
/// instant, or `None` if they agree everywhere sampled.
pub fn first_disagreement<U, V>(a: &Mapping<U>, b: &Mapping<V>, per_unit: usize) -> Option<Instant>
where
    U: Unit,
    V: Unit<Value = U::Value>,
    U::Value: PartialEq,
{
    for t in sample_deftime(a, per_unit) {
        match (a.at_instant(t), b.at_instant(t)) {
            (Val::Def(x), Val::Def(y)) if x == y => {}
            (Val::Undef, Val::Undef) => {}
            _ => return Some(t),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ureal::UReal;
    use mob_base::{r, t, Interval};

    #[test]
    fn max_abs_error_detects_exact_representation() {
        let m = Mapping::single(UReal::linear(
            Interval::closed(t(0.0), t(2.0)),
            r(2.0),
            r(1.0),
        ));
        let err = max_abs_error(&m, |ti| r(2.0) * ti.value() + r(1.0), 7);
        assert_eq!(err, r(0.0));
        let err2 = max_abs_error(&m, |ti| r(2.0) * ti.value(), 7);
        assert!(err2 >= r(1.0));
    }

    #[test]
    fn first_disagreement_finds_differences() {
        let a = Mapping::single(UReal::constant(Interval::closed(t(0.0), t(1.0)), r(1.0)));
        let b = Mapping::single(UReal::constant(Interval::closed(t(0.0), t(1.0)), r(1.0)));
        assert!(first_disagreement(&a, &b, 5).is_none());
        let c = Mapping::single(UReal::constant(Interval::closed(t(0.0), t(1.0)), r(2.0)));
        assert!(first_disagreement(&a, &c, 5).is_some());
        // Different deftime: disagreement at an instant where one is ⊥.
        let d = Mapping::single(UReal::constant(Interval::closed(t(0.5), t(0.6)), r(1.0)));
        assert!(first_disagreement(&a, &d, 5).is_some());
    }
}
