//! Deep validation of the sliced representation (Sec 3.2 + Sec 5).
//!
//! Every unit type's carrier set (Sections 3.2.1–3.2.4) is a set
//! comprehension with side conditions; the `mapping` constructor
//! (Sec 3.2.4) adds the slice conditions — ordered, pairwise disjoint
//! unit intervals, and *canonicity* (adjacent units carry distinct unit
//! functions, so each moving value has exactly one representation).
//!
//! The [`Validate`] impls here re-check those conditions on already
//! constructed values by re-running the validating constructors on the
//! components. [`check_unit_seq`] checks the slice conditions over any
//! [`UnitSeq`] — in-memory mappings and storage-backed views alike —
//! one unit at a time, without materializing the sequence.

use crate::mapping::Mapping;
use crate::mseg::MSeg;
use crate::seq::UnitSeq;
use crate::uconst::ConstUnit;
use crate::uline::ULine;
use crate::unit::Unit;
use crate::upoint::UPoint;
use crate::upoints::UPoints;
use crate::ureal::UReal;
use crate::uregion::{MCycle, MFace, URegion};
use mob_base::error::{InvariantViolation, Result};
use mob_base::Validate;
use std::cmp::Ordering;

/// Check the `mapping` slice conditions (Sec 3.2.4) over any unit
/// sequence: intervals sorted and pairwise disjoint, adjacent units
/// carrying distinct unit functions (canonicity).
///
/// Works one unit pair at a time — `O(1)` memory over a storage-backed
/// view — and does **not** validate the individual units; pair it with
/// per-unit [`Validate`] calls (as [`Mapping`]'s impl does) for a fully
/// deep check.
pub fn check_unit_seq<S: UnitSeq>(seq: &S) -> Result<()> {
    for i in 1..seq.len() {
        let prev = seq.interval(i - 1);
        let cur = seq.interval(i);
        if prev.cmp_start(&cur) != Ordering::Less {
            return Err(InvariantViolation::with_detail(
                "mapping: units must be sorted by time interval",
                format!("units {} and {}", i - 1, i),
            ));
        }
        if !prev.disjoint(&cur) {
            return Err(InvariantViolation::with_detail(
                "mapping: unit intervals must be pairwise disjoint",
                format!("units {} and {}", i - 1, i),
            ));
        }
        if prev.adjacent(&cur) && seq.unit(i - 1).value_eq(&seq.unit(i)) {
            return Err(InvariantViolation::with_detail(
                "mapping: adjacent units must carry distinct values",
                format!("units {} and {}", i - 1, i),
            ));
        }
    }
    Ok(())
}

impl<T: Clone + PartialEq> Validate for ConstUnit<T> {
    /// Sec 3.2.2 (`const` units): the only structural condition is a
    /// well-formed time interval.
    fn validate(&self) -> Result<()> {
        self.interval().validate()
    }
}

impl Validate for UReal {
    /// Sec 3.2.3 (`ureal`): a rooted polynomial must be non-negative on
    /// the whole unit interval, otherwise `ι` would be undefined there.
    fn validate(&self) -> Result<()> {
        self.interval().validate()?;
        let (a, b, c, root) = self.coeffs();
        UReal::try_new(*self.interval(), a, b, c, root).map(|_| ())
    }
}

impl Validate for UPoint {
    /// Sec 3.2.3 (`upoint`): linear motion has no side condition beyond
    /// finite coefficients (enforced by `Real`) and a valid interval.
    fn validate(&self) -> Result<()> {
        self.interval().validate()
    }
}

impl Validate for UPoints {
    /// Sec 3.2.4 (`upoints`): a non-empty motion set whose members never
    /// coincide inside the open unit interval.
    fn validate(&self) -> Result<()> {
        self.interval().validate()?;
        UPoints::try_new(*self.interval(), self.motions().to_vec()).map(|_| ())
    }
}

impl Validate for MSeg {
    /// Sec 3.2.4: a moving segment's end points must be coplanar in 3D
    /// space-time and not permanently coincident.
    fn validate(&self) -> Result<()> {
        MSeg::try_new(*self.start_motion(), *self.end_motion()).map(|_| ())
    }
}

impl Validate for ULine {
    /// Sec 3.2.4 (`uline`): every evaluation inside the open interval
    /// must be a valid `line` value (checked exactly on the critical-time
    /// schedule).
    fn validate(&self) -> Result<()> {
        self.interval().validate()?;
        ULine::try_new(*self.interval(), self.msegs().to_vec()).map(|_| ())
    }
}

impl Validate for MCycle {
    /// Sec 3.2.4: at least three vertices, every edge a valid moving
    /// segment.
    fn validate(&self) -> Result<()> {
        MCycle::try_new(self.verts().to_vec()).map(|_| ())
    }
}

impl Validate for MFace {
    /// A face's outer cycle and every hole cycle must be valid moving
    /// cycles (region snapshot validity is [`URegion`]'s job — holes
    /// only make sense relative to the unit interval).
    fn validate(&self) -> Result<()> {
        self.outer.validate()?;
        self.holes.validate()
    }
}

impl Validate for URegion {
    /// Sec 3.2.4 (`uregion`): every evaluation inside the open interval
    /// must be a valid `region` (checked exactly on the critical-time
    /// schedule, see DESIGN.md).
    fn validate(&self) -> Result<()> {
        self.interval().validate()?;
        URegion::try_new(*self.interval(), self.faces().to_vec()).map(|_| ())
    }
}

impl<U: Unit + Validate> Validate for Mapping<U> {
    /// Sec 3.2.4 (`mapping`): every unit valid, intervals sorted and
    /// pairwise disjoint, adjacent units canonical.
    fn validate(&self) -> Result<()> {
        for (i, u) in self.units().iter().enumerate() {
            u.validate().map_err(|e| {
                InvariantViolation::with_detail("mapping: invalid unit", format!("unit {i}: {e}"))
            })?;
        }
        check_unit_seq(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moving::MovingBool;
    use mob_base::{t, Periods, Real, TimeInterval};
    use mob_spatial::pt;

    fn iv(a: f64, b: f64) -> TimeInterval {
        TimeInterval::closed(t(a), t(b))
    }

    #[test]
    fn valid_values_validate() {
        let u = UReal::try_new(
            iv(0.0, 2.0),
            Real::new(1.0),
            Real::new(-2.0),
            Real::new(1.0),
            true,
        )
        .unwrap();
        u.validate().unwrap();
        let p = UPoint::between(iv(0.0, 1.0), pt(0.0, 0.0), pt(1.0, 1.0));
        p.validate().unwrap();
        let periods = Periods::try_new(vec![iv(0.0, 1.0)]).unwrap();
        let mb = MovingBool::from_periods(&periods, true);
        mb.validate().unwrap();
        check_unit_seq(&mb).unwrap();
    }

    #[test]
    fn unordered_units_fail_check_unit_seq() {
        // Hand-build an out-of-order mapping through the raw escape
        // hatch used by tests: two units with swapped intervals.
        let u1 = ConstUnit::new(iv(2.0, 3.0), true);
        let u2 = ConstUnit::new(iv(0.0, 1.0), false);
        let m = Mapping::try_new(vec![u1, u2]);
        assert!(m.is_err(), "try_new must reject out-of-order units");
    }

    #[test]
    fn non_canonical_adjacency_is_rejected() {
        let u1 = ConstUnit::new(TimeInterval::new(t(0.0), t(1.0), true, false), true);
        let u2 = ConstUnit::new(iv(1.0, 2.0), true);
        assert!(Mapping::try_new(vec![u1, u2]).is_err());
    }

    #[test]
    fn degenerate_rooted_ureal_fails_validate() {
        // Bypass try_new via quadratic + coeffs round-trip is not
        // possible (root flag is constructor-controlled), so check that
        // the validating constructor and validate() agree on a valid
        // rooted unit.
        let ok = UReal::try_new(
            iv(0.0, 2.0),
            Real::new(0.0),
            Real::new(1.0),
            Real::new(0.0),
            true,
        )
        .unwrap();
        ok.validate().unwrap();
        assert!(UReal::try_new(
            iv(0.0, 2.0),
            Real::new(0.0),
            Real::new(1.0),
            Real::new(-1.0),
            true
        )
        .is_err());
    }
}
