//! The `const(α)` unit constructor (Sec 3.2.5):
//! `D_const(α) = Interval(Instant) × D'_α` — the trivial unit whose
//! function is constant, `ι(v, t) = v`.
//!
//! This is the representation of `moving(int)`, `moving(string)` and
//! `moving(bool)` (Table 3), and the result type of lifted predicates
//! such as `inside` (Sec 5.2).

use crate::unit::Unit;
use mob_base::{Instant, TimeInterval};
use std::fmt;

/// A constant unit: the value `v` throughout the interval.
///
/// `T` must not be an "undefined" marker — the paper excludes ⊥ and the
/// empty set from unit values (`D'_α`); absence of a value is represented
/// by absence of a unit in the `mapping`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ConstUnit<T> {
    interval: TimeInterval,
    value: T,
}

impl<T: Clone + PartialEq> ConstUnit<T> {
    /// Construct a constant unit.
    pub fn new(interval: TimeInterval, value: T) -> ConstUnit<T> {
        ConstUnit { interval, value }
    }

    /// The constant value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T: Clone + PartialEq> Unit for ConstUnit<T> {
    type Value = T;

    fn interval(&self) -> &TimeInterval {
        &self.interval
    }

    fn with_interval(&self, iv: TimeInterval) -> Self {
        ConstUnit {
            interval: iv,
            value: self.value.clone(),
        }
    }

    fn at(&self, _t: Instant) -> T {
        self.value.clone()
    }

    fn value_eq(&self, other: &Self) -> bool {
        self.value == other.value
    }
}

impl<T: fmt::Debug> fmt::Debug for ConstUnit<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}↦{:?}", self.interval, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{t, Interval};

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    #[test]
    fn evaluation_is_constant() {
        let u = ConstUnit::new(iv(0.0, 2.0), 7i64);
        assert_eq!(u.at(t(0.0)), 7);
        assert_eq!(u.at(t(1.5)), 7);
        assert_eq!(*u.value(), 7);
    }

    #[test]
    fn merge_adjacent_equal() {
        let a = ConstUnit::new(Interval::new(t(0.0), t(1.0), true, true), true);
        let b = ConstUnit::new(Interval::new(t(1.0), t(2.0), false, true), true);
        let m = a.try_merge(&b).unwrap();
        assert_eq!(*m.interval(), iv(0.0, 2.0));
        // Distinct values do not merge.
        let c = ConstUnit::new(Interval::new(t(1.0), t(2.0), false, true), false);
        assert!(a.try_merge(&c).is_none());
        // Non-adjacent equal values do not merge.
        let d = ConstUnit::new(iv(5.0, 6.0), true);
        assert!(a.try_merge(&d).is_none());
    }

    #[test]
    fn restrict_clips() {
        let u = ConstUnit::new(iv(0.0, 4.0), 1i64);
        let clipped = u.restrict(&iv(2.0, 6.0)).unwrap();
        assert_eq!(*clipped.interval(), iv(2.0, 4.0));
        assert!(u.restrict(&iv(9.0, 10.0)).is_none());
    }
}
