//! The *refinement partition* of the time axis (Sec 5.2, Fig 8): given
//! two sliced values, partition time so that within every part each
//! argument is described by (at most) one unit. Binary lifted operations
//! "traverse the two lists in parallel, computing the refinement
//! partition of the time axis on the way".

use crate::batch::UnitCursor;
use crate::mapping::Mapping;
use crate::seq::UnitSeq;
use crate::unit::Unit;
use mob_base::{Instant, Interval, TimeInterval};
use std::borrow::Cow;

/// One part of the refinement partition, with the units (if any) of the
/// two arguments valid on it.
#[derive(Debug)]
pub struct RefinedSlice<'a, A, B> {
    /// The part of the time axis.
    pub interval: TimeInterval,
    /// Unit of the first argument covering the part, if defined there.
    pub a: Option<&'a A>,
    /// Unit of the second argument covering the part, if defined there.
    pub b: Option<&'a B>,
}

/// Compute the full refinement partition of two mappings, including the
/// parts where only one (or neither inner gap) argument is defined.
/// Parts are elementary: between consecutive boundary instants, plus the
/// boundary instants themselves where covered.
pub fn refinement<'a, A: Unit, B: Unit>(
    ma: &'a Mapping<A>,
    mb: &'a Mapping<B>,
) -> Vec<RefinedSlice<'a, A, B>> {
    let bounds = merged_bounds(ma, mb);

    let mut out = Vec::new();
    let mut emit = |iv: TimeInterval| {
        let probe = iv.interior_instant();
        let a = ma.unit_at(probe).filter(|u| {
            // The unit must cover the whole elementary interval.
            u.interval().contains_interval(&iv)
        });
        let b = mb
            .unit_at(probe)
            .filter(|u| u.interval().contains_interval(&iv));
        if a.is_some() || b.is_some() {
            out.push(RefinedSlice { interval: iv, a, b });
        }
    };
    for (i, &ti) in bounds.iter().enumerate() {
        emit(TimeInterval::point(ti));
        if let Some(&tj) = bounds.get(i + 1) {
            emit(Interval::open(ti, tj));
        }
    }
    out
}

/// The merged boundary instants of two mappings, **strictly increasing**
/// and duplicate-free.
///
/// Each mapping's own boundary stream `s₀, e₀, s₁, e₁, …` is already
/// non-decreasing (unit intervals are sorted and pairwise r-disjoint,
/// Sec 3.2.4), so the two streams are merged in one `O(n + m)` pass,
/// dropping duplicates as they are produced — no `2·(n + m)` scratch
/// vector, no sort, no post-hoc `dedup`. Duplicates are the common
/// case, not the exception: adjacent units *within* a mapping share a
/// boundary instant (`e_i = s_{i+1}`), and aligned units *across* the
/// two mappings share all of them.
///
/// The strict-increase invariant is what guarantees each elementary
/// part of the refinement partition — every point part in particular —
/// is emitted exactly once by [`refinement`].
fn merged_bounds<A: Unit, B: Unit>(ma: &Mapping<A>, mb: &Mapping<B>) -> Vec<Instant> {
    let (ua, ub) = (ma.units(), mb.units());
    // Flattened bound streams: element 2k is unit k's start, 2k+1 its end.
    let bound_a = |k: usize| -> Instant {
        let iv = ua[k / 2].interval();
        if k.is_multiple_of(2) {
            *iv.start()
        } else {
            *iv.end()
        }
    };
    let bound_b = |k: usize| -> Instant {
        let iv = ub[k / 2].interval();
        if k.is_multiple_of(2) {
            *iv.start()
        } else {
            *iv.end()
        }
    };
    let (na, nb) = (2 * ua.len(), 2 * ub.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut out: Vec<Instant> = Vec::with_capacity(na + nb);
    while i < na || j < nb {
        let take_a = i < na && (j >= nb || bound_a(i) <= bound_b(j));
        let next = if take_a {
            i += 1;
            bound_a(i - 1)
        } else {
            j += 1;
            bound_b(j - 1)
        };
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
    debug_assert!(
        out.windows(2).all(|w| w[0] < w[1]),
        "merged bounds must be strictly increasing"
    );
    out
}

/// The shared boundary-merge walk beneath [`refinement_both`] and
/// [`refinement_both_seq`]: traverse the two sorted unit lists with two
/// pointers and call `visit(common, i, j)` for every pair of units
/// whose intervals intersect, in time order. `O(n + m)` interval reads,
/// no unit decodes — what the visitor does with the indices (borrow,
/// decode through a cursor, count) is its business.
pub fn walk_refinement<SA: UnitSeq, SB: UnitSeq>(
    sa: &SA,
    sb: &SB,
    mut visit: impl FnMut(TimeInterval, usize, usize),
) {
    let (n, m) = (sa.len(), sb.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        let (ia, ib) = (sa.interval(i), sb.interval(j));
        if let Some(common) = ia.intersection(&ib) {
            visit(common, i, j);
        }
        if advance_first(&ia, &ib) {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// The refinement parts where *both* arguments are defined — the inputs
/// of strict binary lifted operations ("if both up and ur exist",
/// Alg `inside`). Each item is `(interval, unit_a, unit_b)` with the
/// interval equal to the intersection of the two unit intervals clipped
/// to the elementary part.
pub fn refinement_both<'a, A: Unit, B: Unit>(
    ma: &'a Mapping<A>,
    mb: &'a Mapping<B>,
) -> Vec<(TimeInterval, &'a A, &'a B)> {
    // The shared walk ([`walk_refinement`]) with borrowing visitors:
    // O(n + m) parts, zero copies.
    let _span = mob_obs::span("core.refinement");
    let (ua, ub) = (ma.units(), mb.units());
    let mut out = Vec::new();
    walk_refinement(ma, mb, |common, i, j| out.push((common, &ua[i], &ub[j])));
    mob_obs::metric!("core.refinement.parts").add(out.len() as u64);
    out
}

/// `true` if the left unit (interval `ia`) should be advanced first in
/// the two-pointer refinement walk — i.e. it ends before the right one.
fn advance_first(ia: &TimeInterval, ib: &TimeInterval) -> bool {
    match ia.end().cmp(ib.end()) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => {
            // Same end: advance both (handled by advancing a then b
            // next loop iteration via empty intersection).
            !ia.right_closed() || ib.right_closed()
        }
    }
}

/// One refinement part where both sequences are defined: the common
/// subinterval plus the two (possibly lazily decoded) units covering it.
pub type RefinedPart<'a, SA, SB> = (
    TimeInterval,
    Cow<'a, <SA as UnitSeq>::Unit>,
    Cow<'a, <SB as UnitSeq>::Unit>,
);

/// [`refinement_both`] generalized over the access path: the refinement
/// parts where both arguments are defined, for any two [`UnitSeq`]s
/// (in-memory mappings, storage-backed views, or a mix).
///
/// Units are yielded as [`Cow`]s: borrowed from in-memory mappings, and
/// decoded **at most once per unit** from storage-backed sequences (the
/// walk reads only interval headers until an actual overlap is found).
pub fn refinement_both_seq<'a, SA: UnitSeq, SB: UnitSeq>(
    sa: &'a SA,
    sb: &'a SB,
) -> Vec<RefinedPart<'a, SA, SB>> {
    // The same walk as [`refinement_both`], with a [`UnitCursor`] per
    // argument as the decode cache: a unit overlapping several units of
    // the other argument is decoded once, not once per part.
    let _span = mob_obs::span("core.refinement");
    let mut ca = UnitCursor::new(sa);
    let mut cb = UnitCursor::new(sb);
    let mut out = Vec::new();
    walk_refinement(sa, sb, |common, i, j| {
        out.push((common, ca.unit(i), cb.unit(j)));
    });
    mob_obs::metric!("core.refinement.parts").add(out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uconst::ConstUnit;
    use mob_base::{t, Val};

    fn cu(s: f64, e: f64, lc: bool, rc: bool, v: i64) -> ConstUnit<i64> {
        ConstUnit::new(Interval::new(t(s), t(e), lc, rc), v)
    }

    #[test]
    fn figure8_refinement() {
        // Figure 8 (schematically): left mapping has two intervals, right
        // mapping has two intervals offset against them; the refinement
        // partition has one part per elementary overlap.
        let a = Mapping::try_new(vec![
            cu(0.0, 2.0, true, true, 1),
            cu(3.0, 5.0, true, true, 2),
        ])
        .unwrap();
        let b = Mapping::try_new(vec![cu(1.0, 4.0, true, true, 10)]).unwrap();
        let parts = refinement(&a, &b);
        // Both defined on [1,2] and [3,4]; a alone on [0,1), b alone on
        // (2,3), a alone on (4,5].
        let both: Vec<_> = parts
            .iter()
            .filter(|p| p.a.is_some() && p.b.is_some())
            .collect();
        assert!(!both.is_empty());
        // Every part where both exist lies within [1,2] ∪ [3,4].
        for p in &both {
            let s = p.interval.start().as_f64();
            let e = p.interval.end().as_f64();
            assert!((1.0..=2.0).contains(&s) && e <= 2.0 || (3.0..=4.0).contains(&s) && e <= 4.0);
        }
        // Parts where only a exists cover [0,1) etc.
        assert!(parts
            .iter()
            .any(|p| p.a.is_some() && p.b.is_none() && p.interval.start().as_f64() < 1.0));
        // Total coverage: the union of part intervals equals deftime(a) ∪ deftime(b).
        let union: mob_base::Periods = parts.iter().map(|p| p.interval).collect();
        assert_eq!(union, a.deftime().union(&b.deftime()));
    }

    #[test]
    fn refinement_both_two_pointer() {
        let a = Mapping::try_new(vec![
            cu(0.0, 2.0, true, false, 1),
            cu(2.0, 4.0, true, false, 2),
            cu(6.0, 8.0, true, true, 3),
        ])
        .unwrap();
        let b = Mapping::try_new(vec![
            cu(1.0, 3.0, true, true, 10),
            cu(3.0, 7.0, false, true, 20),
        ])
        .unwrap();
        let parts = refinement_both(&a, &b);
        let ivs: Vec<TimeInterval> = parts.iter().map(|(iv, ..)| *iv).collect();
        assert_eq!(
            ivs,
            vec![
                Interval::new(t(1.0), t(2.0), true, false),
                Interval::new(t(2.0), t(3.0), true, true),
                Interval::new(t(3.0), t(4.0), false, false),
                Interval::new(t(6.0), t(7.0), true, true),
            ]
        );
        let vals: Vec<(i64, i64)> = parts
            .iter()
            .map(|(_, ua, ub)| (*ua.value(), *ub.value()))
            .collect();
        assert_eq!(vals, vec![(1, 10), (2, 10), (2, 20), (3, 20)]);
    }

    #[test]
    fn refinement_both_disjoint_mappings() {
        let a = Mapping::single(cu(0.0, 1.0, true, true, 1));
        let b = Mapping::single(cu(5.0, 6.0, true, true, 2));
        assert!(refinement_both(&a, &b).is_empty());
    }

    #[test]
    fn refinement_point_overlap() {
        // Units touching at a shared closed instant overlap in a point.
        let a = Mapping::single(cu(0.0, 1.0, true, true, 1));
        let b = Mapping::single(cu(1.0, 2.0, true, true, 2));
        let parts = refinement_both(&a, &b);
        assert_eq!(parts.len(), 1);
        assert!(parts[0].0.is_point());
        assert_eq!(*parts[0].0.start(), t(1.0));
    }

    #[test]
    fn shared_boundary_instant_yields_exactly_one_point_slice() {
        // Regression: `merged_bounds` must drop duplicate boundary
        // instants on the fly. Adjacent units inside a mapping share
        // `e_i = s_{i+1}`, and here *both* mappings put a boundary at
        // t = 2, so the instant appears four times across the two bound
        // streams — the point part at t = 2 must still be emitted
        // exactly once.
        let a = Mapping::try_new(vec![
            cu(0.0, 2.0, true, true, 1),
            cu(2.0, 4.0, false, true, 2),
        ])
        .unwrap();
        let b = Mapping::try_new(vec![
            cu(1.0, 2.0, true, true, 10),
            cu(2.0, 3.0, false, true, 20),
        ])
        .unwrap();
        let parts = refinement(&a, &b);
        let point_parts_at_2: Vec<_> = parts
            .iter()
            .filter(|p| p.interval.is_point() && *p.interval.start() == t(2.0))
            .collect();
        assert_eq!(
            point_parts_at_2.len(),
            1,
            "the shared boundary instant must produce exactly one slice"
        );
        let p = point_parts_at_2[0];
        assert_eq!(p.a.map(|u| *u.value()), Some(1));
        assert_eq!(p.b.map(|u| *u.value()), Some(10));
        // No interval appears twice anywhere in the partition.
        for (k, pk) in parts.iter().enumerate() {
            for pl in &parts[k + 1..] {
                assert_ne!(pk.interval, pl.interval, "duplicate part emitted");
            }
        }
    }

    #[test]
    fn merged_bounds_strictly_increasing_under_heavy_sharing() {
        // All four units of `a` and both units of `b` share boundaries.
        let a = Mapping::try_new(vec![
            cu(0.0, 1.0, true, false, 1),
            cu(1.0, 2.0, true, false, 2),
            cu(2.0, 3.0, true, false, 3),
            cu(3.0, 4.0, true, true, 4),
        ])
        .unwrap();
        let b = Mapping::try_new(vec![
            cu(0.0, 2.0, true, false, 10),
            cu(2.0, 4.0, true, true, 20),
        ])
        .unwrap();
        let bounds = merged_bounds(&a, &b);
        assert_eq!(bounds, vec![t(0.0), t(1.0), t(2.0), t(3.0), t(4.0)]);
        assert!(bounds.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn refinement_preserves_values() {
        let a = Mapping::single(cu(0.0, 10.0, true, true, 42));
        let b = Mapping::try_new(vec![
            cu(2.0, 3.0, true, true, 1),
            cu(5.0, 6.0, true, true, 2),
        ])
        .unwrap();
        for (iv, ua, ub) in refinement_both(&a, &b) {
            let probe = iv.interior_instant();
            assert_eq!(Val::Def(ua.at(probe)), a.at_instant(probe));
            assert_eq!(Val::Def(ub.at(probe)), b.at_instant(probe));
        }
    }
}
