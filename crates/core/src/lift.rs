//! Generic *lifting* machinery (Sec 2 / Sec 5.2).
//!
//! The abstract model makes every non-temporal operation applicable to
//! moving types by temporal lifting; on the discrete representations all
//! binary lifted operations share one skeleton — the generic Algorithm
//! `inside` of Sec 5.2: traverse the two unit lists in parallel along the
//! refinement partition, apply a per-unit-pair kernel, and `concat` the
//! resulting unit streams. [`lift2`] is that skeleton; the kernels are
//! supplied by the concrete operations (`distance`, `inside`, boolean
//! algebra, arithmetic, ...).

use crate::mapping::{Mapping, MappingBuilder};
use crate::refinement::refinement_both_seq;
use crate::seq::UnitSeq;
use crate::unit::Unit;
use mob_base::TimeInterval;

/// Binary lift: apply `kernel` on every refinement part where both
/// arguments are defined. The kernel returns the result units covering
/// that part, in time order; adjacent equal units are merged (`concat`).
///
/// Generic over the access path ([`UnitSeq`]): the arguments may be
/// in-memory [`Mapping`]s, storage-backed views, or a mix — the kernel
/// sees plain unit references either way.
///
/// Runs in `O(n + m + Σ kernel)` — the complexity bound of Sec 5.2.
pub fn lift2<SA, SB, UC, F>(a: &SA, b: &SB, kernel: F) -> Mapping<UC>
where
    SA: UnitSeq,
    SB: UnitSeq,
    UC: Unit,
    F: Fn(&TimeInterval, &SA::Unit, &SB::Unit) -> Vec<UC>,
{
    let mut builder = MappingBuilder::new();
    for (iv, ua, ub) in refinement_both_seq(a, b) {
        for unit in kernel(&iv, &ua, &ub) {
            builder.push(unit);
        }
    }
    builder.finish()
}

/// Unary lift: apply `kernel` to every unit (possibly splitting it),
/// merging adjacent equal results. Generic over the access path.
pub fn lift1<SA, UC, F>(a: &SA, kernel: F) -> Mapping<UC>
where
    SA: UnitSeq,
    UC: Unit,
    F: Fn(&SA::Unit) -> Vec<UC>,
{
    let mut builder = MappingBuilder::new();
    for i in 0..a.len() {
        let u = a.unit(i);
        for unit in kernel(&u) {
            builder.push(unit);
        }
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uconst::ConstUnit;
    use mob_base::{t, Interval, Val};

    fn cu(s: f64, e: f64, v: i64) -> ConstUnit<i64> {
        ConstUnit::new(Interval::closed_open(t(s), t(e)), v)
    }

    #[test]
    fn lift2_addition_of_moving_ints() {
        let a = Mapping::try_new(vec![cu(0.0, 2.0, 1), cu(2.0, 4.0, 5)]).unwrap();
        let b = Mapping::try_new(vec![cu(1.0, 3.0, 10)]).unwrap();
        let sum = lift2(&a, &b, |iv, ua, ub| {
            vec![ConstUnit::new(*iv, ua.value() + ub.value())]
        });
        assert_eq!(sum.at_instant(t(1.5)), Val::Def(11));
        assert_eq!(sum.at_instant(t(2.5)), Val::Def(15));
        assert_eq!(sum.at_instant(t(0.5)), Val::Undef); // b undefined
        assert_eq!(sum.at_instant(t(3.5)), Val::Undef);
    }

    #[test]
    fn lift2_concat_merges_equal_results() {
        // Different inputs can produce equal outputs across parts; concat
        // must merge them into one unit.
        let a = Mapping::try_new(vec![cu(0.0, 2.0, 1), cu(2.0, 4.0, 2)]).unwrap();
        let b = Mapping::try_new(vec![cu(0.0, 4.0, 0)]).unwrap();
        let sign = lift2(&a, &b, |iv, ua, _| {
            vec![ConstUnit::new(*iv, *ua.value() > 0)]
        });
        assert_eq!(sign.num_units(), 1);
        assert_eq!(sign.at_instant(t(3.0)), Val::Def(true));
    }

    #[test]
    fn lift1_splits_units() {
        let a = Mapping::try_new(vec![cu(0.0, 4.0, 7)]).unwrap();
        let halved = lift1(&a, |u| {
            let iv = u.interval();
            let mid = iv.start().midpoint(*iv.end());
            vec![
                ConstUnit::new(Interval::closed_open(*iv.start(), mid), 1i64),
                ConstUnit::new(Interval::closed_open(mid, *iv.end()), 2i64),
            ]
        });
        assert_eq!(halved.num_units(), 2);
        assert_eq!(halved.at_instant(t(1.0)), Val::Def(1));
        assert_eq!(halved.at_instant(t(3.0)), Val::Def(2));
    }
}
