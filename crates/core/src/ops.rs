//! The type systems of the paper as inspectable data: Table 1 (abstract),
//! Table 2 (discrete) and Table 3 (the correspondence between abstract
//! temporal types and their sliced representations).
//!
//! These catalogues drive the `type_system` example and the table
//! reproduction tests (experiments T1–T3 in DESIGN.md).

/// The kinds (sorts) of the type-system signatures.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Kind {
    /// `int`, `real`, `string`, `bool`.
    Base,
    /// `point`, `points`, `line`, `region`.
    Spatial,
    /// `instant`.
    Time,
    /// `range(α)`.
    Range,
    /// `intime(α)`, `moving(α)`.
    Temporal,
    /// Unit types (discrete model only).
    Unit,
    /// `mapping(α)` (discrete model only).
    Mapping,
}

/// One line of a signature: argument kinds → result kind, with the type
/// constructors carrying that functionality.
#[derive(Clone, Debug, PartialEq)]
pub struct SigLine {
    /// Argument kinds (empty for constant type constructors).
    pub args: Vec<Kind>,
    /// Result kind.
    pub result: Kind,
    /// The constructors (type names) of this line.
    pub constructors: Vec<&'static str>,
}

/// Table 1: the signature describing the **abstract** type system.
pub fn abstract_signature() -> Vec<SigLine> {
    vec![
        SigLine {
            args: vec![],
            result: Kind::Base,
            constructors: vec!["int", "real", "string", "bool"],
        },
        SigLine {
            args: vec![],
            result: Kind::Spatial,
            constructors: vec!["point", "points", "line", "region"],
        },
        SigLine {
            args: vec![],
            result: Kind::Time,
            constructors: vec!["instant"],
        },
        SigLine {
            args: vec![Kind::Base, Kind::Time],
            result: Kind::Range,
            constructors: vec!["range"],
        },
        SigLine {
            args: vec![Kind::Base, Kind::Spatial],
            result: Kind::Temporal,
            constructors: vec!["intime", "moving"],
        },
    ]
}

/// Table 2: the signature describing the **discrete** type system.
pub fn discrete_signature() -> Vec<SigLine> {
    vec![
        SigLine {
            args: vec![],
            result: Kind::Base,
            constructors: vec!["int", "real", "string", "bool"],
        },
        SigLine {
            args: vec![],
            result: Kind::Spatial,
            constructors: vec!["point", "points", "line", "region"],
        },
        SigLine {
            args: vec![],
            result: Kind::Time,
            constructors: vec!["instant"],
        },
        SigLine {
            args: vec![Kind::Base, Kind::Time],
            result: Kind::Range,
            constructors: vec!["range"],
        },
        SigLine {
            args: vec![Kind::Base, Kind::Spatial],
            result: Kind::Temporal,
            constructors: vec!["intime"],
        },
        SigLine {
            args: vec![Kind::Base, Kind::Spatial],
            result: Kind::Unit,
            constructors: vec!["const"],
        },
        SigLine {
            args: vec![],
            result: Kind::Unit,
            constructors: vec!["ureal", "upoint", "upoints", "uline", "uregion"],
        },
        SigLine {
            args: vec![Kind::Unit],
            result: Kind::Mapping,
            constructors: vec!["mapping"],
        },
    ]
}

/// One row of Table 3: an abstract temporal type and its discrete
/// (sliced) representation, plus the Rust type implementing it.
#[derive(Clone, Debug, PartialEq)]
pub struct Correspondence {
    /// The abstract type, e.g. `moving(real)`.
    pub abstract_type: &'static str,
    /// The discrete type, e.g. `mapping(ureal)`.
    pub discrete_type: &'static str,
    /// The implementing Rust type in this crate.
    pub rust_type: &'static str,
}

/// Table 3: correspondence between abstract and discrete temporal types.
pub fn correspondence() -> Vec<Correspondence> {
    vec![
        Correspondence {
            abstract_type: "moving(int)",
            discrete_type: "mapping(const(int))",
            rust_type: "MovingInt = Mapping<ConstUnit<i64>>",
        },
        Correspondence {
            abstract_type: "moving(string)",
            discrete_type: "mapping(const(string))",
            rust_type: "MovingString = Mapping<ConstUnit<Text>>",
        },
        Correspondence {
            abstract_type: "moving(bool)",
            discrete_type: "mapping(const(bool))",
            rust_type: "MovingBool = Mapping<ConstUnit<bool>>",
        },
        Correspondence {
            abstract_type: "moving(real)",
            discrete_type: "mapping(ureal)",
            rust_type: "MovingReal = Mapping<UReal>",
        },
        Correspondence {
            abstract_type: "moving(point)",
            discrete_type: "mapping(upoint)",
            rust_type: "MovingPoint = Mapping<UPoint>",
        },
        Correspondence {
            abstract_type: "moving(points)",
            discrete_type: "mapping(upoints)",
            rust_type: "MovingPoints = Mapping<UPoints>",
        },
        Correspondence {
            abstract_type: "moving(line)",
            discrete_type: "mapping(uline)",
            rust_type: "MovingLine = Mapping<ULine>",
        },
        Correspondence {
            abstract_type: "moving(region)",
            discrete_type: "mapping(uregion)",
            rust_type: "MovingRegion = Mapping<URegion>",
        },
    ]
}

/// All data types generated by the discrete signature (instantiating the
/// parameterized constructors over their argument kinds).
pub fn discrete_types() -> Vec<String> {
    let base = ["int", "real", "string", "bool"];
    let spatial = ["point", "points", "line", "region"];
    let mut out: Vec<String> = Vec::new();
    out.extend(base.iter().map(|s| s.to_string()));
    out.extend(spatial.iter().map(|s| s.to_string()));
    out.push("instant".into());
    for t in base.iter().chain(["instant"].iter()) {
        out.push(format!("range({t})"));
    }
    for t in base.iter().chain(spatial.iter()) {
        out.push(format!("intime({t})"));
        out.push(format!("const({t})"));
    }
    let units = ["ureal", "upoint", "upoints", "uline", "uregion"];
    out.extend(units.iter().map(|s| s.to_string()));
    for t in base.iter().chain(spatial.iter()) {
        out.push(format!("mapping(const({t}))"));
    }
    for u in units {
        out.push(format!("mapping({u})"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Experiment T1: Table 1 reproduced.
    #[test]
    fn table1_abstract_signature() {
        let sig = abstract_signature();
        assert_eq!(sig.len(), 5);
        // The `moving` constructor exists at the abstract level...
        assert!(sig
            .iter()
            .any(|l| l.constructors.contains(&"moving") && l.result == Kind::Temporal));
        // ...and takes BASE ∪ SPATIAL arguments.
        let temporal = sig.iter().find(|l| l.result == Kind::Temporal).unwrap();
        assert_eq!(temporal.args, vec![Kind::Base, Kind::Spatial]);
    }

    /// Experiment T2: Table 2 reproduced — `moving` replaced by unit
    /// types and the `mapping` constructor.
    #[test]
    fn table2_discrete_signature() {
        let sig = discrete_signature();
        assert_eq!(sig.len(), 8);
        // No `moving` at the discrete level.
        assert!(!sig.iter().any(|l| l.constructors.contains(&"moving")));
        // The unit constructors are exactly const + the five unit types.
        let unit_ctors: Vec<&str> = sig
            .iter()
            .filter(|l| l.result == Kind::Unit)
            .flat_map(|l| l.constructors.iter().copied())
            .collect();
        assert_eq!(
            unit_ctors,
            vec!["const", "ureal", "upoint", "upoints", "uline", "uregion"]
        );
        // `mapping` applies to UNIT.
        let mapping = sig.iter().find(|l| l.result == Kind::Mapping).unwrap();
        assert_eq!(mapping.args, vec![Kind::Unit]);
    }

    /// Experiment T3: Table 3 reproduced — every abstract moving type has
    /// a sliced representation.
    #[test]
    fn table3_correspondence() {
        let rows = correspondence();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.abstract_type.starts_with("moving("));
            assert!(row.discrete_type.starts_with("mapping("));
        }
        // The three const-based rows.
        assert_eq!(
            rows.iter()
                .filter(|r| r.discrete_type.contains("const"))
                .count(),
            3
        );
    }

    #[test]
    fn discrete_type_enumeration() {
        let types = discrete_types();
        assert!(types.contains(&"mapping(ureal)".to_string()));
        assert!(types.contains(&"range(instant)".to_string()));
        assert!(types.contains(&"mapping(const(bool))".to_string()));
        assert!(!types.contains(&"moving(point)".to_string()));
        // 8 ground + 1 instant + 5 range + 16 intime/const + 5 units
        // + 8 const-mappings + 5 unit-mappings.
        assert_eq!(types.len(), 8 + 1 + 5 + 16 + 5 + 8 + 5);
    }
}
