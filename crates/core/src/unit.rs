//! The generic concept of a *temporal unit* (Sec 3.2.4):
//! `Unit(S) = Interval(Instant) × S` — a time interval plus a
//! representation of a "simple" function valid on that interval.
//!
//! The [`Unit`] trait captures what the `mapping` constructor and the
//! generic algorithms (Sec 5) need from every unit type: its interval,
//! evaluation of the unit function `ι` at an instant (including the
//! `ι_s`/`ι_e` endpoint cleanup where applicable), restriction to a
//! sub-interval, and comparison of unit *functions* (used by the
//! "adjacent intervals ⇒ distinct values" invariant and by `concat`).

use mob_base::{Instant, TimeInterval};

/// A temporal unit: a time interval and a simple function on it.
pub trait Unit: Clone {
    /// The non-temporal value type produced by evaluation — e.g. `Real`
    /// for `ureal`, `Region` for `uregion`.
    type Value;

    /// The unit interval.
    fn interval(&self) -> &TimeInterval;

    /// The same unit function on a different interval.
    ///
    /// Callers must guarantee that the function is valid on `iv`; the
    /// `mapping` machinery only ever shrinks intervals or merges adjacent
    /// intervals carrying equal functions, both of which preserve
    /// validity.
    fn with_interval(&self, iv: TimeInterval) -> Self;

    /// Evaluate the unit function at `t` (`ι(v, t)`), with the
    /// `ι_s`/`ι_e` endpoint cleanup for unit types that can degenerate at
    /// interval end points (Sec 3.2.6).
    ///
    /// Contract: `interval().start() ≤ t ≤ interval().end()`. Evaluation
    /// at an *excluded* end point of a half-open interval is permitted and
    /// yields the limit value — `initial`/`final` rely on this.
    fn at(&self, t: Instant) -> Self::Value;

    /// `true` if the two units carry the same unit *function*
    /// (representation equality of the second component).
    fn value_eq(&self, other: &Self) -> bool;

    /// Merge with an adjacent unit carrying the same function
    /// (the `concat` step of Sec 5.2); `None` if not mergeable.
    fn try_merge(&self, other: &Self) -> Option<Self> {
        if self.value_eq(other) {
            if let Some(iv) = self.interval().union_merged(other.interval()) {
                return Some(self.with_interval(iv));
            }
        }
        None
    }

    /// Restrict the unit to `iv` (which must intersect the unit interval);
    /// returns `None` if the intersection is empty.
    fn restrict(&self, iv: &TimeInterval) -> Option<Self> {
        self.interval()
            .intersection(iv)
            .map(|clipped| self.with_interval(clipped))
    }
}
