//! Live ingestion: per-object *tail-unit* accumulation (ROADMAP item 2).
//!
//! The paper's sliced representation (Sec 3.2.4) assumes a mapping
//! arrives whole; a live fleet instead streams `(instant, position)`
//! samples. [`TailBuilder`] buffers the open tail of one object's
//! trajectory and, on [`TailBuilder::seal`], converts the buffered
//! samples into canonical `upoint` units **exactly** as
//! `Mapping::from_samples` would have: every window `[t_i, t_{i+1})` is
//! left-closed right-open, the final window is right-closed, and
//! adjacent units with the same motion function are merged — the ι
//! endpoint cleanup that makes the batch acceptable to
//! `Mapping::try_new` without further normalization.
//!
//! Sealing retains the last sample as the *anchor* of the next batch,
//! so consecutive batches share their boundary instant just like
//! consecutive sample windows do. The storage layer resolves that seam
//! when applying a batch to a stored mapping (trim the previous
//! right-closed endpoint to right-open, or drop a point-interval tail),
//! which makes `seal` batches applied in sequence byte-identical to one
//! `from_samples` call over the full sample list.

use crate::unit::Unit;
use crate::upoint::UPoint;
use mob_base::error::{InvariantViolation, Result};
use mob_base::{Instant, TimeInterval};
use mob_spatial::Point;

/// Accumulates the open tail of one moving object's trajectory.
///
/// ```
/// use mob_core::{Mapping, TailBuilder};
/// use mob_base::t;
/// use mob_spatial::Point;
///
/// let p = |x: f64| Point::new(x.into(), 0.0.into());
/// let mut tail = TailBuilder::new();
/// tail.push(t(0.0), p(0.0)).unwrap();
/// tail.push(t(1.0), p(1.0)).unwrap();
/// let units = tail.seal();
/// // The batch is a valid mapping on its own …
/// assert!(Mapping::try_new(units.clone()).is_ok());
/// // … identical to from_samples over the same samples.
/// let whole = Mapping::from_samples(&[(t(0.0), p(0.0)), (t(1.0), p(1.0))]);
/// assert_eq!(units, whole.units());
/// ```
#[derive(Clone, Debug, Default)]
pub struct TailBuilder {
    /// Last sample of the previous sealed batch (seam with this batch).
    anchor: Option<(Instant, Point)>,
    /// Samples pushed since the last seal.
    samples: Vec<(Instant, Point)>,
}

impl TailBuilder {
    /// New builder with no anchor and no pending samples.
    pub fn new() -> TailBuilder {
        TailBuilder {
            anchor: None,
            samples: Vec::new(),
        }
    }

    /// Record one GPS sample. Instants must strictly increase across
    /// the whole ingestion stream — including across seals (the anchor
    /// counts).
    pub fn push(&mut self, t: Instant, p: Point) -> Result<()> {
        let last = self
            .samples
            .last()
            .map(|&(lt, _)| lt)
            .or(self.anchor.map(|(lt, _)| lt));
        if let Some(lt) = last {
            if t <= lt {
                return Err(InvariantViolation::new(
                    "ingest: sample instants must strictly increase",
                ));
            }
        }
        self.samples.push((t, p));
        Ok(())
    }

    /// Number of samples buffered since the last seal.
    pub fn pending(&self) -> usize {
        self.samples.len()
    }

    /// `true` if a seal would produce no units.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The seam sample carried over from the previous sealed batch.
    pub fn anchor(&self) -> Option<(Instant, Point)> {
        self.anchor
    }

    /// Convert the buffered samples into canonical units (ι cleanup
    /// applied) and retain the last sample as the next batch's anchor.
    ///
    /// Semantics per batch, with `anchor?` prepended to the samples:
    /// zero samples → empty batch (anchor untouched); a single sample
    /// and no anchor → one point-interval unit; otherwise one unit per
    /// consecutive window, each `[t_i, t_{i+1})`, the last `[.., t_n]`,
    /// with adjacent same-motion units merged exactly as
    /// `MappingBuilder::push` would merge them.
    pub fn seal(&mut self) -> Vec<UPoint> {
        if self.samples.is_empty() {
            return Vec::new();
        }
        let mut combined: Vec<(Instant, Point)> = Vec::with_capacity(self.samples.len() + 1);
        if let Some(a) = self.anchor {
            combined.push(a);
        }
        combined.append(&mut self.samples);
        if let Some(&last) = combined.last() {
            self.anchor = Some(last);
        }
        if combined.len() == 1 {
            // No anchor and exactly one new sample: the object exists
            // at a single instant so far.
            let (t, p) = combined[0];
            return vec![UPoint::between(TimeInterval::point(t), p, p)];
        }
        let mut out: Vec<UPoint> = Vec::with_capacity(combined.len() - 1);
        let n = combined.len();
        for (k, (a, b)) in combined.iter().zip(combined.iter().skip(1)).enumerate() {
            let (t0, p0) = *a;
            let (t1, p1) = *b;
            let last = k + 2 == n;
            let iv = TimeInterval::new(t0, t1, true, last);
            let u = UPoint::between(TimeInterval::closed(t0, t1), p0, p1).with_interval(iv);
            if let Some(prev) = out.last_mut() {
                if let Some(merged) = prev.try_merge(&u) {
                    *prev = merged;
                    continue;
                }
            }
            out.push(u);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapping;
    use mob_base::t;

    fn pt(x: f64, y: f64) -> Point {
        Point::new(x.into(), y.into())
    }

    #[test]
    fn single_seal_matches_from_samples() {
        let samples = [
            (t(0.0), pt(0.0, 0.0)),
            (t(1.0), pt(1.0, 0.0)),
            (t(2.0), pt(1.0, 1.0)),
            (t(3.0), pt(0.0, 1.0)),
        ];
        let mut tail = TailBuilder::new();
        for &(ti, pi) in &samples {
            tail.push(ti, pi).unwrap();
        }
        let units = tail.seal();
        assert_eq!(units, Mapping::from_samples(&samples).units());
        assert!(Mapping::try_new(units).is_ok());
        assert_eq!(tail.anchor(), Some(samples[3]));
        assert!(tail.is_empty());
    }

    #[test]
    fn collinear_windows_merge_like_builder() {
        // Constant velocity across three samples: from_samples merges the
        // two windows into one unit; seal must do the same (ι cleanup).
        let samples = [
            (t(0.0), pt(0.0, 0.0)),
            (t(1.0), pt(1.0, 0.0)),
            (t(2.0), pt(2.0, 0.0)),
        ];
        let mut tail = TailBuilder::new();
        for &(ti, pi) in &samples {
            tail.push(ti, pi).unwrap();
        }
        let units = tail.seal();
        assert_eq!(units, Mapping::from_samples(&samples).units());
        assert_eq!(units.len(), Mapping::from_samples(&samples).num_units());
    }

    #[test]
    fn single_sample_seals_to_point_unit() {
        let mut tail = TailBuilder::new();
        tail.push(t(5.0), pt(2.0, 3.0)).unwrap();
        let units = tail.seal();
        assert_eq!(
            units,
            Mapping::from_samples(&[(t(5.0), pt(2.0, 3.0))]).units()
        );
        assert_eq!(tail.anchor(), Some((t(5.0), pt(2.0, 3.0))));
    }

    #[test]
    fn empty_seal_is_noop() {
        let mut tail = TailBuilder::new();
        assert!(tail.seal().is_empty());
        tail.push(t(0.0), pt(0.0, 0.0)).unwrap();
        tail.seal();
        // Second seal with no new samples: no units, anchor kept.
        assert!(tail.seal().is_empty());
        assert_eq!(tail.anchor(), Some((t(0.0), pt(0.0, 0.0))));
    }

    #[test]
    fn push_rejects_non_increasing_instants() {
        let mut tail = TailBuilder::new();
        tail.push(t(1.0), pt(0.0, 0.0)).unwrap();
        assert!(tail.push(t(1.0), pt(1.0, 0.0)).is_err());
        assert!(tail.push(t(0.5), pt(1.0, 0.0)).is_err());
        // The anchor also guards the seam after a seal.
        tail.seal();
        assert!(tail.push(t(1.0), pt(2.0, 0.0)).is_err());
        assert!(tail.push(t(2.0), pt(2.0, 0.0)).is_ok());
    }

    #[test]
    fn second_batch_starts_left_closed_at_anchor() {
        let mut tail = TailBuilder::new();
        tail.push(t(0.0), pt(0.0, 0.0)).unwrap();
        tail.push(t(1.0), pt(1.0, 0.0)).unwrap();
        tail.seal();
        tail.push(t(2.0), pt(1.0, 1.0)).unwrap();
        let batch = tail.seal();
        assert_eq!(batch.len(), 1);
        let iv = batch[0].interval();
        assert_eq!(*iv.start(), t(1.0));
        assert_eq!(*iv.end(), t(2.0));
        assert!(iv.left_closed() && iv.right_closed());
    }
}
