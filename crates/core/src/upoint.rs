//! The `upoint` unit type (Sec 3.2.6): a linearly moving point.
//!
//! `MPoint = {(x0, x1, y0, y1)}` describes the unbounded linear motion
//! `ι((x0,x1,y0,y1), t) = (x0 + x1·t, y0 + y1·t)`;
//! `D_upoint = Interval(Instant) × MPoint`.

use crate::unit::Unit;
use crate::ureal::UReal;
use mob_base::{Instant, Real, TimeInterval};
use mob_spatial::{Cube, Point, Rect, Seg};
use std::fmt;

/// An unbounded linear motion of a point — the paper's `MPoint`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PointMotion {
    /// x intercept at `t = 0`.
    pub x0: Real,
    /// x velocity.
    pub x1: Real,
    /// y intercept at `t = 0`.
    pub y0: Real,
    /// y velocity.
    pub y1: Real,
}

impl PointMotion {
    /// Construct from the coefficient quadruple.
    pub fn new(x0: Real, x1: Real, y0: Real, y1: Real) -> PointMotion {
        PointMotion { x0, x1, y0, y1 }
    }

    /// The motionless point `p`.
    pub fn stationary(p: Point) -> PointMotion {
        PointMotion {
            x0: p.x,
            x1: Real::ZERO,
            y0: p.y,
            y1: Real::ZERO,
        }
    }

    /// The unique linear motion passing through `p` at `t0` and `q` at
    /// `t1` (`t0 ≠ t1`).
    pub fn through(t0: Instant, p: Point, t1: Instant, q: Point) -> PointMotion {
        let dt = t1 - t0;
        assert!(dt != Real::ZERO, "motion requires two distinct instants");
        let x1 = (q.x - p.x) / dt;
        let y1 = (q.y - p.y) / dt;
        PointMotion {
            x0: p.x - x1 * t0.value(),
            x1,
            y0: p.y - y1 * t0.value(),
            y1,
        }
    }

    /// `ι`: the position at time `t`.
    #[inline]
    pub fn at(&self, t: Instant) -> Point {
        let x = t.value();
        Point::new(self.x0 + self.x1 * x, self.y0 + self.y1 * x)
    }

    /// Speed (constant for linear motion).
    pub fn speed(&self) -> Real {
        (self.x1 * self.x1 + self.y1 * self.y1).sqrt_clamped()
    }

    /// `true` if the point does not move.
    pub fn is_stationary(&self) -> bool {
        self.x1 == Real::ZERO && self.y1 == Real::ZERO
    }

    /// Heading in radians, or `None` when stationary.
    pub fn direction(&self) -> Option<Real> {
        if self.is_stationary() {
            None
        } else {
            Some(Real::new(self.y1.get().atan2(self.x1.get())))
        }
    }

    /// Squared distance to another motion as a quadratic in `t`
    /// (coefficients `(a, b, c)` of `a·t² + b·t + c`).
    pub fn distance_sq_coeffs(&self, other: &PointMotion) -> (Real, Real, Real) {
        let d0x = self.x0 - other.x0;
        let d1x = self.x1 - other.x1;
        let d0y = self.y0 - other.y0;
        let d1y = self.y1 - other.y1;
        (
            d1x * d1x + d1y * d1y,
            Real::new(2.0) * (d0x * d1x + d0y * d1y),
            d0x * d0x + d0y * d0y,
        )
    }

    /// The instants at which the two motions coincide: `None` = never,
    /// `Some(Ok(t))` = exactly at `t`, `Some(Err(()))` = always.
    pub fn meet_time(&self, other: &PointMotion) -> Coincidence {
        let dx0 = self.x0 - other.x0;
        let dx1 = self.x1 - other.x1;
        let dy0 = self.y0 - other.y0;
        let dy1 = self.y1 - other.y1;
        let tx = solve_linear(dx1, dx0);
        let ty = solve_linear(dy1, dy0);
        match (tx, ty) {
            (LinSol::Always, LinSol::Always) => Coincidence::Always,
            (LinSol::Never, _) | (_, LinSol::Never) => Coincidence::Never,
            (LinSol::At(t), LinSol::Always) | (LinSol::Always, LinSol::At(t)) => Coincidence::At(t),
            (LinSol::At(t1), LinSol::At(t2)) => {
                if (t1 - t2).abs().get() <= 1e-12 {
                    Coincidence::At(t1)
                } else {
                    Coincidence::Never
                }
            }
        }
    }
}

/// Solution of `k·t + m = 0`.
enum LinSol {
    Never,
    At(Instant),
    Always,
}

fn solve_linear(k: Real, m: Real) -> LinSol {
    if k == Real::ZERO {
        if m == Real::ZERO {
            LinSol::Always
        } else {
            LinSol::Never
        }
    } else {
        LinSol::At(Instant::new(-m / k))
    }
}

/// When two linear motions coincide.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Coincidence {
    /// The motions never meet.
    Never,
    /// They meet exactly once.
    At(Instant),
    /// They are the same motion.
    Always,
}

/// A `upoint` unit: a linear motion restricted to a time interval.
#[derive(Clone, Copy, PartialEq)]
pub struct UPoint {
    interval: TimeInterval,
    motion: PointMotion,
}

impl UPoint {
    /// Construct from interval and motion.
    pub fn new(interval: TimeInterval, motion: PointMotion) -> UPoint {
        UPoint { interval, motion }
    }

    /// The unit moving from `p` (at the interval start) to `q` (at the
    /// interval end) — the common constructor for trajectory data.
    pub fn between(interval: TimeInterval, p: Point, q: Point) -> UPoint {
        if interval.is_point() || p == q {
            return UPoint::new(interval, PointMotion::stationary(p));
        }
        UPoint::new(
            interval,
            PointMotion::through(*interval.start(), p, *interval.end(), q),
        )
    }

    /// The underlying motion.
    pub fn motion(&self) -> &PointMotion {
        &self.motion
    }

    /// Position at the interval start.
    pub fn start_point(&self) -> Point {
        self.motion.at(*self.interval.start())
    }

    /// Position at the interval end.
    pub fn end_point(&self) -> Point {
        self.motion.at(*self.interval.end())
    }

    /// The projection of the unit into the plane: a segment, or the
    /// stationary point (`trajectory` building block, Sec 2).
    pub fn projection(&self) -> Result<Seg, Point> {
        match Seg::try_from_unordered(self.start_point(), self.end_point()) {
            Some(s) => Ok(s),
            None => Err(self.start_point()),
        }
    }

    /// Time-dependent distance to another unit as a `ureal` on the given
    /// interval (callers pass the refinement-partition interval).
    pub fn distance_ureal(&self, other: &UPoint, interval: TimeInterval) -> UReal {
        let (a, b, c) = self.motion.distance_sq_coeffs(&other.motion);
        // A squared distance is a sum of squares: non-negative by
        // construction, no sign check needed.
        UReal::rooted_nonneg(interval, a, b, c)
    }

    /// Time-dependent distance to a fixed point as a `ureal`.
    pub fn distance_to_point_ureal(&self, p: Point) -> UReal {
        let fixed = PointMotion::stationary(p);
        let (a, b, c) = self.motion.distance_sq_coeffs(&fixed);
        UReal::rooted_nonneg(self.interval, a, b, c)
    }

    /// Speed as a (constant) `ureal` on the unit interval.
    pub fn speed_ureal(&self) -> UReal {
        UReal::constant(self.interval, self.motion.speed())
    }

    /// The instants within the unit interval at which the point passes
    /// through `p` (at most one for a moving unit; the whole interval for
    /// a stationary unit at `p` is reported via `Coincidence::Always`).
    pub fn passes_at(&self, p: Point) -> Coincidence {
        match self.motion.meet_time(&PointMotion::stationary(p)) {
            Coincidence::Never => Coincidence::Never,
            Coincidence::Always => Coincidence::Always,
            Coincidence::At(t) => {
                if self.interval.contains(&t) {
                    Coincidence::At(t)
                } else {
                    Coincidence::Never
                }
            }
        }
    }

    /// 3D bounding cube of the unit (Sec 4.2 summary information).
    pub fn bounding_cube(&self) -> Cube {
        Cube::new(
            Rect::of_points([self.start_point(), self.end_point()]),
            &self.interval,
        )
    }
}

impl Unit for UPoint {
    type Value = Point;

    fn interval(&self) -> &TimeInterval {
        &self.interval
    }

    fn with_interval(&self, iv: TimeInterval) -> Self {
        UPoint {
            interval: iv,
            motion: self.motion,
        }
    }

    fn at(&self, t: Instant) -> Point {
        self.motion.at(t)
    }

    fn value_eq(&self, other: &Self) -> bool {
        self.motion == other.motion
    }
}

impl fmt::Debug for UPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}↦{:?}→{:?}",
            self.interval,
            self.start_point(),
            self.end_point()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{r, t, Interval};
    use mob_spatial::pt;

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    #[test]
    fn motion_through_two_points() {
        let m = PointMotion::through(t(1.0), pt(0.0, 0.0), t(3.0), pt(4.0, 2.0));
        assert_eq!(m.at(t(1.0)), pt(0.0, 0.0));
        assert_eq!(m.at(t(2.0)), pt(2.0, 1.0));
        assert_eq!(m.at(t(3.0)), pt(4.0, 2.0));
        assert_eq!(m.speed(), (r(4.0 + 1.0)).sqrt().unwrap());
    }

    #[test]
    fn unit_between() {
        let u = UPoint::between(iv(0.0, 2.0), pt(0.0, 0.0), pt(2.0, 2.0));
        assert_eq!(u.at(t(1.0)), pt(1.0, 1.0));
        assert_eq!(u.start_point(), pt(0.0, 0.0));
        assert_eq!(u.end_point(), pt(2.0, 2.0));
        assert_eq!(
            u.projection().unwrap(),
            Seg::new(pt(0.0, 0.0), pt(2.0, 2.0))
        );
        // Stationary unit projects to a point.
        let s = UPoint::between(iv(0.0, 1.0), pt(5.0, 5.0), pt(5.0, 5.0));
        assert_eq!(s.projection(), Err(pt(5.0, 5.0)));
    }

    #[test]
    fn distance_between_units_is_rooted_quadratic() {
        // Two points approaching: a at (t,0), b at (2-t, 0): distance |2-2t|.
        let a = UPoint::between(iv(0.0, 2.0), pt(0.0, 0.0), pt(2.0, 0.0));
        let b = UPoint::between(iv(0.0, 2.0), pt(2.0, 0.0), pt(0.0, 0.0));
        let d = a.distance_ureal(&b, iv(0.0, 2.0));
        assert!(d.is_root());
        assert_eq!(d.value_at(t(0.0)), r(2.0));
        assert_eq!(d.value_at(t(1.0)), r(0.0));
        assert_eq!(d.value_at(t(2.0)), r(2.0));
        let (lo, hi) = d.extrema();
        assert_eq!((lo, hi), (r(0.0), r(2.0)));
    }

    #[test]
    fn distance_to_fixed_point() {
        let u = UPoint::between(iv(0.0, 2.0), pt(-1.0, 1.0), pt(1.0, 1.0));
        let d = u.distance_to_point_ureal(pt(0.0, 0.0));
        assert_eq!(d.value_at(t(1.0)), r(1.0)); // directly above origin
        assert_eq!(d.value_at(t(0.0)), r(2.0f64.sqrt()));
    }

    #[test]
    fn meet_times() {
        let a = PointMotion::through(t(0.0), pt(0.0, 0.0), t(1.0), pt(1.0, 1.0));
        let b = PointMotion::through(t(0.0), pt(2.0, 0.0), t(1.0), pt(1.0, 1.0));
        assert_eq!(a.meet_time(&b), Coincidence::At(t(1.0)));
        // Parallel, never meet.
        let c = PointMotion::through(t(0.0), pt(0.0, 1.0), t(1.0), pt(1.0, 2.0));
        assert_eq!(a.meet_time(&c), Coincidence::Never);
        // Identical motions.
        assert_eq!(a.meet_time(&a), Coincidence::Always);
        // Cross at different times on each axis: never coincide.
        let d = PointMotion::through(t(0.0), pt(1.0, 0.0), t(1.0), pt(0.0, 2.0));
        assert_eq!(a.meet_time(&d), Coincidence::Never);
    }

    #[test]
    fn passes() {
        let u = UPoint::between(iv(0.0, 2.0), pt(0.0, 0.0), pt(2.0, 2.0));
        assert_eq!(u.passes_at(pt(1.0, 1.0)), Coincidence::At(t(1.0)));
        assert_eq!(u.passes_at(pt(3.0, 3.0)), Coincidence::Never); // outside interval
        assert_eq!(u.passes_at(pt(1.0, 0.0)), Coincidence::Never); // off path
        let s = UPoint::between(iv(0.0, 1.0), pt(5.0, 5.0), pt(5.0, 5.0));
        assert_eq!(s.passes_at(pt(5.0, 5.0)), Coincidence::Always);
    }

    #[test]
    fn bounding_cube() {
        let u = UPoint::between(iv(1.0, 3.0), pt(0.0, 0.0), pt(2.0, -2.0));
        let c = u.bounding_cube();
        assert_eq!(c.t_min, t(1.0));
        assert_eq!(c.t_max, t(3.0));
        assert_eq!(c.rect.min_y(), r(-2.0));
        assert_eq!(c.rect.max_x(), r(2.0));
    }

    #[test]
    fn merge_continuing_motion() {
        // Same motion split at t=1 merges back (mapping minimality).
        let m = PointMotion::through(t(0.0), pt(0.0, 0.0), t(2.0), pt(2.0, 0.0));
        let a = UPoint::new(Interval::new(t(0.0), t(1.0), true, true), m);
        let b = UPoint::new(Interval::new(t(1.0), t(2.0), false, true), m);
        let merged = a.try_merge(&b).unwrap();
        assert_eq!(*merged.interval(), iv(0.0, 2.0));
        // A kink (different velocity) does not merge.
        let m2 = PointMotion::through(t(1.0), pt(1.0, 0.0), t(2.0), pt(1.0, 1.0));
        let c = UPoint::new(Interval::new(t(1.0), t(2.0), false, true), m2);
        assert!(a.try_merge(&c).is_none());
    }
}
