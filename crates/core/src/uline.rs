//! The `uline` unit type (Sec 3.2.6, Figs 4–5): a set of non-rotating
//! moving segments that forms a valid `line` value throughout the open
//! unit interval, with the `ι_s`/`ι_e` endpoint cleanup (degenerate
//! segments removed, overlapping segments merged via `merge-segs`).

use crate::mseg::{mseg_key, MSeg};
use crate::unit::Unit;
use mob_base::error::{InvariantViolation, Result};
use mob_base::{Instant, TimeInterval};
use mob_spatial::{Cube, Line, Rect, Seg};
use std::fmt;

/// A moving `line` unit.
#[derive(Clone, PartialEq)]
pub struct ULine {
    interval: TimeInterval,
    msegs: Vec<MSeg>,
}

impl ULine {
    /// Validating constructor: each moving segment is individually valid
    /// (enforced by [`MSeg`]); the collection must evaluate to a valid
    /// `line` at sampled interior instants (condition i) or at the single
    /// instant (condition ii).
    pub fn try_new(interval: TimeInterval, mut msegs: Vec<MSeg>) -> Result<ULine> {
        if msegs.is_empty() {
            return Err(InvariantViolation::new("uline: |M| >= 1"));
        }
        msegs.sort_by_key(mseg_key);
        // Exact check: no segment may degenerate inside the open interval
        // (the meet time of its end-point motions is closed form).
        for ms in &msegs {
            if let crate::upoint::Coincidence::At(tc) = ms.start_motion().meet_time(ms.end_motion())
            {
                if interval.contains_open(&tc) {
                    return Err(InvariantViolation::with_detail(
                        "uline: segment degenerates inside the open interval",
                        format!("at {tc:?}"),
                    ));
                }
            }
        }
        let u = ULine { interval, msegs };
        // Exact validation: validity is piecewise-constant between the
        // pairwise critical times, so checking the critical instants and
        // one sample per gap decides condition (i) exactly (DESIGN.md).
        let samples: Vec<Instant> = if interval.is_point() {
            vec![*interval.start()]
        } else {
            crate::mseg::validation_instants(&u.msegs, &interval)
        };
        for t in samples {
            let strict = interval.is_point() || interval.contains_open(&t);
            if !strict {
                continue;
            }
            u.check_valid_at(t)?;
        }
        Ok(u)
    }

    fn check_valid_at(&self, t: Instant) -> Result<()> {
        let mut segs: Vec<Seg> = Vec::with_capacity(self.msegs.len());
        for ms in &self.msegs {
            match ms.eval_seg(t) {
                Some(s) => segs.push(s),
                None => {
                    return Err(InvariantViolation::with_detail(
                        "uline: segment degenerates inside the open interval",
                        format!("at {t:?}"),
                    ))
                }
            }
        }
        Line::try_new(segs).map(|_| ()).map_err(|e| {
            InvariantViolation::with_detail(
                "uline: evaluation inside the open interval must be a valid line",
                format!("at {t:?}: {e}"),
            )
        })
    }

    /// The moving segments (canonically sorted).
    pub fn msegs(&self) -> &[MSeg] {
        &self.msegs
    }

    /// Number of moving segments.
    pub fn len(&self) -> usize {
        self.msegs.len()
    }

    /// Never true: the constructor requires at least one moving segment.
    pub fn is_empty(&self) -> bool {
        self.msegs.is_empty()
    }

    /// 3D bounding cube over the unit interval.
    pub fn bounding_cube(&self) -> Cube {
        let s = *self.interval.start();
        let e = *self.interval.end();
        let rect = Rect::of_points(self.msegs.iter().flat_map(|m| {
            let (p0, q0) = m.eval_pair(s);
            let (p1, q1) = m.eval_pair(e);
            [p0, q0, p1, q1]
        }));
        Cube::new(rect, &self.interval)
    }
}

impl Unit for ULine {
    type Value = Line;

    fn interval(&self) -> &TimeInterval {
        &self.interval
    }

    fn with_interval(&self, iv: TimeInterval) -> Self {
        ULine {
            interval: iv,
            msegs: self.msegs.clone(),
        }
    }

    /// Evaluation with endpoint cleanup: pairs that degenerate to points
    /// are dropped and collinear overlapping segments are merged into
    /// maximal ones (`merge-segs`) — exactly `ι_s`/`ι_e`; at interior
    /// instants the cleanup is a no-op by the validity invariant.
    fn at(&self, t: Instant) -> Line {
        let segs: Vec<Seg> = self.msegs.iter().filter_map(|m| m.eval_seg(t)).collect();
        Line::normalize(segs)
    }

    fn value_eq(&self, other: &Self) -> bool {
        self.msegs == other.msegs
    }
}

impl fmt::Debug for ULine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}↦{} moving segments",
            self.interval,
            self.msegs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{r, t, Interval};
    use mob_spatial::pt;

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    /// Figure 4: a two-segment polyline translating upward.
    fn figure4_unit() -> ULine {
        let m1 = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(1.0, 1.0),
            t(2.0),
            pt(0.0, 2.0),
            pt(1.0, 3.0),
        )
        .unwrap();
        let m2 = MSeg::between(
            t(0.0),
            pt(1.0, 1.0),
            pt(2.0, 0.0),
            t(2.0),
            pt(1.0, 3.0),
            pt(2.0, 2.0),
        )
        .unwrap();
        ULine::try_new(iv(0.0, 2.0), vec![m1, m2]).unwrap()
    }

    #[test]
    fn figure4_translating_polyline() {
        let u = figure4_unit();
        let at0 = u.at(t(0.0));
        assert_eq!(at0.num_segments(), 2);
        assert_eq!(at0.length(), r(2.0f64.sqrt()) + r(2.0f64.sqrt()));
        let at1 = u.at(t(1.0));
        assert!(at1.contains_point(pt(1.0, 2.0))); // apex moved up by 1
    }

    #[test]
    fn figure5_triangle_degeneracy_cleaned_at_endpoint() {
        // A segment growing from a point (triangle in 3D): at t=0 it is
        // degenerate and must disappear from the evaluation.
        let grow = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(0.0, 0.0),
            t(1.0),
            pt(0.0, 0.0),
            pt(1.0, 0.0),
        )
        .unwrap();
        let other = MSeg::between(
            t(0.0),
            pt(0.0, 1.0),
            pt(1.0, 1.0),
            t(1.0),
            pt(0.0, 1.0),
            pt(1.0, 1.0),
        )
        .unwrap();
        let u = ULine::try_new(iv(0.0, 1.0), vec![grow, other]).unwrap();
        assert_eq!(u.at(t(0.0)).num_segments(), 1); // degenerate seg dropped
        assert_eq!(u.at(t(0.5)).num_segments(), 2);
    }

    #[test]
    fn endpoint_overlap_merged() {
        // Two collinear moving segments whose gap closes exactly at t=1
        // (the closed end): they meet at (2,0) there and ι_e merges them.
        let a = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(1.0, 0.0),
            t(1.0),
            pt(0.0, 0.0),
            pt(2.0, 0.0),
        )
        .unwrap();
        let b = MSeg::between(
            t(0.0),
            pt(2.5, 0.0),
            pt(3.0, 0.0),
            t(1.0),
            pt(2.0, 0.0),
            pt(3.0, 0.0),
        )
        .unwrap();
        let u = ULine::try_new(iv(0.0, 1.0), vec![a, b]).unwrap();
        assert_eq!(u.at(t(0.5)).num_segments(), 2);
        let end = u.at(t(1.0));
        assert_eq!(end.num_segments(), 1); // merged into [0,3]
        assert_eq!(end.length(), r(3.0));
    }

    #[test]
    fn interior_degeneracy_rejected() {
        // Segment collapsing at t=1 in the middle of [0,2]: invalid.
        let collapse = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(2.0, 0.0),
            t(1.0),
            pt(1.0, 0.0),
            pt(1.0, 0.0),
        );
        // s moves right, e moves left along the same line: coplanar.
        let collapse = collapse.unwrap();
        assert!(ULine::try_new(iv(0.0, 2.0), vec![collapse]).is_err());
    }

    #[test]
    fn interior_overlap_rejected() {
        // Two identical stationary segments overlap everywhere.
        let a = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(1.0, 0.0),
            t(1.0),
            pt(0.0, 0.0),
            pt(1.0, 0.0),
        )
        .unwrap();
        assert!(ULine::try_new(iv(0.0, 1.0), vec![a, a]).is_err());
    }

    #[test]
    fn instant_unit() {
        let a = MSeg::between(
            t(0.0),
            pt(0.0, 0.0),
            pt(1.0, 0.0),
            t(1.0),
            pt(0.0, 0.0),
            pt(1.0, 0.0),
        )
        .unwrap();
        let u = ULine::try_new(TimeInterval::point(t(0.5)), vec![a]).unwrap();
        assert_eq!(u.at(t(0.5)).num_segments(), 1);
    }

    #[test]
    fn merge_equal_units() {
        let u = figure4_unit();
        let left = u.with_interval(Interval::new(t(0.0), t(1.0), true, true));
        let right = u.with_interval(Interval::new(t(1.0), t(2.0), false, true));
        let merged = left.try_merge(&right).unwrap();
        assert_eq!(*merged.interval(), iv(0.0, 2.0));
    }

    #[test]
    fn bounding_cube() {
        let u = figure4_unit();
        let c = u.bounding_cube();
        assert_eq!(c.rect.max_y(), r(3.0));
        assert_eq!(c.rect.min_y(), r(0.0));
    }
}
