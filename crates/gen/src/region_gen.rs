//! Generators for static and moving regions: convex "storm cells" whose
//! vertices translate, grow and shrink linearly — the synthetic stand-in
//! for hurricane/flood-area data (DESIGN.md §3).

use mob_base::{Instant, Interval, TimeInterval};
use mob_core::{MCycle, MFace, Mapping, MovingRegion, URegion};
use mob_spatial::{Point, Region, Ring};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A convex polygon ring with `n` vertices approximating a circle of the
/// given radius around `center`, with radial noise controlled by
/// `roughness ∈ [0, 1)`.
pub fn convex_blob(seed: u64, center: Point, radius: f64, n: usize, roughness: f64) -> Ring {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    assert!((0.0..1.0).contains(&roughness));
    let mut rng = StdRng::seed_from_u64(seed);
    // Sorted angles with jitter keep the polygon simple (star-shaped).
    let pts: Vec<Point> = (0..n)
        .map(|k| {
            let angle = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            let r = radius * (1.0 - roughness * rng.gen_range(0.0..1.0));
            Point::from_f64(
                center.x.get() + r * angle.cos(),
                center.y.get() + r * angle.sin(),
            )
        })
        .collect();
    Ring::try_new(pts).expect("star-shaped polygon is a valid cycle")
}

/// A regular `n`-gon ring (exact, for deterministic tests).
pub fn regular_ngon(center: Point, radius: f64, n: usize) -> Ring {
    convex_blob(0, center, radius, n, 0.0)
}

/// Parameters of the moving-storm workload.
#[derive(Clone, Debug)]
pub struct StormConfig {
    /// Vertices per snapshot polygon (moving segments per unit).
    pub vertices: usize,
    /// Number of units.
    pub units: usize,
    /// Duration of each unit.
    pub unit_duration: f64,
    /// Start time.
    pub start: f64,
    /// Initial center.
    pub center: (f64, f64),
    /// Drift per unit (dx, dy).
    pub drift: (f64, f64),
    /// Initial radius.
    pub radius: f64,
    /// Radius growth factor per unit (e.g. 1.1 = grows 10% per unit).
    pub growth: f64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            vertices: 12,
            units: 8,
            unit_duration: 1.0,
            start: 0.0,
            center: (0.0, 0.0),
            drift: (10.0, 5.0),
            radius: 20.0,
            growth: 1.05,
        }
    }
}

/// A moving storm: a convex cell drifting and growing linearly within
/// each unit, with a fresh snapshot at every unit boundary.
pub fn moving_storm(seed: u64, cfg: &StormConfig) -> MovingRegion {
    let snapshot = |k: usize| -> Ring {
        let cx = cfg.center.0 + cfg.drift.0 * k as f64;
        let cy = cfg.center.1 + cfg.drift.1 * k as f64;
        let r = cfg.radius * cfg.growth.powi(k as i32);
        // Same seed for every snapshot: vertex k corresponds to vertex k,
        // so the interpolation is a valid non-rotating moving cycle.
        convex_blob(seed, Point::from_f64(cx, cy), r, cfg.vertices, 0.3)
    };
    let mut units = Vec::with_capacity(cfg.units);
    for k in 0..cfg.units {
        // Compute both boundaries the same way so consecutive units
        // share the instant exactly (k·d + d ≠ (k+1)·d in floats).
        let t0 = cfg.start + k as f64 * cfg.unit_duration;
        let t1 = cfg.start + (k + 1) as f64 * cfg.unit_duration;
        let last = k == cfg.units - 1;
        let iv = Interval::new(Instant::from_f64(t0), Instant::from_f64(t1), true, last);
        let full = Interval::closed(Instant::from_f64(t0), Instant::from_f64(t1));
        let cyc = MCycle::interpolate(*full.start(), &snapshot(k), *full.end(), &snapshot(k + 1))
            .expect("matching vertex counts");
        units.push(
            URegion::try_new(iv, vec![MFace::simple(cyc)])
                .expect("convex interpolation stays valid"),
        );
    }
    crate::emitted(Mapping::try_new(units).expect("consecutive units carry distinct motions"))
}

/// A moving storm *with an eye*: a drifting annulus — outer cell plus a
/// moving hole — exercising `MFace` holes end to end.
pub fn storm_with_eye(seed: u64, cfg: &StormConfig) -> MovingRegion {
    let outer_snapshot = |k: usize| -> Ring {
        let cx = cfg.center.0 + cfg.drift.0 * k as f64;
        let cy = cfg.center.1 + cfg.drift.1 * k as f64;
        let r = cfg.radius * cfg.growth.powi(k as i32);
        convex_blob(seed, Point::from_f64(cx, cy), r, cfg.vertices, 0.2)
    };
    let eye_snapshot = |k: usize| -> Ring {
        let cx = cfg.center.0 + cfg.drift.0 * k as f64;
        let cy = cfg.center.1 + cfg.drift.1 * k as f64;
        // The eye is a fifth of the storm radius and drifts with it.
        let r = cfg.radius * cfg.growth.powi(k as i32) * 0.2;
        convex_blob(
            seed ^ 0xEE,
            Point::from_f64(cx, cy),
            r,
            cfg.vertices.max(4) / 2,
            0.1,
        )
    };
    let mut units = Vec::with_capacity(cfg.units);
    for k in 0..cfg.units {
        let t0 = cfg.start + k as f64 * cfg.unit_duration;
        let t1 = cfg.start + (k + 1) as f64 * cfg.unit_duration;
        let last = k == cfg.units - 1;
        let iv = Interval::new(Instant::from_f64(t0), Instant::from_f64(t1), true, last);
        let outer = MCycle::interpolate(
            Instant::from_f64(t0),
            &outer_snapshot(k),
            Instant::from_f64(t1),
            &outer_snapshot(k + 1),
        )
        .expect("matching vertex counts");
        let eye = MCycle::interpolate(
            Instant::from_f64(t0),
            &eye_snapshot(k),
            Instant::from_f64(t1),
            &eye_snapshot(k + 1),
        )
        .expect("matching vertex counts");
        units.push(
            URegion::try_new(iv, vec![MFace::new(outer, vec![eye])])
                .expect("annulus interpolation stays valid"),
        );
    }
    crate::emitted(Mapping::try_new(units).expect("consecutive units carry distinct motions"))
}

/// A static region made of `faces` disjoint convex blobs in a row.
pub fn blob_field(seed: u64, faces: usize, radius: f64, vertices: usize) -> Region {
    let rings: Vec<Ring> = (0..faces)
        .map(|k| {
            convex_blob(
                seed.wrapping_add(k as u64),
                Point::from_f64(k as f64 * 3.0 * radius, 0.0),
                radius,
                vertices,
                0.2,
            )
        })
        .collect();
    crate::emitted(
        Region::try_new(rings.into_iter().map(mob_spatial::Face::simple).collect())
            .expect("blobs are spaced apart"),
    )
}

/// The total number of moving segments of a moving region (workload size
/// `S` in the Sec 5.2 analysis).
pub fn storm_msegs(m: &MovingRegion) -> usize {
    m.total_msegs()
}

/// A growing square as a single unit — the minimal deterministic moving
/// region for micro-tests.
pub fn growing_square_unit(t0: f64, t1: f64, side0: f64, side1: f64) -> URegion {
    let ring = |s: f64| -> Ring { mob_spatial::rect_ring(-s / 2.0, -s / 2.0, s / 2.0, s / 2.0) };
    URegion::interpolate(
        TimeInterval::closed(Instant::from_f64(t0), Instant::from_f64(t1)),
        &ring(side0),
        &ring(side1),
    )
    .expect("axis-aligned growth is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{t, Real, Val};
    use mob_spatial::pt;

    #[test]
    fn blob_is_valid_and_deterministic() {
        let a = convex_blob(5, pt(0.0, 0.0), 10.0, 16, 0.3);
        let b = convex_blob(5, pt(0.0, 0.0), 10.0, 16, 0.3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.area() > Real::ZERO);
        assert!(a.contains_point(pt(0.0, 0.0)));
    }

    #[test]
    fn regular_ngon_area_approaches_circle() {
        let hex = regular_ngon(pt(0.0, 0.0), 1.0, 6);
        // Area of regular hexagon with circumradius 1: 3√3/2 ≈ 2.598.
        assert!(hex.area().approx_eq(Real::new(2.598), 1e-2));
        let many = regular_ngon(pt(0.0, 0.0), 1.0, 256);
        assert!(many.area().approx_eq(Real::new(std::f64::consts::PI), 1e-3));
    }

    #[test]
    fn storm_covers_time_and_moves() {
        let cfg = StormConfig::default();
        let storm = moving_storm(9, &cfg);
        assert_eq!(storm.num_units(), cfg.units);
        // Defined over the whole span.
        assert!(storm.present_at(t(0.0)));
        assert!(storm.present_at(t(7.9)));
        assert!(!storm.present_at(t(8.1)));
        // The storm drifts: snapshots at 0 and 7 have different centers.
        let r0 = storm.at_instant(t(0.0)).unwrap();
        let r7 = storm.at_instant(t(7.0)).unwrap();
        assert!(r0.contains_point(pt(0.0, 0.0)));
        assert!(!r7.contains_point(pt(0.0, 0.0)));
        assert!(r7.contains_point(pt(70.0, 35.0)));
        // It grows.
        assert!(r7.area() > r0.area());
    }

    #[test]
    fn storm_area_is_continuous_across_units() {
        let storm = moving_storm(3, &StormConfig::default());
        let area = storm.area();
        // Area just before and just after a unit boundary agree.
        let before = area.at_instant(t(3.0 - 1e-9)).unwrap();
        let at = area.at_instant(t(3.0)).unwrap();
        assert!(before.approx_eq(at, 1e-4));
        assert_eq!(area.at_instant(t(99.0)), Val::Undef);
    }

    #[test]
    fn storm_with_eye_has_hole() {
        let cfg = StormConfig::default();
        let storm = storm_with_eye(4, &cfg);
        let snap = storm.at_instant(t(3.5)).unwrap();
        assert_eq!(snap.num_faces(), 1);
        assert_eq!(snap.num_cycles(), 2);
        // The eye's center is not inside the region.
        let cx = cfg.center.0 + cfg.drift.0 * 3.5;
        let cy = cfg.center.1 + cfg.drift.1 * 3.5;
        assert!(!snap.contains_point(pt(cx, cy)));
        // But the annulus body is.
        let area = storm.area();
        let a = area.at_instant(t(3.5)).unwrap();
        assert!(a.approx_eq(snap.area(), 1e-6 * a.get().max(1.0)));
        assert!(a > Real::ZERO);
    }

    #[test]
    fn blob_field_faces() {
        let field = blob_field(1, 4, 5.0, 8);
        assert_eq!(field.num_faces(), 4);
        assert!(field.area() > Real::ZERO);
    }

    #[test]
    fn growing_square() {
        let u = growing_square_unit(0.0, 1.0, 2.0, 4.0);
        assert_eq!(storm_msegs(&Mapping::single(u.clone())), 4);
        assert_eq!(u.area_ureal().value_at(t(0.0)), Real::new(4.0));
        assert_eq!(u.area_ureal().value_at(t(1.0)), Real::new(16.0));
    }
}
