//! Named, seeded scenarios shared by the examples, integration tests and
//! the benchmark harness — so every experiment runs on the same
//! reproducible workloads.

use crate::region_gen::{moving_storm, StormConfig};
use crate::trajectory::{flight_mpoint, random_waypoint_mpoint, TrajectoryConfig};
use mob_core::{MovingPoint, MovingRegion};
use mob_spatial::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One plane of the fleet scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Plane {
    /// Airline name.
    pub airline: String,
    /// Flight id (unique).
    pub id: String,
    /// The recorded movement.
    pub flight: MovingPoint,
}

/// Airlines used by the fleet generator.
pub const AIRLINES: [&str; 4] = ["Lufthansa", "British Airways", "Air France", "KLM"];

/// A fleet of `n` planes flying point-to-point routes across a
/// 2000×2000 world during `[0, 100]`, with `units_per_flight` legs each.
/// Deterministic in the seed.
pub fn plane_fleet(seed: u64, n: usize, units_per_flight: usize) -> Vec<Plane> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let from = Point::from_f64(
                rng.gen_range(-1000.0..1000.0),
                rng.gen_range(-1000.0..1000.0),
            );
            let to = Point::from_f64(
                rng.gen_range(-1000.0..1000.0),
                rng.gen_range(-1000.0..1000.0),
            );
            let t0 = rng.gen_range(0.0..20.0);
            let t1 = t0 + rng.gen_range(30.0..80.0);
            Plane {
                airline: AIRLINES[k % AIRLINES.len()].to_string(),
                id: format!("F{k:04}"),
                flight: flight_mpoint(
                    seed.wrapping_add(k as u64),
                    from,
                    to,
                    t0,
                    t1,
                    units_per_flight,
                    2.0,
                ),
            }
        })
        .collect()
}

/// A fleet of `n` taxis doing random-waypoint movement in a city square.
pub fn taxi_fleet(seed: u64, n: usize, units: usize) -> Vec<MovingPoint> {
    let cfg = TrajectoryConfig {
        extent: 100.0,
        units,
        leg_duration: 1.0,
        max_step: 10.0,
        start: 0.0,
    };
    (0..n)
        .map(|k| random_waypoint_mpoint(seed.wrapping_add(k as u64), &cfg))
        .collect()
}

/// The standard storm scenario: a drifting, growing convex cell with the
/// given number of units and boundary vertices.
pub fn storm(seed: u64, units: usize, vertices: usize) -> MovingRegion {
    moving_storm(
        seed,
        &StormConfig {
            units,
            vertices,
            unit_duration: 100.0 / units as f64,
            drift: (120.0 / units as f64, 60.0 / units as f64),
            radius: 25.0,
            growth: (1.8f64).powf(1.0 / units as f64),
            ..StormConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_is_deterministic_and_unique_ids() {
        let a = plane_fleet(11, 20, 8);
        let b = plane_fleet(11, 20, 8);
        assert_eq!(a, b);
        let mut ids: Vec<&str> = a.iter().map(|p| p.id.as_str()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 20);
        // All airlines used.
        assert!(AIRLINES.iter().all(|al| a.iter().any(|p| p.airline == *al)));
    }

    #[test]
    fn fleet_unit_counts() {
        let fleet = plane_fleet(3, 5, 12);
        for p in &fleet {
            assert!(p.flight.num_units() >= 9, "{}", p.flight.num_units());
            assert!(!p.flight.is_empty());
        }
    }

    #[test]
    fn taxis_share_time_axis() {
        let taxis = taxi_fleet(5, 8, 10);
        assert_eq!(taxis.len(), 8);
        for m in &taxis {
            assert!(m.present_at(mob_base::t(5.0)));
        }
    }

    #[test]
    fn storm_scales_with_parameters() {
        let small = storm(2, 4, 8);
        let big = storm(2, 16, 24);
        assert_eq!(small.num_units(), 4);
        assert_eq!(big.num_units(), 16);
        assert_eq!(small.total_msegs(), 4 * 8);
        assert_eq!(big.total_msegs(), 16 * 24);
    }
}
