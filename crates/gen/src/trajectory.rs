//! Seeded trajectory generators: piecewise-linear moving points standing
//! in for real plane/vehicle traces (see DESIGN.md §3 on substitutions).
//!
//! The algorithms' costs depend only on unit counts and geometry, both of
//! which these generators control precisely — which is exactly what the
//! complexity-shape experiments need.

use mob_base::{Instant, Real};
use mob_core::MovingPoint;
use mob_spatial::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the trajectory workload.
#[derive(Clone, Debug)]
pub struct TrajectoryConfig {
    /// Half-width of the square world `[-extent, extent]²`.
    pub extent: f64,
    /// Number of units (sampled legs) per trajectory.
    pub units: usize,
    /// Duration of each leg.
    pub leg_duration: f64,
    /// Maximum displacement per leg.
    pub max_step: f64,
    /// Start time of all trajectories.
    pub start: f64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            extent: 1000.0,
            units: 16,
            leg_duration: 1.0,
            max_step: 50.0,
            start: 0.0,
        }
    }
}

/// A random-waypoint moving point: starts at a uniform position, then
/// takes `units` legs of bounded displacement (reflected at the world
/// boundary). Deterministic in the seed.
pub fn random_waypoint_mpoint(seed: u64, cfg: &TrajectoryConfig) -> MovingPoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(cfg.units + 1);
    let mut x = rng.gen_range(-cfg.extent..cfg.extent);
    let mut y = rng.gen_range(-cfg.extent..cfg.extent);
    samples.push((Instant::from_f64(cfg.start), Point::from_f64(x, y)));
    for k in 1..=cfg.units {
        x += rng.gen_range(-cfg.max_step..cfg.max_step);
        y += rng.gen_range(-cfg.max_step..cfg.max_step);
        // Reflect into the world.
        x = x.clamp(-cfg.extent, cfg.extent);
        y = y.clamp(-cfg.extent, cfg.extent);
        samples.push((
            Instant::from_f64(cfg.start + k as f64 * cfg.leg_duration),
            Point::from_f64(x, y),
        ));
    }
    dedup_stalls(&mut samples);
    crate::emitted(MovingPoint::from_samples(&samples))
}

/// A straight flight from `from` to `to` over `[t0, t1]`, subdivided
/// into `units` legs (all with the same velocity — they merge back into
/// few units unless jitter is added; pass `jitter > 0` to keep them
/// distinct, which is what unit-count scaling experiments need).
pub fn flight_mpoint(
    seed: u64,
    from: Point,
    to: Point,
    t0: f64,
    t1: f64,
    units: usize,
    jitter: f64,
) -> MovingPoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::with_capacity(units + 1);
    for k in 0..=units {
        let f = k as f64 / units as f64;
        let base = from.lerp(to, Real::new(f));
        let (jx, jy) = if k == 0 || k == units || jitter == 0.0 {
            (0.0, 0.0)
        } else {
            (
                rng.gen_range(-jitter..jitter),
                rng.gen_range(-jitter..jitter),
            )
        };
        samples.push((
            Instant::from_f64(t0 + f * (t1 - t0)),
            Point::from_f64(base.x.get() + jx, base.y.get() + jy),
        ));
    }
    dedup_stalls(&mut samples);
    crate::emitted(MovingPoint::from_samples(&samples))
}

/// Remove consecutive samples at identical positions *and* identical
/// instants (degenerate input the builder would reject).
fn dedup_stalls(samples: &mut Vec<(Instant, Point)>) {
    samples.dedup_by(|a, b| a.0 == b.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::t;
    use mob_spatial::pt;

    #[test]
    fn deterministic_in_seed() {
        let cfg = TrajectoryConfig::default();
        let a = random_waypoint_mpoint(42, &cfg);
        let b = random_waypoint_mpoint(42, &cfg);
        let c = random_waypoint_mpoint(43, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn covers_requested_time_span() {
        let cfg = TrajectoryConfig {
            units: 10,
            leg_duration: 2.0,
            start: 5.0,
            ..TrajectoryConfig::default()
        };
        let m = random_waypoint_mpoint(1, &cfg);
        let dt = m.deftime();
        assert_eq!(dt.minimum().unwrap(), t(5.0));
        assert_eq!(dt.maximum().unwrap(), t(25.0));
        assert!(m.num_units() <= 10);
        assert!(m.present_at(t(12.3)));
    }

    #[test]
    fn world_bounds_respected() {
        let cfg = TrajectoryConfig {
            extent: 100.0,
            units: 50,
            max_step: 80.0,
            ..TrajectoryConfig::default()
        };
        let m = random_waypoint_mpoint(7, &cfg);
        let cube = m.bounding_cube().unwrap();
        // Unit-endpoint evaluation can overshoot by rounding residue.
        let eps = 1e-9;
        assert!(cube.rect.min_x().get() >= -100.0 - eps);
        assert!(cube.rect.max_x().get() <= 100.0 + eps);
        assert!(cube.rect.min_y().get() >= -100.0 - eps);
        assert!(cube.rect.max_y().get() <= 100.0 + eps);
    }

    #[test]
    fn flight_unit_count_scales_with_jitter() {
        let f = flight_mpoint(1, pt(0.0, 0.0), pt(100.0, 0.0), 0.0, 10.0, 20, 0.5);
        // Jittered waypoints prevent merging: close to 20 units.
        assert!(f.num_units() >= 15, "got {}", f.num_units());
        // Without jitter the legs share (up to rounding of the
        // interpolated waypoints) one motion: far fewer units survive
        // the concat merge.
        let s = flight_mpoint(1, pt(0.0, 0.0), pt(100.0, 0.0), 0.0, 10.0, 20, 0.0);
        assert!(s.num_units() < f.num_units());
        // End points are exact.
        assert_eq!(f.at_instant(t(0.0)).unwrap(), pt(0.0, 0.0));
        assert_eq!(f.at_instant(t(10.0)).unwrap(), pt(100.0, 0.0));
    }
}
