//! # `mob-gen` — seeded workload generators
//!
//! The paper's motivating data — planes, taxis, hurricanes — is
//! proprietary or unavailable; these generators produce the synthetic
//! equivalents used by the examples, tests and benchmarks (see
//! DESIGN.md §3). Everything is deterministic in an explicit seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod front;
pub mod network;
pub mod region_gen;
pub mod scenario;
pub mod trajectory;

pub use front::{moving_front, FrontConfig};
pub use network::GridNetwork;
pub use region_gen::{
    blob_field, convex_blob, growing_square_unit, moving_storm, regular_ngon, storm_with_eye,
    StormConfig,
};
pub use scenario::{plane_fleet, storm, taxi_fleet, Plane, AIRLINES};
pub use trajectory::{flight_mpoint, random_waypoint_mpoint, TrajectoryConfig};

/// Debug-assert a generated value against its full invariant set before
/// handing it to the caller.
///
/// Every generator funnels its output through this helper, so in debug
/// builds (tests, examples) a workload that violates a Sec 3.2 carrier
/// condition fails at the point of generation instead of deep inside a
/// query; release builds pay nothing.
fn emitted<T: mob_base::Validate>(value: T) -> T {
    mob_base::debug_validate(&value);
    value
}
